/**
 * @file
 * The greedy baseline (paper Section 4.2.2): Halide's function
 * grouping applied to graph partition. Start from singleton blocks,
 * then repeatedly merge the pair of edge-adjacent blocks with the
 * greatest positive benefit (metric-cost reduction) until no merge
 * helps. Merges that violate validity or buffer capacity are skipped.
 */

#ifndef COCCO_PARTITION_GREEDY_H
#define COCCO_PARTITION_GREEDY_H

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/**
 * Run the greedy merge. @p metric is the cost being minimized
 * (Formula 1). Returns a valid partition.
 */
Partition greedyPartition(const Graph &g, CostModel &model,
                          const BufferConfig &buf, Metric metric);

} // namespace cocco

#endif // COCCO_PARTITION_GREEDY_H
