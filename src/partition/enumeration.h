/**
 * @file
 * Exact enumeration baseline (paper Section 4.2.1): dynamic
 * programming over the ideal lattice of the DAG. A state is the
 * downward-closed set of already-executed nodes ("record only one
 * subgraph in the state" — the improved variant the paper uses);
 * transitions append one connected, capacity-feasible subgraph whose
 * external producers are all executed.
 *
 * The state space is small for chain-like networks (VGG, ResNets,
 * GoogleNet) and explodes for wide irregular graphs; a state budget
 * turns the search into a best-effort that reports completeness,
 * mirroring the paper's "cannot complete in reasonable time" entries.
 */

#ifndef COCCO_PARTITION_ENUMERATION_H
#define COCCO_PARTITION_ENUMERATION_H

#include <cstdint>

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/** Outcome of the enumeration. */
struct EnumerationResult
{
    bool complete = false;    ///< search finished within budget
    double cost = 0.0;        ///< optimal metric cost (if complete)
    Partition best;           ///< optimal partition (if complete)
    int64_t statesVisited = 0;
    int64_t candidatesTried = 0;
};

/** Tuning knobs for the enumeration. */
struct EnumerationOptions
{
    int64_t stateBudget = 200000;     ///< max distinct ideals
    int64_t candidateBudget = 4000000; ///< max subgraph expansions
    int maxBlockNodes = 64;           ///< region-manager bound
};

/** Run the exact ideal-lattice DP. */
EnumerationResult enumeratePartition(const Graph &g, CostModel &model,
                                     const BufferConfig &buf, Metric metric,
                                     const EnumerationOptions &opts = {});

} // namespace cocco

#endif // COCCO_PARTITION_ENUMERATION_H
