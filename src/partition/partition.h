/**
 * @file
 * The graph-partition scheme P : V -> N of paper Section 4.1.1.
 *
 * A partition assigns each layer to a subgraph (block). Validity:
 *   - precedence: for every edge (u, v), P(u) <= P(v);
 *   - connectivity: every block is weakly connected in G.
 * Blocks execute in increasing index order.
 */

#ifndef COCCO_PARTITION_PARTITION_H
#define COCCO_PARTITION_PARTITION_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace cocco {

/** A partition of the graph's nodes into ordered subgraphs. */
struct Partition
{
    /** block[v] = index of the subgraph computing node v. */
    std::vector<int> block;

    /** Number of distinct blocks (valid after canonicalize()). */
    int numBlocks = 0;

    /** Every node in its own block (layer-level execution). */
    static Partition singletons(const Graph &g);

    /**
     * Fuse consecutive runs of @p run_length nodes in topological
     * order (the paper's Figure 3 "L = 1/3/5" configurations).
     */
    static Partition fixedRuns(const Graph &g, int run_length);

    /** Node ids of each block, ascending within a block. */
    std::vector<std::vector<NodeId>> blocks() const;

    /** Node ids of block @p b. */
    std::vector<NodeId> blockNodes(int b) const;

    /**
     * Renumber blocks canonically: ids become 0..k-1 in a topological
     * order of the quotient graph (ties broken by smallest node id).
     * Requires an acyclic quotient; panics otherwise (callers must
     * repair first). After canonicalization the precedence property
     * P(u) <= P(v) holds for every edge.
     */
    void canonicalize(const Graph &g);

    /** Full validity: precedence and per-block weak connectivity. */
    bool valid(const Graph &g) const;

    /** "{0,1,2}{3,4}..." rendering for debugging. */
    std::string str() const;

    bool operator==(const Partition &o) const { return block == o.block; }
};

} // namespace cocco

#endif // COCCO_PARTITION_PARTITION_H
