/**
 * @file
 * Partition repair: turns an arbitrary block assignment into a valid
 * partition (connected blocks, acyclic quotient, canonical numbering)
 * and optionally enforces buffer capacity by the paper's in-situ
 * split-subgraph tuning (Section 4.4.4).
 */

#ifndef COCCO_PARTITION_REPAIR_H
#define COCCO_PARTITION_REPAIR_H

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/**
 * Structural repair:
 *  1. split every block into weakly-connected components;
 *  2. while the quotient graph is cyclic, split a block on a cycle at
 *     its topological median (strictly increases block count, so this
 *     terminates — all singletons are trivially acyclic);
 *  3. canonicalize numbering.
 * The result always satisfies Partition::valid().
 */
Partition repairStructure(const Graph &g, Partition p);

/**
 * Structural repair followed by capacity enforcement: any multi-node
 * block that does not fit @p buf (activation footprint, resident
 * weights, or region count) is recursively split at its topological
 * median. Singleton blocks are always accepted (they execute with
 * reload penalties).
 */
Partition repairToCapacity(const Graph &g, Partition p, CostModel &model,
                           const BufferConfig &buf);

} // namespace cocco

#endif // COCCO_PARTITION_REPAIR_H
