#include "partition/dp.h"

#include <algorithm>
#include <limits>

#include "graph/algorithms.h"
#include "util/logging.h"

namespace cocco {

namespace {

double
metricOf(const SubgraphCost &c, Metric m)
{
    return m == Metric::EMA ? static_cast<double>(c.emaBytes) : c.energyPj;
}

} // namespace

Partition
dpPartition(const Graph &g, CostModel &model, const BufferConfig &buf,
            Metric metric, int max_run)
{
    const int n = g.size();
    std::vector<NodeId> order = depthOrder(g);

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dp(n + 1, kInf);
    std::vector<int> from(n + 1, -1);
    dp[0] = 0.0;

    for (int i = 1; i <= n; ++i) {
        // Consider blocks order[j..i) for j in [i - max_run, i).
        int j_lo = std::max(0, i - max_run);
        for (int j = i - 1; j >= j_lo; --j) {
            if (dp[j] == kInf)
                continue;
            std::vector<NodeId> blk(order.begin() + j, order.begin() + i);
            SubgraphCost c = model.subgraphCost(blk, buf);
            if (!c.feasible)
                continue;
            double cand = dp[j] + metricOf(c, metric);
            if (cand < dp[i]) {
                dp[i] = cand;
                from[i] = j;
            }
        }
        // Every singleton is feasible, so dp[i] is always reachable.
        if (dp[i] == kInf)
            panic("DP dead end at position %d", i);
    }

    // Reconstruct the segmentation.
    Partition p;
    p.block.assign(n, 0);
    std::vector<std::pair<int, int>> segs;
    for (int i = n; i > 0; i = from[i])
        segs.emplace_back(from[i], i);
    std::reverse(segs.begin(), segs.end());
    int b = 0;
    for (auto [j, i] : segs) {
        for (int k = j; k < i; ++k)
            p.block[order[k]] = b;
        ++b;
    }
    p.numBlocks = b;

    // Depth-contiguous blocks always respect precedence but may be
    // disconnected; the structural property required by the execution
    // model is restored by splitting (costs only get more accurate:
    // a disconnected "block" behaves exactly like its components).
    p.canonicalize(g);
    if (!p.valid(g)) {
        // Split disconnected blocks without changing semantics.
        int next = p.numBlocks;
        for (const auto &blk : p.blocks()) {
            auto comps = weakComponents(g, blk);
            for (size_t c2 = 1; c2 < comps.size(); ++c2) {
                for (NodeId v : comps[c2])
                    p.block[v] = next;
                ++next;
            }
        }
        p.canonicalize(g);
    }
    if (!p.valid(g))
        panic("dpPartition produced an invalid partition");
    return p;
}

} // namespace cocco
