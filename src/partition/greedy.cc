#include "partition/greedy.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "graph/algorithms.h"
#include "util/logging.h"

namespace cocco {

namespace {

double
metricOf(const SubgraphCost &c, Metric m)
{
    return m == Metric::EMA ? static_cast<double>(c.emaBytes) : c.energyPj;
}

} // namespace

Partition
greedyPartition(const Graph &g, CostModel &model, const BufferConfig &buf,
                Metric metric)
{
    Partition p = Partition::singletons(g);

    while (true) {
        p.canonicalize(g);
        auto blocks = p.blocks();
        int nb = static_cast<int>(blocks.size());
        if (nb <= 1)
            break;

        // Per-block metric cost.
        std::vector<double> bcost(nb);
        std::vector<bool> bfeas(nb);
        for (int b = 0; b < nb; ++b) {
            SubgraphCost c = model.subgraphCost(blocks[b], buf);
            bcost[b] = metricOf(c, metric);
            bfeas[b] = c.feasible;
        }

        // Quotient adjacency and reachability (for cycle-safety of a
        // merge): merging A and B is unsafe iff some third block C has
        // A ->* C ->* B.
        std::vector<std::set<int>> qadj(nb);
        for (NodeId v = 0; v < g.size(); ++v)
            for (NodeId u : g.preds(v))
                if (p.block[u] != p.block[v])
                    qadj[p.block[u]].insert(p.block[v]);

        int words = (nb + 63) / 64;
        std::vector<std::vector<uint64_t>> reach(
            nb, std::vector<uint64_t>(words, 0));
        auto set_bit = [&](std::vector<uint64_t> &bs, int i) {
            bs[i / 64] |= (1ULL << (i % 64));
        };
        auto get_bit = [&](const std::vector<uint64_t> &bs, int i) {
            return (bs[i / 64] >> (i % 64)) & 1ULL;
        };
        // Canonical ids are topologically ordered: sweep backwards.
        for (int b = nb - 1; b >= 0; --b) {
            set_bit(reach[b], b);
            for (int w : qadj[b])
                for (int k = 0; k < words; ++k)
                    reach[b][k] |= reach[w][k];
        }
        auto merge_safe = [&](int a, int b) {
            // Safe unless a path a -> c -> b exists through c != a, b.
            for (int c : qadj[a]) {
                if (c == b)
                    continue;
                if (get_bit(reach[c], b))
                    return false;
            }
            return true;
        };

        // Evaluate all edge-adjacent merges.
        double best_benefit = 0.0;
        int best_a = -1, best_b = -1;
        for (int a = 0; a < nb; ++a) {
            for (int b : qadj[a]) {
                if (!bfeas[a] || !bfeas[b])
                    continue;
                if (!merge_safe(a, b))
                    continue;
                std::vector<NodeId> merged = blocks[a];
                merged.insert(merged.end(), blocks[b].begin(),
                              blocks[b].end());
                std::sort(merged.begin(), merged.end());
                SubgraphCost mc = model.subgraphCost(merged, buf);
                if (!mc.feasible)
                    continue;
                double benefit =
                    bcost[a] + bcost[b] - metricOf(mc, metric);
                if (benefit > best_benefit) {
                    best_benefit = benefit;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        if (best_a < 0)
            break;

        for (NodeId v : blocks[best_b])
            p.block[v] = p.block[blocks[best_a].front()];
    }

    p.canonicalize(g);
    if (!p.valid(g))
        panic("greedyPartition produced an invalid partition");
    return p;
}

} // namespace cocco
