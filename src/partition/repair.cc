#include "partition/repair.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

namespace {

/** Reassign every block to the weak components it decomposes into. */
void
splitComponents(const Graph &g, Partition &p)
{
    int next = 0;
    for (int &b : p.block)
        next = std::max(next, b + 1);
    for (const auto &blk : p.blocks()) {
        auto comps = weakComponents(g, blk);
        if (comps.size() <= 1)
            continue;
        // Leave the first component in place; move the rest.
        for (size_t c = 1; c < comps.size(); ++c) {
            for (NodeId v : comps[c])
                p.block[v] = next;
            ++next;
        }
    }
}

/**
 * Find block ids that lie on a quotient cycle (non-empty only when
 * the quotient is cyclic): the ids Kahn's algorithm cannot drain.
 */
std::vector<int>
cyclicBlocks(const Graph &g, const Partition &p)
{
    std::unordered_map<int, int> idx;
    for (int b : p.block)
        if (!idx.count(b)) {
            int n = static_cast<int>(idx.size());
            idx[b] = n;
        }
    int nb = static_cast<int>(idx.size());
    std::vector<std::unordered_set<int>> adj(nb);
    std::vector<int> indeg(nb, 0);
    for (NodeId v = 0; v < g.size(); ++v) {
        int bv = idx[p.block[v]];
        for (NodeId u : g.preds(v)) {
            int bu = idx[p.block[u]];
            if (bu != bv && adj[bu].insert(bv).second)
                ++indeg[bv];
        }
    }
    std::deque<int> q;
    for (int b = 0; b < nb; ++b)
        if (indeg[b] == 0)
            q.push_back(b);
    std::vector<bool> drained(nb, false);
    while (!q.empty()) {
        int b = q.front();
        q.pop_front();
        drained[b] = true;
        for (int w : adj[b])
            if (--indeg[w] == 0)
                q.push_back(w);
    }
    std::vector<int> out;
    for (auto &[orig, dense] : idx)
        if (!drained[dense])
            out.push_back(orig);
    std::sort(out.begin(), out.end());
    return out;
}

/** Split block @p b of @p p at its median node id into two blocks. */
void
splitAtMedian(const Graph &g, Partition &p, int b)
{
    std::vector<NodeId> nodes = p.blockNodes(b);
    if (nodes.size() < 2)
        panic("splitAtMedian on a singleton block");
    int next = 0;
    for (int x : p.block)
        next = std::max(next, x + 1);
    // Node ids are topologically ordered; move the upper half out.
    size_t half = nodes.size() / 2;
    for (size_t i = half; i < nodes.size(); ++i)
        p.block[nodes[i]] = next;
    (void)g;
}

} // namespace

Partition
repairStructure(const Graph &g, Partition p)
{
    if (static_cast<int>(p.block.size()) != g.size())
        panic("repairStructure: assignment size mismatch");

    splitComponents(g, p);
    while (true) {
        std::vector<int> cyc = cyclicBlocks(g, p);
        if (cyc.empty())
            break;
        // Split the largest offending block; component-split the result
        // so connectivity is restored before the next check.
        int pick = cyc.front();
        size_t best_size = 0;
        for (int b : cyc) {
            size_t sz = p.blockNodes(b).size();
            if (sz > best_size) {
                best_size = sz;
                pick = b;
            }
        }
        if (best_size < 2)
            panic("quotient cycle among singleton blocks");
        splitAtMedian(g, p, pick);
        splitComponents(g, p);
    }
    p.canonicalize(g);
    return p;
}

Partition
repairToCapacity(const Graph &g, Partition p, CostModel &model,
                 const BufferConfig &buf)
{
    p = repairStructure(g, p);

    // Iteratively split infeasible multi-node blocks. Splitting can
    // create new blocks, so sweep until a fixed point.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &blk : p.blocks()) {
            if (blk.size() < 2)
                continue;
            if (model.fits(blk, buf))
                continue;
            // Split at the median; structural repair renumbers and
            // restores connectivity.
            int b = p.block[blk.front()];
            splitAtMedian(g, p, b);
            p = repairStructure(g, p);
            changed = true;
            break;
        }

        // Double-buffered weight prefetch: adjacent blocks' weights
        // must co-reside. Split the heavier multi-node block of a
        // violating pair; singleton pairs cannot be repaired here and
        // stay penalized at evaluation.
        if (!changed && model.accel().doubleBufferWeights) {
            int64_t cap = buf.style == BufferStyle::Shared
                              ? buf.sharedBytes
                              : buf.weightBytes;
            auto blocks = p.blocks();
            for (size_t i = 0; i + 1 < blocks.size(); ++i) {
                int64_t wa = model.profile(blocks[i]).weightBytes;
                int64_t wb = model.profile(blocks[i + 1]).weightBytes;
                wa = ceilDiv(wa, model.accel().cores);
                wb = ceilDiv(wb, model.accel().cores);
                // Oversized singletons stream in tiles and are exempt
                // (matching the cost model's feasibility rule).
                if (wa > cap || wb > cap || wa + wb <= cap)
                    continue;
                // Split the heavier block; if it is a singleton,
                // try the lighter one. Two un-splittable singletons
                // stay penalized at evaluation.
                const auto &heavy =
                    (wa >= wb ? blocks[i] : blocks[i + 1]);
                const auto &light =
                    (wa >= wb ? blocks[i + 1] : blocks[i]);
                const auto *victim =
                    heavy.size() >= 2
                        ? &heavy
                        : (light.size() >= 2 ? &light : nullptr);
                if (!victim)
                    continue;
                splitAtMedian(g, p, p.block[victim->front()]);
                p = repairStructure(g, p);
                changed = true;
                break;
            }
        }
    }
    return p;
}

} // namespace cocco
