#include "partition/partition.h"

#include <algorithm>
#include <map>
#include <set>

#include "graph/algorithms.h"
#include "util/logging.h"

namespace cocco {

Partition
Partition::singletons(const Graph &g)
{
    Partition p;
    p.block.resize(g.size());
    for (NodeId v = 0; v < g.size(); ++v)
        p.block[v] = v;
    p.numBlocks = g.size();
    return p;
}

Partition
Partition::fixedRuns(const Graph &g, int run_length)
{
    if (run_length < 1)
        fatal("fixedRuns needs run_length >= 1, got %d", run_length);
    Partition p;
    p.block.resize(g.size());
    for (NodeId v = 0; v < g.size(); ++v)
        p.block[v] = v / run_length;
    p.numBlocks = (g.size() + run_length - 1) / run_length;
    return p;
}

std::vector<std::vector<NodeId>>
Partition::blocks() const
{
    int nb = 0;
    for (int b : block)
        nb = std::max(nb, b + 1);
    std::vector<std::vector<NodeId>> out(nb);
    for (NodeId v = 0; v < static_cast<NodeId>(block.size()); ++v)
        out[block[v]].push_back(v);
    // Drop empty ids (non-canonical input); keep order.
    std::vector<std::vector<NodeId>> packed;
    for (auto &blk : out)
        if (!blk.empty())
            packed.push_back(std::move(blk));
    return packed;
}

std::vector<NodeId>
Partition::blockNodes(int b) const
{
    std::vector<NodeId> out;
    for (NodeId v = 0; v < static_cast<NodeId>(block.size()); ++v)
        if (block[v] == b)
            out.push_back(v);
    return out;
}

void
Partition::canonicalize(const Graph &g)
{
    if (static_cast<int>(block.size()) != g.size())
        panic("partition size %zu != graph size %d", block.size(), g.size());

    // Build the quotient graph over the distinct block ids present.
    std::map<int, int> idx; // old id -> dense index
    for (int b : block)
        idx.emplace(b, 0);
    int nb = 0;
    for (auto &kv : idx)
        kv.second = nb++;

    std::vector<std::set<int>> adj(nb);
    std::vector<int> indeg(nb, 0);
    std::vector<NodeId> min_node(nb, g.size());
    for (NodeId v = 0; v < g.size(); ++v) {
        int bv = idx[block[v]];
        min_node[bv] = std::min(min_node[bv], v);
        for (NodeId u : g.preds(v)) {
            int bu = idx[block[u]];
            if (bu != bv && adj[bu].insert(bv).second)
                ++indeg[bv];
        }
    }

    // Kahn topological order, smallest-min-node first for determinism.
    auto cmp = [&](int a, int b2) {
        return min_node[a] != min_node[b2] ? min_node[a] < min_node[b2]
                                           : a < b2;
    };
    std::set<int, decltype(cmp)> ready(cmp);
    for (int b = 0; b < nb; ++b)
        if (indeg[b] == 0)
            ready.insert(b);

    std::vector<int> new_id(nb, -1);
    int next = 0;
    while (!ready.empty()) {
        int b = *ready.begin();
        ready.erase(ready.begin());
        new_id[b] = next++;
        for (int w : adj[b])
            if (--indeg[w] == 0)
                ready.insert(w);
    }
    if (next != nb)
        panic("canonicalize on a cyclic quotient graph");

    for (NodeId v = 0; v < g.size(); ++v)
        block[v] = new_id[idx[block[v]]];
    numBlocks = nb;
}

bool
Partition::valid(const Graph &g) const
{
    if (static_cast<int>(block.size()) != g.size())
        return false;
    if (!quotientRespectsPrecedence(g, block))
        return false;
    for (const auto &blk : blocks())
        if (!isWeaklyConnected(g, blk))
            return false;
    return true;
}

std::string
Partition::str() const
{
    std::string s;
    for (const auto &blk : blocks()) {
        s += "{";
        for (size_t i = 0; i < blk.size(); ++i)
            s += (i ? "," : "") + strprintf("%d", blk[i]);
        s += "}";
    }
    return s;
}

} // namespace cocco
