#include "partition/enumeration.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace cocco {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Fixed-width bitset usable as a hash key. */
struct Bits
{
    std::vector<uint64_t> w;

    explicit Bits(int n) : w((n + 63) / 64, 0) {}

    bool
    get(int i) const
    {
        return (w[i / 64] >> (i % 64)) & 1ULL;
    }

    void
    set(int i)
    {
        w[i / 64] |= 1ULL << (i % 64);
    }

    bool operator==(const Bits &o) const { return w == o.w; }

    int
    count() const
    {
        int c = 0;
        for (uint64_t x : w)
            c += __builtin_popcountll(x);
        return c;
    }
};

struct BitsHash
{
    size_t
    operator()(const Bits &b) const
    {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (uint64_t x : b.w)
            h = (h ^ x) * 0x100000001b3ULL;
        return static_cast<size_t>(h);
    }
};

struct MemoEntry
{
    double cost = kInf;
    std::vector<NodeId> firstBlock;
};

double
metricOf(const SubgraphCost &c, Metric m)
{
    return m == Metric::EMA ? static_cast<double>(c.emaBytes) : c.energyPj;
}

/** The enumeration engine; holds the shared search state. */
class Enumerator
{
  public:
    Enumerator(const Graph &g, CostModel &model, const BufferConfig &buf,
               Metric metric, const EnumerationOptions &opts)
        : g_(g), model_(model), buf_(buf), metric_(metric), opts_(opts)
    {
        // Monotone pruning bound: resident weights can never exceed
        // the weight (or shared) capacity for a multi-node block.
        weight_prune_ = buf.style == BufferStyle::Shared
                            ? buf.sharedBytes
                            : buf.weightBytes;
    }

    EnumerationResult
    run()
    {
        EnumerationResult res;
        Bits empty(g_.size());
        double c = solve(empty);
        res.statesVisited = static_cast<int64_t>(memo_.size());
        res.candidatesTried = candidates_;
        res.complete = !aborted_ && c < kInf;
        if (res.complete) {
            res.cost = c;
            res.best = reconstruct();
        }
        return res;
    }

  private:
    double
    solve(const Bits &ideal)
    {
        if (ideal.count() == g_.size())
            return 0.0;
        auto it = memo_.find(ideal);
        if (it != memo_.end())
            return it->second.cost;
        if (aborted_)
            return kInf;
        if (static_cast<int64_t>(memo_.size()) >= opts_.stateBudget) {
            aborted_ = true;
            return kInf;
        }

        MemoEntry entry;

        // Enumerate candidate next blocks: connected closed sets of
        // un-executed nodes, grown by weak adjacency from each ready
        // node, deduplicated by set hash.
        std::unordered_set<size_t> seen;
        std::vector<std::vector<NodeId>> frontier;
        for (NodeId v = 0; v < g_.size(); ++v) {
            if (ideal.get(v))
                continue;
            bool ready = true;
            for (NodeId u : g_.preds(v))
                if (!ideal.get(u)) {
                    ready = false;
                    break;
                }
            if (ready)
                frontier.push_back({v});
        }

        auto set_key = [&](const std::vector<NodeId> &s) {
            uint64_t h = 0xcbf29ce484222325ULL;
            for (NodeId v : s)
                h = (h ^ static_cast<uint64_t>(v + 1)) * 0x100000001b3ULL;
            return static_cast<size_t>(h);
        };
        for (auto &s : frontier)
            seen.insert(set_key(s));

        while (!frontier.empty()) {
            if (aborted_)
                break;
            std::vector<NodeId> s = std::move(frontier.back());
            frontier.pop_back();

            // Every expansion counts toward the work budget: on wide
            // graphs the number of *grown* (not necessarily closed)
            // connected sets explodes long before the closed ones do.
            ++candidates_;
            if (candidates_ > opts_.candidateBudget) {
                aborted_ = true;
                break;
            }

            // Closed iff every member's producers are executed or
            // inside the set.
            bool closed = true;
            int64_t weights = 0;
            for (NodeId v : s) {
                weights += g_.weightBytes(v);
                for (NodeId u : g_.preds(v))
                    if (!ideal.get(u) &&
                        !std::binary_search(s.begin(), s.end(), u)) {
                        closed = false;
                    }
            }

            if (closed) {
                SubgraphCost c = model_.subgraphCost(s, buf_);
                if (c.feasible) {
                    Bits next = ideal;
                    for (NodeId v : s)
                        next.set(v);
                    double sub = solve(next);
                    double total = metricOf(c, metric_) + sub;
                    if (total < entry.cost) {
                        entry.cost = total;
                        entry.firstBlock = s;
                    }
                }
            }

            // Grow by weak adjacency.
            if (static_cast<int>(s.size()) >= opts_.maxBlockNodes)
                continue;
            if (weights > weight_prune_ && s.size() > 1)
                continue;
            std::unordered_set<NodeId> ext;
            for (NodeId v : s) {
                for (NodeId u : g_.preds(v))
                    if (!ideal.get(u) &&
                        !std::binary_search(s.begin(), s.end(), u))
                        ext.insert(u);
                for (NodeId u : g_.succs(v))
                    if (!ideal.get(u) &&
                        !std::binary_search(s.begin(), s.end(), u))
                        ext.insert(u);
            }
            for (NodeId x : ext) {
                std::vector<NodeId> grown = s;
                grown.insert(
                    std::lower_bound(grown.begin(), grown.end(), x), x);
                size_t key = set_key(grown);
                if (seen.insert(key).second)
                    frontier.push_back(std::move(grown));
            }
        }

        auto [ins, ok] = memo_.emplace(ideal, std::move(entry));
        (void)ok;
        return ins->second.cost;
    }

    Partition
    reconstruct() const
    {
        Partition p;
        p.block.assign(g_.size(), -1);
        Bits ideal(g_.size());
        int b = 0;
        while (ideal.count() < g_.size()) {
            auto it = memo_.find(ideal);
            if (it == memo_.end() || it->second.firstBlock.empty())
                panic("enumeration reconstruction lost its trail");
            for (NodeId v : it->second.firstBlock) {
                p.block[v] = b;
                ideal.set(v);
            }
            ++b;
        }
        p.numBlocks = b;
        return p;
    }

    const Graph &g_;
    CostModel &model_;
    const BufferConfig &buf_;
    Metric metric_;
    EnumerationOptions opts_;
    int64_t weight_prune_ = 0;
    int64_t candidates_ = 0;
    bool aborted_ = false;
    std::unordered_map<Bits, MemoEntry, BitsHash> memo_;
};

} // namespace

EnumerationResult
enumeratePartition(const Graph &g, CostModel &model, const BufferConfig &buf,
                   Metric metric, const EnumerationOptions &opts)
{
    Enumerator e(g, model, buf, metric, opts);
    return e.run();
}

} // namespace cocco
