/**
 * @file
 * The DP baseline of Irregular-NN (paper Section 4.2.3): layers are
 * arranged by depth order and dynamic programming assigns contiguous
 * runs of that sequence to subgraphs. The search space is restricted
 * to depth-contiguous blocks, which is exactly the limitation the
 * paper points out for non-plain structures.
 */

#ifndef COCCO_PARTITION_DP_H
#define COCCO_PARTITION_DP_H

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/**
 * Run the depth-order DP. @p max_run bounds the block length
 * considered (the region manager allows at most 64 nodes anyway).
 * Returns a valid partition.
 */
Partition dpPartition(const Graph &g, CostModel &model,
                      const BufferConfig &buf, Metric metric,
                      int max_run = 64);

} // namespace cocco

#endif // COCCO_PARTITION_DP_H
