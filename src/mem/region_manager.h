/**
 * @file
 * Model of the buffer-region manager of paper Figure 8: a 2N-depth
 * register file whose entry pairs hold the start/end address of each
 * logical region in the global buffer. N bounds the number of regions
 * a subgraph may use (N = 64 in the paper's test chip; each node uses
 * one MAIN region and, when it keeps horizontal overlap, one SIDE
 * region).
 *
 * The class both (a) validates that an execution scheme's regions fit
 * the register file and the buffer, producing the concrete address
 * map, and (b) reports the hardware overhead of the manager itself
 * (272 bytes of register file for N = 64 with 17-bit addresses).
 */

#ifndef COCCO_MEM_REGION_MANAGER_H
#define COCCO_MEM_REGION_MANAGER_H

#include <cstdint>
#include <string>
#include <vector>

#include "tileflow/scheme.h"

namespace cocco {

/** One allocated logical region. */
struct Region
{
    NodeId node = -1;
    bool side = false;   ///< SIDE region (vs MAIN)
    int64_t start = 0;   ///< byte offset in the buffer
    int64_t end = 0;     ///< exclusive byte offset
};

/** Result of allocating a scheme's regions into a buffer. */
struct RegionAllocation
{
    bool fits = false;          ///< regions and bytes both fit
    bool regionLimitOk = false; ///< region count within N
    std::vector<Region> regions;
    int64_t usedBytes = 0;
};

/** The buffer-region manager model. */
class RegionManager
{
  public:
    /**
     * @param max_regions N, the register-file depth / 2 (default 64)
     * @param address_bits address width per entry (default 17: 1MB
     *        buffer of 64-bit words)
     */
    explicit RegionManager(int max_regions = 64, int address_bits = 17);

    /** Maximum number of simultaneously allocated regions. */
    int maxRegions() const { return max_regions_; }

    /** Register-file size in bytes (2N entries of address_bits). */
    int64_t registerFileBytes() const;

    /**
     * Lay the scheme's MAIN and SIDE regions contiguously into a
     * buffer of @p buffer_bytes. Fails (fits = false) if the region
     * count exceeds N or the bytes exceed the buffer.
     */
    RegionAllocation allocate(const ExecutionScheme &scheme,
                              int64_t buffer_bytes) const;

  private:
    int max_regions_;
    int address_bits_;
};

} // namespace cocco

#endif // COCCO_MEM_REGION_MANAGER_H
