#include "mem/region_manager.h"

#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

RegionManager::RegionManager(int max_regions, int address_bits)
    : max_regions_(max_regions), address_bits_(address_bits)
{
    if (max_regions_ < 1)
        fatal("RegionManager needs at least one region");
    if (address_bits_ < 1 || address_bits_ > 48)
        fatal("implausible address width %d", address_bits_);
}

int64_t
RegionManager::registerFileBytes() const
{
    // 2N entries, each address_bits wide, rounded up to whole bytes.
    return ceilDiv(static_cast<int64_t>(2) * max_regions_ * address_bits_, 8);
}

RegionAllocation
RegionManager::allocate(const ExecutionScheme &scheme,
                        int64_t buffer_bytes) const
{
    RegionAllocation alloc;
    alloc.regionLimitOk = scheme.numRegions <= max_regions_;

    int64_t cursor = 0;
    for (const NodeScheme &ns : scheme.nodes) {
        Region main;
        main.node = ns.node;
        main.side = false;
        main.start = cursor;
        main.end = cursor + ns.mainBytes;
        cursor = main.end;
        alloc.regions.push_back(main);
        if (ns.sideBytes > 0) {
            Region side;
            side.node = ns.node;
            side.side = true;
            side.start = cursor;
            side.end = cursor + ns.sideBytes;
            cursor = side.end;
            alloc.regions.push_back(side);
        }
    }
    alloc.usedBytes = cursor;
    alloc.fits = alloc.regionLimitOk && cursor <= buffer_bytes;
    return alloc;
}

} // namespace cocco
