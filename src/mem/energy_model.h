/**
 * @file
 * Technology energy/area model standing in for the paper's 12nm
 * synthesized-RTL numbers (see DESIGN.md, substitution table).
 *
 * Anchored constants:
 *   - DRAM access: 12.5 pJ/bit = 100 pJ/B (paper Section 5.1.2)
 *   - SRAM read/write: CACTI-shaped  e(pJ/B) = a + b * sqrt(KB),
 *     calibrated so a 1MB buffer costs ~1 pJ/B (~20x an 8-bit MAC,
 *     matching the paper's "dozens of times a MAC" remark)
 *   - 8-bit MAC: 0.05 pJ
 *   - SRAM area: ~1.2 mm^2/MB in 12nm (paper Figure 2 commentary)
 *   - crossbar hop: 4 pJ/B including endpoint SRAM accesses
 *     (Arteris-like NoC substitute)
 */

#ifndef COCCO_MEM_ENERGY_MODEL_H
#define COCCO_MEM_ENERGY_MODEL_H

#include <cstdint>

namespace cocco {

/** Technology constants; defaults model a 12nm node at 1 GHz. */
struct EnergyModel
{
    double dramPjPerByte = 100.0;  ///< 12.5 pJ/bit
    double sramBasePjPerByte = 0.2;
    double sramSlopePjPerByte = 0.025; ///< multiplied by sqrt(capacity KB)
    double macPj = 0.05;           ///< one 8-bit MAC
    /** Per-byte cost of a core-to-core crossbar transfer, including
     *  the SRAM read/write at both endpoints (Arteris-like NoC). */
    double crossbarPjPerByte = 4.0;
    double sramAreaMm2PerMB = 1.2;

    /** SRAM access energy (pJ/byte) for a buffer of @p capacity_bytes. */
    double sramPjPerByte(int64_t capacity_bytes) const;

    /** Silicon area (mm^2) of @p capacity_bytes of SRAM. */
    double sramAreaMm2(int64_t capacity_bytes) const;

    /** Total DRAM energy (pJ) for @p bytes transferred. */
    double dramEnergyPj(int64_t bytes) const { return dramPjPerByte * bytes; }

    /** Total MAC energy (pJ) for @p macs operations. */
    double macEnergyPj(int64_t macs) const { return macPj * macs; }
};

} // namespace cocco

#endif // COCCO_MEM_ENERGY_MODEL_H
