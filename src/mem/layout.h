/**
 * @file
 * NWHC8c data-layout model (paper Figure 7): tensors live in the
 * global buffer aligned to 8-channel groups, organized as Q0 groups
 * of ceil(C/8) x P0 entries for the MAIN region and (Q - Q0) groups
 * of ceil(C/8) x (Fy - sy) entries for the SIDE region. This class
 * computes entry counts and buffer addresses for tile elements — the
 * arithmetic a DMA engine / buffer-region manager performs.
 */

#ifndef COCCO_MEM_LAYOUT_H
#define COCCO_MEM_LAYOUT_H

#include <cstdint>

namespace cocco {

/** Address arithmetic for one node's region under NWHC8c. */
class TileLayout
{
  public:
    /**
     * @param tile_h MAIN tile height P0
     * @param tile_w MAIN tile width Q0
     * @param channels tensor channel count C
     * @param channel_align channel group width (8 in the paper)
     * @param word_bytes bytes per buffer word (8 for the 64-bit GLB)
     */
    TileLayout(int tile_h, int tile_w, int channels, int channel_align = 8,
               int word_bytes = 8);

    /** Channel groups: ceil(C / align). */
    int channelGroups() const { return groups_; }

    /** Buffer entries of one width-column of the MAIN tile. */
    int64_t entriesPerColumn() const;

    /** Total MAIN-region entries (Q0 columns). */
    int64_t mainEntries() const;

    /** Total MAIN-region bytes (entries x word size). */
    int64_t mainBytes() const;

    /**
     * SIDE-region entries for overlap rows (Fy - sy) across the
     * (total_w - Q0) columns outside the tile.
     */
    int64_t sideEntries(int overlap_rows, int total_w) const;

    /** SIDE-region bytes. */
    int64_t sideBytes(int overlap_rows, int total_w) const;

    /**
     * Linear entry offset of element (p, q, c) inside the MAIN
     * region: column-major over q (the inner loop dimension), then
     * channel group, then row. Panics if out of range.
     */
    int64_t entryOf(int p, int q, int c) const;

  private:
    int tile_h_;
    int tile_w_;
    int channels_;
    int align_;
    int word_bytes_;
    int groups_;
};

} // namespace cocco

#endif // COCCO_MEM_LAYOUT_H
