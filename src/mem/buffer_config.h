/**
 * @file
 * On-chip buffer configuration for the DSE (paper Section 5.3):
 * either a separate design (global/activation buffer + weight buffer)
 * or a shared design (one buffer holding both). Candidate capacity
 * grids follow the paper:
 *   global buffer: 128KB .. 2048KB step 64KB
 *   weight buffer: 144KB .. 2304KB step 72KB
 *   shared buffer: 128KB .. 3072KB step 64KB
 */

#ifndef COCCO_MEM_BUFFER_CONFIG_H
#define COCCO_MEM_BUFFER_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace cocco {

/** Buffer organization style. */
enum class BufferStyle
{
    Separate, ///< distinct activation (global) and weight buffers
    Shared,   ///< one buffer shared by activations and weights
};

/** A concrete buffer configuration (sizes in bytes). */
struct BufferConfig
{
    BufferStyle style = BufferStyle::Separate;
    int64_t actBytes = 1024 * 1024;    ///< global buffer (Separate only)
    int64_t weightBytes = 1152 * 1024; ///< weight buffer (Separate only)
    int64_t sharedBytes = 0;           ///< shared buffer (Shared only)

    /** Total buffer capacity (the BUF_SIZE term of Formula 2). */
    int64_t totalBytes() const;

    /** "A=704KB W=864KB" / "1344KB" style description. */
    std::string str() const;

    /** The paper's fixed-HW baselines: Small / Medium / Large. */
    static BufferConfig fixedSmall(BufferStyle style);
    static BufferConfig fixedMedium(BufferStyle style);
    static BufferConfig fixedLarge(BufferStyle style);
};

/** The candidate capacity grid for one buffer. */
struct CapacityGrid
{
    int64_t minBytes = 0;
    int64_t stepBytes = 1;
    int count = 1;

    /** Candidate value at grid index @p i (clamped to range). */
    int64_t value(int i) const;

    /** Grid index of the candidate nearest to @p bytes. */
    int indexOf(int64_t bytes) const;
};

/** Paper grid for the global (activation) buffer. */
CapacityGrid globalBufferGrid();

/** Paper grid for the weight buffer. */
CapacityGrid weightBufferGrid();

/** Paper grid for the shared buffer. */
CapacityGrid sharedBufferGrid();

} // namespace cocco

#endif // COCCO_MEM_BUFFER_CONFIG_H
