#include "mem/energy_model.h"

#include <cmath>

namespace cocco {

double
EnergyModel::sramPjPerByte(int64_t capacity_bytes) const
{
    double kb = static_cast<double>(capacity_bytes) / 1024.0;
    if (kb < 1.0)
        kb = 1.0;
    return sramBasePjPerByte + sramSlopePjPerByte * std::sqrt(kb);
}

double
EnergyModel::sramAreaMm2(int64_t capacity_bytes) const
{
    return sramAreaMm2PerMB * static_cast<double>(capacity_bytes) /
           (1024.0 * 1024.0);
}

} // namespace cocco
