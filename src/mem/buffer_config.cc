#include "mem/buffer_config.h"

#include <algorithm>

#include "util/logging.h"

namespace cocco {

namespace {
constexpr int64_t kKB = 1024;
} // namespace

int64_t
BufferConfig::totalBytes() const
{
    return style == BufferStyle::Shared ? sharedBytes
                                        : actBytes + weightBytes;
}

std::string
BufferConfig::str() const
{
    if (style == BufferStyle::Shared)
        return strprintf("%lldKB", static_cast<long long>(sharedBytes / kKB));
    return strprintf("A=%lldKB W=%lldKB",
                     static_cast<long long>(actBytes / kKB),
                     static_cast<long long>(weightBytes / kKB));
}

BufferConfig
BufferConfig::fixedSmall(BufferStyle style)
{
    BufferConfig c;
    c.style = style;
    c.actBytes = 512 * kKB;
    c.weightBytes = 576 * kKB;
    c.sharedBytes = 576 * kKB;
    return c;
}

BufferConfig
BufferConfig::fixedMedium(BufferStyle style)
{
    BufferConfig c;
    c.style = style;
    c.actBytes = 1024 * kKB;
    c.weightBytes = 1152 * kKB;
    c.sharedBytes = 1152 * kKB;
    return c;
}

BufferConfig
BufferConfig::fixedLarge(BufferStyle style)
{
    BufferConfig c;
    c.style = style;
    c.actBytes = 2048 * kKB;
    c.weightBytes = 2304 * kKB;
    c.sharedBytes = 2304 * kKB;
    return c;
}

int64_t
CapacityGrid::value(int i) const
{
    int clamped = std::clamp(i, 0, count - 1);
    return minBytes + static_cast<int64_t>(clamped) * stepBytes;
}

int
CapacityGrid::indexOf(int64_t bytes) const
{
    if (stepBytes <= 0)
        panic("CapacityGrid with non-positive step");
    int64_t i = (bytes - minBytes + stepBytes / 2) / stepBytes;
    return std::clamp<int>(static_cast<int>(i), 0, count - 1);
}

CapacityGrid
globalBufferGrid()
{
    // 128KB .. 2048KB step 64KB -> 31 candidates.
    return {128 * kKB, 64 * kKB, 31};
}

CapacityGrid
weightBufferGrid()
{
    // 144KB .. 2304KB step 72KB -> 31 candidates.
    return {144 * kKB, 72 * kKB, 31};
}

CapacityGrid
sharedBufferGrid()
{
    // 128KB .. 3072KB step 64KB -> 47 candidates.
    return {128 * kKB, 64 * kKB, 47};
}

} // namespace cocco
