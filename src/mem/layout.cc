#include "mem/layout.h"

#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

TileLayout::TileLayout(int tile_h, int tile_w, int channels,
                       int channel_align, int word_bytes)
    : tile_h_(tile_h), tile_w_(tile_w), channels_(channels),
      align_(channel_align), word_bytes_(word_bytes)
{
    if (tile_h_ < 1 || tile_w_ < 1 || channels_ < 1)
        fatal("TileLayout with non-positive tile dimensions");
    if (align_ < 1 || word_bytes_ < 1)
        fatal("TileLayout with non-positive alignment");
    groups_ = static_cast<int>(ceilDiv(channels_, align_));
}

int64_t
TileLayout::entriesPerColumn() const
{
    // One width-position: ceil(C/8) x P0 entries (Figure 7's
    // "C/8 x P0 entries" per q0 group).
    return static_cast<int64_t>(groups_) * tile_h_;
}

int64_t
TileLayout::mainEntries() const
{
    return entriesPerColumn() * tile_w_;
}

int64_t
TileLayout::mainBytes() const
{
    return mainEntries() * word_bytes_;
}

int64_t
TileLayout::sideEntries(int overlap_rows, int total_w) const
{
    if (overlap_rows <= 0 || total_w <= tile_w_)
        return 0;
    // (Q - Q0) groups of ceil(C/8) x (Fy - sy) entries.
    return static_cast<int64_t>(groups_) * overlap_rows *
           (total_w - tile_w_);
}

int64_t
TileLayout::sideBytes(int overlap_rows, int total_w) const
{
    return sideEntries(overlap_rows, total_w) * word_bytes_;
}

int64_t
TileLayout::entryOf(int p, int q, int c) const
{
    if (p < 0 || p >= tile_h_ || q < 0 || q >= tile_w_ || c < 0 ||
        c >= channels_)
        panic("TileLayout::entryOf out of range (%d, %d, %d)", p, q, c);
    int group = c / align_;
    // Column-major over q (inner loop), then channel groups, then rows.
    return (static_cast<int64_t>(q) * groups_ + group) * tile_h_ + p;
}

} // namespace cocco
