#include "serve/http_server.h"

#include <cctype>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace cocco {

namespace {

/** Requests larger than this are dropped — the job API's documents
 *  are small; anything bigger is a confused or hostile client. */
constexpr size_t kMaxRequestBytes = 4u << 20;

std::string
lowercase(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 202:
        return "Accepted";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 409:
        return "Conflict";
      case 429:
        return "Too Many Requests";
      default:
        return status < 500 ? "Error" : "Internal Server Error";
    }
}

/** Loop a full send over partial writes; MSG_NOSIGNAL so a client
 *  that hung up surfaces as an error, not SIGPIPE. */
bool
sendAll(int fd, const char *data, size_t n)
{
    while (n > 0) {
        ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
        if (sent <= 0)
            return false;
        data += sent;
        n -= static_cast<size_t>(sent);
    }
    return true;
}

bool
sendAll(int fd, const std::string &s)
{
    return sendAll(fd, s.data(), s.size());
}

/** Read until the header terminator, then Content-Length more bytes.
 *  @return false on EOF/overflow/garbage before a full request. */
bool
readRequest(int fd, HttpRequest *out)
{
    std::string buf;
    char chunk[4096];
    size_t headerEnd = std::string::npos;
    while (headerEnd == std::string::npos) {
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            return false;
        buf.append(chunk, static_cast<size_t>(got));
        if (buf.size() > kMaxRequestBytes)
            return false;
        headerEnd = buf.find("\r\n\r\n");
    }

    // Request line: METHOD SP PATH SP VERSION.
    size_t lineEnd = buf.find("\r\n");
    std::string line = buf.substr(0, lineEnd);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
        return false;
    out->method = line.substr(0, sp1);
    out->path = line.substr(sp1 + 1, sp2 - sp1 - 1);

    size_t contentLength = 0;
    size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        size_t end = buf.find("\r\n", pos);
        std::string header = buf.substr(pos, end - pos);
        pos = end + 2;
        size_t colon = header.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = lowercase(header.substr(0, colon));
        size_t vstart = colon + 1;
        while (vstart < header.size() && header[vstart] == ' ')
            ++vstart;
        std::string value = header.substr(vstart);
        if (name == "content-length")
            contentLength = static_cast<size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        out->headers.emplace_back(std::move(name), std::move(value));
    }
    if (contentLength > kMaxRequestBytes)
        return false;

    std::string bodySoFar = buf.substr(headerEnd + 4);
    while (bodySoFar.size() < contentLength) {
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            return false;
        bodySoFar.append(chunk, static_cast<size_t>(got));
    }
    out->body = bodySoFar.substr(0, contentLength);
    return true;
}

} // namespace

std::string
HttpRequest::header(const std::string &name) const
{
    for (const auto &[key, value] : headers)
        if (key == name)
            return value;
    return "";
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(int port, std::string *err)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err)
            *err = strprintf("socket: %s", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (err)
            *err = strprintf("bind 127.0.0.1:%d: %s", port,
                             std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        if (err)
            *err = strprintf("listen: %s", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    running_.store(true, std::memory_order_relaxed);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_relaxed)) {
        if (acceptThread_.joinable())
            acceptThread_.join();
        return;
    }
    // Unblock accept() by shutting the listener down, then unblock
    // any connection stuck in recv()/send().
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<Conn> conns;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        conns.swap(conns_);
    }
    for (Conn &c : conns) {
        ::shutdown(c.fd, SHUT_RDWR);
        if (c.thread.joinable())
            c.thread.join();
        ::close(c.fd);
    }
}

void
HttpServer::acceptLoop()
{
    while (running_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load(std::memory_order_relaxed))
                return;
            continue;
        }
        std::lock_guard<std::mutex> lk(connMu_);
        reapLocked();
        Conn c;
        c.fd = fd;
        c.done = std::make_shared<std::atomic<bool>>(false);
        auto done = c.done;
        c.thread = std::thread([this, fd, done] {
            handleConnection(fd);
            done->store(true, std::memory_order_relaxed);
        });
        conns_.push_back(std::move(c));
    }
}

void
HttpServer::reapLocked()
{
    size_t kept = 0;
    for (size_t i = 0; i < conns_.size(); ++i) {
        Conn &c = conns_[i];
        if (c.done->load(std::memory_order_relaxed)) {
            c.thread.join();
            ::close(c.fd);
        } else {
            // Guard the self-move: assigning a joinable std::thread
            // over itself would std::terminate.
            if (kept != i)
                conns_[kept] = std::move(c);
            ++kept;
        }
    }
    conns_.resize(kept);
}

void
HttpServer::handleConnection(int fd)
{
    HttpRequest req;
    HttpResponse res;
    if (!readRequest(fd, &req)) {
        res.status = 400;
        res.body = "{\"error\":\"malformed request\"}";
    } else {
        res = handler_(req);
    }

    if (res.streamer) {
        std::string head = strprintf(
            "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
            "Connection: close\r\n\r\n",
            res.status, statusText(res.status), res.contentType.c_str());
        if (sendAll(fd, head))
            res.streamer([fd](const std::string &chunk) {
                return sendAll(fd, chunk);
            });
    } else {
        std::string head = strprintf(
            "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
            "Content-Length: %zu\r\nConnection: close\r\n\r\n",
            res.status, statusText(res.status), res.contentType.c_str(),
            res.body.size());
        if (sendAll(fd, head))
            sendAll(fd, res.body);
    }
    ::shutdown(fd, SHUT_RDWR);
    // The fd is closed by reapLocked()/stop(), which own it.
}

bool
httpFetch(const std::string &host, int port, const std::string &method,
          const std::string &path, const std::string &body, int *status,
          std::string *response, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = strprintf("socket: %s", std::strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad host address: " + host;
        ::close(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        if (err)
            *err = strprintf("connect %s:%d: %s", host.c_str(), port,
                             std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string req = strprintf(
        "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        method.c_str(), path.c_str(), host.c_str(), body.size());
    req += body;
    if (!sendAll(fd, req)) {
        if (err)
            *err = strprintf("send: %s", std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            break;
        buf.append(chunk, static_cast<size_t>(got));
    }
    ::close(fd);

    size_t headerEnd = buf.find("\r\n\r\n");
    if (headerEnd == std::string::npos ||
        std::sscanf(buf.c_str(), "HTTP/%*d.%*d %d", status) != 1) {
        if (err)
            *err = "unparseable HTTP response";
        return false;
    }
    if (response)
        *response = buf.substr(headerEnd + 4);
    return true;
}

} // namespace cocco
