/**
 * @file
 * A minimal blocking-socket HTTP/1.1 server for `cocco serve` — just
 * enough protocol for the job API (request line, headers,
 * Content-Length bodies, Connection: close responses), built on raw
 * POSIX sockets so the service adds no dependency. One thread per
 * connection; the listener binds 127.0.0.1 only (this is a local
 * service endpoint, not an internet-facing daemon).
 *
 * Streaming: a handler may return a response with `streamer` set
 * instead of `body`; the server then writes the header and hands the
 * connection to the callback, which pushes chunks (NDJSON lines for
 * the event stream) until it returns or a write fails (client went
 * away). The connection always closes after one exchange — keep-alive
 * buys nothing for a job API and costs protocol surface.
 *
 * httpFetch() is the matching one-shot client, used by the CLI's
 * tests and the serve bench to hammer a server in-process.
 */

#ifndef COCCO_SERVE_HTTP_SERVER_H
#define COCCO_SERVE_HTTP_SERVER_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cocco {

/** One parsed request. Header names are lowercased. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string path;   ///< "/jobs/3/result" (no query parsing)
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;

    /** First value of a (lowercase) header name; "" when absent. */
    std::string header(const std::string &name) const;
};

/** One response. Set `streamer` (and leave body empty) to stream. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /** When set, called after the header is written; push chunks via
     *  the write callback, which returns false once the client is
     *  gone (stop pushing then). */
    std::function<void(const std::function<bool(const std::string &)> &)>
        streamer;
};

/** The server (see file comment). start() spawns the accept loop;
 *  stop()/destruction joins everything. */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    explicit HttpServer(Handler handler);
    ~HttpServer();

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start accepting.
     * @return false with *err set when the socket cannot be set up.
     */
    bool start(int port, std::string *err);

    /** The bound port (resolves an ephemeral request); 0 before
     *  start(). */
    int port() const { return port_; }

    /** Stop accepting, unblock in-flight connections, join. */
    void stop();

  private:
    struct Conn
    {
        std::thread thread;
        int fd = -1;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void acceptLoop();
    void handleConnection(int fd);
    void reapLocked();

    Handler handler_;
    std::atomic<bool> running_{false};
    int listenFd_ = -1;
    int port_ = 0;
    std::thread acceptThread_;

    std::mutex connMu_;
    std::vector<Conn> conns_;
};

/**
 * One-shot HTTP client: connect, send one request, read to EOF.
 * @p response receives the body only. @return false with *err on
 * connect/send failures or an unparseable status line; HTTP error
 * statuses are reported via *status, not as failures.
 */
bool httpFetch(const std::string &host, int port,
               const std::string &method, const std::string &path,
               const std::string &body, int *status,
               std::string *response, std::string *err);

} // namespace cocco

#endif // COCCO_SERVE_HTTP_SERVER_H
