/**
 * @file
 * The multi-tenant job runner behind `cocco serve` and `cocco batch`:
 * a bounded queue of run specs drained by a fixed set of worker
 * threads, every job evaluating over ONE process-wide EvalCache so
 * tenants warm each other's searches — the "many users, one warm
 * process" shape ROADMAP item 1 asks for.
 *
 * Admission control: submit() rejects (rather than queues) when the
 * spec is structurally unrunnable (unknown algorithm, degenerate
 * knobs that would abort a driver) or when the pending queue is at
 * capacity — a long-lived server must shed load at the front door,
 * not die mid-run.
 *
 * Thread budgets: the manager owns a total evaluation-thread budget
 * (defaults to the hardware concurrency). Each job asks for
 * spec.eval.threads and is granted min(request, what's left), never
 * below 1. Engines are NOT handed one literal shared ThreadPool —
 * parallelFor is not reentrant, so two concurrently running jobs must
 * not share one pool — instead the budget ledger caps the total
 * worker threads alive across jobs. Thread count never affects
 * results (the engine's determinism contract), so a job granted fewer
 * threads than requested returns bit-identical output, just slower.
 *
 * Results: resultJson() returns the same resultToJson document `cocco
 * run` writes, and metricsJson() the same schema-v1 metrics document
 * plus the "job" block — the bit-identity contract the serve bench
 * and CI smoke verify.
 */

#ifndef COCCO_SERVE_JOB_MANAGER_H
#define COCCO_SERVE_JOB_MANAGER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "search/driver.h"
#include "search/eval_cache.h"
#include "serve/events.h"

namespace cocco {

/** Lifecycle of one submitted job. */
enum class JobState
{
    Queued,    ///< admitted, waiting for a worker
    Running,   ///< on a worker thread
    Done,      ///< terminal: ran to its natural end
    Cancelled, ///< terminal: cancelled (or manager shut down)
    Failed,    ///< terminal: spec resolution/setup failed
};

/** Stable lowercase label ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** True for Done/Cancelled/Failed. */
bool jobStateTerminal(JobState state);

/** Sizing/queue/cache knobs for a JobManager. */
struct JobManagerOptions
{
    int workers = 2;       ///< concurrently running jobs (>= 1)
    int threadBudget = 0;  ///< total eval threads; <= 0 = all cores
    int queueCapacity = 64; ///< max jobs waiting (admission control)

    bool cacheEnabled = true; ///< the process-wide shared EvalCache
    size_t cacheCapacity = EvalCache::kDefaultCapacity;

    /** Pre-warmed cache to adopt instead of building one (e.g. loaded
     *  from a --cache file); null = own one per the knobs above. */
    std::shared_ptr<EvalCache> cache;
};

/** One job's externally visible state (a point-in-time copy). */
struct JobStatus
{
    int64_t id = 0;
    std::string tenant;
    std::string name;  ///< "<algo>:<workload>" label
    std::string model; ///< resolved graph name ("" until running)
    JobState state = JobState::Queued;
    int threads = 0;           ///< granted budget (0 until running)
    int64_t progressSamples = 0;
    double progressBest = 0.0;
    double queuedSeconds = 0.0;
    double runSeconds = 0.0;
    std::string error; ///< Failed only
};

/** The job runner (see file comment). Thread-safe throughout. */
class JobManager
{
  public:
    explicit JobManager(const JobManagerOptions &opts = {});

    /** Cancels everything still active and joins the workers. */
    ~JobManager();

    /**
     * Admit a run spec. @p tenant is a free-form label carried into
     * status and metrics. @return the job id (>= 1), or -1 with *err
     * set when admission fails (unknown algo, degenerate knobs, full
     * queue, shutdown in progress).
     */
    int64_t submit(const SearchSpec &spec, const std::string &tenant,
                   std::string *err);

    /** Request cooperative cancellation. @return false for unknown
     *  ids or jobs already terminal. */
    bool cancel(int64_t id);

    /** Cancel every queued and running job. */
    void cancelAll();

    /** Point-in-time status copy; id 0 / empty name for unknown ids. */
    JobStatus status(int64_t id) const;

    /** Status of every job ever submitted, in submission order. */
    std::vector<JobStatus> jobs() const;

    /**
     * Block until the job is terminal. @p timeoutSec <= 0 waits
     * forever. @return true when the job is terminal on return.
     */
    bool wait(int64_t id, double timeoutSec = 0.0);

    /** Block until every submitted job is terminal. */
    void drain();

    /** The solution document (resultToJson) for a terminal job with a
     *  result (Done, or Cancelled mid-run with a partial incumbent);
     *  "" otherwise. Byte-identical to `cocco run` on the same spec
     *  when the job ran to its natural end. */
    std::string resultJson(int64_t id) const;

    /** The schema-v1 metrics document (metricsToJson) for a terminal
     *  job with a result, including the "job" block; "" otherwise. */
    std::string metricsJson(int64_t id) const;

    /**
     * Events recorded for a job after cursor position @p *cursor;
     * advances the cursor past what was returned. With @p timeoutSec
     * > 0, blocks up to that long for new events while the job is
     * non-terminal. Empty for unknown ids.
     */
    std::vector<JobEvent> eventsSince(int64_t id, size_t *cursor,
                                      double timeoutSec = 0.0);

    /** The process-wide shared cache (null when disabled). */
    std::shared_ptr<EvalCache> cache() const { return cache_; }

    /** Lifetime stats of the shared cache (zeros when disabled). */
    EvalCacheStats cacheStats() const;

    const JobManagerOptions &options() const { return opts_; }

    /** One submission's bookkeeping (defined in the .cc; public so
     *  the internal observer glue can name it). */
    struct Job;

  private:
    void workerLoop();
    void runJob(Job &job);
    void finishJob(Job &job, JobState state, const std::string &error);
    Job *findLocked(int64_t id);
    const Job *findLocked(int64_t id) const;
    JobStatus statusLocked(const Job &job) const;
    void pushEventLocked(Job &job, JobEvent e);

    JobManagerOptions opts_;
    std::shared_ptr<EvalCache> cache_;
    int threadBudget_ = 1;

    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    std::vector<std::unique_ptr<Job>> jobs_;
    int64_t nextId_ = 1;
    int queuedCount_ = 0;
    int threadsInUse_ = 0;
    std::atomic<bool> shutdown_{false};

    std::vector<std::thread> workers_;
};

} // namespace cocco

#endif // COCCO_SERVE_JOB_MANAGER_H
