#include "serve/batch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>

#include "core/serialize.h"
#include "serve/job_manager.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

namespace {

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** The run specs in @p dir: every *.json that is not one of our own
 *  output artifacts, sorted for a deterministic submission order. */
std::vector<std::string>
listSpecs(const std::string &dir, std::string *err)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d) {
        *err = dir + ": cannot open directory";
        return {};
    }
    std::vector<std::string> specs;
    while (dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (!endsWith(name, ".json"))
            continue;
        if (endsWith(name, ".metrics.json") ||
            endsWith(name, ".result.json") || name == "batch_summary.json")
            continue;
        specs.push_back(name);
    }
    ::closedir(d);
    std::sort(specs.begin(), specs.end());
    return specs;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fputc('\n', f) != EOF && ok;
    return std::fclose(f) == 0 && ok;
}

std::string
summaryJson(const BatchSummary &s)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", 1);
    w.field("generator", "cocco-batch");
    w.field("total", static_cast<int64_t>(s.entries.size()));
    w.field("done", s.done);
    w.field("cancelled", s.cancelled);
    w.field("failed", s.failed);
    w.field("interrupted", s.interrupted);
    w.field("wall_seconds", s.wallSeconds);
    w.field("jobs_wall_seconds", s.jobsWallSeconds);
    w.field("samples_total", s.samplesTotal);
    w.key("cache").beginObject();
    w.field("hits", s.cache.hits);
    w.field("misses", s.cache.misses);
    w.field("hit_rate", s.cache.hitRate());
    w.field("entries", s.cache.entries);
    w.endObject();
    w.key("jobs").beginArray();
    for (const BatchEntry &e : s.entries) {
        w.beginObject();
        w.field("spec", e.specFile);
        w.field("job", e.job);
        w.field("state", e.state);
        w.field("samples", e.samples);
        w.field("best_cost", e.bestCost);
        w.field("wall_seconds", e.wallSeconds);
        if (!e.error.empty())
            w.field("error", e.error);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

bool
runBatchDir(const std::string &dir, const BatchOptions &opts,
            BatchSummary *out, std::string *err)
{
    auto t0 = std::chrono::steady_clock::now();
    *out = BatchSummary{};

    std::vector<std::string> specs = listSpecs(dir, err);
    if (specs.empty()) {
        if (err->empty())
            *err = dir + ": no run specs (*.json) found";
        return false;
    }

    std::string outDir = opts.outDir.empty() ? dir : opts.outDir;
    ::mkdir(outDir.c_str(), 0777); // may already exist; write errors
                                   // below catch a real failure

    JobManagerOptions mopts;
    mopts.workers = std::max(1, opts.jobs);
    mopts.threadBudget = opts.threadBudget;
    mopts.queueCapacity = static_cast<int>(specs.size());
    mopts.cacheEnabled = opts.cacheEnabled;
    mopts.cacheCapacity = opts.cacheCapacity;
    JobManager manager(mopts);

    if (!opts.cacheFile.empty() && manager.cache()) {
        int loaded = loadEvalCache(*manager.cache(), opts.cacheFile);
        if (loaded >= 0)
            std::fprintf(stderr, "batch: warm cache: %d entries from %s\n",
                         loaded, opts.cacheFile.c_str());
    }

    // Submit everything up front (the queue is sized to fit); parse
    // and admission failures become failed entries, not batch errors.
    struct Slot
    {
        std::string specFile;
        std::string stem;
        int64_t job = 0;
        std::string error;
    };
    std::vector<Slot> slots;
    for (const std::string &name : specs) {
        Slot slot;
        slot.specFile = name;
        slot.stem = name.substr(0, name.size() - 5); // strip ".json"
        JsonValue doc;
        SearchSpec spec;
        std::string perr;
        if (!loadJsonFile(dir + "/" + name, &doc, &perr) ||
            !parseRunSpec(doc, &spec, &perr)) {
            slot.error = perr;
        } else {
            int64_t id = manager.submit(spec, slot.stem, &perr);
            if (id < 0)
                slot.error = perr;
            else
                slot.job = id;
        }
        slots.push_back(std::move(slot));
    }

    // Poll to completion; the first interrupt cancels everything
    // still active (cooperative — workers stop at the next batch
    // boundary and keep their partial incumbents).
    std::vector<size_t> cursors(slots.size(), 0);
    bool cancelledAll = false;
    for (;;) {
        if (opts.interrupt && !cancelledAll &&
            opts.interrupt->load(std::memory_order_relaxed)) {
            std::fprintf(stderr,
                         "batch: interrupt: cancelling %zu spec(s)\n",
                         slots.size());
            manager.cancelAll();
            cancelledAll = true;
            out->interrupted = true;
        }
        if (opts.progress) {
            for (size_t i = 0; i < slots.size(); ++i) {
                if (!slots[i].job)
                    continue;
                for (const JobEvent &e :
                     manager.eventsSince(slots[i].job, &cursors[i]))
                    std::fprintf(stderr, "%s\n",
                                 encodeJobEvent(e).c_str());
            }
            std::fflush(stderr);
        }
        bool allDone = true;
        for (const Slot &slot : slots)
            if (slot.job &&
                !jobStateTerminal(manager.status(slot.job).state))
                allDone = false;
        if (allDone)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    manager.drain();

    bool ok = true;
    for (const Slot &slot : slots) {
        BatchEntry e;
        e.specFile = slot.specFile;
        e.job = slot.job;
        if (!slot.job) {
            e.state = "failed";
            e.error = slot.error;
            ++out->failed;
        } else {
            JobStatus s = manager.status(slot.job);
            e.state = jobStateName(s.state);
            e.samples = s.progressSamples;
            e.bestCost = s.progressBest;
            e.wallSeconds = s.runSeconds;
            e.error = s.error;
            out->jobsWallSeconds += e.wallSeconds;
            out->samplesTotal += e.samples;
            switch (s.state) {
              case JobState::Done:
                ++out->done;
                break;
              case JobState::Cancelled:
                ++out->cancelled;
                break;
              default:
                ++out->failed;
                break;
            }
            std::string metrics = manager.metricsJson(slot.job);
            std::string result = manager.resultJson(slot.job);
            if (!metrics.empty() &&
                !writeTextFile(outDir + "/" + slot.stem + ".metrics.json",
                               metrics)) {
                *err = outDir + ": cannot write metrics for " +
                       slot.specFile;
                ok = false;
            }
            if (!result.empty() &&
                !writeTextFile(outDir + "/" + slot.stem + ".result.json",
                               result)) {
                *err = outDir + ": cannot write result for " +
                       slot.specFile;
                ok = false;
            }
        }
        out->entries.push_back(std::move(e));
    }

    out->cache = manager.cacheStats();
    out->wallSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (!writeTextFile(outDir + "/batch_summary.json",
                       summaryJson(*out))) {
        *err = outDir + ": cannot write batch_summary.json";
        ok = false;
    }

    if (!opts.cacheFile.empty() && manager.cache()) {
        if (saveEvalCache(*manager.cache(), opts.cacheFile))
            std::fprintf(stderr, "batch: saved cache to %s\n",
                         opts.cacheFile.c_str());
    }
    return ok;
}

} // namespace cocco
