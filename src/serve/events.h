/**
 * @file
 * The NDJSON progress-event vocabulary shared by every front end of
 * the exploration service: `cocco serve` (HTTP event streams and the
 * stdio protocol), `cocco batch --progress`, and `cocco run
 * --progress` all emit the same one-object-per-line encoding, so a
 * consumer written against one surface parses all of them.
 *
 * Event schema (one JSON object per line, no trailing comma):
 *   {"event":"accepted","job":N}
 *   {"event":"started","job":N}
 *   {"event":"improve","job":N,"sample":N,"best":X}
 *   {"event":"batch","job":N,"sample":N,"best":X}
 *   {"event":"checkpoint","job":N,"sample":N}
 *   {"event":"done","job":N,"sample":N,"best":X,"stop":"budget"}
 *   {"event":"cancelled","job":N,"sample":N,"best":X,"stop":"cancelled"}
 *   {"event":"failed","job":N,"error":"..."}
 *
 * "improve"/"batch" map 1:1 onto SearchObserver::onImprove /
 * onBatchDone; "stop" carries stopReasonName(). Solo `cocco run`
 * emits job id 0.
 */

#ifndef COCCO_SERVE_EVENTS_H
#define COCCO_SERVE_EVENTS_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "search/observer.h"

namespace cocco {

/** One progress event (see file comment for the wire encoding). */
struct JobEvent
{
    enum class Kind
    {
        Accepted,   ///< admitted to the queue
        Started,    ///< picked up by a worker
        Improve,    ///< the incumbent improved (onImprove)
        BatchDone,  ///< an evaluation batch finished (onBatchDone)
        Checkpoint, ///< a checkpoint snapshot was persisted
        Done,       ///< terminal: ran to its natural end
        Cancelled,  ///< terminal: cancelled mid-flight
        Failed,     ///< terminal: spec resolution/setup failed
    };

    Kind kind = Kind::BatchDone;
    int64_t job = 0;
    int64_t sample = 0;
    double bestCost = 0.0;
    StopReason stop = StopReason::BudgetExhausted; ///< Done/Cancelled
    std::string error;                             ///< Failed
};

/** Stable lowercase wire name ("accepted", "improve", ...). */
const char *jobEventName(JobEvent::Kind kind);

/** Encode one event as its NDJSON line (no trailing newline). */
std::string encodeJobEvent(const JobEvent &e);

/**
 * SearchObserver that prints improve/batch events as NDJSON lines to
 * a FILE* and doubles as the cooperative-cancellation hook: pass the
 * process's SIGINT flag as @p cancel and a trapped interrupt stops
 * the run at the next batch boundary. Pass a null @p out to get the
 * cancellation wiring without any printing (`cocco run` without
 * --progress). Lines are written atomically (single fprintf +
 * flush), so the stream stays parseable under concurrent writers.
 */
class NdjsonProgress : public SearchObserver
{
  public:
    NdjsonProgress(std::FILE *out, int64_t job,
                   const std::atomic<bool> *cancel = nullptr)
        : out_(out), job_(job), cancel_(cancel)
    {
    }

    void onImprove(const TracePoint &tp) override;
    void onBatchDone(int64_t samples, double bestCost) override;
    bool cancelled() override;

    /** Emit an arbitrary event on the same stream (e.g. checkpoint
     *  saves from the driver's save hook). No-op without an out. */
    void emit(const JobEvent &e);

  private:
    std::FILE *out_;
    int64_t job_;
    const std::atomic<bool> *cancel_;
};

} // namespace cocco

#endif // COCCO_SERVE_EVENTS_H
