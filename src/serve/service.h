/**
 * @file
 * The protocol layer of the exploration service: the two front ends
 * of a JobManager.
 *
 * - serveHttpRequest() maps the HTTP job API onto a manager:
 *     GET  /healthz                 -> {"status":"ok", ...}
 *     POST /jobs                    body = run-spec JSON; X-Tenant
 *                                      header labels the tenant;
 *                                      202 {"job":N} / 400 / 429
 *     GET  /jobs                    status array of every job
 *     GET  /jobs/N                  one job's status (404 unknown)
 *     POST /jobs/N/cancel           {"cancelled":B}
 *     GET  /jobs/N/result           the resultToJson document
 *                                      (409 + status while non-terminal)
 *     GET  /jobs/N/metrics          the schema-v1 metrics document
 *     GET  /jobs/N/events           NDJSON event stream until terminal
 *     POST /shutdown                ask the serve loop to exit
 *
 * - runStdioServe() speaks the same vocabulary as NDJSON over a
 *   FILE* pair (one JSON object per line in, one per line out) for
 *   driving the service from scripts and tests without sockets:
 *     {"cmd":"submit","spec":{...},"tenant":"..."}  -> {"job":N}
 *     {"cmd":"status","job":N} / {"cmd":"jobs"}
 *     {"cmd":"cancel","job":N} / {"cmd":"wait","job":N}
 *     {"cmd":"result","job":N} / {"cmd":"metrics","job":N,"out":"f"}
 *     {"cmd":"shutdown"}
 *   Every reply carries "ok":true/false; errors add "error".
 *
 * Both front ends parse specs with parseRunSpecText(), which applies
 * the same partition-only default buffer as `cocco run` before
 * searchSpecFromJson — the service must interpret a spec document
 * byte-for-byte like the solo CLI for the bit-identity contract.
 */

#ifndef COCCO_SERVE_SERVICE_H
#define COCCO_SERVE_SERVICE_H

#include <atomic>
#include <cstdio>
#include <string>

#include "serve/http_server.h"
#include "serve/job_manager.h"

namespace cocco {

class JsonValue;

/** Parse a run-spec document exactly as `cocco run --spec` does
 *  (including the partition-only default buffer). @return false with
 *  *err set on any schema problem. */
bool parseRunSpec(const JsonValue &doc, SearchSpec *spec,
                  std::string *err);

/** parseRunSpec over raw text. */
bool parseRunSpecText(const std::string &text, SearchSpec *spec,
                      std::string *err);

/** One job's status as a JSON object (compact, single line). */
std::string jobStatusJson(const JobStatus &s);

/**
 * Route one HTTP request against @p manager (API above). When the
 * client POSTs /shutdown, @p shutdownFlag is set (the serve loop
 * polls it); pass null to disable remote shutdown.
 */
HttpResponse serveHttpRequest(JobManager &manager, const HttpRequest &req,
                              std::atomic<bool> *shutdownFlag);

/**
 * Drive the stdio NDJSON protocol (above) over @p in / @p out until
 * EOF or a shutdown command. Cancels whatever is still active on the
 * way out. @return the process exit code (0).
 */
int runStdioServe(JobManager &manager, std::FILE *in, std::FILE *out);

} // namespace cocco

#endif // COCCO_SERVE_SERVICE_H
