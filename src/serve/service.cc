#include "serve/service.h"

#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** A reply line whose only payload is an error message. */
std::string
errorJson(const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.field("ok", false);
    w.field("error", message);
    w.endObject();
    return w.str();
}

/** "/jobs/<id>[/<tail>]" -> id + tail ("" when absent). */
bool
parseJobPath(const std::string &path, int64_t *id, std::string *tail)
{
    const std::string prefix = "/jobs/";
    if (path.compare(0, prefix.size(), prefix) != 0)
        return false;
    size_t pos = prefix.size();
    size_t slash = path.find('/', pos);
    std::string num = path.substr(pos, slash == std::string::npos
                                           ? std::string::npos
                                           : slash - pos);
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos)
        return false;
    *id = std::strtoll(num.c_str(), nullptr, 10);
    *tail = slash == std::string::npos ? "" : path.substr(slash + 1);
    return true;
}

} // namespace

bool
parseRunSpec(const JsonValue &doc, SearchSpec *spec, std::string *err)
{
    // Identical to the CLI's runSpec(): partition-only specs may omit
    // "buffer", defaulting to the standard fixed buffer of the
    // partition studies (1MB GLB + 1.125MB WBUF). The service must
    // fill the spec exactly like the solo path or the bit-identity
    // contract breaks on partition-only documents.
    spec->fixedBuffer.style = BufferStyle::Separate;
    spec->fixedBuffer.actBytes = 1024 * 1024;
    spec->fixedBuffer.weightBytes = 1152 * 1024;
    return searchSpecFromJson(doc, spec, err);
}

bool
parseRunSpecText(const std::string &text, SearchSpec *spec,
                 std::string *err)
{
    JsonValue doc;
    if (!parseJson(text, &doc, err))
        return false;
    return parseRunSpec(doc, spec, err);
}

std::string
jobStatusJson(const JobStatus &s)
{
    JsonWriter w;
    w.beginObject();
    w.field("id", s.id);
    w.field("tenant", s.tenant);
    w.field("name", s.name);
    w.field("model", s.model);
    w.field("state", jobStateName(s.state));
    w.field("threads", s.threads);
    w.field("samples", s.progressSamples);
    w.field("best", s.progressBest);
    w.field("queued_seconds", s.queuedSeconds);
    w.field("run_seconds", s.runSeconds);
    if (!s.error.empty())
        w.field("error", s.error);
    w.endObject();
    return w.str();
}

HttpResponse
serveHttpRequest(JobManager &manager, const HttpRequest &req,
                 std::atomic<bool> *shutdownFlag)
{
    HttpResponse res;

    if (req.path == "/healthz" && req.method == "GET") {
        JsonWriter w;
        w.beginObject();
        w.field("status", "ok");
        w.field("jobs", static_cast<int64_t>(manager.jobs().size()));
        w.field("cache_hit_rate", manager.cacheStats().hitRate());
        w.endObject();
        res.body = w.str();
        return res;
    }

    if (req.path == "/shutdown" && req.method == "POST") {
        if (!shutdownFlag) {
            res.status = 405;
            res.body = errorJson("shutdown is disabled");
            return res;
        }
        shutdownFlag->store(true, std::memory_order_relaxed);
        res.body = "{\"ok\":true,\"shutdown\":true}";
        return res;
    }

    if (req.path == "/jobs" && req.method == "POST") {
        SearchSpec spec;
        std::string err;
        if (!parseRunSpecText(req.body, &spec, &err)) {
            res.status = 400;
            res.body = errorJson(err);
            return res;
        }
        int64_t id = manager.submit(spec, req.header("x-tenant"), &err);
        if (id < 0) {
            res.status =
                err.find("full") != std::string::npos ? 429 : 400;
            res.body = errorJson(err);
            return res;
        }
        res.status = 202;
        res.body = strprintf("{\"ok\":true,\"job\":%lld}",
                             static_cast<long long>(id));
        return res;
    }

    if (req.path == "/jobs" && req.method == "GET") {
        std::string body = "[";
        bool first = true;
        for (const JobStatus &s : manager.jobs()) {
            if (!first)
                body += ",";
            body += jobStatusJson(s);
            first = false;
        }
        body += "]";
        res.body = body;
        return res;
    }

    int64_t id = 0;
    std::string tail;
    if (parseJobPath(req.path, &id, &tail)) {
        JobStatus s = manager.status(id);
        if (s.id == 0) {
            res.status = 404;
            res.body = errorJson(strprintf("unknown job %lld",
                                           static_cast<long long>(id)));
            return res;
        }
        if (tail.empty() && req.method == "GET") {
            res.body = jobStatusJson(s);
            return res;
        }
        if (tail == "cancel" && req.method == "POST") {
            bool did = manager.cancel(id);
            res.body = strprintf("{\"ok\":true,\"cancelled\":%s}",
                                 did ? "true" : "false");
            return res;
        }
        if (tail == "result" && req.method == "GET") {
            std::string doc = manager.resultJson(id);
            if (doc.empty()) {
                res.status = 409;
                res.body = jobStatusJson(s);
                return res;
            }
            res.body = doc;
            return res;
        }
        if (tail == "metrics" && req.method == "GET") {
            std::string doc = manager.metricsJson(id);
            if (doc.empty()) {
                res.status = 409;
                res.body = jobStatusJson(s);
                return res;
            }
            res.body = doc;
            return res;
        }
        if (tail == "events" && req.method == "GET") {
            res.contentType = "application/x-ndjson";
            res.streamer =
                [&manager,
                 id](const std::function<bool(const std::string &)> &write) {
                    size_t cursor = 0;
                    for (;;) {
                        std::vector<JobEvent> events =
                            manager.eventsSince(id, &cursor, 0.25);
                        for (const JobEvent &e : events)
                            if (!write(encodeJobEvent(e) + "\n"))
                                return;
                        if (events.empty() &&
                            jobStateTerminal(manager.status(id).state))
                            return;
                    }
                };
            return res;
        }
    }

    res.status = 404;
    res.body = errorJson("no such endpoint: " + req.method + " " +
                         req.path);
    return res;
}

namespace {

/** Shared-output guard for the stdio protocol: reply lines (main
 *  loop) and streamed event lines (pump threads) interleave on one
 *  FILE*, so every line goes out under the mutex in one fprintf. */
struct StdioOut
{
    std::FILE *out;
    std::mutex mu;

    void line(const std::string &s)
    {
        std::lock_guard<std::mutex> lk(mu);
        std::fprintf(out, "%s\n", s.c_str());
        std::fflush(out);
    }
};

} // namespace

int
runStdioServe(JobManager &manager, std::FILE *in, std::FILE *out)
{
    StdioOut io{out, {}};
    std::vector<std::thread> pumps;

    auto pumpEvents = [&manager, &io](int64_t id) {
        size_t cursor = 0;
        for (;;) {
            std::vector<JobEvent> events =
                manager.eventsSince(id, &cursor, 0.25);
            for (const JobEvent &e : events)
                io.line(encodeJobEvent(e));
            if (events.empty() &&
                jobStateTerminal(manager.status(id).state))
                return;
        }
    };

    char *lineBuf = nullptr;
    size_t lineCap = 0;
    bool shutdown = false;
    while (!shutdown && ::getline(&lineBuf, &lineCap, in) != -1) {
        std::string line(lineBuf);
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r'))
            line.pop_back();
        if (line.empty())
            continue;

        JsonValue doc;
        std::string err;
        if (!parseJson(line, &doc, &err) || !doc.isObject()) {
            io.line(errorJson(err.empty() ? "request is not an object"
                                          : err));
            continue;
        }
        const JsonValue *cmd = doc.find("cmd");
        if (!cmd || !cmd->isString()) {
            io.line(errorJson("missing \"cmd\""));
            continue;
        }
        const JsonValue *jobField = doc.find("job");
        int64_t id =
            jobField && jobField->isNumber() ? jobField->integer() : 0;

        if (cmd->str() == "submit") {
            const JsonValue *specDoc = doc.find("spec");
            if (!specDoc || !specDoc->isObject()) {
                io.line(errorJson("submit needs a \"spec\" object"));
                continue;
            }
            SearchSpec spec;
            if (!parseRunSpec(*specDoc, &spec, &err)) {
                io.line(errorJson(err));
                continue;
            }
            const JsonValue *tenant = doc.find("tenant");
            int64_t newId = manager.submit(
                spec, tenant && tenant->isString() ? tenant->str() : "",
                &err);
            if (newId < 0) {
                io.line(errorJson(err));
                continue;
            }
            io.line(strprintf("{\"ok\":true,\"job\":%lld}",
                              static_cast<long long>(newId)));
            const JsonValue *stream = doc.find("stream");
            if (stream && stream->isBool() && stream->boolean())
                pumps.emplace_back(pumpEvents, newId);
        } else if (cmd->str() == "status") {
            JobStatus s = manager.status(id);
            if (s.id == 0)
                io.line(errorJson("unknown job"));
            else
                io.line("{\"ok\":true,\"status\":" + jobStatusJson(s) +
                        "}");
        } else if (cmd->str() == "jobs") {
            std::string body = "{\"ok\":true,\"jobs\":[";
            bool first = true;
            for (const JobStatus &s : manager.jobs()) {
                if (!first)
                    body += ",";
                body += jobStatusJson(s);
                first = false;
            }
            io.line(body + "]}");
        } else if (cmd->str() == "cancel") {
            bool did = manager.cancel(id);
            io.line(strprintf("{\"ok\":true,\"cancelled\":%s}",
                              did ? "true" : "false"));
        } else if (cmd->str() == "wait") {
            const JsonValue *timeout = doc.find("timeout");
            manager.wait(id, timeout && timeout->isNumber()
                                 ? timeout->number()
                                 : 0.0);
            JobStatus s = manager.status(id);
            if (s.id == 0)
                io.line(errorJson("unknown job"));
            else
                io.line("{\"ok\":true,\"status\":" + jobStatusJson(s) +
                        "}");
        } else if (cmd->str() == "result") {
            std::string docStr = manager.resultJson(id);
            if (docStr.empty())
                io.line(errorJson("job has no result (yet)"));
            else
                io.line(strprintf("{\"ok\":true,\"job\":%lld,\"result\":",
                                  static_cast<long long>(id)) +
                        docStr + "}");
        } else if (cmd->str() == "metrics") {
            std::string docStr = manager.metricsJson(id);
            if (docStr.empty()) {
                io.line(errorJson("job has no metrics (yet)"));
                continue;
            }
            const JsonValue *outPath = doc.find("out");
            if (outPath && outPath->isString()) {
                std::FILE *f = std::fopen(outPath->str().c_str(), "w");
                if (!f) {
                    io.line(errorJson("cannot write " + outPath->str()));
                    continue;
                }
                std::fprintf(f, "%s\n", docStr.c_str());
                std::fclose(f);
                io.line(strprintf("{\"ok\":true,\"job\":%lld,\"out\":",
                                  static_cast<long long>(id)) +
                        "\"" + outPath->str() + "\"}");
            } else {
                io.line(
                    strprintf("{\"ok\":true,\"job\":%lld,\"metrics\":",
                              static_cast<long long>(id)) +
                    docStr + "}");
            }
        } else if (cmd->str() == "shutdown") {
            manager.cancelAll();
            io.line("{\"ok\":true,\"shutdown\":true}");
            shutdown = true;
        } else {
            io.line(errorJson("unknown cmd \"" + cmd->str() + "\""));
        }
    }
    std::free(lineBuf);

    manager.cancelAll();
    manager.drain();
    for (std::thread &t : pumps)
        t.join();
    return 0;
}

} // namespace cocco
