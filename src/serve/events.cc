#include "serve/events.h"

#include "util/json.h"

namespace cocco {

const char *
jobEventName(JobEvent::Kind kind)
{
    switch (kind) {
      case JobEvent::Kind::Accepted:
        return "accepted";
      case JobEvent::Kind::Started:
        return "started";
      case JobEvent::Kind::Improve:
        return "improve";
      case JobEvent::Kind::BatchDone:
        return "batch";
      case JobEvent::Kind::Checkpoint:
        return "checkpoint";
      case JobEvent::Kind::Done:
        return "done";
      case JobEvent::Kind::Cancelled:
        return "cancelled";
      case JobEvent::Kind::Failed:
        return "failed";
    }
    return "unknown";
}

std::string
encodeJobEvent(const JobEvent &e)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", jobEventName(e.kind));
    w.field("job", e.job);
    switch (e.kind) {
      case JobEvent::Kind::Improve:
      case JobEvent::Kind::BatchDone:
        w.field("sample", e.sample);
        w.field("best", e.bestCost);
        break;
      case JobEvent::Kind::Checkpoint:
        w.field("sample", e.sample);
        break;
      case JobEvent::Kind::Done:
      case JobEvent::Kind::Cancelled:
        w.field("sample", e.sample);
        w.field("best", e.bestCost);
        w.field("stop", stopReasonName(e.stop));
        break;
      case JobEvent::Kind::Failed:
        w.field("error", e.error);
        break;
      case JobEvent::Kind::Accepted:
      case JobEvent::Kind::Started:
        break;
    }
    w.endObject();
    return w.str();
}

void
NdjsonProgress::onImprove(const TracePoint &tp)
{
    JobEvent e;
    e.kind = JobEvent::Kind::Improve;
    e.job = job_;
    e.sample = tp.sample;
    e.bestCost = tp.bestCost;
    emit(e);
}

void
NdjsonProgress::onBatchDone(int64_t samples, double bestCost)
{
    JobEvent e;
    e.kind = JobEvent::Kind::BatchDone;
    e.job = job_;
    e.sample = samples;
    e.bestCost = bestCost;
    emit(e);
}

bool
NdjsonProgress::cancelled()
{
    return cancel_ && cancel_->load(std::memory_order_relaxed);
}

void
NdjsonProgress::emit(const JobEvent &e)
{
    if (!out_)
        return;
    std::string line = encodeJobEvent(e);
    std::fprintf(out_, "%s\n", line.c_str());
    std::fflush(out_);
}

} // namespace cocco
