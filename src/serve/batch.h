/**
 * @file
 * `cocco batch <dir>`: drain a directory of run-spec documents
 * through one JobManager — every spec a job, all of them sharing the
 * process-wide evaluation cache, so a basket of related runs warms
 * itself as it goes.
 *
 * Outputs, per spec `<stem>.json`, into the output directory:
 *   <stem>.metrics.json  the schema-v1 metrics document (job block set)
 *   <stem>.result.json   the resultToJson solution document
 * plus `batch_summary.json` with per-spec outcomes and the shared
 * cache's lifetime accounting. Specs that fail to parse or resolve
 * are recorded as failed entries; they never abort the batch.
 *
 * Interruption: when the interrupt flag flips (the CLI's SIGINT
 * handler), every in-flight job is cancelled cooperatively; partial
 * results and the summary are still written, and the run reports
 * cancelled = true.
 */

#ifndef COCCO_SERVE_BATCH_H
#define COCCO_SERVE_BATCH_H

#include <atomic>
#include <string>
#include <vector>

#include "search/eval_cache.h"

namespace cocco {

/** Knobs for one batch run. */
struct BatchOptions
{
    std::string outDir;   ///< output directory; "" = the spec dir
    int jobs = 2;         ///< concurrently running specs
    int threadBudget = 0; ///< total eval threads; <= 0 = all cores
    bool cacheEnabled = true;
    size_t cacheCapacity = EvalCache::kDefaultCapacity;
    std::string cacheFile; ///< warm-start / persist the shared cache
    bool progress = false; ///< NDJSON job events on stderr

    /** Cooperative-cancel flag (the CLI's SIGINT latch). */
    const std::atomic<bool> *interrupt = nullptr;
};

/** One spec's outcome. */
struct BatchEntry
{
    std::string specFile; ///< the input document (basename)
    int64_t job = 0;      ///< job id (0 when never admitted)
    std::string state;    ///< "done" / "cancelled" / "failed"
    int64_t samples = 0;
    double bestCost = 0.0;
    double wallSeconds = 0.0;
    std::string error;
};

/** The whole batch's outcome. */
struct BatchSummary
{
    std::vector<BatchEntry> entries;
    int done = 0;
    int cancelled = 0;
    int failed = 0;
    double wallSeconds = 0.0;     ///< batch wall clock, end to end
    double jobsWallSeconds = 0.0; ///< sum of per-job run times
    int64_t samplesTotal = 0;     ///< sum of per-job sample counts
    bool interrupted = false;
    EvalCacheStats cache; ///< shared-cache lifetime counters
};

/**
 * Run every `*.json` run spec in @p dir (output artifacts excluded)
 * through a JobManager per @p opts; write per-spec metrics/result
 * documents and `batch_summary.json` into the output directory.
 * @return false with *err set when the directory cannot be scanned,
 * holds no specs, or the output directory cannot be created — spec
 * level failures are per-entry outcomes, not errors.
 */
bool runBatchDir(const std::string &dir, const BatchOptions &opts,
                 BatchSummary *out, std::string *err);

} // namespace cocco

#endif // COCCO_SERVE_BATCH_H
