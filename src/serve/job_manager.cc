#include "serve/job_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "schedule/co_scheduler.h"
#include "util/thread_pool.h"

namespace cocco {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Events kept per job before low-value ones are shed. A runaway
 *  producer (tiny batches, huge budget) must not grow server memory
 *  without bound; batch-progress events are the shed class because a
 *  consumer can always re-derive progress from the next one. */
constexpr size_t kMaxJobEvents = 1 << 16;

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Failed:
        return "failed";
    }
    return "unknown";
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Cancelled ||
           state == JobState::Failed;
}

/** Everything the manager tracks for one submission. Mutable fields
 *  are guarded by JobManager::mu_ except cancelFlag (atomic so the
 *  running search can poll it without the lock). */
struct JobManager::Job
{
    int64_t id = 0;
    std::string tenant;
    std::string name;
    SearchSpec spec;

    JobState state = JobState::Queued;
    std::atomic<bool> cancelFlag{false};

    Clock::time_point submitted;
    Clock::time_point started;
    Clock::time_point finished;
    double queuedSeconds = 0.0;
    double runSeconds = 0.0;

    int threads = 0; ///< granted eval threads (0 until running)
    int64_t progressSamples = 0;
    double progressBest = 0.0;
    std::string error;

    /** The resolved workload; owned here because CoccoFramework and
     *  resultToJson both take the graph by reference. */
    Graph graph;
    std::string modelName;

    CoccoResult result;
    bool hasResult = false;
    double wallSeconds = 0.0;

    /** Co-schedule jobs (workload_set specs): the result document and
     *  the metrics "tenants" snapshot are materialized when the run
     *  completes, so nothing schedule-sized has to outlive it. The
     *  scalar outcome (samples/objective/stop/cacheStats) is folded
     *  into `result` above so status/events need no second path. */
    bool hasSchedule = false;
    std::string scheduleJson;
    RunMetrics scheduleMetrics;

    std::vector<JobEvent> events;
};

namespace {

/** The per-job observer: forwards driver progress into the job's
 *  event log / status fields and carries the cooperative-cancel
 *  flag into the engine's batch boundaries. */
class JobObserver : public SearchObserver
{
  public:
    JobObserver(std::mutex &mu, std::condition_variable &cv,
                JobManager::Job &job, const std::atomic<bool> &shutdown,
                void (*push)(JobManager::Job &, JobEvent))
        : mu_(mu), cv_(cv), job_(job), shutdown_(shutdown), push_(push)
    {
    }

    void onImprove(const TracePoint &tp) override
    {
        JobEvent e;
        e.kind = JobEvent::Kind::Improve;
        e.job = job_.id;
        e.sample = tp.sample;
        e.bestCost = tp.bestCost;
        record(tp.sample, tp.bestCost, std::move(e));
    }

    void onBatchDone(int64_t samples, double bestCost) override
    {
        JobEvent e;
        e.kind = JobEvent::Kind::BatchDone;
        e.job = job_.id;
        e.sample = samples;
        e.bestCost = bestCost;
        record(samples, bestCost, std::move(e));
    }

    bool cancelled() override
    {
        return job_.cancelFlag.load(std::memory_order_relaxed) ||
               shutdown_.load(std::memory_order_relaxed);
    }

  private:
    void record(int64_t samples, double best, JobEvent e)
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_.progressSamples = samples;
        job_.progressBest = best;
        push_(job_, std::move(e));
        cv_.notify_all();
    }

    std::mutex &mu_;
    std::condition_variable &cv_;
    JobManager::Job &job_;
    const std::atomic<bool> &shutdown_;
    void (*push_)(JobManager::Job &, JobEvent);
};

/** Free-function event push so JobObserver (anonymous namespace) can
 *  use JobManager's shedding policy without being a member. */
void
pushEvent(JobManager::Job &job, JobEvent e)
{
    if (job.events.size() >= kMaxJobEvents &&
        e.kind == JobEvent::Kind::BatchDone)
        return;
    job.events.push_back(std::move(e));
}

} // namespace

JobManager::JobManager(const JobManagerOptions &opts) : opts_(opts)
{
    opts_.workers = std::max(1, opts_.workers);
    opts_.queueCapacity = std::max(1, opts_.queueCapacity);
    if (opts_.cache)
        cache_ = opts_.cache;
    else if (opts_.cacheEnabled)
        cache_ = std::make_shared<EvalCache>(opts_.cacheCapacity);
    threadBudget_ = ThreadPool::resolveThreads(opts_.threadBudget);
    workers_.reserve(opts_.workers);
    for (int i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobManager::~JobManager()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_.store(true, std::memory_order_relaxed);
        for (auto &job : jobs_) {
            if (job->state == JobState::Queued) {
                job->state = JobState::Cancelled;
                job->finished = Clock::now();
                job->queuedSeconds =
                    secondsBetween(job->submitted, job->finished);
                --queuedCount_;
                JobEvent e;
                e.kind = JobEvent::Kind::Cancelled;
                e.job = job->id;
                e.stop = StopReason::Cancelled;
                pushEventLocked(*job, std::move(e));
            } else if (job->state == JobState::Running) {
                job->cancelFlag.store(true, std::memory_order_relaxed);
            }
        }
        cv_.notify_all();
    }
    for (std::thread &t : workers_)
        t.join();
}

int64_t
JobManager::submit(const SearchSpec &spec, const std::string &tenant,
                   std::string *err)
{
    auto reject = [&](const std::string &why) {
        if (err)
            *err = why;
        return -1;
    };

    // Structural admission checks: anything a driver would abort on
    // must be shed here, before it can take down a worker thread.
    if (!SearcherRegistry::instance().contains(spec.algo))
        return reject("unknown algorithm \"" + spec.algo + "\"");
    if (spec.eval.sampleBudget < 1)
        return reject("sample budget must be >= 1");
    if (spec.workloadSet.enabled()) {
        std::string why;
        if (!validateWorkloadSet(spec.workloadSet, &why))
            return reject(why);
    } else if (spec.workload.model.empty() && spec.workload.file.empty()) {
        return reject("spec addresses no workload (model or file)");
    }
    if (spec.algo == "ga" &&
        (spec.ga.population < 2 || spec.ga.tournament < 1))
        return reject("degenerate GA parameters (population >= 2, "
                      "tournament >= 1)");
    if (spec.algo == "sa" && spec.sa.neighborBatch < 1)
        return reject("degenerate SA parameters (neighborBatch >= 1)");
    if ((spec.algo == "ts-random" || spec.algo == "ts-grid") &&
        (spec.twoStep.population < 2 || spec.twoStep.samplesPerCandidate < 1))
        return reject("degenerate two-step parameters (population >= 2, "
                      "samplesPerCandidate >= 1)");
    if (spec.algo == "portfolio") {
        if (spec.portfolio.racers.empty())
            return reject("portfolio needs at least one racer");
        const std::vector<std::string> &racers = spec.portfolio.racers;
        for (size_t i = 0; i < racers.size(); ++i) {
            const std::string &r = racers[i];
            if (r == "portfolio")
                return reject("a portfolio cannot race itself");
            if (!SearcherRegistry::instance().contains(r))
                return reject("unknown portfolio racer \"" + r + "\"");
            for (size_t j = 0; j < i; ++j)
                if (racers[j] == r)
                    return reject("duplicate portfolio racer \"" + r +
                                  "\"");
        }
        if (spec.portfolio.checkEvals < 1 ||
            spec.portfolio.warmupEvals < 0)
            return reject("degenerate portfolio parameters (checkEvals "
                          ">= 1, warmupEvals >= 0)");
    }

    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_.load(std::memory_order_relaxed))
        return reject("manager is shutting down");
    if (queuedCount_ >= opts_.queueCapacity)
        return reject("job queue is full");

    auto job = std::make_unique<Job>();
    job->id = nextId_++;
    job->tenant = tenant;
    job->spec = spec;
    if (spec.workloadSet.enabled()) {
        std::string joined;
        for (size_t i = 0; i < spec.workloadSet.tenants.size(); ++i)
            joined += (i ? "+" : "") + spec.workloadSet.tenants[i].name;
        job->name = spec.algo + ":" + joined;
    } else {
        job->name = spec.algo + ":" +
                    (spec.workload.model.empty() ? spec.workload.file
                                                 : spec.workload.model);
    }
    job->submitted = Clock::now();
    JobEvent e;
    e.kind = JobEvent::Kind::Accepted;
    e.job = job->id;
    pushEventLocked(*job, std::move(e));
    int64_t id = job->id;
    jobs_.push_back(std::move(job));
    ++queuedCount_;
    cv_.notify_all();
    return id;
}

bool
JobManager::cancel(int64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    Job *job = findLocked(id);
    if (!job || jobStateTerminal(job->state))
        return false;
    if (job->state == JobState::Queued) {
        job->state = JobState::Cancelled;
        job->finished = Clock::now();
        job->queuedSeconds = secondsBetween(job->submitted, job->finished);
        --queuedCount_;
        JobEvent e;
        e.kind = JobEvent::Kind::Cancelled;
        e.job = job->id;
        e.stop = StopReason::Cancelled;
        pushEventLocked(*job, std::move(e));
        cv_.notify_all();
        return true;
    }
    job->cancelFlag.store(true, std::memory_order_relaxed);
    return true;
}

void
JobManager::cancelAll()
{
    std::vector<int64_t> ids;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto &job : jobs_)
            if (!jobStateTerminal(job->state))
                ids.push_back(job->id);
    }
    for (int64_t id : ids)
        cancel(id);
}

JobStatus
JobManager::status(int64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const Job *job = findLocked(id);
    if (!job)
        return JobStatus{};
    return statusLocked(*job);
}

std::vector<JobStatus>
JobManager::jobs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &job : jobs_)
        out.push_back(statusLocked(*job));
    return out;
}

bool
JobManager::wait(int64_t id, double timeoutSec)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto terminal = [&] {
        const Job *job = findLocked(id);
        return !job || jobStateTerminal(job->state);
    };
    if (timeoutSec <= 0.0) {
        cv_.wait(lk, terminal);
        return findLocked(id) != nullptr;
    }
    if (!cv_.wait_for(lk, std::chrono::duration<double>(timeoutSec),
                      terminal))
        return false;
    return findLocked(id) != nullptr;
}

void
JobManager::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
        for (const auto &job : jobs_)
            if (!jobStateTerminal(job->state))
                return false;
        return true;
    });
}

std::string
JobManager::resultJson(int64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const Job *job = findLocked(id);
    if (!job || !jobStateTerminal(job->state) || !job->hasResult)
        return "";
    if (job->hasSchedule)
        return job->scheduleJson;
    return resultToJson(job->graph, job->result);
}

std::string
JobManager::metricsJson(int64_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const Job *job = findLocked(id);
    if (!job || !jobStateTerminal(job->state) || !job->hasResult)
        return "";

    // Mirrors the CLI's emitMetrics for a spec run ("spec-<algo>"),
    // plus the serving context in the "job" block.
    RunMetrics m;
    m.name = "spec-" + job->spec.algo;
    m.model = job->modelName;
    m.threads = job->threads;
    m.seed = job->spec.eval.seed;
    m.samples = job->result.samples;
    m.bestCost = job->result.objective;
    m.wallSeconds = job->wallSeconds;
    m.cacheEnabled = cache_ != nullptr && job->spec.eval.cacheEnabled;
    m.cache = job->result.cacheStats;
    // Co-schedule jobs report per-tenant serving metrics instead of a
    // single-result deployment breakdown.
    m.hasDeployment = !job->hasSchedule;
    m.deployment = job->result.deployment;
    if (job->hasSchedule) {
        m.hasTenants = job->scheduleMetrics.hasTenants;
        m.slaViolations = job->scheduleMetrics.slaViolations;
        m.meanLatencyMs = job->scheduleMetrics.meanLatencyMs;
        m.tenants = job->scheduleMetrics.tenants;
    }
    if (!job->hasSchedule)
        fillResultMetrics(job->result, job->spec.paretoMode, &m);
    m.hasJob = true;
    m.jobId = job->id;
    m.tenant = job->tenant;
    m.jobState = jobStateName(job->state);
    m.queuedSeconds = job->queuedSeconds;
    m.resumed = false;
    return metricsToJson("cocco-serve", {m});
}

std::vector<JobEvent>
JobManager::eventsSince(int64_t id, size_t *cursor, double timeoutSec)
{
    std::unique_lock<std::mutex> lk(mu_);
    const Job *job = findLocked(id);
    if (!job)
        return {};
    if (timeoutSec > 0.0 && *cursor >= job->events.size() &&
        !jobStateTerminal(job->state)) {
        cv_.wait_for(lk, std::chrono::duration<double>(timeoutSec), [&] {
            return *cursor < job->events.size() ||
                   jobStateTerminal(job->state);
        });
    }
    std::vector<JobEvent> out;
    for (size_t i = *cursor; i < job->events.size(); ++i)
        out.push_back(job->events[i]);
    *cursor = job->events.size();
    return out;
}

EvalCacheStats
JobManager::cacheStats() const
{
    return cache_ ? cache_->stats() : EvalCacheStats{};
}

void
JobManager::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                if (shutdown_.load(std::memory_order_relaxed))
                    return true;
                for (const auto &j : jobs_)
                    if (j->state == JobState::Queued)
                        return true;
                return false;
            });
            if (shutdown_.load(std::memory_order_relaxed))
                return;
            for (const auto &j : jobs_) {
                if (j->state == JobState::Queued) {
                    job = j.get();
                    break;
                }
            }
            if (!job)
                continue;
            job->state = JobState::Running;
            --queuedCount_;
            job->started = Clock::now();
            job->queuedSeconds =
                secondsBetween(job->submitted, job->started);

            // The thread-budget ledger: grant what the spec asks for,
            // capped by what the budget has left, never below 1. The
            // grant cannot change the job's result (the engine's
            // determinism contract), only its speed.
            int want = ThreadPool::resolveThreads(job->spec.eval.threads);
            int grant =
                std::min(want, std::max(1, threadBudget_ - threadsInUse_));
            job->threads = std::max(1, grant);
            threadsInUse_ += job->threads;

            JobEvent e;
            e.kind = JobEvent::Kind::Started;
            e.job = job->id;
            pushEventLocked(*job, std::move(e));
            cv_.notify_all();
        }
        runJob(*job);
        {
            std::lock_guard<std::mutex> lk(mu_);
            threadsInUse_ -= job->threads;
            cv_.notify_all();
        }
    }
}

void
JobManager::runJob(Job &job)
{
    auto t0 = Clock::now();

    // Exactly the CLI's `run` execution path (tools/cocco_cli.cc
    // runSpec), so a served job is bit-identical to the solo run:
    // resolve workload and platform, apply the workload batch
    // override, scale out over the deployment when enabled.
    SearchSpec spec = job.spec;
    spec.eval.threads = job.threads;

    JobObserver observer(mu_, cv_, job, shutdown_, &pushEvent);
    spec.eval.observer = &observer;

    if (cache_ && spec.eval.cacheEnabled) {
        spec.eval.cache = cache_;
    } else {
        spec.eval.cacheEnabled = false;
        spec.eval.cache = nullptr;
    }

    std::string err;

    // A workload_set spec runs the co-scheduler instead of the solo
    // framework; the branch mirrors the CLI's coschedule path.
    if (spec.workloadSet.enabled()) {
        std::vector<Graph> graphs(spec.workloadSet.size());
        std::string names;
        for (int t = 0; t < spec.workloadSet.size(); ++t) {
            if (!resolveWorkload(spec.workloadSet.tenants[t].workload,
                                 &graphs[t], &err)) {
                finishJob(job, JobState::Failed, err);
                return;
            }
            names += (t ? "+" : "") + graphs[t].name();
        }
        AcceleratorConfig accel;
        if (!resolvePlatform(spec.platform, &accel, &err)) {
            finishJob(job, JobState::Failed, err);
            return;
        }
        DeploymentConfig dep;
        if (spec.deployment.enabled) {
            if (!resolveDeployment(spec.deployment, accel, &dep, &err)) {
                finishJob(job, JobState::Failed, err);
                return;
            }
        } else {
            dep = homogeneousDeployment(accel, 1);
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            job.modelName = names;
        }

        CoScheduler sched(graphs, spec.workloadSet, dep);
        ScheduleResult r = sched.explore(spec);
        double wall = secondsBetween(t0, Clock::now());
        {
            std::lock_guard<std::mutex> lk(mu_);
            job.scheduleJson = scheduleResultToJson(sched.model(), r);
            fillTenantMetrics(sched.model(), r, &job.scheduleMetrics);
            job.hasSchedule = true;
            job.result.samples = r.samples;
            job.result.objective = r.objective;
            job.result.stop = r.stop;
            job.result.cacheStats = r.cacheStats;
            job.hasResult = true;
            job.wallSeconds = wall;
        }
        finishJob(job,
                  r.stop == StopReason::Cancelled ? JobState::Cancelled
                                                  : JobState::Done,
                  "");
        return;
    }

    Graph g;
    if (!resolveWorkload(spec.workload, &g, &err)) {
        finishJob(job, JobState::Failed, err);
        return;
    }
    AcceleratorConfig accel;
    if (!resolvePlatform(spec.platform, &accel, &err)) {
        finishJob(job, JobState::Failed, err);
        return;
    }
    if (spec.workload.params.batch > 0)
        accel.batch = spec.workload.params.batch;

    {
        std::lock_guard<std::mutex> lk(mu_);
        job.graph = std::move(g);
        job.modelName = job.graph.name();
    }

    std::unique_ptr<CoccoFramework> cocco;
    if (spec.deployment.enabled) {
        DeploymentConfig dep;
        if (!resolveDeployment(spec.deployment, accel, &dep, &err)) {
            finishJob(job, JobState::Failed, err);
            return;
        }
        if (spec.workload.params.batch > 0)
            for (AcceleratorConfig &core : dep.coreConfigs)
                core.batch = spec.workload.params.batch;
        cocco = std::make_unique<CoccoFramework>(job.graph, dep);
    } else {
        cocco = std::make_unique<CoccoFramework>(job.graph, accel);
    }

    CoccoResult r = cocco->explore(spec);
    double wall = secondsBetween(t0, Clock::now());

    {
        std::lock_guard<std::mutex> lk(mu_);
        job.result = std::move(r);
        job.hasResult = true;
        job.wallSeconds = wall;
    }
    finishJob(job,
              job.result.stop == StopReason::Cancelled
                  ? JobState::Cancelled
                  : JobState::Done,
              "");
}

void
JobManager::finishJob(Job &job, JobState state, const std::string &error)
{
    std::lock_guard<std::mutex> lk(mu_);
    job.state = state;
    job.error = error;
    job.finished = Clock::now();
    job.runSeconds = secondsBetween(job.started, job.finished);

    JobEvent e;
    e.job = job.id;
    if (state == JobState::Failed) {
        e.kind = JobEvent::Kind::Failed;
        e.error = error;
    } else {
        e.kind = state == JobState::Cancelled ? JobEvent::Kind::Cancelled
                                              : JobEvent::Kind::Done;
        e.sample = job.hasResult ? job.result.samples : 0;
        e.bestCost = job.hasResult ? job.result.objective : 0.0;
        e.stop = job.hasResult ? job.result.stop : StopReason::Cancelled;
    }
    pushEventLocked(job, std::move(e));
    cv_.notify_all();
}

JobManager::Job *
JobManager::findLocked(int64_t id)
{
    for (const auto &job : jobs_)
        if (job->id == id)
            return job.get();
    return nullptr;
}

const JobManager::Job *
JobManager::findLocked(int64_t id) const
{
    for (const auto &job : jobs_)
        if (job->id == id)
            return job.get();
    return nullptr;
}

JobStatus
JobManager::statusLocked(const Job &job) const
{
    JobStatus s;
    s.id = job.id;
    s.tenant = job.tenant;
    s.name = job.name;
    s.model = job.modelName;
    s.state = job.state;
    s.threads = job.threads;
    s.progressSamples = job.progressSamples;
    s.progressBest = job.progressBest;
    if (job.state == JobState::Queued)
        s.queuedSeconds = secondsBetween(job.submitted, Clock::now());
    else
        s.queuedSeconds = job.queuedSeconds;
    if (job.state == JobState::Running)
        s.runSeconds = secondsBetween(job.started, Clock::now());
    else if (jobStateTerminal(job.state))
        s.runSeconds = job.runSeconds;
    s.error = job.error;
    return s;
}

void
JobManager::pushEventLocked(Job &job, JobEvent e)
{
    pushEvent(job, std::move(e));
}

} // namespace cocco
