/**
 * @file
 * NasNet-A-like network (Zoph et al., CVPR'18) at 331x331x3.
 *
 * Implements the published NasNet-A normal and reduction cell wiring
 * (five blocks combining the two previous cell outputs with separable
 * convolutions, average pools, and identities, concatenated at the
 * end). The stack follows the large model: stem, two stem-reduction
 * cells, then three stages of N normal cells separated by reduction
 * cells, with the filter count doubling per stage.
 *
 * We default to N=4 and base filters F=168 — a faithful topology at a
 * size that keeps search benches laptop-runnable; the graph is the
 * largest and most memory-intensive of the evaluated models, matching
 * its role in the paper's experiments.
 * Knobs: resolution, depth (cells per stage), widthMult (base F).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/** Separable conv: depth-wise k x k then dense 1x1 to @p out_c. */
NodeId
sep(ModelBuilder &b, NodeId in, int out_c, int k, int stride,
    const std::string &name)
{
    NodeId y = b.dwconv(in, k, stride, name + "_dw");
    return b.conv(y, out_c, 1, 1, name + "_pw");
}

/** 1x1 adapter bringing a tensor to @p out_c channels (and stride). */
NodeId
squeeze(ModelBuilder &b, NodeId in, int out_c, int stride,
        const std::string &name)
{
    return b.conv(in, out_c, 1, stride, name);
}

/**
 * NasNet-A normal cell. @p h_prev and @p h_cur are the two previous
 * cell outputs; both are first adapted to @p f channels. Returns the
 * concatenated cell output (5 blocks + adapted h_prev -> 6f channels).
 */
NodeId
normalCell(ModelBuilder &b, NodeId h_prev, NodeId h_cur, int f,
           const std::string &p)
{
    // Adapt spatial mismatch of h_prev (after a reduction) via stride.
    int stride_prev = static_cast<int>(
        ceilDiv(b.graph().layer(h_prev).outH, b.graph().layer(h_cur).outH));
    if (stride_prev < 1)
        stride_prev = 1;
    NodeId hp = squeeze(b, h_prev, f, stride_prev, p + "_adj_prev");
    NodeId hc = squeeze(b, h_cur, f, 1, p + "_adj_cur");

    NodeId b1 = b.add({sep(b, hc, f, 3, 1, p + "_b1s3"), hc}, p + "_b1");
    NodeId b2 = b.add({sep(b, hp, f, 3, 1, p + "_b2s3"),
                       sep(b, hc, f, 5, 1, p + "_b2s5")}, p + "_b2");
    NodeId b3 = b.add({b.pool(hc, 3, 1, p + "_b3avg"), hp}, p + "_b3");
    NodeId b4 = b.add({b.pool(hp, 3, 1, p + "_b4avg1"),
                       b.pool(hp, 3, 1, p + "_b4avg2")}, p + "_b4");
    NodeId b5 = b.add({sep(b, hp, f, 5, 1, p + "_b5s5"),
                       sep(b, hp, f, 3, 1, p + "_b5s3")}, p + "_b5");

    return b.concat({hp, b1, b2, b3, b4, b5}, p + "_out");
}

/**
 * NasNet-A reduction cell: blocks stride the current input by 2.
 * Returns the concatenated output (4f channels at half resolution).
 */
NodeId
reductionCell(ModelBuilder &b, NodeId h_prev, NodeId h_cur, int f,
              const std::string &p)
{
    int stride_prev = static_cast<int>(
        ceilDiv(b.graph().layer(h_prev).outH, b.graph().layer(h_cur).outH));
    if (stride_prev < 1)
        stride_prev = 1;
    NodeId hp = squeeze(b, h_prev, f, stride_prev, p + "_adj_prev");
    NodeId hc = squeeze(b, h_cur, f, 1, p + "_adj_cur");

    NodeId b1 = b.add({sep(b, hc, f, 5, 2, p + "_b1s5"),
                       sep(b, hp, f, 7, 2, p + "_b1s7")}, p + "_b1");
    NodeId b2 = b.add({b.pool(hc, 3, 2, p + "_b2max"),
                       sep(b, hp, f, 7, 2, p + "_b2s7")}, p + "_b2");
    NodeId b3 = b.add({b.pool(hc, 3, 2, p + "_b3avg"),
                       sep(b, hp, f, 5, 2, p + "_b3s5")}, p + "_b3");
    NodeId b4 = b.add({b.pool(b1, 3, 1, p + "_b4max"),
                       sep(b, b1, f, 3, 1, p + "_b4s3")}, p + "_b4");
    NodeId b5 = b.add({b.pool(b1, 3, 1, p + "_b5avg"), b2}, p + "_b5");

    return b.concat({b3, b4, b5, b2}, p + "_out");
}

} // namespace

Graph
buildNasNet(const ModelParams &params)
{
    const int n_cells = paramOr(params.depth, 4); // normal cells per stage
    const int f0 = scaleChannels(168, params.widthMult); // base filters
    const int res = paramOr(params.resolution, 331);

    ModelBuilder b("NasNet");
    NodeId stem = b.input(res, res, 3);
    stem = b.conv(stem, 96, 3, 2, "stem");

    // Two stem reduction cells bring 166x166 down to 42x42.
    NodeId prev = stem;
    NodeId cur = reductionCell(b, stem, stem, f0 / 4, "stem_r1");
    NodeId nxt = reductionCell(b, prev, cur, f0 / 2, "stem_r2");
    prev = cur;
    cur = nxt;

    int f = f0;
    for (int stage = 0; stage < 3; ++stage) {
        for (int i = 0; i < n_cells; ++i) {
            NodeId out = normalCell(b, prev, cur, f,
                                    strprintf("s%d_n%d", stage + 1, i + 1));
            prev = cur;
            cur = out;
        }
        if (stage < 2) {
            f *= 2;
            NodeId out = reductionCell(b, prev, cur, f,
                                       strprintf("s%d_r", stage + 1));
            prev = cur;
            cur = out;
        }
    }

    cur = b.globalPool(cur, "avgpool");
    cur = b.fc(cur, 1000, "fc1000");
    return b.take();
}

void
registerNasNetModels(ModelRegistry &r)
{
    ModelInfo info;
    info.name = "NasNet";
    info.summary = "NasNet-A cell stack (4 normal cells/stage, F=168)";
    info.knobs = kKnobResolution | kKnobDepth | kKnobWidthMult;
    info.defaults.resolution = 331;
    info.defaults.depth = 4;
    r.add(info, &buildNasNet);
}

} // namespace cocco
