/**
 * @file
 * Synthetic layered random DAGs for stress/property testing: every
 * node is a stride-1 convolution over a fixed spatial/channel shape,
 * multi-producer nodes aggregate through element-wise adds, so any
 * generated graph is shape-consistent and exercises reconvergent
 * topologies the partitioners must handle.
 */

#ifndef COCCO_MODELS_RANDOM_DAG_H
#define COCCO_MODELS_RANDOM_DAG_H

#include <cstdint>

#include "graph/graph.h"

namespace cocco {

/** Knobs for the synthetic DAG generator. */
struct RandomDagOptions
{
    int convNodes = 24;     ///< number of conv layers
    int maxFanIn = 3;       ///< max producers sampled per node
    int spatial = 32;       ///< H = W of every tensor
    int channels = 16;      ///< C of every tensor
    int maxKernel = 5;      ///< kernels sampled from {1, 3, ..., maxKernel}
    double skipProb = 0.5;  ///< probability of extra far producers
};

/** Generate a deterministic random DAG for @p seed. */
Graph buildRandomDag(uint64_t seed, const RandomDagOptions &opts = {});

} // namespace cocco

#endif // COCCO_MODELS_RANDOM_DAG_H
