/**
 * @file
 * MobileNetV2 (Sandler et al., CVPR'18) at 224x224x3 — the inverted
 * residual / linear bottleneck architecture the paper cites among
 * modern residual structures — and a FSRCNN-style super-resolution
 * network at 1280x720, the class of workload SR-CNN's selective
 * caching targets (huge activations, tiny weights: the extreme
 * fusion-friendly case).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/**
 * One inverted residual block: 1x1 expand (t x), 3x3 depth-wise,
 * 1x1 linear project, with a residual add when stride 1 and the
 * channel count is preserved.
 */
NodeId
invertedResidual(ModelBuilder &b, NodeId in, int expand, int out_c,
                 int stride, const std::string &p)
{
    // Copy, don't reference: adding nodes may reallocate the layer
    // storage a `const Layer &` would point into.
    const int in_c = b.graph().layer(in).outC;
    int mid = in_c * expand;
    NodeId y = in;
    if (expand != 1)
        y = b.conv(y, mid, 1, 1, p + "_expand");
    y = b.dwconv(y, 3, stride, p + "_dw");
    y = b.conv(y, out_c, 1, 1, p + "_project");
    if (stride == 1 && in_c == out_c)
        y = b.add({in, y}, p + "_add");
    return y;
}

} // namespace

Graph
buildMobileNetV2(const ModelParams &params)
{
    const int res = paramOr(params.resolution, 224);
    const double w = params.widthMult;

    ModelBuilder b("MobileNetV2");
    NodeId x = b.input(res, res, 3);
    x = b.conv(x, scaleChannels(32, w), 3, 2, "stem");

    // (expansion t, channels c, repeats n, stride s) per the paper.
    struct Stage { int t, c, n, s; };
    const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2}, {6, 32, 3, 2},
                            {6, 64, 4, 2},  {6, 96, 3, 1}, {6, 160, 3, 2},
                            {6, 320, 1, 1}};
    int blk = 0;
    for (const Stage &st : stages) {
        for (int i = 0; i < st.n; ++i) {
            int stride = i == 0 ? st.s : 1;
            x = invertedResidual(b, x, st.t, scaleChannels(st.c, w),
                                 stride, strprintf("ir%d", ++blk));
        }
    }
    x = b.conv(x, scaleChannels(1280, w), 1, 1, "head");
    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

Graph
buildSRCNN(const ModelParams &params)
{
    // FSRCNN-style: feature extraction, shrink, mapping stack,
    // expand, reconstruction — default on a 1280x720 (16:9) frame.
    // Activations dwarf the weights, so inter-layer fusion is the
    // whole game.
    const int h = paramOr(params.resolution, 720);
    // 64-bit and bounded before the cast: a schema-valid but absurd
    // resolution must fail loudly, not overflow into garbage.
    const int64_t w64 = static_cast<int64_t>(h) * 16 / 9;
    if (w64 > (1 << 26))
        fatal("resolution %d is beyond the supported range", h);
    const int w16 = static_cast<int>(w64);
    const int maps = paramOr(params.depth, 6);
    const double w = params.widthMult;

    ModelBuilder b("SRCNN");
    NodeId x = b.input(h, w16, 3);
    x = b.conv(x, scaleChannels(56, w), 5, 1, "feature");
    x = b.conv(x, scaleChannels(12, w), 1, 1, "shrink");
    for (int i = 0; i < maps; ++i)
        x = b.conv(x, scaleChannels(12, w), 3, 1,
                   strprintf("map%d", i + 1));
    x = b.conv(x, scaleChannels(56, w), 1, 1, "expand");
    x = b.conv(x, 12, 9, 1, "reconstruct"); // 12 = 3 x (2x2 upscale)
    return b.take();
}

void
registerMobileNetModels(ModelRegistry &r)
{
    ModelInfo info;
    info.name = "MobileNetV2";
    info.summary = "inverted-residual mobile CNN";
    info.knobs = kKnobResolution | kKnobWidthMult;
    info.defaults.resolution = 224;
    r.add(info, &buildMobileNetV2);

    ModelInfo srcnn;
    srcnn.name = "SRCNN";
    srcnn.summary = "FSRCNN-style super-resolution (huge activations, "
                    "tiny weights)";
    srcnn.knobs = kKnobResolution | kKnobDepth | kKnobWidthMult;
    srcnn.defaults.resolution = 720;
    srcnn.defaults.depth = 6;
    r.add(srcnn, &buildSRCNN);
}

} // namespace cocco
