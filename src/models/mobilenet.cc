/**
 * @file
 * MobileNetV2 (Sandler et al., CVPR'18) at 224x224x3 — the inverted
 * residual / linear bottleneck architecture the paper cites among
 * modern residual structures — and a FSRCNN-style super-resolution
 * network at 1280x720, the class of workload SR-CNN's selective
 * caching targets (huge activations, tiny weights: the extreme
 * fusion-friendly case).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/**
 * One inverted residual block: 1x1 expand (t x), 3x3 depth-wise,
 * 1x1 linear project, with a residual add when stride 1 and the
 * channel count is preserved.
 */
NodeId
invertedResidual(ModelBuilder &b, NodeId in, int expand, int out_c,
                 int stride, const std::string &p)
{
    const Layer &li = b.graph().layer(in);
    int mid = li.outC * expand;
    NodeId y = in;
    if (expand != 1)
        y = b.conv(y, mid, 1, 1, p + "_expand");
    y = b.dwconv(y, 3, stride, p + "_dw");
    y = b.conv(y, out_c, 1, 1, p + "_project");
    if (stride == 1 && li.outC == out_c)
        y = b.add({in, y}, p + "_add");
    return y;
}

} // namespace

Graph
buildMobileNetV2()
{
    ModelBuilder b("MobileNetV2");
    NodeId x = b.input(224, 224, 3);
    x = b.conv(x, 32, 3, 2, "stem");

    // (expansion t, channels c, repeats n, stride s) per the paper.
    struct Stage { int t, c, n, s; };
    const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2}, {6, 32, 3, 2},
                            {6, 64, 4, 2},  {6, 96, 3, 1}, {6, 160, 3, 2},
                            {6, 320, 1, 1}};
    int blk = 0;
    for (const Stage &st : stages) {
        for (int i = 0; i < st.n; ++i) {
            int stride = i == 0 ? st.s : 1;
            x = invertedResidual(b, x, st.t, st.c, stride,
                                 strprintf("ir%d", ++blk));
        }
    }
    x = b.conv(x, 1280, 1, 1, "head");
    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

Graph
buildSRCNN()
{
    // FSRCNN-style: feature extraction, shrink, mapping stack,
    // expand, reconstruction — all on a 1280x720 frame. Activations
    // dwarf the weights, so inter-layer fusion is the whole game.
    ModelBuilder b("SRCNN");
    NodeId x = b.input(720, 1280, 3);
    x = b.conv(x, 56, 5, 1, "feature");
    x = b.conv(x, 12, 1, 1, "shrink");
    for (int i = 0; i < 6; ++i)
        x = b.conv(x, 12, 3, 1, strprintf("map%d", i + 1));
    x = b.conv(x, 56, 1, 1, "expand");
    x = b.conv(x, 12, 9, 1, "reconstruct"); // 12 = 3 x (2x2 upscale)
    return b.take();
}

} // namespace cocco
