/**
 * @file
 * VGG16 (Simonyan & Zisserman, ICLR'15), configuration D: 13 conv
 * layers + 5 max-pools + 3 FC layers, input 224x224x3.
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

Graph
buildVGG16()
{
    ModelBuilder b("VGG16");
    NodeId x = b.input(224, 224, 3);

    struct Stage { int convs; int channels; };
    const Stage stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};

    int idx = 0;
    for (int s = 0; s < 5; ++s) {
        for (int c = 0; c < stages[s].convs; ++c) {
            x = b.conv(x, stages[s].channels, 3, 1,
                       strprintf("conv%d_%d", s + 1, c + 1));
            ++idx;
        }
        x = b.pool(x, 2, 2, strprintf("pool%d", s + 1));
    }
    (void)idx;

    // FC layers as 1x1 convolutions over a 1x1 spatial map. The first
    // FC consumes the flattened 7x7x512 tensor; model it as a global
    // 7x7 convolution to 4096 channels (identical weights and MACs).
    x = b.conv(x, 4096, 7, 7, "fc6");
    x = b.fc(x, 4096, "fc7");
    x = b.fc(x, 1000, "fc8");

    return b.take();
}

} // namespace cocco
