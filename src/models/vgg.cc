/**
 * @file
 * VGG16 (Simonyan & Zisserman, ICLR'15), configuration D: 13 conv
 * layers + 5 max-pools + 3 FC layers, default input 224x224x3.
 * Knobs: resolution, widthMult (classifier width 1000 is fixed).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

Graph
buildVGG16(const ModelParams &params)
{
    const int res = paramOr(params.resolution, 224);
    const double w = params.widthMult;

    ModelBuilder b("VGG16");
    NodeId x = b.input(res, res, 3);

    struct Stage { int convs; int channels; };
    const Stage stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};

    for (int s = 0; s < 5; ++s) {
        for (int c = 0; c < stages[s].convs; ++c)
            x = b.conv(x, scaleChannels(stages[s].channels, w), 3, 1,
                       strprintf("conv%d_%d", s + 1, c + 1));
        x = b.pool(x, 2, 2, strprintf("pool%d", s + 1));
    }

    // FC layers as 1x1 convolutions over a 1x1 spatial map. The first
    // FC consumes the flattened final feature map; model it as a
    // global convolution to 4096 channels (identical weights and
    // MACs). The kernel is the remaining spatial size (7 at 224).
    int spatial = b.graph().layer(x).outH;
    x = b.conv(x, scaleChannels(4096, w), spatial, spatial, "fc6");
    x = b.fc(x, scaleChannels(4096, w), "fc7");
    x = b.fc(x, 1000, "fc8");

    return b.take();
}

void
registerVggModels(ModelRegistry &r)
{
    ModelInfo info;
    info.name = "VGG16";
    info.summary = "plain 16-weight-layer CNN (VGG-D)";
    info.knobs = kKnobResolution | kKnobWidthMult;
    info.defaults.resolution = 224;
    r.add(info, &buildVGG16);
}

} // namespace cocco
