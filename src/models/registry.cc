/**
 * @file
 * The ModelRegistry: the one place that knows which models exist.
 * Every user-facing list (allModelNames, `--list-models`,
 * `describe-model`) is generated from it, and buildModel() dispatches
 * through it, so model names and parameter documentation cannot drift
 * from the builders.
 */

#include "models/models.h"

#include "util/json.h"
#include "util/logging.h"

namespace cocco {

ModelRegistry::ModelRegistry()
{
    // Paper presentation order (Section 5.1.1), then the extras.
    registerVggModels(*this);
    registerResNetModels(*this);
    registerGoogleNetModels(*this);
    registerTransformerModels(*this);
    registerRandWireModels(*this);
    registerNasNetModels(*this);
    registerMobileNetModels(*this);
}

ModelRegistry &
ModelRegistry::instance()
{
    static ModelRegistry registry;
    return registry;
}

void
ModelRegistry::add(ModelInfo info, ModelBuilderFn builder,
                   const std::vector<std::string> &aliases)
{
    if (find(info.name))
        fatal("model '%s' is already registered", info.name.c_str());
    for (const std::string &alias : aliases)
        if (find(alias))
            fatal("model alias '%s' is already registered",
                  alias.c_str());
    entries_.push_back({std::move(info), builder, aliases});
}

const ModelRegistry::Entry *
ModelRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries_) {
        if (e.info.name == name)
            return &e;
        for (const std::string &alias : e.aliases)
            if (alias == name)
                return &e;
    }
    return nullptr;
}

bool
ModelRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

Graph
ModelRegistry::build(const std::string &name,
                     const ModelParams &params) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("unknown model '%s' (known: %s)", name.c_str(),
              joinComma(keys()).c_str());
    return e->builder(params);
}

const ModelInfo &
ModelRegistry::info(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("unknown model '%s'", name.c_str());
    return e->info;
}

std::vector<std::string>
ModelRegistry::keys() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        out.push_back(e.info.name);
    return out;
}

std::string
modelKnobsStr(const ModelInfo &info)
{
    std::string s;
    auto knob = [&](unsigned bit, const std::string &text) {
        if (info.knobs & bit)
            s += (s.empty() ? "" : " ") + text;
    };
    knob(kKnobResolution,
         strprintf("resolution=%d", info.defaults.resolution));
    knob(kKnobSeqLen, strprintf("seqLen=%d", info.defaults.seqLen));
    knob(kKnobDepth, strprintf("depth=%d", info.defaults.depth));
    knob(kKnobWidthMult,
         strprintf("widthMult=%g", info.defaults.widthMult));
    knob(kKnobSeed, strprintf("seed=%llu",
                              static_cast<unsigned long long>(
                                  info.defaults.seed)));
    return s;
}

Graph
buildModel(const std::string &name)
{
    return ModelRegistry::instance().build(name);
}

Graph
buildModel(const std::string &name, const ModelParams &params)
{
    return ModelRegistry::instance().build(name, params);
}

std::vector<std::string>
allModelNames()
{
    return ModelRegistry::instance().keys();
}

bool
modelParamsFromJson(const JsonValue &doc, ModelParams *params,
                    std::string *err)
{
    auto bad = [&](const std::string &what) {
        return jsonFail(err, what);
    };
    if (!doc.isObject())
        return bad("\"params\" must be an object");
    // Each knob: type/exactness check, then its domain bound.
    auto knob = [&](const JsonValue &v, const char *key, int *out,
                    int min) {
        return jsonReadIntAs(v, key, out, err) &&
               (*out >= min ||
                bad(strprintf("\"%s\" must be >= %d", key, min)));
    };
    for (const auto &[k, v] : doc.members()) {
        bool ok;
        if (k == "batch")
            ok = knob(v, "params.batch", &params->batch, 1);
        else if (k == "resolution")
            ok = knob(v, "params.resolution", &params->resolution, 0);
        else if (k == "seqLen")
            ok = knob(v, "params.seqLen", &params->seqLen, 0);
        else if (k == "depth")
            ok = knob(v, "params.depth", &params->depth, 0);
        else if (k == "widthMult")
            ok = jsonReadNumber(v, "params.widthMult",
                                &params->widthMult, err) &&
                 (params->widthMult > 0.0 ||
                  bad("\"params.widthMult\" must be > 0"));
        else if (k == "seed")
            ok = jsonReadIntAs(v, "params.seed", &params->seed, err);
        else
            ok = bad(strprintf("unknown \"params\" key \"%s\"",
                               k.c_str()));
        if (!ok)
            return false;
    }
    return true;
}

} // namespace cocco
