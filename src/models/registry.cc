#include "models/models.h"

#include "util/logging.h"

namespace cocco {

Graph
buildModel(const std::string &name)
{
    if (name == "VGG16")
        return buildVGG16();
    if (name == "ResNet50")
        return buildResNet50();
    if (name == "ResNet152")
        return buildResNet152();
    if (name == "GoogleNet")
        return buildGoogleNet();
    if (name == "Transformer")
        return buildTransformer();
    if (name == "GPT")
        return buildGPT();
    if (name == "RandWire-A" || name == "RandWire")
        return buildRandWire('A');
    if (name == "RandWire-B")
        return buildRandWire('B');
    if (name == "NasNet")
        return buildNasNet();
    if (name == "MobileNetV2")
        return buildMobileNetV2();
    if (name == "SRCNN")
        return buildSRCNN();
    fatal("unknown model '%s'", name.c_str());
}

std::vector<std::string>
allModelNames()
{
    return {"VGG16",       "ResNet50", "ResNet152",  "GoogleNet",
            "Transformer", "GPT",      "RandWire-A", "RandWire-B",
            "NasNet",      "MobileNetV2", "SRCNN"};
}

} // namespace cocco
