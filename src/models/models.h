/**
 * @file
 * The workload frontend: a parameterized, self-registering model zoo.
 *
 * Builders for the networks evaluated in the paper (Section 5.1.1) —
 * plain (VGG16), multi-branch (ResNet50/152, GoogleNet, Transformer,
 * GPT), and irregular (RandWire-A/B, NasNet) — plus MobileNetV2 and a
 * FSRCNN-style super-resolution network. Every builder reads a
 * ModelParams block whose defaults reproduce the paper configuration
 * bit-identically, so `buildModel(name)` and `buildModel(name, {})`
 * are the frozen paper workloads and non-default parameters open the
 * same topologies at other scales.
 *
 * Conventions (as in the paper): FC layers become 1x1 convolutions;
 * pooling and element-wise layers are analysed as depth-wise
 * convolutions without weights; scalar ops are hidden in the pipeline
 * and not represented.
 */

#ifndef COCCO_MODELS_MODELS_H
#define COCCO_MODELS_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace cocco {

class JsonValue;

/**
 * Hyper-parameters of a model build. A zero (or, for widthMult, 1.0)
 * means "the model's paper default"; each builder reads only the
 * fields that are meaningful for its topology (see ModelInfo::knobs)
 * and ignores the rest.
 */
struct ModelParams
{
    /** Workload batch size; 0 = the platform's batch. Does not change
     *  the graph topology: the cost model accounts for batching on
     *  the platform side, so run specs apply an explicit workload
     *  batch (>= 1, including 1) over AcceleratorConfig::batch. */
    int batch = 0;

    int resolution = 0;  ///< input height in pixels (0 = model default)
    int seqLen = 0;      ///< sequence length for token models (0 = default)
    int depth = 0;       ///< depth knob: layers/cells/blocks (0 = default)
    double widthMult = 1.0; ///< channel width multiplier (> 0)

    /** RandWire wiring seed. Every seed yields a different — but per
     *  seed fully deterministic — random graph (same seed, same
     *  wiring, on every platform and in every run). */
    uint64_t seed = 1;
};

/** Which ModelParams fields a builder reads (ModelInfo::knobs bits). */
enum ModelKnob : unsigned
{
    kKnobResolution = 1u << 0,
    kKnobSeqLen = 1u << 1,
    kKnobDepth = 1u << 2,
    kKnobWidthMult = 1u << 3,
    kKnobSeed = 1u << 4,
};

/** Registry metadata of one model: the source of every user-facing
 *  model list (`--list-models`, `describe-model`), so documentation
 *  cannot drift from the code. */
struct ModelInfo
{
    std::string name;     ///< registry key ("ResNet50", ...)
    std::string summary;  ///< one-line description
    unsigned knobs = 0;   ///< ModelKnob bits this builder reads
    ModelParams defaults; ///< fully-resolved paper defaults
};

/** "resolution=224 widthMult=1" style rendering of a model's
 *  supported knobs at their defaults. */
std::string modelKnobsStr(const ModelInfo &info);

/** Builder signature every registered model implements. */
using ModelBuilderFn = Graph (*)(const ModelParams &params);

/**
 * The string-keyed model registry, mirroring the SearcherRegistry:
 * frontends dispatch by name and new models plug in without touching
 * any caller. Built-ins are registered on first use in the paper's
 * presentation order; additional models can be added at startup via
 * add().
 */
class ModelRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static ModelRegistry &instance();

    /**
     * Register a model (fatal on duplicate key). @p aliases resolve
     * like the primary name but are not listed by keys().
     */
    void add(ModelInfo info, ModelBuilderFn builder,
             const std::vector<std::string> &aliases = {});

    /** @return true when @p name (or an alias) names a model. */
    bool contains(const std::string &name) const;

    /** Build @p name with @p params (fatal: unknown name). */
    Graph build(const std::string &name,
                const ModelParams &params = {}) const;

    /** Registry metadata of @p name (fatal: unknown name). */
    const ModelInfo &info(const std::string &name) const;

    /** Primary model names, in the paper's presentation order. */
    std::vector<std::string> keys() const;

  private:
    ModelRegistry();

    struct Entry
    {
        ModelInfo info;
        ModelBuilderFn builder;
        std::vector<std::string> aliases;
    };
    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries_;
};

/** VGG16 (plain structure, 16 weight layers; default 224x224). */
Graph buildVGG16(const ModelParams &params = {});

/** ResNet50 (bottleneck residual blocks; default 224x224). */
Graph buildResNet50(const ModelParams &params = {});

/** ResNet152 (default 224x224). */
Graph buildResNet152(const ModelParams &params = {});

/** GoogleNet / Inception-v1 (default 224x224). */
Graph buildGoogleNet(const ModelParams &params = {});

/** Transformer encoder (default base: 6 layers, d=512, ffn=2048,
 *  seq=512; seqLen/depth/widthMult open other stack shapes). */
Graph buildTransformer(const ModelParams &params = {});

/** GPT-1 decoder stack (default 12 layers, d=768, ffn=3072, seq=512). */
Graph buildGPT(const ModelParams &params = {});

/**
 * RandWire network generated with the Watts-Strogatz random-graph
 * regime from the RandWire paper.
 * @param variant 'A' = small regime (WS(32, 4, 0.75), C=78);
 *                'B' = regular regime (WS(32, 8, 0.75), C=109)
 * @param seed    generator seed (deterministic per seed)
 */
Graph buildRandWire(char variant, uint64_t seed = 1);

/** RandWire with the full parameter block (seed via params.seed). */
Graph buildRandWire(char variant, const ModelParams &params);

/** NasNet-A-like network (default: 4 cells/stage, F=168, 331x331). */
Graph buildNasNet(const ModelParams &params = {});

/** MobileNetV2 (inverted residual bottlenecks; default 224x224). */
Graph buildMobileNetV2(const ModelParams &params = {});

/** FSRCNN-style super-resolution network (default 1280x720 frame;
 *  resolution sets the frame height, width follows 16:9). */
Graph buildSRCNN(const ModelParams &params = {});

/**
 * Build a model by name with the paper-default parameters. The
 * recognized names are exactly the ModelRegistry's — list them with
 * allModelNames() or `cocco --list-models`; they are intentionally
 * not duplicated here so this comment cannot drift from the registry.
 * Unknown names are a user error (fatal).
 */
Graph buildModel(const std::string &name);

/** Build a model by name with explicit parameters (fatal: unknown). */
Graph buildModel(const std::string &name, const ModelParams &params);

/** All recognized model names, generated from the registry (the
 *  paper's presentation order). */
std::vector<std::string> allModelNames();

/**
 * Populate a ModelParams from a parsed JSON object (the "params"
 * block of a workload document; schema in the README). Unknown keys,
 * type mismatches and out-of-range values are reported as errors so
 * typos cannot silently fall back to defaults.
 * @return false with *err set on any problem.
 */
bool modelParamsFromJson(const JsonValue &doc, ModelParams *params,
                         std::string *err);

/**
 * A declarative workload address: either a registered model name
 * (with parameters) or a Graph JSON file exported by
 * graphToJson()/`cocco export-model`. Resolved into a Graph by
 * resolveWorkload() (core/serialize.h).
 */
struct WorkloadSpec
{
    std::string model;  ///< registry name ("" when file-based)
    std::string file;   ///< Graph JSON path ("" when registry-based)
    ModelParams params; ///< build parameters (registry models only)
};

// --- Registration hooks -------------------------------------------------
// Each model translation unit keeps its own registry knowledge behind
// one of these; ModelRegistry's constructor calls them in presentation
// order (a plain function call, so no static-initialization-order or
// archive-elision hazards). Add a hook here when adding a model file.

void registerVggModels(ModelRegistry &r);
void registerResNetModels(ModelRegistry &r);
void registerGoogleNetModels(ModelRegistry &r);
void registerTransformerModels(ModelRegistry &r);
void registerRandWireModels(ModelRegistry &r);
void registerNasNetModels(ModelRegistry &r);
void registerMobileNetModels(ModelRegistry &r);

} // namespace cocco

#endif // COCCO_MODELS_MODELS_H
