/**
 * @file
 * Builders for the networks evaluated in the paper (Section 5.1.1):
 * plain (VGG16), multi-branch (ResNet50/152, GoogleNet, Transformer,
 * GPT), and irregular (RandWire-A/B, NasNet).
 *
 * Conventions (as in the paper): FC layers become 1x1 convolutions;
 * pooling and element-wise layers are analysed as depth-wise
 * convolutions without weights; scalar ops are hidden in the pipeline
 * and not represented.
 */

#ifndef COCCO_MODELS_MODELS_H
#define COCCO_MODELS_MODELS_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace cocco {

/** VGG16 at 224x224 (plain structure, 16 weight layers). */
Graph buildVGG16();

/** ResNet50 at 224x224 (bottleneck residual blocks). */
Graph buildResNet50();

/** ResNet152 at 224x224. */
Graph buildResNet152();

/** GoogleNet (Inception-v1) at 224x224. */
Graph buildGoogleNet();

/** Transformer encoder (base: 6 layers, d=512, ffn=2048, seq=512). */
Graph buildTransformer();

/** GPT-1 decoder stack (12 layers, d=768, ffn=3072, seq=512). */
Graph buildGPT();

/**
 * RandWire network generated with the Watts-Strogatz random-graph
 * regime from the RandWire paper.
 * @param variant 'A' = small regime (WS(32, 4, 0.75), C=78);
 *                'B' = regular regime (WS(32, 8, 0.75), C=109)
 * @param seed    generator seed (deterministic per seed)
 */
Graph buildRandWire(char variant, uint64_t seed = 1);

/** NasNet-A-like network (stacked normal/reduction cells, 331x331). */
Graph buildNasNet();

/** MobileNetV2 at 224x224 (inverted residual bottlenecks). */
Graph buildMobileNetV2();

/** FSRCNN-style super-resolution network on a 1280x720 frame. */
Graph buildSRCNN();

/**
 * Build a model by name. Recognized names: VGG16, ResNet50, ResNet152,
 * GoogleNet, Transformer, GPT, RandWire-A, RandWire-B, NasNet.
 * Unknown names are a user error (fatal).
 */
Graph buildModel(const std::string &name);

/** All recognized model names, in the paper's presentation order. */
std::vector<std::string> allModelNames();

} // namespace cocco

#endif // COCCO_MODELS_MODELS_H
