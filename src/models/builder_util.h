/**
 * @file
 * Internal convenience wrapper used by the model builders: tracks the
 * spatial size implied by each node so callers only give channel
 * counts, kernels, and strides. Output spatial size uses "same"
 * padding semantics: out = ceil(in / stride).
 */

#ifndef COCCO_MODELS_BUILDER_UTIL_H
#define COCCO_MODELS_BUILDER_UTIL_H

#include <cmath>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

/** Channel count @p c scaled by a width multiplier (never below 1;
 *  exact identity at mult == 1.0, so defaults reproduce the paper
 *  graphs bit-identically). */
inline int
scaleChannels(int c, double mult)
{
    if (mult <= 0.0)
        fatal("widthMult must be > 0 (got %g)", mult);
    // Bound before casting: an out-of-range lround result would wrap
    // into a silently wrong channel count.
    constexpr double kMaxChannels = 1 << 26;
    double scaled = c * mult;
    if (scaled > kMaxChannels)
        fatal("widthMult %g scales %d channels beyond the supported "
              "range",
              mult, c);
    int s = static_cast<int>(std::lround(scaled));
    return s < 1 ? 1 : s;
}

/** @p value when non-zero, else the model's @p fallback default
 *  (the ModelParams "0 = paper default" convention). */
inline int
paramOr(int value, int fallback)
{
    if (value < 0)
        fatal("model parameters must be >= 0 (got %d)", value);
    return value == 0 ? fallback : value;
}

/** Fluent helper for assembling model graphs. */
class ModelBuilder
{
  public:
    explicit ModelBuilder(std::string name) : g_(std::move(name)) {}

    /** Add the model input tensor. */
    NodeId
    input(int h, int w, int c, const std::string &name = "input")
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Input;
        l.outH = h;
        l.outW = w;
        l.outC = c;
        return g_.addNode(l);
    }

    /** Dense convolution (FC when k == 1 and spatial == 1). */
    NodeId
    conv(NodeId in, int out_c, int k, int s, const std::string &name)
    {
        return addSpatial(LayerKind::Conv, {in}, out_c, k, s, name);
    }

    /** Depth-wise convolution with weights (channels preserved). */
    NodeId
    dwconv(NodeId in, int k, int s, const std::string &name)
    {
        return addSpatial(LayerKind::DWConv, {in}, g_.layer(in).outC, k, s,
                          name);
    }

    /** Pooling (depth-wise, no weights). */
    NodeId
    pool(NodeId in, int k, int s, const std::string &name)
    {
        return addSpatial(LayerKind::Pool, {in}, g_.layer(in).outC, k, s,
                          name);
    }

    /** Global average pool: collapses spatial dims to 1x1. */
    NodeId
    globalPool(NodeId in, const std::string &name)
    {
        const Layer &p = g_.layer(in);
        Layer l;
        l.name = name;
        l.kind = LayerKind::Pool;
        l.outH = 1;
        l.outW = 1;
        l.outC = p.outC;
        l.kernel = p.outH;
        l.stride = p.outH;
        return g_.addNode(l, {in});
    }

    /** Element-wise add of same-shape tensors. */
    NodeId
    add(const std::vector<NodeId> &ins, const std::string &name)
    {
        if (ins.size() < 2)
            fatal("add '%s' needs >= 2 inputs", name.c_str());
        const Layer &p = g_.layer(ins[0]);
        for (NodeId i : ins)
            if (g_.layer(i).outH != p.outH || g_.layer(i).outW != p.outW ||
                g_.layer(i).outC != p.outC)
                fatal("add '%s': shape mismatch", name.c_str());
        Layer l;
        l.name = name;
        l.kind = LayerKind::Eltwise;
        l.outH = p.outH;
        l.outW = p.outW;
        l.outC = p.outC;
        return g_.addNode(l, ins);
    }

    /** Channel concatenation of same-spatial tensors. */
    NodeId
    concat(const std::vector<NodeId> &ins, const std::string &name)
    {
        if (ins.size() < 2)
            fatal("concat '%s' needs >= 2 inputs", name.c_str());
        const Layer &p = g_.layer(ins[0]);
        int c = 0;
        for (NodeId i : ins) {
            if (g_.layer(i).outH != p.outH || g_.layer(i).outW != p.outW)
                fatal("concat '%s': spatial mismatch", name.c_str());
            c += g_.layer(i).outC;
        }
        Layer l;
        l.name = name;
        l.kind = LayerKind::Concat;
        l.outH = p.outH;
        l.outW = p.outW;
        l.outC = c;
        return g_.addNode(l, ins);
    }

    /** Activation-activation matmul producing h x w x c. */
    NodeId
    matmul(NodeId a, NodeId b, int h, int w, int c, const std::string &name)
    {
        Layer l;
        l.name = name;
        l.kind = LayerKind::Matmul;
        l.outH = h;
        l.outW = w;
        l.outC = c;
        return g_.addNode(l, {a, b});
    }

    /** Fully-connected layer treated as 1x1 conv at the input's spatial. */
    NodeId
    fc(NodeId in, int out_c, const std::string &name)
    {
        return conv(in, out_c, 1, 1, name);
    }

    /** Access the graph under construction. */
    Graph &graph() { return g_; }
    const Graph &graph() const { return g_; }

    /** Move the finished graph out. */
    Graph take() { return std::move(g_); }

  private:
    NodeId
    addSpatial(LayerKind kind, const std::vector<NodeId> &ins, int out_c,
               int k, int s, const std::string &name)
    {
        const Layer &p = g_.layer(ins[0]);
        Layer l;
        l.name = name;
        l.kind = kind;
        l.outH = static_cast<int>(ceilDiv(p.outH, s));
        l.outW = static_cast<int>(ceilDiv(p.outW, s));
        l.outC = out_c;
        l.kernel = k;
        l.stride = s;
        return g_.addNode(l, ins);
    }

    Graph g_;
};

} // namespace cocco

#endif // COCCO_MODELS_BUILDER_UTIL_H
