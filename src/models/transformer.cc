/**
 * @file
 * Transformer encoder (Vaswani et al., NIPS'17, base configuration)
 * and GPT-1 decoder stack (Radford et al., 2018).
 *
 * Tokens map to the height dimension (H = sequence length, W = 1,
 * C = model width); FC projections are 1x1 convolutions, attention
 * score/context products are activation-activation Matmul nodes, and
 * residual connections are element-wise adds. LayerNorm and softmax
 * are scalar pipeline ops and not represented (paper Section 5.1.1).
 *
 * Knobs: seqLen (sequence length), depth (encoder/decoder layers),
 * widthMult (scales d_model and d_ffn together).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/** One attention + FFN block appended at @p x; returns the block output. */
NodeId
transformerBlock(ModelBuilder &b, NodeId x, int seq, int d_model, int d_ffn,
                 const std::string &prefix)
{
    NodeId q = b.fc(x, d_model, prefix + "_q");
    NodeId k = b.fc(x, d_model, prefix + "_k");
    NodeId v = b.fc(x, d_model, prefix + "_v");

    // scores = Q K^T : seq x seq map.
    NodeId scores = b.matmul(q, k, seq, 1, seq, prefix + "_qk");
    // context = scores V : seq x d_model.
    NodeId ctx = b.matmul(scores, v, seq, 1, d_model, prefix + "_sv");
    NodeId proj = b.fc(ctx, d_model, prefix + "_proj");
    NodeId res1 = b.add({x, proj}, prefix + "_add1");

    NodeId ff1 = b.fc(res1, d_ffn, prefix + "_ffn1");
    NodeId ff2 = b.fc(ff1, d_model, prefix + "_ffn2");
    return b.add({res1, ff2}, prefix + "_add2");
}

Graph
buildStack(const char *name, const ModelParams &p, int def_layers,
           int def_d_model, int def_d_ffn)
{
    const int layers = paramOr(p.depth, def_layers);
    const int seq = paramOr(p.seqLen, 512);
    const int d_model = scaleChannels(def_d_model, p.widthMult);
    const int d_ffn = scaleChannels(def_d_ffn, p.widthMult);

    ModelBuilder b(name);
    NodeId x = b.input(seq, 1, d_model);
    for (int i = 0; i < layers; ++i)
        x = transformerBlock(b, x, seq, d_model, d_ffn,
                             strprintf("l%d", i + 1));
    return b.take();
}

} // namespace

Graph
buildTransformer(const ModelParams &params)
{
    return buildStack("Transformer", params, 6, 512, 2048);
}

Graph
buildGPT(const ModelParams &params)
{
    return buildStack("GPT", params, 12, 768, 3072);
}

void
registerTransformerModels(ModelRegistry &r)
{
    ModelInfo info;
    info.knobs = kKnobSeqLen | kKnobDepth | kKnobWidthMult;
    info.defaults.seqLen = 512;

    info.name = "Transformer";
    info.summary = "encoder stack (base: 6 layers, d=512, ffn=2048)";
    info.defaults.depth = 6;
    r.add(info, &buildTransformer);

    info.name = "GPT";
    info.summary = "GPT-1 decoder stack (12 layers, d=768, ffn=3072)";
    info.defaults.depth = 12;
    r.add(info, &buildGPT);
}

} // namespace cocco
