/**
 * @file
 * Transformer encoder (Vaswani et al., NIPS'17, base configuration)
 * and GPT-1 decoder stack (Radford et al., 2018).
 *
 * Tokens map to the height dimension (H = sequence length, W = 1,
 * C = model width); FC projections are 1x1 convolutions, attention
 * score/context products are activation-activation Matmul nodes, and
 * residual connections are element-wise adds. LayerNorm and softmax
 * are scalar pipeline ops and not represented (paper Section 5.1.1).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/** One attention + FFN block appended at @p x; returns the block output. */
NodeId
transformerBlock(ModelBuilder &b, NodeId x, int seq, int d_model, int d_ffn,
                 const std::string &prefix)
{
    NodeId q = b.fc(x, d_model, prefix + "_q");
    NodeId k = b.fc(x, d_model, prefix + "_k");
    NodeId v = b.fc(x, d_model, prefix + "_v");

    // scores = Q K^T : seq x seq map.
    NodeId scores = b.matmul(q, k, seq, 1, seq, prefix + "_qk");
    // context = scores V : seq x d_model.
    NodeId ctx = b.matmul(scores, v, seq, 1, d_model, prefix + "_sv");
    NodeId proj = b.fc(ctx, d_model, prefix + "_proj");
    NodeId res1 = b.add({x, proj}, prefix + "_add1");

    NodeId ff1 = b.fc(res1, d_ffn, prefix + "_ffn1");
    NodeId ff2 = b.fc(ff1, d_model, prefix + "_ffn2");
    return b.add({res1, ff2}, prefix + "_add2");
}

Graph
buildStack(const char *name, int layers, int seq, int d_model, int d_ffn)
{
    ModelBuilder b(name);
    NodeId x = b.input(seq, 1, d_model);
    for (int i = 0; i < layers; ++i)
        x = transformerBlock(b, x, seq, d_model, d_ffn,
                             strprintf("l%d", i + 1));
    return b.take();
}

} // namespace

Graph
buildTransformer()
{
    return buildStack("Transformer", 6, 512, 512, 2048);
}

Graph
buildGPT()
{
    return buildStack("GPT", 12, 512, 768, 3072);
}

} // namespace cocco
