/**
 * @file
 * RandWire networks (Xie et al., ICCV'19) generated with the
 * Watts-Strogatz (WS) random-graph model and oriented into a DAG by
 * node index, as in the original paper.
 *
 * Variant 'A' follows the small regime: a conv stem plus three random
 * stages of N=32 nodes with WS(32, 4, 0.75) wiring and base width
 * C=78. Variant 'B' follows the regular regime: four random stages
 * (the first halved to N=16) with WS(K=8) wiring and C=109.
 *
 * Each random node is an aggregation (element-wise weighted sum when
 * in-degree > 1) followed by a ReLU-SepConv3x3 (depth-wise 3x3 then
 * 1x1 dense); stage entry nodes use stride 2 to downsample. Sink
 * nodes of a stage are averaged into a single stage output.
 */

#include <algorithm>
#include <set>
#include <utility>

#include "models/builder_util.h"
#include "models/models.h"
#include "util/random.h"

namespace cocco {

namespace {

/**
 * Generate an undirected Watts-Strogatz graph on @p n nodes: ring
 * lattice with @p k nearest neighbours, each edge rewired with
 * probability @p p. Returns the edge set (i < j pairs).
 */
std::set<std::pair<int, int>>
wattsStrogatz(int n, int k, double p, Rng &rng)
{
    std::set<std::pair<int, int>> edges;
    auto norm = [](int a, int b) {
        return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    // Ring lattice.
    for (int i = 0; i < n; ++i)
        for (int j = 1; j <= k / 2; ++j)
            edges.insert(norm(i, (i + j) % n));
    // Rewire.
    std::vector<std::pair<int, int>> initial(edges.begin(), edges.end());
    for (auto [a, bnode] : initial) {
        if (!rng.bernoulli(p))
            continue;
        // Rewire the far endpoint to a uniformly random non-self,
        // non-duplicate target.
        for (int attempt = 0; attempt < 32; ++attempt) {
            int t = static_cast<int>(rng.index(static_cast<size_t>(n)));
            if (t == a || t == bnode)
                continue;
            auto candidate = norm(a, t);
            if (edges.count(candidate))
                continue;
            edges.erase(norm(a, bnode));
            edges.insert(candidate);
            break;
        }
    }
    return edges;
}

/** A separable conv: depth-wise k x k then dense 1x1 to @p out_c. */
NodeId
sepConv(ModelBuilder &b, NodeId in, int out_c, int stride,
        const std::string &prefix)
{
    NodeId y = b.dwconv(in, 3, stride, prefix + "_dw");
    return b.conv(y, out_c, 1, 1, prefix + "_pw");
}

/**
 * Emit one random stage: @p n WS nodes of width @p c, entry nodes at
 * stride 2. @p stage_in is the previous stage output.
 */
NodeId
randomStage(ModelBuilder &b, NodeId stage_in, int n, int k, double p, int c,
            Rng &rng, const std::string &prefix)
{
    auto edges = wattsStrogatz(n, k, p, rng);

    std::vector<std::vector<int>> preds(n);
    std::vector<bool> has_succ(n, false);
    for (auto [i, j] : edges) {
        preds[j].push_back(i);
        has_succ[i] = true;
    }

    std::vector<NodeId> node_out(n, -1);
    for (int i = 0; i < n; ++i) {
        std::string name = strprintf("%s_n%d", prefix.c_str(), i);
        NodeId in;
        int stride = 1;
        if (preds[i].empty()) {
            // Stage entry: consumes the previous stage output, stride 2.
            in = stage_in;
            stride = 2;
        } else if (preds[i].size() == 1) {
            in = node_out[preds[i][0]];
        } else {
            std::vector<NodeId> ins;
            for (int u : preds[i])
                ins.push_back(node_out[u]);
            in = b.add(ins, name + "_agg");
        }
        node_out[i] = sepConv(b, in, c, stride, name);
    }

    // Average the sinks into a single stage output.
    std::vector<NodeId> sinks;
    for (int i = 0; i < n; ++i)
        if (!has_succ[i])
            sinks.push_back(node_out[i]);
    if (sinks.size() == 1)
        return sinks[0];
    return b.add(sinks, prefix + "_out");
}

} // namespace

Graph
buildRandWire(char variant, const ModelParams &params)
{
    if (variant != 'A' && variant != 'B')
        fatal("RandWire variant must be 'A' or 'B', got '%c'", variant);

    const bool small = (variant == 'A');
    const int res = paramOr(params.resolution, 224);
    const int c = scaleChannels(small ? 78 : 109, params.widthMult);
    const int head = scaleChannels(1280, params.widthMult);
    const int k = small ? 4 : 8;
    const double p = 0.75;

    Rng rng(params.seed * 7919 + (small ? 1 : 2));
    ModelBuilder b(strprintf("RandWire-%c", variant));

    NodeId x = b.input(res, res, 3);
    x = b.conv(x, c / 2, 3, 2, "stem");

    if (small) {
        // Small regime: conv2 is a plain conv stage; conv3-5 random.
        x = b.conv(x, c, 3, 2, "conv2");
        x = randomStage(b, x, 32, k, p, c, rng, "s3");
        x = randomStage(b, x, 32, k, p, 2 * c, rng, "s4");
        x = randomStage(b, x, 32, k, p, 4 * c, rng, "s5");
        x = b.conv(x, head, 1, 1, "head");
    } else {
        // Regular regime: conv2-5 all random, conv2 halved node count.
        x = randomStage(b, x, 16, k, p, c, rng, "s2");
        x = randomStage(b, x, 32, k, p, 2 * c, rng, "s3");
        x = randomStage(b, x, 32, k, p, 4 * c, rng, "s4");
        x = randomStage(b, x, 32, k, p, 8 * c, rng, "s5");
        x = b.conv(x, head, 1, 1, "head");
    }

    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

Graph
buildRandWire(char variant, uint64_t seed)
{
    ModelParams params;
    params.seed = seed;
    return buildRandWire(variant, params);
}

namespace {

Graph
buildRandWireA(const ModelParams &params)
{
    return buildRandWire('A', params);
}

Graph
buildRandWireB(const ModelParams &params)
{
    return buildRandWire('B', params);
}

} // namespace

void
registerRandWireModels(ModelRegistry &r)
{
    ModelInfo info;
    info.knobs = kKnobResolution | kKnobWidthMult | kKnobSeed;
    info.defaults.resolution = 224;

    info.name = "RandWire-A";
    info.summary = "Watts-Strogatz random CNN, small regime "
                   "(WS(32,4,0.75), C=78; deterministic per seed)";
    r.add(info, &buildRandWireA, {"RandWire"});

    info.name = "RandWire-B";
    info.summary = "Watts-Strogatz random CNN, regular regime "
                   "(WS(32,8,0.75), C=109; deterministic per seed)";
    r.add(info, &buildRandWireB);
}

} // namespace cocco
