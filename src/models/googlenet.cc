/**
 * @file
 * GoogleNet / Inception-v1 (Szegedy et al., CVPR'15) at 224x224x3.
 * Nine inception modules with the original channel plan; auxiliary
 * classifiers omitted (inference graph).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/** Channel plan of one inception module. */
struct InceptionSpec
{
    int c1;      ///< 1x1 branch
    int c3r;     ///< 3x3 reduce
    int c3;      ///< 3x3 branch
    int c5r;     ///< 5x5 reduce
    int c5;      ///< 5x5 branch
    int cp;      ///< pool-projection branch
};

NodeId
inception(ModelBuilder &b, NodeId in, const InceptionSpec &s,
          const std::string &prefix)
{
    NodeId b1 = b.conv(in, s.c1, 1, 1, prefix + "_1x1");
    NodeId b3 = b.conv(in, s.c3r, 1, 1, prefix + "_3x3r");
    b3 = b.conv(b3, s.c3, 3, 1, prefix + "_3x3");
    NodeId b5 = b.conv(in, s.c5r, 1, 1, prefix + "_5x5r");
    b5 = b.conv(b5, s.c5, 5, 1, prefix + "_5x5");
    NodeId bp = b.pool(in, 3, 1, prefix + "_pool");
    bp = b.conv(bp, s.cp, 1, 1, prefix + "_poolproj");
    return b.concat({b1, b3, b5, bp}, prefix + "_concat");
}

} // namespace

Graph
buildGoogleNet()
{
    ModelBuilder b("GoogleNet");
    NodeId x = b.input(224, 224, 3);
    x = b.conv(x, 64, 7, 2, "conv1");
    x = b.pool(x, 3, 2, "pool1");
    x = b.conv(x, 64, 1, 1, "conv2r");
    x = b.conv(x, 192, 3, 1, "conv2");
    x = b.pool(x, 3, 2, "pool2");

    x = inception(b, x, {64, 96, 128, 16, 32, 32}, "in3a");
    x = inception(b, x, {128, 128, 192, 32, 96, 64}, "in3b");
    x = b.pool(x, 3, 2, "pool3");

    x = inception(b, x, {192, 96, 208, 16, 48, 64}, "in4a");
    x = inception(b, x, {160, 112, 224, 24, 64, 64}, "in4b");
    x = inception(b, x, {128, 128, 256, 24, 64, 64}, "in4c");
    x = inception(b, x, {112, 144, 288, 32, 64, 64}, "in4d");
    x = inception(b, x, {256, 160, 320, 32, 128, 128}, "in4e");
    x = b.pool(x, 3, 2, "pool4");

    x = inception(b, x, {256, 160, 320, 32, 128, 128}, "in5a");
    x = inception(b, x, {384, 192, 384, 48, 128, 128}, "in5b");

    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

} // namespace cocco
