/**
 * @file
 * GoogleNet / Inception-v1 (Szegedy et al., CVPR'15), default input
 * 224x224x3. Nine inception modules with the original channel plan;
 * auxiliary classifiers omitted (inference graph).
 * Knobs: resolution, widthMult (scales every branch width).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/** Channel plan of one inception module. */
struct InceptionSpec
{
    int c1;      ///< 1x1 branch
    int c3r;     ///< 3x3 reduce
    int c3;      ///< 3x3 branch
    int c5r;     ///< 5x5 reduce
    int c5;      ///< 5x5 branch
    int cp;      ///< pool-projection branch
};

NodeId
inception(ModelBuilder &b, NodeId in, const InceptionSpec &s, double w,
          const std::string &prefix)
{
    NodeId b1 = b.conv(in, scaleChannels(s.c1, w), 1, 1, prefix + "_1x1");
    NodeId b3 = b.conv(in, scaleChannels(s.c3r, w), 1, 1, prefix + "_3x3r");
    b3 = b.conv(b3, scaleChannels(s.c3, w), 3, 1, prefix + "_3x3");
    NodeId b5 = b.conv(in, scaleChannels(s.c5r, w), 1, 1, prefix + "_5x5r");
    b5 = b.conv(b5, scaleChannels(s.c5, w), 5, 1, prefix + "_5x5");
    NodeId bp = b.pool(in, 3, 1, prefix + "_pool");
    bp = b.conv(bp, scaleChannels(s.cp, w), 1, 1, prefix + "_poolproj");
    return b.concat({b1, b3, b5, bp}, prefix + "_concat");
}

} // namespace

Graph
buildGoogleNet(const ModelParams &params)
{
    const int res = paramOr(params.resolution, 224);
    const double w = params.widthMult;

    ModelBuilder b("GoogleNet");
    NodeId x = b.input(res, res, 3);
    x = b.conv(x, scaleChannels(64, w), 7, 2, "conv1");
    x = b.pool(x, 3, 2, "pool1");
    x = b.conv(x, scaleChannels(64, w), 1, 1, "conv2r");
    x = b.conv(x, scaleChannels(192, w), 3, 1, "conv2");
    x = b.pool(x, 3, 2, "pool2");

    x = inception(b, x, {64, 96, 128, 16, 32, 32}, w, "in3a");
    x = inception(b, x, {128, 128, 192, 32, 96, 64}, w, "in3b");
    x = b.pool(x, 3, 2, "pool3");

    x = inception(b, x, {192, 96, 208, 16, 48, 64}, w, "in4a");
    x = inception(b, x, {160, 112, 224, 24, 64, 64}, w, "in4b");
    x = inception(b, x, {128, 128, 256, 24, 64, 64}, w, "in4c");
    x = inception(b, x, {112, 144, 288, 32, 64, 64}, w, "in4d");
    x = inception(b, x, {256, 160, 320, 32, 128, 128}, w, "in4e");
    x = b.pool(x, 3, 2, "pool4");

    x = inception(b, x, {256, 160, 320, 32, 128, 128}, w, "in5a");
    x = inception(b, x, {384, 192, 384, 48, 128, 128}, w, "in5b");

    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

void
registerGoogleNetModels(ModelRegistry &r)
{
    ModelInfo info;
    info.name = "GoogleNet";
    info.summary = "Inception-v1, nine multi-branch modules";
    info.knobs = kKnobResolution | kKnobWidthMult;
    info.defaults.resolution = 224;
    r.add(info, &buildGoogleNet);
}

} // namespace cocco
