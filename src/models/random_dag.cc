#include "models/random_dag.h"

#include <algorithm>

#include "models/builder_util.h"
#include "util/random.h"

namespace cocco {

Graph
buildRandomDag(uint64_t seed, const RandomDagOptions &opts)
{
    Rng rng(seed ^ 0x5eed5eed5eed5eedULL);
    ModelBuilder b(strprintf("RandomDag-%llu",
                             static_cast<unsigned long long>(seed)));

    std::vector<NodeId> convs;
    convs.push_back(
        b.input(opts.spatial, opts.spatial, opts.channels, "input"));

    for (int i = 0; i < opts.convNodes; ++i) {
        // Pick 1..maxFanIn distinct producers, biased toward recent
        // nodes with optional long skips.
        std::vector<NodeId> producers{convs.back()};
        int extra = 0;
        while (extra < opts.maxFanIn - 1 && rng.bernoulli(opts.skipProb))
            ++extra;
        for (int e = 0; e < extra; ++e) {
            NodeId cand = convs[rng.index(convs.size())];
            if (std::find(producers.begin(), producers.end(), cand) ==
                producers.end())
                producers.push_back(cand);
        }

        NodeId in = producers.size() == 1
                        ? producers[0]
                        : b.add(producers, strprintf("agg%d", i));
        int kernel =
            1 + 2 * static_cast<int>(rng.index(
                        static_cast<size_t>(opts.maxKernel / 2) + 1));
        convs.push_back(
            b.conv(in, opts.channels, kernel, 1, strprintf("conv%d", i)));
    }
    return b.take();
}

} // namespace cocco
