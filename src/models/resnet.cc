/**
 * @file
 * ResNet50 / ResNet152 (He et al., CVPR'16) bottleneck variants,
 * default input 224x224x3. Stage plan: conv1 7x7/2, maxpool 3x3/2,
 * then bottleneck stages [3,4,6,3] (ResNet50) or [3,8,36,3]
 * (ResNet152), global pool, FC-1000.
 * Knobs: resolution, widthMult (scales the stage widths; the block
 * plan and the 1000-way classifier are structural).
 */

#include "models/builder_util.h"
#include "models/models.h"

namespace cocco {

namespace {

/**
 * One bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand, with a
 * projection shortcut on the first block of a stage.
 */
NodeId
bottleneck(ModelBuilder &b, NodeId in, int mid_c, int out_c, int stride,
           bool project, const std::string &prefix)
{
    NodeId y = b.conv(in, mid_c, 1, stride, prefix + "_1x1a");
    y = b.conv(y, mid_c, 3, 1, prefix + "_3x3");
    y = b.conv(y, out_c, 1, 1, prefix + "_1x1b");

    NodeId shortcut = in;
    if (project)
        shortcut = b.conv(in, out_c, 1, stride, prefix + "_proj");
    return b.add({shortcut, y}, prefix + "_add");
}

Graph
buildResNet(const char *name, const int blocks[4], const ModelParams &p)
{
    const int res = paramOr(p.resolution, 224);
    const double w = p.widthMult;

    ModelBuilder b(name);
    NodeId x = b.input(res, res, 3);
    x = b.conv(x, scaleChannels(64, w), 7, 2, "conv1");
    x = b.pool(x, 3, 2, "pool1");

    const int mid_c[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        int mid = scaleChannels(mid_c[stage], w);
        int out_c = mid * 4;
        for (int blk = 0; blk < blocks[stage]; ++blk) {
            int stride = (stage > 0 && blk == 0) ? 2 : 1;
            bool project = (blk == 0);
            x = bottleneck(b, x, mid, out_c, stride, project,
                           strprintf("res%d_%d", stage + 2, blk + 1));
        }
    }

    x = b.globalPool(x, "avgpool");
    x = b.fc(x, 1000, "fc1000");
    return b.take();
}

} // namespace

Graph
buildResNet50(const ModelParams &params)
{
    const int blocks[4] = {3, 4, 6, 3};
    return buildResNet("ResNet50", blocks, params);
}

Graph
buildResNet152(const ModelParams &params)
{
    const int blocks[4] = {3, 8, 36, 3};
    return buildResNet("ResNet152", blocks, params);
}

void
registerResNetModels(ModelRegistry &r)
{
    ModelInfo info;
    info.knobs = kKnobResolution | kKnobWidthMult;
    info.defaults.resolution = 224;

    info.name = "ResNet50";
    info.summary = "bottleneck residual CNN, stages [3,4,6,3]";
    r.add(info, &buildResNet50);

    info.name = "ResNet152";
    info.summary = "bottleneck residual CNN, stages [3,8,36,3]";
    r.add(info, &buildResNet152);
}

} // namespace cocco
