#include "sim/platform.h"

#include "util/json.h"
#include "util/logging.h"

namespace cocco {

PlatformRegistry::PlatformRegistry()
{
    AcceleratorConfig simba; // the defaults ARE the paper platform
    add("simba",
        "Simba-like single core (4x4 PEs x 64 MACs, 2.048 TOPS, "
        "16 GB/s; paper Section 5.1.2)",
        simba);

    AcceleratorConfig multicore = simba;
    multicore.cores = 4;
    add("simba-x4",
        "four simba cores, weights sharded over the crossbar "
        "(the Table 3 scale-out)",
        multicore);

    AcceleratorConfig edge = simba;
    edge.peRows = 2;
    edge.peCols = 2;
    edge.clockGhz = 0.8;
    edge.dramGBpsPerCore = 8.0;
    add("edge",
        "budget device: 2x2 PEs at 0.8 GHz, 8 GB/s DRAM",
        edge);

    AcceleratorConfig cloud = simba;
    cloud.peRows = 8;
    cloud.peCols = 8;
    cloud.dramGBpsPerCore = 64.0;
    cloud.batch = 8;
    add("cloud",
        "server part: 8x8 PEs (8.192 TOPS), 64 GB/s DRAM, batch 8",
        cloud);
}

PlatformRegistry &
PlatformRegistry::instance()
{
    static PlatformRegistry registry;
    return registry;
}

void
PlatformRegistry::add(const std::string &name, const std::string &summary,
                      const AcceleratorConfig &config)
{
    if (find(name))
        fatal("platform '%s' is already registered", name.c_str());
    entries_.push_back({name, summary, config});
}

const PlatformRegistry::Entry *
PlatformRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

bool
PlatformRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

bool
PlatformRegistry::find(const std::string &name,
                       AcceleratorConfig *out) const
{
    const Entry *e = find(name);
    if (!e)
        return false;
    *out = e->config;
    return true;
}

std::vector<std::string>
PlatformRegistry::keys() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

const std::string &
PlatformRegistry::summary(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("unknown platform '%s'", name.c_str());
    return e->summary;
}

namespace {

std::string
knownPlatforms()
{
    return joinComma(PlatformRegistry::instance().keys());
}

} // namespace

AcceleratorConfig
platformPreset(const std::string &name)
{
    AcceleratorConfig out;
    if (!PlatformRegistry::instance().find(name, &out))
        fatal("unknown platform '%s' (known: %s)", name.c_str(),
              knownPlatforms().c_str());
    return out;
}

std::string
acceleratorToJson(const AcceleratorConfig &accel)
{
    JsonWriter w;
    acceleratorToJson(w, accel);
    return w.str();
}

void
acceleratorToJson(JsonWriter &w, const AcceleratorConfig &accel)
{
    w.beginObject();
    w.field("peRows", accel.peRows);
    w.field("peCols", accel.peCols);
    w.field("macsPerPe", accel.macsPerPe);
    w.field("clockGhz", accel.clockGhz);
    w.field("dramGBpsPerCore", accel.dramGBpsPerCore);
    w.field("maxRegions", accel.maxRegions);
    w.field("channelAlign", accel.channelAlign);
    w.field("doubleBufferWeights", accel.doubleBufferWeights);
    w.field("cores", accel.cores);
    w.field("batch", accel.batch);
    w.field("crossbarBytesPerCycle", accel.crossbarBytesPerCycle);
    w.key("energy").beginObject();
    w.field("dramPjPerByte", accel.energy.dramPjPerByte);
    w.field("sramBasePjPerByte", accel.energy.sramBasePjPerByte);
    w.field("sramSlopePjPerByte", accel.energy.sramSlopePjPerByte);
    w.field("macPj", accel.energy.macPj);
    w.field("crossbarPjPerByte", accel.energy.crossbarPjPerByte);
    w.field("sramAreaMm2PerMB", accel.energy.sramAreaMm2PerMB);
    w.endObject();
    w.endObject();
}

namespace {

bool
energyFromJson(const JsonValue &doc, EnergyModel *out, std::string *err)
{
    auto bad = [&](const std::string &what) {
        return jsonFail(err, what);
    };
    if (!doc.isObject())
        return bad("\"energy\" must be an object");
    // Every energy term: a number >= 0 (zeroing a term is a valid
    // what-if; a negative energy is not).
    auto term = [&](const JsonValue &v, const char *key, double *field) {
        std::string full = std::string("energy.") + key;
        return jsonReadNumber(v, full.c_str(), field, err) &&
               (*field >= 0.0 ||
                bad(strprintf("\"%s\" must be >= 0", full.c_str())));
    };
    for (const auto &[k, v] : doc.members()) {
        bool ok;
        if (k == "dramPjPerByte")
            ok = term(v, "dramPjPerByte", &out->dramPjPerByte);
        else if (k == "sramBasePjPerByte")
            ok = term(v, "sramBasePjPerByte", &out->sramBasePjPerByte);
        else if (k == "sramSlopePjPerByte")
            ok = term(v, "sramSlopePjPerByte", &out->sramSlopePjPerByte);
        else if (k == "macPj")
            ok = term(v, "macPj", &out->macPj);
        else if (k == "crossbarPjPerByte")
            ok = term(v, "crossbarPjPerByte", &out->crossbarPjPerByte);
        else if (k == "sramAreaMm2PerMB")
            ok = term(v, "sramAreaMm2PerMB", &out->sramAreaMm2PerMB);
        else
            ok = bad(strprintf("unknown \"energy\" key \"%s\"",
                               k.c_str()));
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

bool
acceleratorFromJson(const JsonValue &doc, AcceleratorConfig *out,
                    std::string *err)
{
    auto bad = [&](const std::string &what) {
        return jsonFail(err, what);
    };
    if (!doc.isObject())
        return bad("platform document must be a JSON object");

    // "base" selects the starting configuration, so read it first
    // regardless of member order.
    AcceleratorConfig accel;
    if (const JsonValue *base = doc.find("base")) {
        std::string name;
        if (!jsonReadString(*base, "base", &name, err))
            return false;
        if (!PlatformRegistry::instance().find(name, &accel))
            return bad(strprintf("unknown platform \"%s\" (known: %s)",
                                 name.c_str(), knownPlatforms().c_str()));
    }

    // Positive integer dimensions and positive physical rates.
    auto dim = [&](const JsonValue &v, const char *key, int *field) {
        return jsonReadIntAs(v, key, field, err) &&
               (*field >= 1 ||
                bad(strprintf("\"%s\" must be >= 1", key)));
    };
    auto rate = [&](const JsonValue &v, const char *key, double *field) {
        return jsonReadNumber(v, key, field, err) &&
               (*field > 0.0 ||
                bad(strprintf("\"%s\" must be > 0", key)));
    };
    for (const auto &[k, v] : doc.members()) {
        bool ok;
        if (k == "base")
            ok = true; // consumed above
        else if (k == "peRows")
            ok = dim(v, "peRows", &accel.peRows);
        else if (k == "peCols")
            ok = dim(v, "peCols", &accel.peCols);
        else if (k == "macsPerPe")
            ok = dim(v, "macsPerPe", &accel.macsPerPe);
        else if (k == "clockGhz")
            ok = rate(v, "clockGhz", &accel.clockGhz);
        else if (k == "dramGBpsPerCore")
            ok = rate(v, "dramGBpsPerCore", &accel.dramGBpsPerCore);
        else if (k == "maxRegions")
            ok = dim(v, "maxRegions", &accel.maxRegions);
        else if (k == "channelAlign")
            ok = dim(v, "channelAlign", &accel.channelAlign);
        else if (k == "doubleBufferWeights")
            ok = jsonReadBool(v, "doubleBufferWeights",
                              &accel.doubleBufferWeights, err);
        else if (k == "cores")
            ok = dim(v, "cores", &accel.cores);
        else if (k == "batch")
            ok = dim(v, "batch", &accel.batch);
        else if (k == "crossbarBytesPerCycle")
            ok = rate(v, "crossbarBytesPerCycle",
                      &accel.crossbarBytesPerCycle);
        else if (k == "energy")
            ok = energyFromJson(v, &accel.energy, err);
        else
            ok = bad(strprintf("unknown platform key \"%s\"",
                               k.c_str()));
        if (!ok)
            return false;
    }

    *out = accel;
    return true;
}

bool
platformSpecFromJson(const JsonValue &v, const char *what,
                     PlatformSpec *out, std::string *err)
{
    if (v.isString()) {
        out->preset = v.str();
        return true;
    }
    if (!v.isObject())
        return jsonFail(err,
                        strprintf("\"%s\" must be a preset name or an "
                                  "object",
                                  what));
    if (const JsonValue *file = v.find("file")) {
        if (v.members().size() != 1)
            return jsonFail(err,
                            strprintf("a \"%s\" file reference must not "
                                      "carry other keys",
                                      what));
        std::string key = std::string(what) + ".file";
        return jsonReadString(*file, key.c_str(), &out->file, err);
    }
    // Anything else is an inline configuration (optionally based on a
    // preset via "base"); its own parser is strict.
    std::string sub;
    if (!acceleratorFromJson(v, &out->config, &sub))
        return jsonFail(err, strprintf("%s: %s", what, sub.c_str()));
    out->inlineConfig = true;
    return true;
}

} // namespace cocco
