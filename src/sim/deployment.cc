#include "sim/deployment.h"

#include <algorithm>

#include "sim/multicore.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

bool
accelEqual(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    return a.peRows == b.peRows && a.peCols == b.peCols &&
           a.macsPerPe == b.macsPerPe && a.clockGhz == b.clockGhz &&
           a.dramGBpsPerCore == b.dramGBpsPerCore &&
           a.maxRegions == b.maxRegions &&
           a.channelAlign == b.channelAlign &&
           a.doubleBufferWeights == b.doubleBufferWeights &&
           a.cores == b.cores && a.batch == b.batch &&
           a.crossbarBytesPerCycle == b.crossbarBytesPerCycle &&
           a.energy.dramPjPerByte == b.energy.dramPjPerByte &&
           a.energy.sramBasePjPerByte == b.energy.sramBasePjPerByte &&
           a.energy.sramSlopePjPerByte == b.energy.sramSlopePjPerByte &&
           a.energy.macPj == b.energy.macPj &&
           a.energy.crossbarPjPerByte == b.energy.crossbarPjPerByte &&
           a.energy.sramAreaMm2PerMB == b.energy.sramAreaMm2PerMB;
}

namespace {

std::string
knownDeployments()
{
    return joinComma(DeploymentRegistry::instance().keys());
}

const AcceleratorConfig &
firstCore(const DeploymentConfig &dep)
{
    if (dep.coreConfigs.empty())
        fatal("deployment: a resolved deployment needs at least one core "
              "(resolveDeployment was skipped?)");
    return dep.coreConfigs.front();
}

} // namespace

// --- Registry ----------------------------------------------------------------

DeploymentRegistry::DeploymentRegistry()
{
    DeploymentDesc single;
    single.cores = 1;
    add("single",
        "one core of the run's platform (crossbar terms exactly zero)",
        single);

    DeploymentDesc dual;
    dual.cores = 2;
    add("dual", "two crossbar-connected cores of the run's platform",
        dual);

    DeploymentDesc quad;
    quad.cores = 4;
    add("quad",
        "four crossbar-connected cores (the Table 3 scale-out shape)",
        quad);

    DeploymentDesc biglittle;
    biglittle.cores = 4;
    PlatformSpec simba, edge;
    simba.preset = "simba";
    edge.preset = "edge";
    biglittle.corePlatforms = {simba, simba, edge, edge};
    add("big-little",
        "heterogeneous mix: 2x simba + 2x edge behind one crossbar",
        biglittle);
}

DeploymentRegistry &
DeploymentRegistry::instance()
{
    static DeploymentRegistry registry;
    return registry;
}

void
DeploymentRegistry::add(const std::string &name, const std::string &summary,
                        const DeploymentDesc &desc)
{
    if (find(name))
        fatal("deployment '%s' is already registered", name.c_str());
    entries_.push_back({name, summary, desc});
}

const DeploymentRegistry::Entry *
DeploymentRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

bool
DeploymentRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

bool
DeploymentRegistry::find(const std::string &name, DeploymentDesc *out) const
{
    const Entry *e = find(name);
    if (!e)
        return false;
    *out = e->desc;
    return true;
}

std::vector<std::string>
DeploymentRegistry::keys() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

const std::string &
DeploymentRegistry::summary(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        fatal("unknown deployment '%s'", name.c_str());
    return e->summary;
}

DeploymentDesc
deploymentPreset(const std::string &name)
{
    DeploymentDesc out;
    if (!DeploymentRegistry::instance().find(name, &out))
        fatal("unknown deployment '%s' (known: %s)", name.c_str(),
              knownDeployments().c_str());
    return out;
}

// --- JSON --------------------------------------------------------------------

std::string
deploymentToJson(const DeploymentDesc &desc)
{
    JsonWriter w;
    w.beginObject();
    w.field("cores", desc.cores);
    // Only explicit interconnect knobs are written: an unset knob
    // means "inherit the core platform's crossbar" and must stay
    // unset across a round trip.
    if (desc.interconnect.bytesPerCycle > 0.0 ||
        desc.interconnect.pjPerByteHop >= 0.0) {
        w.key("interconnect").beginObject();
        if (desc.interconnect.bytesPerCycle > 0.0)
            w.field("bytesPerCycle", desc.interconnect.bytesPerCycle);
        if (desc.interconnect.pjPerByteHop >= 0.0)
            w.field("pjPerByteHop", desc.interconnect.pjPerByteHop);
        w.endObject();
    }
    if (!desc.corePlatforms.empty()) {
        w.key("corePlatforms").beginArray();
        for (const PlatformSpec &p : desc.corePlatforms) {
            if (!p.file.empty()) {
                w.beginObject();
                w.field("file", p.file);
                w.endObject();
            } else if (p.inlineConfig) {
                acceleratorToJson(w, p.config);
            } else {
                w.value(p.preset.empty() ? "simba" : p.preset);
            }
        }
        w.endArray();
    }
    w.endObject();
    return w.str();
}

namespace {

bool
interconnectFromJson(const JsonValue &doc, InterconnectConfig *out,
                     std::string *err)
{
    if (!doc.isObject())
        return jsonFail(err, "\"interconnect\" must be an object");
    for (const auto &[k, v] : doc.members()) {
        bool ok;
        if (k == "bytesPerCycle") {
            ok = jsonReadNumber(v, "interconnect.bytesPerCycle",
                                &out->bytesPerCycle, err) &&
                 (out->bytesPerCycle > 0.0 ||
                  jsonFail(err,
                           "\"interconnect.bytesPerCycle\" must be > 0"));
        } else if (k == "pjPerByteHop") {
            ok = jsonReadNumber(v, "interconnect.pjPerByteHop",
                                &out->pjPerByteHop, err) &&
                 (out->pjPerByteHop >= 0.0 ||
                  jsonFail(err,
                           "\"interconnect.pjPerByteHop\" must be >= 0"));
        } else {
            ok = jsonFail(err, strprintf(
                                   "unknown \"interconnect\" key \"%s\"",
                                   k.c_str()));
        }
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

bool
deploymentFromJson(const JsonValue &doc, DeploymentDesc *out,
                   std::string *err)
{
    if (!doc.isObject())
        return jsonFail(err, "deployment document must be a JSON object");

    // "base" selects the starting description, so read it first
    // regardless of member order.
    DeploymentDesc desc;
    if (const JsonValue *base = doc.find("base")) {
        std::string name;
        if (!jsonReadString(*base, "deployment.base", &name, err))
            return false;
        if (!DeploymentRegistry::instance().find(name, &desc))
            return jsonFail(err,
                            strprintf("unknown deployment \"%s\" (known: "
                                      "%s)",
                                      name.c_str(),
                                      knownDeployments().c_str()));
    }

    bool cores_given = false;
    for (const auto &[k, v] : doc.members()) {
        bool ok;
        if (k == "base") {
            ok = true; // consumed above
        } else if (k == "cores") {
            cores_given = true;
            ok = jsonReadIntAs(v, "cores", &desc.cores, err) &&
                 (desc.cores >= 1 ||
                  jsonFail(err, "\"cores\" must be >= 1"));
        } else if (k == "interconnect") {
            ok = interconnectFromJson(v, &desc.interconnect, err);
        } else if (k == "corePlatforms") {
            if (!v.isArray())
                return jsonFail(err, "\"corePlatforms\" must be an array");
            desc.corePlatforms.clear();
            int idx = 0;
            ok = true;
            for (const JsonValue &e : v.array()) {
                PlatformSpec p;
                std::string what = strprintf("corePlatforms[%d]", idx++);
                if (!platformSpecFromJson(e, what.c_str(), &p, err)) {
                    ok = false;
                    break;
                }
                desc.corePlatforms.push_back(std::move(p));
            }
        } else {
            ok = jsonFail(err, strprintf("unknown deployment key \"%s\"",
                                         k.c_str()));
        }
        if (!ok)
            return false;
    }

    if (!desc.corePlatforms.empty()) {
        int n = static_cast<int>(desc.corePlatforms.size());
        if (cores_given && desc.cores != n)
            return jsonFail(
                err, strprintf("\"cores\" (%d) disagrees with the "
                               "\"corePlatforms\" list (%d entries)",
                               desc.cores, n));
        desc.cores = n;
    }
    if (desc.cores < 1)
        return jsonFail(err, "\"cores\" must be >= 1");

    *out = desc;
    return true;
}

bool
deploymentSpecFromJson(const JsonValue &v, DeploymentSpec *out,
                       std::string *err)
{
    out->enabled = true;
    if (v.isString()) {
        out->preset = v.str();
        return true;
    }
    if (!v.isObject())
        return jsonFail(err,
                        "\"deployment\" must be a preset name or an "
                        "object");
    if (const JsonValue *file = v.find("file")) {
        if (v.members().size() != 1)
            return jsonFail(err, "a \"deployment\" file reference must "
                                 "not carry other keys");
        return jsonReadString(*file, "deployment.file", &out->file, err);
    }
    out->inlineDesc = true;
    return deploymentFromJson(v, &out->desc, err);
}

// --- Resolved configuration --------------------------------------------------

bool
DeploymentConfig::homogeneous() const
{
    for (size_t i = 1; i < coreConfigs.size(); ++i)
        if (!accelEqual(coreConfigs[i], coreConfigs[0]))
            return false;
    return true;
}

InterconnectConfig
resolveInterconnect(const InterconnectConfig &ic,
                    const AcceleratorConfig &core0)
{
    InterconnectConfig out = ic;
    if (out.bytesPerCycle <= 0.0)
        out.bytesPerCycle = core0.crossbarBytesPerCycle;
    if (out.pjPerByteHop < 0.0)
        out.pjPerByteHop = core0.energy.crossbarPjPerByte;
    return out;
}

DeploymentConfig
homogeneousDeployment(const AcceleratorConfig &core, int cores,
                      const InterconnectConfig &ic)
{
    if (cores < 1)
        fatal("deployment: cores must be >= 1 (got %d)", cores);
    AcceleratorConfig c = core;
    c.cores = 1; // the deployment owns the scale-out
    DeploymentConfig dep;
    dep.coreConfigs.assign(static_cast<size_t>(cores), c);
    dep.interconnect = resolveInterconnect(ic, c);
    return dep;
}

AcceleratorConfig
foldDeployment(const AcceleratorConfig &core, const DeploymentConfig &dep)
{
    AcceleratorConfig a = core;
    a.cores = std::max(1, dep.cores());
    // Unset knobs inherit the folded core's own crossbar parameters
    // (the canonical construction paths materialize them against
    // core 0, so every core of a resolved deployment folds the same
    // interconnect).
    InterconnectConfig ic = resolveInterconnect(dep.interconnect, core);
    a.crossbarBytesPerCycle = ic.bytesPerCycle;
    a.energy.crossbarPjPerByte = ic.pjPerByteHop;
    return a;
}

// --- DeploymentCostModel -----------------------------------------------------

DeploymentCostModel::DeploymentCostModel(const Graph &g,
                                         const DeploymentConfig &dep)
    : CostModel(g, foldDeployment(firstCore(dep), dep)), dep_(dep),
      homogeneous_(dep.homogeneous())
{
    // Materialize inherited interconnect knobs against core 0, so a
    // heterogeneous mix folds one consistent interconnect into every
    // per-core model (the base fold above resolves against core 0
    // too, so the aggregate view already agrees).
    dep_.interconnect =
        resolveInterconnect(dep_.interconnect, firstCore(dep_));
    if (homogeneous_)
        return; // the base model IS the deployment (folded view)
    perCore_.reserve(dep_.coreConfigs.size());
    for (const AcceleratorConfig &core : dep_.coreConfigs) {
        AcceleratorConfig folded = foldDeployment(core, dep_);
        CostModel *m = nullptr;
        for (const auto &owned : ownedModels_)
            if (accelEqual(owned->accel(), folded)) {
                m = owned.get();
                break;
            }
        if (!m) {
            ownedModels_.push_back(
                std::make_unique<CostModel>(graph(), folded));
            m = ownedModels_.back().get();
        }
        perCore_.push_back(m);
    }
}

SubgraphCost
DeploymentCostModel::subgraphCost(const std::vector<NodeId> &nodes,
                                  const BufferConfig &buf)
{
    if (homogeneous_)
        return CostModel::subgraphCost(nodes, buf);

    // Heterogeneous composition. Every per-core model carries the full
    // deployment fold (cores = n, shared interconnect), so its values
    // are already "this subgraph, sharded n ways, seen by core i":
    //   - feasibility must hold on every core (equal shards);
    //   - EMA is shard-count dependent but core-independent;
    //   - energy: each core moves 1/n of the traffic with its own
    //     energy model, so the total is the mean of the per-core
    //     aggregates (the crossbar term is identical in each and thus
    //     counted exactly once);
    //   - compute: the slowest core gates the rotation (cycles
    //     normalized to core 0's clock domain);
    //   - DRAM: the per-core channels aggregate, so the real transfer
    //     window uses the summed bandwidth.
    const double clock0 = accel().clockGhz;
    double energy_sum = 0.0, compute_max = 0.0, dram_gbps = 0.0;
    int64_t ema = 0;
    bool have_ema = false;
    for (CostModel *m : perCore_) {
        SubgraphCost c = m->subgraphCost(nodes, buf);
        if (!c.feasible)
            return SubgraphCost{};
        energy_sum += c.energyPj;
        compute_max = std::max(compute_max,
                               c.computeCycles *
                                   (clock0 / m->accel().clockGhz));
        dram_gbps += m->accel().dramGBpsPerCore;
        if (!have_ema) {
            ema = c.emaBytes;
            have_ema = true;
        }
    }

    SubgraphCost out;
    out.feasible = true;
    out.emaBytes = ema;
    out.energyPj = energy_sum / static_cast<double>(perCore_.size());
    out.computeCycles = compute_max;
    out.commCycles = static_cast<double>(ema) * clock0 / dram_gbps;
    out.latencyCycles = std::max(out.computeCycles, out.commCycles) +
                        crossbarCycles(profile(nodes), accel());
    return out;
}

SubgraphBound
DeploymentCostModel::subgraphBound(const std::vector<NodeId> &nodes,
                                   const BufferConfig &buf)
{
    if (homogeneous_)
        return CostModel::subgraphBound(nodes, buf);

    // Mirror of the heterogeneous subgraphCost composition with each
    // per-core exact value replaced by its per-core floor; since the
    // composition is monotone in every term (max for compute, mean
    // for energy, first core's EMA, summed bandwidth) and the
    // non-negative crossbar serialization is dropped, the result
    // lower-bounds every feasible evaluation.
    const double clock0 = accel().clockGhz;
    double energy_sum = 0.0, compute_max = 0.0, dram_gbps = 0.0;
    int64_t ema = 0;
    bool have_ema = false;
    for (CostModel *m : perCore_) {
        SubgraphBound b = m->subgraphBound(nodes, buf);
        energy_sum += b.energyPj;
        compute_max = std::max(compute_max,
                               b.computeCycles *
                                   (clock0 / m->accel().clockGhz));
        dram_gbps += m->accel().dramGBpsPerCore;
        if (!have_ema) {
            ema = b.emaBytes;
            have_ema = true;
        }
    }
    SubgraphBound out;
    out.emaBytes = ema;
    out.energyPj = energy_sum / static_cast<double>(perCore_.size());
    out.computeCycles = compute_max;
    out.commCycles = static_cast<double>(ema) * clock0 / dram_gbps;
    out.latencyCycles = std::max(out.computeCycles, out.commCycles);
    return out;
}

void
DeploymentCostModel::setPruning(bool on)
{
    CostModel::setPruning(on);
    for (auto &m : ownedModels_)
        m->setPruning(on);
}

CostPruneStats
DeploymentCostModel::pruneStats() const
{
    CostPruneStats s = CostModel::pruneStats();
    for (const auto &m : ownedModels_)
        s += m->pruneStats();
    return s;
}

bool
DeploymentCostModel::fits(const std::vector<NodeId> &nodes,
                          const BufferConfig &buf)
{
    if (homogeneous_)
        return CostModel::fits(nodes, buf);
    for (CostModel *m : perCore_)
        if (!m->fits(nodes, buf))
            return false;
    return true;
}

uint64_t
DeploymentCostModel::contextHash(uint64_t h) const
{
    // The base fold (graph + core 0's folded configuration) fully
    // describes a homogeneous deployment; a heterogeneous one also
    // folds every core's configuration, in core order, so two
    // deployments that differ anywhere hash apart.
    h = CostModel::contextHash(h);
    if (homogeneous_)
        return h;
    for (const CostModel *m : perCore_)
        h = hashAccelerator(h, m->accel());
    return h;
}

DeploymentBreakdown
DeploymentCostModel::breakdown(const Partition &p, const BufferConfig &buf)
{
    if (homogeneous_)
        return CostModel::breakdown(p, buf);

    DeploymentBreakdown b;
    b.cores = dep_.cores();
    GraphCost total = partitionCost(p, buf);

    int64_t macs = 0;
    for (const auto &blk : p.blocks()) {
        const SubgraphProfile &prof = profile(blk);
        b.crossbarEnergyPj += crossbarEnergyPj(prof, accel());
        b.crossbarCycles += crossbarCycles(prof, accel());
        macs += prof.macs;
    }
    if (total.energyPj > 0)
        b.crossbarEnergyShare = b.crossbarEnergyPj / total.energyPj;
    if (total.latencyCycles > 0)
        b.crossbarLatencyShare = b.crossbarCycles / total.latencyCycles;

    b.coreUtilization.assign(perCore_.size(), 0.0);
    if (total.latencyCycles > 0) {
        const double clock0 = accel().clockGhz;
        double core_macs = static_cast<double>(macs) * accel().batch /
                           b.cores;
        for (size_t i = 0; i < perCore_.size(); ++i) {
            const AcceleratorConfig &a = perCore_[i]->accel();
            // The shared window in core i's own clock domain.
            double cycles_i = total.latencyCycles * a.clockGhz / clock0;
            b.coreUtilization[i] =
                core_macs /
                (static_cast<double>(a.macsPerCycle()) * cycles_i);
        }
    }
    return b;
}

std::vector<double>
DeploymentCostModel::coreComputeCycles(const std::vector<NodeId> &nodes)
{
    if (homogeneous_)
        return CostModel::coreComputeCycles(nodes);
    const double clock0 = accel().clockGhz;
    const int n = dep_.cores();
    std::vector<double> out;
    out.reserve(perCore_.size());
    for (CostModel *m : perCore_) {
        double cyc = static_cast<double>(m->profile(nodes).mappedCycles) *
                     m->accel().batch / n;
        out.push_back(cyc * clock0 / m->accel().clockGhz);
    }
    return out;
}

} // namespace cocco
