/**
 * @file
 * The Simba-like accelerator platform of paper Section 5.1.2:
 * a 4x4 PE array per core, each PE an 8x8 MAC array (1024 MACs/cycle
 * = 2.048 TOPS at 1 GHz), a global (activation) buffer and a weight
 * buffer managed by the buffer-region manager, 16 GB/s of DRAM
 * bandwidth per core, and an optional crossbar-connected multi-core
 * scale-out that shares subgraph weights across cores.
 */

#ifndef COCCO_SIM_ACCELERATOR_H
#define COCCO_SIM_ACCELERATOR_H

#include <cstdint>

#include "mem/buffer_config.h"
#include "mem/energy_model.h"

namespace cocco {

/** Full platform description used by the cost model. */
struct AcceleratorConfig
{
    // Compute.
    int peRows = 4;        ///< PE array rows
    int peCols = 4;        ///< PE array columns
    int macsPerPe = 64;    ///< 8x8 MAC array per PE
    double clockGhz = 1.0;

    // External memory.
    double dramGBpsPerCore = 16.0;

    // Memory management.
    int maxRegions = 64;   ///< buffer-region manager depth (N)
    int channelAlign = 8;  ///< NWHC8c data layout alignment

    /** When true, the weight buffer must hold the current AND the
     *  next subgraph's weights simultaneously (strict double-buffered
     *  prefetch); when false (default), prefetch overlaps via banking
     *  and only the resident subgraph's weights count. */
    bool doubleBufferWeights = false;

    // Scale-out and batching.
    int cores = 1;
    int batch = 1;
    double crossbarBytesPerCycle = 256.0; ///< aggregate crossbar bandwidth

    // Technology.
    EnergyModel energy;

    /** MACs retired per cycle per core. */
    int64_t
    macsPerCycle() const
    {
        return static_cast<int64_t>(peRows) * peCols * macsPerPe;
    }

    /** Peak throughput in TOPS (2 ops per MAC). */
    double
    peakTops() const
    {
        return 2.0 * macsPerCycle() * clockGhz / 1e3;
    }

    /** DRAM bytes transferred per cycle per core. */
    double
    dramBytesPerCycle() const
    {
        return dramGBpsPerCore / clockGhz;
    }
};

} // namespace cocco

#endif // COCCO_SIM_ACCELERATOR_H
