/**
 * @file
 * The platform frontend: named accelerator presets and the JSON form
 * of AcceleratorConfig (including its EnergyModel), mirroring the
 * model and searcher registries so a platform is addressable by name
 * or by file instead of being a compile-time struct.
 *
 * Presets:
 *   simba     the paper's Simba-like single-core platform
 *             (Section 5.1.2; identical to AcceleratorConfig{})
 *   simba-x4  four simba cores behind the weight-sharing crossbar
 *             (the Table 3 scale-out)
 *   edge      a 0.8 GHz 2x2-PE / 8 GB/s budget device
 *   cloud     an 8x8-PE / 64 GB/s server part running batch 8
 *
 * Platform JSON (strict; every key optional — omitted fields keep
 * the base configuration's value, which is "simba" unless "base"
 * names another preset):
 *
 *   {
 *     "base": "simba",
 *     "peRows": 4, "peCols": 4, "macsPerPe": 64, "clockGhz": 1.0,
 *     "dramGBpsPerCore": 16.0, "maxRegions": 64, "channelAlign": 8,
 *     "doubleBufferWeights": false,
 *     "cores": 1, "batch": 1, "crossbarBytesPerCycle": 256.0,
 *     "energy": {
 *       "dramPjPerByte": 100.0, "sramBasePjPerByte": 0.2,
 *       "sramSlopePjPerByte": 0.025, "macPj": 0.05,
 *       "crossbarPjPerByte": 4.0, "sramAreaMm2PerMB": 1.2
 *     }
 *   }
 */

#ifndef COCCO_SIM_PLATFORM_H
#define COCCO_SIM_PLATFORM_H

#include <string>
#include <vector>

#include "sim/accelerator.h"

namespace cocco {

class JsonValue;

/**
 * A declarative platform address: a named preset, a platform JSON
 * file, or an inline configuration. At most one source may be given;
 * none at all means the default preset ("simba"). Resolved into an
 * AcceleratorConfig by resolvePlatform() (core/serialize.h).
 */
struct PlatformSpec
{
    std::string preset;  ///< preset name ("" = default unless file/inline)
    std::string file;    ///< platform JSON path ("" = none)
    bool inlineConfig = false; ///< true: use `config` verbatim
    AcceleratorConfig config;  ///< the inline configuration
};

/** The string-keyed platform-preset registry. */
class PlatformRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static PlatformRegistry &instance();

    /** Register a preset (fatal on duplicate name). */
    void add(const std::string &name, const std::string &summary,
             const AcceleratorConfig &config);

    /** @return true when @p name is a registered preset. */
    bool contains(const std::string &name) const;

    /** Look up @p name into *out. @return false when unknown (the
     *  clean-user-error path; use platformPreset() to be fatal). */
    bool find(const std::string &name, AcceleratorConfig *out) const;

    /** Registered preset names, in registration order. */
    std::vector<std::string> keys() const;

    /** The one-line summary of @p name (fatal: unknown). */
    const std::string &summary(const std::string &name) const;

  private:
    PlatformRegistry();

    struct Entry
    {
        std::string name;
        std::string summary;
        AcceleratorConfig config;
    };
    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries_;
};

/** The preset named @p name (fatal with the known list: unknown). */
AcceleratorConfig platformPreset(const std::string &name);

/** Serialize a full platform description (every field + energy). */
std::string acceleratorToJson(const AcceleratorConfig &accel);

class JsonWriter;

/** Write the same full description as one object into an open writer
 *  (used where a platform nests inside a larger document, e.g. a
 *  deployment's corePlatforms list). */
void acceleratorToJson(JsonWriter &w, const AcceleratorConfig &accel);

/**
 * Populate an AcceleratorConfig from a parsed platform document (the
 * schema above). Strict: unknown keys, type mismatches and physically
 * meaningless values (non-positive dimensions/rates, negative
 * energies) are errors. @return false with *err set on any problem.
 */
bool acceleratorFromJson(const JsonValue &doc, AcceleratorConfig *out,
                         std::string *err);

/**
 * Parse a platform *address* value as it appears in run-spec and
 * deployment documents: a preset name string, a {"file": PATH}
 * reference, or an inline configuration object (optionally based on a
 * preset via "base"). @p what names the value in error messages
 * ("platform", "deployment.corePlatforms[2]", ...). @return false
 * with *err set on any problem.
 */
bool platformSpecFromJson(const JsonValue &v, const char *what,
                          PlatformSpec *out, std::string *err);

} // namespace cocco

#endif // COCCO_SIM_PLATFORM_H
