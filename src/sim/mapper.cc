#include "sim/mapper.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

const char *
mapDimName(MapDim d)
{
    switch (d) {
      case MapDim::InputChannels:
        return "IC";
      case MapDim::OutputChannels:
        return "OC";
      case MapDim::Spatial:
        return "SP";
    }
    panic("unknown MapDim %d", static_cast<int>(d));
}

std::string
LayerMapping::str() const
{
    return strprintf("rows=%s cols=%s util=%.1f%%", mapDimName(rows),
                     mapDimName(cols), utilization * 100.0);
}

LayerMapping
mapLayer(const Graph &g, NodeId v, const AcceleratorConfig &accel)
{
    const Layer &l = g.layer(v);
    LayerMapping best;
    if (l.kind == LayerKind::Input || l.kind == LayerKind::Concat) {
        best.cycles = 0;
        best.utilization = 1.0;
        return best;
    }

    // Per-PE MAC geometry: an 8x8 array contracts `mac_ic` input
    // channels into `mac_oc` output channels per cycle for dense
    // operators. Depth-wise/element-wise operators have no channel
    // contraction: the IC rows of the MAC array idle (modelled as
    // extra spatial lanes at 1/8 density is *not* assumed — idling is
    // the honest cost).
    const int mac_side = 8; // accel.macsPerPe is mac_side^2
    bool dense = (l.kind == LayerKind::Conv || l.kind == LayerKind::Matmul);

    int64_t cin = std::max(1, g.inChannels(v));
    int64_t cout = l.outC;
    int64_t spatial = static_cast<int64_t>(l.outH) * l.outW;
    int64_t window;
    switch (l.kind) {
      case LayerKind::Conv:
      case LayerKind::DWConv:
      case LayerKind::Pool:
      case LayerKind::Eltwise:
        window = static_cast<int64_t>(l.kernel) * l.kernel;
        break;
      case LayerKind::Matmul:
        window = 1;
        cin = std::max<int64_t>(1, cin / 2); // contraction dim
        break;
      default:
        window = 1;
    }
    if (!dense)
        cin = 1; // per-channel operator: no cross-channel reduction

    const int pe_dims[2] = {accel.peRows, accel.peCols};
    const MapDim options[3] = {MapDim::InputChannels,
                               MapDim::OutputChannels, MapDim::Spatial};

    int64_t real_macs = g.macs(v);
    best.cycles = INT64_MAX;
    for (MapDim r : options) {
        for (MapDim c : options) {
            // Depth-wise operators idle the 8 contraction rows of the
            // MAC array: only the 8 output-channel columns do work.
            int64_t ic_par = dense ? mac_side : 1;
            int64_t oc_par = mac_side;
            int64_t sp_par = 1;
            auto widen = [&](MapDim d, int factor) {
                switch (d) {
                  case MapDim::InputChannels:
                    if (dense)
                        ic_par *= factor;
                    else
                        sp_par *= factor; // nothing to contract
                    break;
                  case MapDim::OutputChannels:
                    oc_par *= factor;
                    break;
                  case MapDim::Spatial:
                    sp_par *= factor;
                    break;
                }
            };
            widen(r, pe_dims[0]);
            widen(c, pe_dims[1]);

            int64_t cycles = ceilDiv(cin, ic_par) * ceilDiv(cout, oc_par) *
                             ceilDiv(spatial, sp_par) * window;
            if (cycles < best.cycles) {
                best.cycles = cycles;
                best.rows = r;
                best.cols = c;
                double peak = static_cast<double>(cycles) *
                              accel.macsPerCycle();
                best.utilization =
                    peak > 0 ? static_cast<double>(real_macs) / peak : 1.0;
            }
        }
    }
    best.utilization = std::clamp(best.utilization, 0.0, 1.0);
    return best;
}

int64_t
mappedCycles(const Graph &g, const std::vector<NodeId> &nodes,
             const AcceleratorConfig &accel)
{
    int64_t total = 0;
    for (NodeId v : nodes)
        total += mapLayer(g, v, accel).cycles;
    return total;
}

} // namespace cocco
