#include "sim/cost_model.h"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.h"
#include "sim/mapper.h"
#include "sim/multicore.h"
#include "tileflow/footprint.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

namespace {

/** Hash of an already-sorted node set. */
uint64_t
hashSortedNodeSet(const std::vector<NodeId> &nodes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (NodeId v : nodes) {
        uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        h = (h ^ (x ^ (x >> 31))) * 0x100000001b3ULL;
    }
    return h;
}

} // namespace

size_t
CostModel::NodeSetHash::operator()(const std::vector<NodeId> &nodes) const
{
    return static_cast<size_t>(hashSortedNodeSet(nodes));
}

double
GraphCost::latencyMs(double clock_ghz) const
{
    return latencyCycles / (clock_ghz * 1e6);
}

double
GraphCost::metricValue(Metric m) const
{
    return m == Metric::EMA ? static_cast<double>(emaBytes) : energyPj;
}

double
objective(const GraphCost &cost, const BufferConfig &buf, double alpha,
          Metric m)
{
    if (!cost.feasible)
        return kInfeasiblePenalty + buf.totalBytes();
    return static_cast<double>(buf.totalBytes()) +
           alpha * cost.metricValue(m);
}

CostModel::CostModel(const Graph &g, const AcceleratorConfig &accel)
    : g_(g), accel_(accel)
{
}

const SubgraphProfile &
CostModel::profile(const std::vector<NodeId> &nodes)
{
    // Canonical (sorted) node set: the cache key compares by value on
    // hash hit, so a 64-bit collision cannot alias two subgraphs.
    std::vector<NodeId> key(nodes);
    std::sort(key.begin(), key.end());
    uint64_t h = hashSortedNodeSet(key);
    CacheShard &shard = shards_[h % kCacheShards];

    // The shard lock is held across the profile computation: a second
    // thread asking for the same subgraph waits for the memoized
    // result instead of duplicating the tile-flow profiling.
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end())
        return it->second;
    return shard.map.emplace(std::move(key), computeProfile(nodes))
        .first->second;
}

const BoundProfile &
CostModel::boundProfile(const std::vector<NodeId> &nodes)
{
    std::vector<NodeId> key(nodes);
    std::sort(key.begin(), key.end());
    uint64_t h = hashSortedNodeSet(key);
    CacheShard &shard = shards_[h % kCacheShards];

    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.bounds.find(key);
    if (it != shard.bounds.end())
        return it->second;
    // A memoized full profile already carries the boundary terms.
    BoundProfile bp;
    auto full = shard.map.find(key);
    if (full != shard.map.end()) {
        bp.inBytes = full->second.inBytes;
        bp.outBytes = full->second.outBytes;
        bp.weightBytes = full->second.weightBytes;
        bp.macs = full->second.macs;
    } else {
        bp = computeBoundProfile(nodes);
    }
    return shard.bounds.emplace(std::move(key), bp).first->second;
}

size_t
CostModel::cacheSize() const
{
    size_t n = 0;
    for (const CacheShard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        n += shard.map.size();
    }
    return n;
}

CostPruneStats
CostModel::pruneStats() const
{
    CostPruneStats s;
    s.fitsShortCircuits =
        fitsShortCircuits_.load(std::memory_order_relaxed);
    s.schemesPruned = schemesPruned_.load(std::memory_order_relaxed);
    return s;
}

BoundProfile
CostModel::computeBoundProfile(const std::vector<NodeId> &nodes) const
{
    BoundProfile bp;
    std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());

    for (NodeId u : boundaryInputs(g_, nodes))
        bp.inBytes += g_.outBytes(u);
    for (NodeId v : escapingOutputs(g_, nodes)) {
        // Model inputs live in DRAM already; nothing to write back.
        if (!g_.isInput(v))
            bp.outBytes += g_.outBytes(v);
    }
    for (NodeId v : nodes) {
        bp.weightBytes += g_.weightBytes(v);
        bp.macs += g_.macs(v);
        // A model-input node fused into this subgraph still loads its
        // tensor from DRAM (when anything here consumes it).
        if (g_.isInput(v)) {
            for (NodeId w : g_.succs(v))
                if (in_set.count(w)) {
                    bp.inBytes += g_.outBytes(v);
                    break;
                }
        }
    }
    return bp;
}

SubgraphProfile
CostModel::computeProfile(const std::vector<NodeId> &nodes) const
{
    SubgraphProfile prof;
    prof.nodeCount = static_cast<int>(nodes.size());

    std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());

    BoundProfile bp = computeBoundProfile(nodes);
    prof.inBytes = bp.inBytes;
    prof.outBytes = bp.outBytes;
    prof.weightBytes = bp.weightBytes;
    prof.macs = bp.macs;

    uint64_t pruned = 0;
    ExecutionScheme scheme =
        bestScheme(g_, nodes, defaultTileCandidates(), pruning(), &pruned);
    if (pruned)
        schemesPruned_.fetch_add(pruned, std::memory_order_relaxed);
    prof.actFootprintBytes = scheme.actFootprintBytes;
    prof.numRegions = scheme.numRegions;
    prof.outTile = scheme.outTile;

    // Global-buffer traffic: every tensor surfaced in the buffer is
    // written once (from DRAM for boundary inputs, from the PE array
    // for produced tensors) and read once per in-subgraph consumer;
    // escaping tensors are additionally read for write-back.
    std::unordered_set<NodeId> boundary;
    for (NodeId v : nodes)
        for (NodeId u : g_.preds(v))
            if (!in_set.count(u))
                boundary.insert(u);
    auto consumers_in = [&](NodeId u) {
        int64_t n = 0;
        for (NodeId w : g_.succs(u))
            if (in_set.count(w))
                ++n;
        return n;
    };
    for (NodeId u : boundary)
        prof.glbTraffic += g_.outBytes(u) * (1 + consumers_in(u));
    for (NodeId v : nodes) {
        bool escapes = g_.succs(v).empty();
        for (NodeId w : g_.succs(v))
            if (!in_set.count(w))
                escapes = true;
        if (g_.isInput(v))
            escapes = false; // constant data: no write-back read
        prof.glbTraffic +=
            g_.outBytes(v) * (1 + consumers_in(v) + (escapes ? 1 : 0));
    }

    // Weight-buffer traffic: one fill plus one streaming pass into the
    // PE-local scratchpads (weights are pinned across tile iterations).
    prof.wbufTraffic = 2 * prof.weightBytes;

    prof.mappedCycles = mappedCycles(g_, nodes, accel_);

    if (nodes.size() == 1) {
        const Layer &l = g_.layer(nodes.front());
        prof.kernel = l.kernel;
        prof.stride = l.stride;
    }
    return prof;
}

SubgraphCost
CostModel::assemble(const SubgraphProfile &prof, const BufferConfig &buf)
    const
{
    SubgraphCost cost;
    const int cores = accel_.cores;
    const int batch = accel_.batch;

    // Effective capacities seen by one core. Weights are sharded
    // across cores (paper Section 5.4.2); activations are not.
    int64_t act_cap, weight_cap;
    if (buf.style == BufferStyle::Shared) {
        act_cap = buf.sharedBytes;
        weight_cap = std::max<int64_t>(
            0, buf.sharedBytes - prof.actFootprintBytes);
    } else {
        act_cap = buf.actBytes;
        weight_cap = buf.weightBytes;
    }
    int64_t weight_resident = ceilDiv(prof.weightBytes, cores);

    bool act_fits = prof.actFootprintBytes <= act_cap;
    bool weight_fits = weight_resident <= weight_cap;
    bool regions_ok = prof.numRegions <= accel_.maxRegions;

    int64_t in_reload = 1;
    if (prof.nodeCount == 1) {
        // A single layer is always executable by further tiling, at
        // the price of reloading its inputs: once per weight pass
        // when the weights exceed the buffer (output-channel groups),
        // and with halo duplication when even the tile-1 activation
        // working set exceeds the buffer (no inter-row reuse).
        if (!weight_fits && prof.weightBytes > 0) {
            int64_t passes =
                ceilDiv(weight_resident, std::max<int64_t>(weight_cap, 1));
            in_reload *= std::min<int64_t>(passes, 64);
        }
        if (!act_fits) {
            int64_t halo = std::max(1, prof.kernel / prof.stride);
            in_reload *= std::min<int64_t>(halo * halo, 64);
        }
        cost.feasible = true;
    } else {
        cost.feasible = act_fits && weight_fits && regions_ok;
        if (!cost.feasible)
            return cost;
    }

    // --- EMA (per batch of `batch` inferences). ---
    // Weights are fetched once per subgraph for the whole batch
    // (inter-sample reuse); activations move per sample.
    int64_t act_ema = (prof.inBytes * in_reload + prof.outBytes) * batch;
    int64_t weight_ema = prof.weightBytes;
    cost.emaBytes = act_ema + weight_ema;

    // --- Energy. ---
    const EnergyModel &em = accel_.energy;
    double glb_pj = em.sramPjPerByte(act_cap > 0 ? act_cap : 1);
    double wbuf_pj = em.sramPjPerByte(
        buf.style == BufferStyle::Shared ? buf.sharedBytes : buf.weightBytes);
    double energy = em.dramEnergyPj(cost.emaBytes);
    energy += static_cast<double>(prof.glbTraffic) * batch * glb_pj;
    energy += static_cast<double>(prof.wbufTraffic) * wbuf_pj;
    energy += em.macEnergyPj(prof.macs) * batch;
    energy += crossbarEnergyPj(prof, accel_);
    cost.energyPj = energy;

    // --- Latency. ---
    // Mapped cycles include PE-array under-utilization (channel
    // padding, depth-wise idling); they lower-bound at macs / peak.
    cost.computeCycles = static_cast<double>(prof.mappedCycles) * batch /
                         cores;
    cost.commCycles = static_cast<double>(cost.emaBytes) /
                      (accel_.dramBytesPerCycle() * cores);
    cost.latencyCycles = std::max(cost.computeCycles, cost.commCycles) +
                         crossbarCycles(prof, accel_);
    return cost;
}

SubgraphCost
CostModel::subgraphCost(const std::vector<NodeId> &nodes,
                        const BufferConfig &buf)
{
    return assemble(profile(nodes), buf);
}

SubgraphBound
CostModel::subgraphBound(const std::vector<NodeId> &nodes,
                         const BufferConfig &buf)
{
    const BoundProfile &bp = boundProfile(nodes);
    const int cores = accel_.cores;
    const int batch = accel_.batch;
    SubgraphBound b;

    // EMA floor: boundary activations move at least once per sample,
    // weights at least once per batch (assemble's reload factor is
    // >= 1 and only ever multiplies the input term).
    b.emaBytes = (bp.inBytes + bp.outBytes) * batch + bp.weightBytes;

    // Energy floor: assemble's exact terms with the traffic floors
    // substituted — glbTraffic >= in + out (every surfaced tensor is
    // written at least once), wbufTraffic == 2 * weights exactly —
    // and the non-negative crossbar term dropped.
    int64_t act_cap =
        buf.style == BufferStyle::Shared ? buf.sharedBytes : buf.actBytes;
    const EnergyModel &em = accel_.energy;
    double glb_pj = em.sramPjPerByte(act_cap > 0 ? act_cap : 1);
    double wbuf_pj = em.sramPjPerByte(
        buf.style == BufferStyle::Shared ? buf.sharedBytes : buf.weightBytes);
    double energy = em.dramEnergyPj(b.emaBytes);
    energy += static_cast<double>(bp.inBytes + bp.outBytes) * batch * glb_pj;
    energy += 2.0 * static_cast<double>(bp.weightBytes) * wbuf_pj;
    energy += em.macEnergyPj(bp.macs) * batch;
    b.energyPj = energy;

    // Latency floor: mapped cycles never beat macs / peak throughput,
    // DRAM cycles scale with the EMA floor, crossbar dropped.
    b.computeCycles = static_cast<double>(bp.macs) * batch /
                      (static_cast<double>(accel_.macsPerCycle()) * cores);
    b.commCycles = static_cast<double>(b.emaBytes) /
                   (accel_.dramBytesPerCycle() * cores);
    b.latencyCycles = std::max(b.computeCycles, b.commCycles);
    return b;
}

SubgraphBound
CostModel::partitionLowerBound(const Partition &p, const BufferConfig &buf)
{
    SubgraphBound total;
    for (const auto &blk : p.blocks()) {
        SubgraphBound b = subgraphBound(blk, buf);
        total.emaBytes += b.emaBytes;
        total.energyPj += b.energyPj;
        total.computeCycles += b.computeCycles;
        total.commCycles += b.commCycles;
        total.latencyCycles += b.latencyCycles;
    }
    return total;
}

bool
CostModel::fits(const std::vector<NodeId> &nodes, const BufferConfig &buf)
{
    if (pruning()) {
        // Trivial answers that need no tile-flow profiling: a single
        // layer always fits (further tiling at a reload price), and a
        // multi-node subgraph whose weight shard exceeds even the
        // whole buffer can never fit (assemble's weight capacity is
        // at most the buffer size). Exercised heavily by the in-situ
        // capacity repair.
        if (nodes.size() == 1) {
            fitsShortCircuits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        const BoundProfile &bp = boundProfile(nodes);
        int64_t wcap = buf.style == BufferStyle::Shared ? buf.sharedBytes
                                                        : buf.weightBytes;
        if (ceilDiv(bp.weightBytes, accel_.cores) > wcap) {
            fitsShortCircuits_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    }
    const SubgraphProfile &prof = profile(nodes);
    if (prof.nodeCount == 1)
        return true;
    return assemble(prof, buf).feasible;
}

GraphCost
CostModel::partitionCost(const Partition &p, const BufferConfig &buf,
                         SubgraphCostCache *block_cache, CostScope scope)
{
    const bool objective_only = scope == CostScope::Objective;
    GraphCost total;
    total.feasible = true;
    auto blocks = p.blocks();
    std::vector<SubgraphCost> costs;
    costs.reserve(blocks.size());
    for (const auto &blk : blocks) {
        SubgraphCost c;
        if (!block_cache || !block_cache->lookupBlock(blk, buf, &c)) {
            c = subgraphCost(blk, buf);
            if (block_cache)
                block_cache->insertBlock(blk, buf, c);
        }
        ++total.subgraphs;
        costs.push_back(c);
        if (!c.feasible) {
            total.feasible = false;
            // The objective of an infeasible partition is the flat
            // penalty: nothing computed past this point can change
            // it, so the remaining blocks are skipped.
            if (objective_only)
                return total;
            continue;
        }
        total.emaBytes += c.emaBytes;
        total.energyPj += c.energyPj;
        total.latencyCycles += c.latencyCycles;
    }
    if (!objective_only && total.latencyCycles > 0) {
        // bytes/cycle at clockGhz GHz -> GB/s.
        total.avgBwGBps = static_cast<double>(total.emaBytes) /
                          total.latencyCycles * accel_.clockGhz;
    }
    // Strict double-buffered prefetch: adjacent subgraphs' weights
    // must co-reside in the weight (or shared) buffer. Weight shards
    // need only the boundary summary, never a full profile.
    if (accel_.doubleBufferWeights) {
        int64_t cap = buf.style == BufferStyle::Shared ? buf.sharedBytes
                                                       : buf.weightBytes;
        for (size_t i = 0; i + 1 < blocks.size(); ++i) {
            int64_t wa =
                ceilDiv(boundProfile(blocks[i]).weightBytes, accel_.cores);
            int64_t wb = ceilDiv(boundProfile(blocks[i + 1]).weightBytes,
                                 accel_.cores);
            // Oversized singletons stream their weights in tiles (the
            // reload fallback) and are exempt from co-residency.
            if (wa > cap || wb > cap)
                continue;
            if (wa + wb > cap) {
                total.feasible = false;
                if (objective_only)
                    return total;
            }
        }
    }
    if (objective_only)
        return total;

    // Peak demand: each subgraph's activation traffic plus the next
    // subgraph's weights, prefetched during this window.
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (!costs[i].feasible || costs[i].latencyCycles <= 0)
            continue;
        const BoundProfile &bp = boundProfile(blocks[i]);
        int64_t act_io = (bp.inBytes + bp.outBytes) * accel_.batch;
        int64_t prefetch = i + 1 < blocks.size()
                               ? boundProfile(blocks[i + 1]).weightBytes
                               : 0;
        double bw = static_cast<double>(act_io + prefetch) /
                    costs[i].latencyCycles * accel_.clockGhz;
        total.peakBwGBps = std::max(total.peakBwGBps, bw);
    }
    return total;
}

uint64_t
CostModel::contextHash(uint64_t h) const
{
    h = hashGraph(h, g_);
    return hashAccelerator(h, accel_);
}

DeploymentBreakdown
CostModel::breakdown(const Partition &p, const BufferConfig &buf)
{
    DeploymentBreakdown b;
    b.cores = std::max(1, accel_.cores);
    GraphCost total = partitionCost(p, buf);

    int64_t macs = 0;
    for (const auto &blk : p.blocks()) {
        const SubgraphProfile &prof = profile(blk);
        b.crossbarEnergyPj += crossbarEnergyPj(prof, accel_);
        b.crossbarCycles += crossbarCycles(prof, accel_);
        macs += prof.macs;
    }
    if (total.energyPj > 0)
        b.crossbarEnergyShare = b.crossbarEnergyPj / total.energyPj;
    if (total.latencyCycles > 0)
        b.crossbarLatencyShare = b.crossbarCycles / total.latencyCycles;

    // Equal weight shards: every core retires macs / cores useful MACs
    // per sample over the partition's execution window.
    double util = 0.0;
    if (total.latencyCycles > 0) {
        double core_macs = static_cast<double>(macs) * accel_.batch /
                           b.cores;
        util = core_macs /
               (static_cast<double>(accel_.macsPerCycle()) *
                total.latencyCycles);
    }
    b.coreUtilization.assign(static_cast<size_t>(b.cores), util);
    return b;
}

std::vector<double>
CostModel::coreComputeCycles(const std::vector<NodeId> &nodes)
{
    int cores = std::max(1, accel_.cores);
    double per = static_cast<double>(profile(nodes).mappedCycles) *
                 accel_.batch / cores;
    return std::vector<double>(static_cast<size_t>(cores), per);
}

} // namespace cocco
