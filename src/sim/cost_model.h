/**
 * @file
 * The analytical cost model (paper Section 5.1.2): per-subgraph
 * external memory access (EMA), energy, latency and bandwidth, and
 * their aggregation over a partition, including multi-core weight
 * sharing and batch processing.
 *
 * Evaluation is split into two phases for search efficiency:
 *   1. a buffer-capacity-independent SubgraphProfile (tile-flow
 *      footprint, traffic, MACs), memoized by node-set hash;
 *   2. a cheap per-configuration assembly into SubgraphCost.
 *
 * EMA of a subgraph = boundary input tensors + escaping output
 * tensors + layer weights (Figure 1's "Min EMA = #Wgt + #In + #Out"),
 * with reload penalties when a single layer exceeds the buffers.
 * Energy = DRAM + global-buffer + weight-buffer + MAC terms.
 * Latency per subgraph = max(compute cycles, DRAM cycles).
 */

#ifndef COCCO_SIM_COST_MODEL_H
#define COCCO_SIM_COST_MODEL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/accelerator.h"

namespace cocco {

/** Optimization metric M of Formulas 1 and 2. */
enum class Metric
{
    EMA,    ///< external memory access, bytes
    Energy, ///< total energy, pJ
};

/** Buffer-capacity-independent summary of one subgraph. */
struct SubgraphProfile
{
    int nodeCount = 0;
    int64_t inBytes = 0;      ///< boundary input tensors
    int64_t outBytes = 0;     ///< escaping output tensors
    int64_t weightBytes = 0;  ///< resident weights
    int64_t macs = 0;

    int64_t actFootprintBytes = 0; ///< best-scheme MAIN+SIDE total
    int numRegions = 0;
    int outTile = 1;

    int64_t glbTraffic = 0;   ///< global-buffer bytes moved
    int64_t wbufTraffic = 0;  ///< weight-buffer bytes moved

    /** PE-array compute cycles per sample (spatial mapper result,
     *  includes padding-induced under-utilization). */
    int64_t mappedCycles = 0;

    // Reload modelling for oversized singleton layers.
    int kernel = 1;
    int stride = 1;
};

/** Cost of one subgraph under a concrete buffer configuration. */
struct SubgraphCost
{
    bool feasible = false;    ///< fits buffers and region limit
    int64_t emaBytes = 0;
    double energyPj = 0.0;
    double computeCycles = 0.0;
    double commCycles = 0.0;
    double latencyCycles = 0.0;
};

/**
 * Boundary-only summary of a subgraph: the terms that survive any
 * tiling (boundary tensors, weights, MACs). Much cheaper than a full
 * SubgraphProfile — no scheme derivation, no spatial mapping — and
 * sufficient both for the roofline lower bound and for the
 * weight-residency terms of partition-level bookkeeping.
 */
struct BoundProfile
{
    int64_t inBytes = 0;     ///< boundary input tensors
    int64_t outBytes = 0;    ///< escaping output tensors
    int64_t weightBytes = 0; ///< resident weights
    int64_t macs = 0;
};

/**
 * Roofline lower bound on a subgraph's cost under a buffer
 * configuration: ephemeral intermediates are free, boundary tensors
 * and weights must cross DRAM at least once, and compute can never
 * beat macs / peak throughput. Every field lower-bounds the
 * corresponding SubgraphCost field of any *feasible* evaluation of
 * the same node set — and, summed over blocks, of any partition
 * refining it — so a bound that already exceeds an incumbent
 * objective proves the candidate cannot win.
 */
struct SubgraphBound
{
    int64_t emaBytes = 0;
    double energyPj = 0.0;
    double computeCycles = 0.0;
    double commCycles = 0.0;
    double latencyCycles = 0.0;

    /** Lower bound on the metric value (bytes for EMA, pJ for
     *  Energy). */
    double
    metricValue(Metric m) const
    {
        return m == Metric::EMA ? static_cast<double>(emaBytes) : energyPj;
    }
};

/** Per-model pruning counters (monotonic; see CostModel::pruneStats). */
struct CostPruneStats
{
    uint64_t fitsShortCircuits = 0; ///< fits() decided without profiling
    uint64_t schemesPruned = 0;     ///< tile candidates aborted early

    CostPruneStats &
    operator+=(const CostPruneStats &o)
    {
        fitsShortCircuits += o.fitsShortCircuits;
        schemesPruned += o.schemesPruned;
        return *this;
    }
};

/** Aggregate cost of a whole partition. */
struct GraphCost
{
    bool feasible = false;    ///< every subgraph feasible
    int subgraphs = 0;
    int64_t emaBytes = 0;
    double energyPj = 0.0;
    double latencyCycles = 0.0;
    double avgBwGBps = 0.0;

    /** Peak per-subgraph DRAM demand: this subgraph's activation I/O
     *  plus the next subgraph's weight prefetch, over its execution
     *  window (paper Section 5.1.2's bandwidth accounting). */
    double peakBwGBps = 0.0;

    /** Latency in milliseconds at @p clock_ghz. */
    double latencyMs(double clock_ghz = 1.0) const;

    /** Metric value (bytes for EMA, pJ for Energy). */
    double metricValue(Metric m) const;
};

/**
 * Formula 2 objective: BUF_SIZE + alpha * metric. Infeasible
 * partitions return a large finite penalty so search can still rank.
 */
double objective(const GraphCost &cost, const BufferConfig &buf,
                 double alpha, Metric m);

/** Penalty objective value assigned to infeasible partitions. */
constexpr double kInfeasiblePenalty = 1e18;

/**
 * Hook for an external per-(subgraph, buffer) cost cache. When a
 * partition evaluation only changed a few blocks relative to earlier
 * evaluations, the unchanged blocks' SubgraphCosts are served from
 * here instead of being reassembled (incremental re-evaluation; the
 * EvalCache in src/search/eval_cache.h is the production
 * implementation). Implementations must be thread-safe and must
 * return exactly the value that was inserted — a cache may evict or
 * miss freely, but never alias two different keys.
 */
class SubgraphCostCache
{
  public:
    virtual ~SubgraphCostCache() = default;

    /** @return true and fill @p out when (nodes, buf) is cached. */
    virtual bool lookupBlock(const std::vector<NodeId> &nodes,
                             const BufferConfig &buf, SubgraphCost *out) = 0;

    /** Record the cost of (nodes, buf). */
    virtual void insertBlock(const std::vector<NodeId> &nodes,
                             const BufferConfig &buf,
                             const SubgraphCost &cost) = 0;
};

/**
 * Per-core / interconnect accounting of an evaluated partition: how
 * busy each core is over the execution window and what share of the
 * totals the crossbar contributes. For a single core every crossbar
 * term is exactly zero.
 */
struct DeploymentBreakdown
{
    int cores = 1;

    /** Per-core MAC utilization over the whole execution window
     *  (useful work / peak; equal weight shards, so heterogeneous
     *  cores differ through their compute throughput). */
    std::vector<double> coreUtilization;

    double crossbarEnergyPj = 0.0; ///< total crossbar energy
    double crossbarCycles = 0.0;   ///< total crossbar serialization

    double crossbarEnergyShare = 0.0;  ///< of the partition's energy
    double crossbarLatencyShare = 0.0; ///< of the partition's latency
};

/**
 * Memoizing evaluator for one (graph, accelerator) pair.
 *
 * Thread safety: profile(), subgraphCost(), fits() and
 * partitionCost() may be called concurrently from any number of
 * threads. The profile memo is sharded across striped locks keyed by
 * the node-set hash, so concurrent callers share (rather than
 * duplicate) memoized profiles; a profile is computed at most once.
 * Entries are keyed on the canonical (sorted) node set and compared
 * by value on lookup, so a 64-bit hash collision can never alias two
 * different subgraphs.
 *
 * The evaluation entry points (subgraphCost/fits/partitionCost) and
 * the deployment hooks (contextHash/breakdown/coreComputeCycles) are
 * virtual so a scale-out evaluator (DeploymentCostModel,
 * sim/deployment.h) can compose per-core models behind the same
 * interface the whole search stack already consumes.
 */
class CostModel
{
  public:
    CostModel(const Graph &g, const AcceleratorConfig &accel);
    virtual ~CostModel() = default;

    /** The platform being modelled (for a deployment: the aggregate
     *  view — core 0's configuration with the deployment folded in). */
    const AcceleratorConfig &accel() const { return accel_; }

    /** The workload graph. */
    const Graph &graph() const { return g_; }

    /** Capacity-independent profile of a subgraph (memoized). */
    const SubgraphProfile &profile(const std::vector<NodeId> &nodes);

    /** Boundary-only summary of a subgraph (memoized; derived from an
     *  already-memoized full profile when one exists). */
    const BoundProfile &boundProfile(const std::vector<NodeId> &nodes);

    /** Cost of one subgraph under @p buf. */
    virtual SubgraphCost subgraphCost(const std::vector<NodeId> &nodes,
                                      const BufferConfig &buf);

    /**
     * Cheap roofline lower bound on subgraphCost (see SubgraphBound).
     * Needs only the boundary summary — no tile-flow enumeration, no
     * spatial mapping — so it is orders of magnitude cheaper than an
     * exact evaluation. A deployment model composes per-core bounds
     * gated on the slowest core.
     */
    virtual SubgraphBound subgraphBound(const std::vector<NodeId> &nodes,
                                        const BufferConfig &buf);

    /**
     * Lower bound on partitionCost(p, buf) — and on the cost of every
     * refinement of @p p: the per-block roofline bounds, summed.
     * Splitting a block only adds boundary traffic while its weights
     * and MACs are exact sums, so the bound also holds for any
     * partition that repair (which only ever splits) derives from
     * @p p. Dispatches through subgraphBound, so deployment models
     * compose per-core bounds automatically. Backs the engine's
     * incumbent screening (EvalEngine::objectiveBound) and the
     * two-step driver's candidate rejection.
     */
    SubgraphBound partitionLowerBound(const Partition &p,
                                      const BufferConfig &buf);

    /** Whether a subgraph fits @p buf (residency + region limit). */
    virtual bool fits(const std::vector<NodeId> &nodes,
                      const BufferConfig &buf);

    /**
     * How much of partitionCost a caller needs. Objective restricts
     * the result to the fields the search objective reads (feasible,
     * emaBytes, energyPj): per-block work stops as soon as the
     * partition is known infeasible and the bandwidth summaries are
     * skipped. Every field that is produced is bit-identical to a
     * Full evaluation.
     */
    enum class CostScope
    {
        Full,      ///< every GraphCost field
        Objective, ///< feasibility + metric sums only
    };

    /**
     * Aggregate cost of a partition under @p buf. When @p block_cache
     * is non-null, per-block SubgraphCosts are looked up there first
     * and inserted on miss, so re-evaluating a partition that shares
     * blocks with earlier ones only assembles the changed blocks.
     */
    virtual GraphCost partitionCost(const Partition &p,
                                    const BufferConfig &buf,
                                    SubgraphCostCache *block_cache =
                                        nullptr,
                                    CostScope scope = CostScope::Full);

    /**
     * Toggle the bound-based work-skipping fast paths (trivial fits()
     * answers, tile candidates aborted against the incumbent
     * footprint). Pruning never changes any produced value — bounds
     * only skip work that cannot win — so models with different
     * settings still agree bit-for-bit; the switch exists so the
     * claim stays testable. Off by default; the evaluation engine
     * sets it from EvalOptions::pruning. A deployment model forwards
     * the setting to its per-core models.
     */
    virtual void
    setPruning(bool on)
    {
        prune_.store(on, std::memory_order_relaxed);
    }

    /** Whether the work-skipping fast paths are enabled. */
    bool
    pruning() const
    {
        return prune_.load(std::memory_order_relaxed);
    }

    /** Snapshot of the pruning counters (a deployment model sums its
     *  per-core models' counters in). */
    virtual CostPruneStats pruneStats() const;

    /**
     * Fold everything that determines this model's cost values into a
     * running content hash: the graph plus the accelerator here; a
     * deployment model additionally folds every core's configuration,
     * so cached evaluations of different deployments can never alias.
     * The evaluation cache's salts are built from this.
     */
    virtual uint64_t contextHash(uint64_t h) const;

    /** Per-core / crossbar accounting of @p p under @p buf. */
    virtual DeploymentBreakdown breakdown(const Partition &p,
                                          const BufferConfig &buf);

    /**
     * Per-core busy compute cycles for one execution of a subgraph
     * (equal weight shards; index = core). Single-entry for a
     * single-core platform. Used for the timeline's per-core lanes.
     */
    virtual std::vector<double>
    coreComputeCycles(const std::vector<NodeId> &nodes);

    /** Number of distinct subgraphs profiled so far. */
    size_t cacheSize() const;

  private:
    /** FNV-style hash of an already-sorted node set. */
    struct NodeSetHash
    {
        size_t operator()(const std::vector<NodeId> &nodes) const;
    };

    /** One stripe of the profile memo (full profiles + the cheap
     *  boundary summaries share the stripes). */
    struct CacheShard
    {
        mutable std::mutex mu;
        std::unordered_map<std::vector<NodeId>, SubgraphProfile, NodeSetHash>
            map;
        std::unordered_map<std::vector<NodeId>, BoundProfile, NodeSetHash>
            bounds;
    };

    static constexpr int kCacheShards = 64;

    SubgraphCost assemble(const SubgraphProfile &prof,
                          const BufferConfig &buf) const;
    SubgraphProfile computeProfile(const std::vector<NodeId> &nodes) const;
    BoundProfile computeBoundProfile(const std::vector<NodeId> &nodes)
        const;

    const Graph &g_;
    AcceleratorConfig accel_;
    CacheShard shards_[kCacheShards];

    std::atomic<bool> prune_{false};
    mutable std::atomic<uint64_t> fitsShortCircuits_{0};
    mutable std::atomic<uint64_t> schemesPruned_{0};
};

} // namespace cocco

#endif // COCCO_SIM_COST_MODEL_H
