/**
 * @file
 * Multi-core scale-out model (paper Section 5.4.2): cores share the
 * weights of a subgraph over a crossbar, each core holding 1/n of the
 * weights at a time and rotating shards (as in Tangram's BSD or
 * NN-Baton's data rotation). Boundary input activations are broadcast
 * to all cores.
 *
 * The crossbar adds energy (per byte-hop) and a serialization term to
 * latency; both vanish for a single core.
 */

#ifndef COCCO_SIM_MULTICORE_H
#define COCCO_SIM_MULTICORE_H

#include "sim/accelerator.h"

namespace cocco {

struct SubgraphProfile;

/**
 * Bytes crossing the crossbar for one execution of a subgraph:
 * weight shards visit the other (n-1) cores and boundary inputs are
 * broadcast to the other (n-1) cores. Zero for n = 1.
 */
int64_t crossbarBytes(const SubgraphProfile &prof,
                      const AcceleratorConfig &accel);

/** Crossbar energy (pJ) for one execution of a subgraph. */
double crossbarEnergyPj(const SubgraphProfile &prof,
                        const AcceleratorConfig &accel);

/**
 * Crossbar serialization latency (cycles) for one execution; models
 * the rotation traffic through the shared crossbar bandwidth.
 */
double crossbarCycles(const SubgraphProfile &prof,
                      const AcceleratorConfig &accel);

} // namespace cocco

#endif // COCCO_SIM_MULTICORE_H
