#include "sim/accelerator.h"

// AcceleratorConfig is a plain aggregate with inline helpers; this
// translation unit exists so the module has a stable home for future
// non-inline members and keeps the build graph uniform.

namespace cocco {

} // namespace cocco
