#include "sim/timeline.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cocco {

double
Timeline::computeBoundFraction() const
{
    if (entries.empty())
        return 0.0;
    int n = 0;
    for (const TimelineEntry &e : entries)
        n += e.computeBound;
    return static_cast<double>(n) / static_cast<double>(entries.size());
}

std::string
Timeline::gantt(int width) const
{
    if (entries.empty() || totalCycles <= 0)
        return "(empty timeline)\n";
    std::string out;
    for (const TimelineEntry &e : entries) {
        int start = static_cast<int>(e.startCycle / totalCycles * width);
        int end = std::max(start + 1,
                           static_cast<int>(e.endCycle / totalCycles *
                                            width));
        end = std::min(end, width);
        std::string bar(static_cast<size_t>(start), ' ');
        bar += std::string(static_cast<size_t>(end - start),
                           e.computeBound ? '#' : '=');
        out += strprintf("sg%-3d |%-*s| %6.0f cyc %s %5.1f GB/s\n",
                         e.subgraph, width, bar.c_str(),
                         e.endCycle - e.startCycle,
                         e.computeBound ? "compute" : "   comm",
                         e.bwGBps);
        // Per-core lanes: each core's busy compute span within the
        // window (the remainder is crossbar rotation / DRAM stall).
        double window = e.endCycle - e.startCycle;
        for (size_t c = 0; c < e.coreBusyCycles.size(); ++c) {
            double busy = std::min(e.coreBusyCycles[c], window);
            int bend = start;
            if (window > 0)
                bend = std::max(
                    busy > 0 ? start + 1 : start,
                    start + static_cast<int>(busy / totalCycles * width));
            bend = std::min(bend, end);
            std::string lane(static_cast<size_t>(start), ' ');
            lane += std::string(static_cast<size_t>(bend - start), '+');
            out += strprintf(" c%-4zu|%-*s| %6.0f cyc busy %5.1f%%\n", c,
                             width, lane.c_str(), e.coreBusyCycles[c],
                             window > 0 ? 100.0 * busy / window : 0.0);
        }
    }
    out += strprintf("total %.0f cycles; '#' compute-bound, '=' "
                     "communication-bound%s\n",
                     totalCycles,
                     cores > 1 ? "; '+' per-core busy compute" : "");
    return out;
}

std::string
ganttLane(const std::string &label, double fraction, int width)
{
    double f = std::min(1.0, std::max(0.0, fraction));
    int fill = static_cast<int>(std::lround(f * width));
    if (f > 0.0 && fill == 0)
        fill = 1; // a non-empty lane is always visible
    std::string lane(static_cast<size_t>(fill), '+');
    return strprintf("%s|%-*s| %5.1f%%\n", label.c_str(), width,
                     lane.c_str(), 100.0 * f);
}

Timeline
buildTimeline(CostModel &model, const Partition &p, const BufferConfig &buf)
{
    Timeline tl;
    tl.cores = std::max(1, model.accel().cores);
    auto blocks = p.blocks();
    double cursor = 0.0;
    for (size_t i = 0; i < blocks.size(); ++i) {
        SubgraphCost c = model.subgraphCost(blocks[i], buf);
        TimelineEntry e;
        e.subgraph = static_cast<int>(i);
        e.nodes = static_cast<int>(blocks[i].size());
        e.startCycle = cursor;
        if (c.feasible) {
            e.computeCycles = c.computeCycles;
            e.commCycles = c.commCycles;
            e.computeBound = c.computeCycles >= c.commCycles;
            e.emaBytes = c.emaBytes;
            const SubgraphProfile &prof = model.profile(blocks[i]);
            e.prefetchBytes = i + 1 < blocks.size()
                                  ? model.profile(blocks[i + 1]).weightBytes
                                  : 0;
            double window = c.latencyCycles;
            if (window > 0) {
                int64_t act_io = (prof.inBytes + prof.outBytes) *
                                 model.accel().batch;
                e.bwGBps = static_cast<double>(act_io + e.prefetchBytes) /
                           window * model.accel().clockGhz;
            }
            if (tl.cores > 1)
                e.coreBusyCycles = model.coreComputeCycles(blocks[i]);
            cursor += c.latencyCycles;
        }
        e.endCycle = cursor;
        tl.entries.push_back(e);
    }
    tl.totalCycles = cursor;
    return tl;
}

} // namespace cocco
