/**
 * @file
 * Execution timeline: expands a partition's cost into a per-subgraph
 * event sequence — when each subgraph starts and ends, whether its
 * window is compute- or communication-bound, and what the DRAM link
 * carries during it (its own activation I/O plus the next subgraph's
 * weight prefetch). Renders a text Gantt chart; the quickstart-level
 * tool for understanding *why* a partition costs what it costs.
 *
 * Deployment-aware: on a multi-core model every window additionally
 * records each core's busy compute cycles (equal weight shards;
 * heterogeneous cores differ through their throughput), and the Gantt
 * chart renders one indented lane per core under the window. The
 * single-core rendering is unchanged.
 */

#ifndef COCCO_SIM_TIMELINE_H
#define COCCO_SIM_TIMELINE_H

#include <string>
#include <vector>

#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/** One subgraph's window on the timeline. */
struct TimelineEntry
{
    int subgraph = 0;
    double startCycle = 0.0;
    double endCycle = 0.0;
    double computeCycles = 0.0;
    double commCycles = 0.0;
    bool computeBound = true;
    int64_t emaBytes = 0;       ///< DRAM bytes of this window
    int64_t prefetchBytes = 0;  ///< next subgraph's weights
    double bwGBps = 0.0;        ///< demand during this window
    int nodes = 0;

    /** Per-core busy compute cycles within this window (empty on a
     *  single-core platform). */
    std::vector<double> coreBusyCycles;
};

/** The whole execution timeline of a partition. */
struct Timeline
{
    std::vector<TimelineEntry> entries;
    double totalCycles = 0.0;
    int cores = 1; ///< deployment width (per-core lanes when > 1)

    /** Fraction of windows that are compute-bound. */
    double computeBoundFraction() const;

    /** Render an ASCII Gantt chart (at most @p width columns). */
    std::string gantt(int width = 60) const;
};

/**
 * Build the timeline of partition @p p under buffer @p buf. Requires
 * a feasible partition (infeasible subgraphs are skipped with a
 * zero-length window).
 */
Timeline buildTimeline(CostModel &model, const Partition &p,
                       const BufferConfig &buf);

/**
 * One proportional occupancy lane: "<label> |++++      |" with
 * @p fraction of @p width columns filled (clamped to [0, 1]). The
 * building block for the co-scheduler's per-tenant lanes; the
 * per-core lanes inside gantt() render the same way.
 */
std::string ganttLane(const std::string &label, double fraction,
                      int width = 60);

} // namespace cocco

#endif // COCCO_SIM_TIMELINE_H
