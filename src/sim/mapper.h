/**
 * @file
 * Single-layer spatial mapper: decides how a layer's loop nests
 * occupy the PE array (paper Section 5.1.2: "the parallelism of two
 * dimensions of the PE array can be dynamically configured by the
 * mapper results to ensure high utilization").
 *
 * Each PE holds an 8x8 MAC array contracting 8 input channels into 8
 * output channels per cycle; the two PE-array dimensions (4x4) can
 * each be assigned to input channels, output channels, or spatial
 * positions. The mapper enumerates the nine assignments and keeps the
 * one with the fewest cycles (highest utilization). Depth-wise
 * operators cannot use the cross-channel dot product, so their MAC
 * rows contribute spatial parallelism instead.
 */

#ifndef COCCO_SIM_MAPPER_H
#define COCCO_SIM_MAPPER_H

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "sim/accelerator.h"

namespace cocco {

/** Loop dimension a PE-array axis can parallelize. */
enum class MapDim
{
    InputChannels,
    OutputChannels,
    Spatial,
};

/** @return short name ("IC", "OC", "SP"). */
const char *mapDimName(MapDim d);

/** The chosen mapping and its performance for one layer. */
struct LayerMapping
{
    MapDim rows = MapDim::OutputChannels; ///< PE-array rows assignment
    MapDim cols = MapDim::Spatial;        ///< PE-array cols assignment
    int64_t cycles = 0;       ///< compute cycles for the whole layer
    double utilization = 1.0; ///< real MACs / (cycles x peak MACs)

    /** "rows=OC cols=SP util=87.5%" rendering. */
    std::string str() const;
};

/**
 * Map layer @p v of @p g onto the PE array of @p accel, choosing the
 * assignment with the fewest cycles. Layers without compute (Input,
 * Concat) return zero cycles and unit utilization.
 */
LayerMapping mapLayer(const Graph &g, NodeId v,
                      const AcceleratorConfig &accel);

/** Sum of mapped compute cycles over a node set (batch of one). */
int64_t mappedCycles(const Graph &g, const std::vector<NodeId> &nodes,
                     const AcceleratorConfig &accel);

} // namespace cocco

#endif // COCCO_SIM_MAPPER_H
