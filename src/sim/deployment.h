/**
 * @file
 * The deployment frontend: first-class multi-accelerator scale-out
 * (paper Section 5.4.2 / Table 3). A deployment describes how one
 * workload is spread over crossbar-connected cores — how many cores,
 * which platform each core runs (heterogeneous mixes allowed), and
 * the interconnect the weight shards rotate over — and is addressable
 * by preset name, by file, or inline, exactly like workloads and
 * platforms.
 *
 * Layers:
 *   DeploymentDesc      the declarative description (core platforms
 *                       are PlatformSpec *addresses*)
 *   DeploymentSpec      an address of a description: preset / file /
 *                       inline (what a run spec or the CLI carries)
 *   DeploymentRegistry  named presets ("single", "dual", "quad",
 *                       "big-little"), mirroring PlatformRegistry
 *   DeploymentConfig    the resolved form: one AcceleratorConfig per
 *                       core + the interconnect
 *   DeploymentCostModel the evaluator: composes per-core CostModels
 *                       with the crossbar serialization/energy terms
 *                       behind the plain CostModel interface
 *
 * Deployment JSON (strict; "cores" alone is the common case):
 *
 *   {
 *     "base": "quad",                       // optional preset start
 *     "cores": 4,
 *     "interconnect": { "bytesPerCycle": 256.0, "pjPerByteHop": 4.0 },
 *     "corePlatforms": [ "simba", "simba", "edge", "edge" ]
 *   }
 *
 * Omitted "corePlatforms" means every core runs the run's platform;
 * entries are platform addresses (preset string, {"file": PATH}, or
 * inline object). A single-core deployment is exactly zero-cost: the
 * run is bit-identical to the same run with no deployment at all.
 */

#ifndef COCCO_SIM_DEPLOYMENT_H
#define COCCO_SIM_DEPLOYMENT_H

#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/platform.h"

namespace cocco {

class JsonValue;

/**
 * The inter-core interconnect (the weight-rotation crossbar). Both
 * knobs default to "inherit": a deployment that does not mention the
 * interconnect models exactly the core platform's built-in crossbar
 * (crossbarBytesPerCycle / energy.crossbarPjPerByte) — including a
 * platform file that customized those values. resolveInterconnect()
 * materializes the inherited values against core 0.
 */
struct InterconnectConfig
{
    double bytesPerCycle = 0.0; ///< aggregate crossbar bandwidth
                                ///< (<= 0: inherit the core platform's)
    double pjPerByteHop = -1.0; ///< energy per byte per hop
                                ///< (< 0: inherit the core platform's)
};

/** @p ic with unset knobs filled in from @p core0's built-in
 *  crossbar parameters. */
InterconnectConfig resolveInterconnect(const InterconnectConfig &ic,
                                       const AcceleratorConfig &core0);

/** Field-wise equality over everything the cost model reads (used to
 *  dedup per-core models here and in the co-scheduler). */
bool accelEqual(const AcceleratorConfig &a, const AcceleratorConfig &b);

/**
 * A declarative deployment description. Core platforms are addresses
 * (resolved against the registry / files / the run's own platform by
 * resolveDeployment in core/serialize.h); empty corePlatforms means
 * "cores x the run's platform".
 */
struct DeploymentDesc
{
    int cores = 1;
    std::vector<PlatformSpec> corePlatforms; ///< empty, or one per core
    InterconnectConfig interconnect;
};

/**
 * A deployment address as carried by a SearchSpec or assembled from
 * CLI flags: a named preset, a deployment JSON file, or an inline
 * description. `enabled` distinguishes "no deployment section" (plain
 * single-platform run) from an explicit deployment.
 */
struct DeploymentSpec
{
    bool enabled = false;   ///< false: no deployment in play at all
    std::string preset;     ///< preset name ("" = none)
    std::string file;       ///< deployment JSON path ("" = none)
    bool inlineDesc = false; ///< true: use `desc` verbatim
    DeploymentDesc desc;    ///< the inline description
};

/** The string-keyed deployment-preset registry. */
class DeploymentRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static DeploymentRegistry &instance();

    /** Register a preset (fatal on duplicate name). */
    void add(const std::string &name, const std::string &summary,
             const DeploymentDesc &desc);

    /** @return true when @p name is a registered preset. */
    bool contains(const std::string &name) const;

    /** Look up @p name into *out. @return false when unknown (the
     *  clean-user-error path; use deploymentPreset() to be fatal). */
    bool find(const std::string &name, DeploymentDesc *out) const;

    /** Registered preset names, in registration order. */
    std::vector<std::string> keys() const;

    /** The one-line summary of @p name (fatal: unknown). */
    const std::string &summary(const std::string &name) const;

  private:
    DeploymentRegistry();

    struct Entry
    {
        std::string name;
        std::string summary;
        DeploymentDesc desc;
    };
    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries_;
};

/** The preset named @p name (fatal with the known list: unknown). */
DeploymentDesc deploymentPreset(const std::string &name);

/** Serialize a deployment description (cores, interconnect, and the
 *  core platform addresses that are expressible in JSON). */
std::string deploymentToJson(const DeploymentDesc &desc);

/**
 * Populate a DeploymentDesc from a parsed deployment document (the
 * schema above). Strict: unknown keys, type mismatches, non-positive
 * core counts/bandwidth, negative energies and a corePlatforms list
 * that disagrees with "cores" are errors. @return false with *err
 * set on any problem.
 */
bool deploymentFromJson(const JsonValue &doc, DeploymentDesc *out,
                        std::string *err);

/**
 * Parse a deployment *address* as it appears in a run spec: a preset
 * name string, a {"file": PATH} reference, or an inline description.
 * Sets out->enabled. @return false with *err set on any problem.
 */
bool deploymentSpecFromJson(const JsonValue &v, DeploymentSpec *out,
                            std::string *err);

/**
 * The resolved form: one single-core AcceleratorConfig per core plus
 * the interconnect. Produced by resolveDeployment (core/serialize.h)
 * or homogeneousDeployment; consumed by DeploymentCostModel and
 * CoccoFramework.
 */
struct DeploymentConfig
{
    std::vector<AcceleratorConfig> coreConfigs; ///< one per core
    InterconnectConfig interconnect;

    int cores() const { return static_cast<int>(coreConfigs.size()); }

    /** True when every core runs the same configuration. */
    bool homogeneous() const;
};

/**
 * The common case without the resolution machinery: @p cores copies
 * of @p core behind the interconnect @p ic. core.cores is forced to 1
 * (the deployment owns the scale-out).
 */
DeploymentConfig homogeneousDeployment(const AcceleratorConfig &core,
                                       int cores,
                                       const InterconnectConfig &ic = {});

/**
 * The aggregate single-model view of one core: @p core with the
 * deployment's core count and interconnect folded into the multicore
 * fields the cost model reads (cores, crossbarBytesPerCycle,
 * energy.crossbarPjPerByte).
 */
AcceleratorConfig foldDeployment(const AcceleratorConfig &core,
                                 const DeploymentConfig &dep);

/**
 * The scale-out evaluator. For a homogeneous deployment it *is* the
 * plain CostModel over the folded configuration — bit-identical to
 * setting AcceleratorConfig::cores directly, so single-core
 * deployments cost exactly nothing. For a heterogeneous deployment it
 * composes per-core models: a subgraph is feasible iff it is feasible
 * on every core, energy averages the per-core aggregates (equal
 * weight shards), compute latency is gated by the slowest core
 * (cycles normalized to core 0's clock), DRAM cycles use the summed
 * per-core bandwidth, and the crossbar serialization/energy terms are
 * counted once.
 *
 * contextHash() additionally folds every core's configuration, so
 * evaluation-cache entries from different deployments can never
 * alias.
 */
class DeploymentCostModel : public CostModel
{
  public:
    /** @p dep must be resolved (at least one core). The graph is kept
     *  by reference and must outlive the model. */
    DeploymentCostModel(const Graph &g, const DeploymentConfig &dep);

    /** The deployment being modelled. */
    const DeploymentConfig &deployment() const { return dep_; }

    SubgraphCost subgraphCost(const std::vector<NodeId> &nodes,
                              const BufferConfig &buf) override;
    /** Roofline lower bound composed exactly like subgraphCost: the
     *  slowest core gates compute, per-core bandwidth aggregates, the
     *  per-core energy floors average (crossbar dropped). */
    SubgraphBound subgraphBound(const std::vector<NodeId> &nodes,
                                const BufferConfig &buf) override;
    bool fits(const std::vector<NodeId> &nodes,
              const BufferConfig &buf) override;
    /** Forwarded to every per-core model. */
    void setPruning(bool on) override;
    /** Aggregate view's counters plus every per-core model's. */
    CostPruneStats pruneStats() const override;
    uint64_t contextHash(uint64_t h) const override;
    DeploymentBreakdown breakdown(const Partition &p,
                                  const BufferConfig &buf) override;
    std::vector<double>
    coreComputeCycles(const std::vector<NodeId> &nodes) override;

  private:
    DeploymentConfig dep_;
    bool homogeneous_ = true;

    /** Distinct per-core models (heterogeneous only; cores sharing a
     *  configuration share a model and its profile memo). */
    std::vector<std::unique_ptr<CostModel>> ownedModels_;
    std::vector<CostModel *> perCore_; ///< core index -> model
};

} // namespace cocco

#endif // COCCO_SIM_DEPLOYMENT_H
