#include "sim/multicore.h"

#include "sim/cost_model.h"

namespace cocco {

int64_t
crossbarBytes(const SubgraphProfile &prof, const AcceleratorConfig &accel)
{
    if (accel.cores <= 1)
        return 0;
    int64_t hops = accel.cores - 1;
    // Weight shards rotate once per subgraph execution (amortized over
    // the batch); boundary inputs are broadcast per sample.
    return (prof.weightBytes + prof.inBytes * accel.batch) * hops;
}

double
crossbarEnergyPj(const SubgraphProfile &prof, const AcceleratorConfig &accel)
{
    return accel.energy.crossbarPjPerByte *
           static_cast<double>(crossbarBytes(prof, accel));
}

double
crossbarCycles(const SubgraphProfile &prof, const AcceleratorConfig &accel)
{
    if (accel.cores <= 1)
        return 0.0;
    return static_cast<double>(crossbarBytes(prof, accel)) /
           accel.crossbarBytesPerCycle;
}

} // namespace cocco
