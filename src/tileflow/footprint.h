/**
 * @file
 * Stage-1 mapper policy: pick the output tile size that minimizes the
 * subgraph's activation footprint (the paper notes the tile "tends to
 * be smaller" to hold a larger subgraph), with a utilization-driven
 * tie-break toward larger tiles.
 */

#ifndef COCCO_TILEFLOW_FOOTPRINT_H
#define COCCO_TILEFLOW_FOOTPRINT_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tileflow/scheme.h"

namespace cocco {

/** Default stage-1 candidate output tile sizes. */
const std::vector<int> &defaultTileCandidates();

/**
 * Derive the consumption-centric scheme for each candidate output
 * tile and return the one with the smallest activation footprint
 * (ties broken toward the larger tile, which keeps PE utilization up).
 *
 * With @p prune set, candidates are walked largest tile first and each
 * later derivation aborts as soon as its running footprint reaches the
 * incumbent's (see deriveConsumptionScheme's abort_above). The result
 * is bit-identical to the unpruned walk: descending order with a
 * strict improve-only comparison selects the same minimal-footprint /
 * largest-tile scheme, and an aborted candidate can at best tie — and
 * ties keep the incumbent, which already has the larger tile.
 * @p schemes_pruned, when non-null, is incremented per aborted
 * candidate.
 */
ExecutionScheme bestScheme(const Graph &g, const std::vector<NodeId> &nodes,
                           const std::vector<int> &candidates =
                               defaultTileCandidates(),
                           bool prune = false,
                           uint64_t *schemes_pruned = nullptr);

} // namespace cocco

#endif // COCCO_TILEFLOW_FOOTPRINT_H
