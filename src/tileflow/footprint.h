/**
 * @file
 * Stage-1 mapper policy: pick the output tile size that minimizes the
 * subgraph's activation footprint (the paper notes the tile "tends to
 * be smaller" to hold a larger subgraph), with a utilization-driven
 * tie-break toward larger tiles.
 */

#ifndef COCCO_TILEFLOW_FOOTPRINT_H
#define COCCO_TILEFLOW_FOOTPRINT_H

#include <vector>

#include "graph/graph.h"
#include "tileflow/scheme.h"

namespace cocco {

/** Default stage-1 candidate output tile sizes. */
const std::vector<int> &defaultTileCandidates();

/**
 * Derive the consumption-centric scheme for each candidate output
 * tile and return the one with the smallest activation footprint
 * (ties broken toward the larger tile, which keeps PE utilization up).
 */
ExecutionScheme bestScheme(const Graph &g, const std::vector<NodeId> &nodes,
                           const std::vector<int> &candidates =
                               defaultTileCandidates());

} // namespace cocco

#endif // COCCO_TILEFLOW_FOOTPRINT_H
