#include "tileflow/scheme.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

namespace {

/** f_v(t) = F(v) + (t - 1) * s(v): input tile needed for t outputs. */
int64_t
inputTileFor(const Layer &consumer, int64_t t)
{
    return consumer.kernel + (t - 1) * static_cast<int64_t>(consumer.stride);
}

} // namespace

const NodeScheme *
ExecutionScheme::find(NodeId v) const
{
    for (const auto &ns : nodes)
        if (ns.node == v)
            return &ns;
    return nullptr;
}

ExecutionScheme
deriveConsumptionScheme(const Graph &g, const std::vector<NodeId> &nodes,
                        int out_tile, int64_t abort_above)
{
    if (out_tile < 1)
        panic("out_tile must be >= 1, got %d", out_tile);
    if (nodes.empty())
        panic("deriveConsumptionScheme on empty subgraph");

    std::unordered_set<NodeId> in_sub(nodes.begin(), nodes.end());
    if (in_sub.size() != nodes.size())
        panic("duplicate node ids in subgraph");

    // Extended set: boundary input tensors participate in the flow as
    // data sources with their own MAIN/SIDE regions.
    std::vector<NodeId> extended;
    std::unordered_set<NodeId> in_ext = in_sub;
    for (NodeId v : nodes)
        for (NodeId u : g.preds(v))
            if (!in_sub.count(u) && in_ext.insert(u).second)
                extended.push_back(u);
    for (NodeId v : nodes)
        extended.push_back(v);
    std::sort(extended.begin(), extended.end());

    // In-subgraph children of each extended node: consumers that are
    // members of the subgraph proper.
    std::unordered_map<NodeId, std::vector<NodeId>> children;
    for (NodeId u : extended) {
        auto &ch = children[u];
        for (NodeId w : g.succs(u))
            if (in_sub.count(w))
                ch.push_back(w);
    }

    ExecutionScheme scheme;
    scheme.outTile = out_tile;

    // --- Stage 2: reverse topological derivation of Delta and x. ---
    // Node ids are topologically ordered, so a reverse id sweep visits
    // consumers before producers.
    std::unordered_map<NodeId, NodeScheme> result;
    int64_t running_footprint = 0;
    for (auto it = extended.rbegin(); it != extended.rend(); ++it) {
        NodeId u = *it;
        const Layer &lu = g.layer(u);
        NodeScheme ns;
        ns.node = u;
        ns.external = !in_sub.count(u);

        const auto &ch = children[u];
        if (ch.empty()) {
            // Stage-1: output node, Delta = x = out_tile (clipped).
            ns.is_output = true;
            ns.deltaH = std::min(out_tile, lu.outH);
            ns.deltaW = std::min(out_tile, lu.outW);
            ns.xH = ns.deltaH;
            ns.xW = ns.deltaW;
        } else {
            int64_t dh = 1, dw = 1;
            for (NodeId v : ch) {
                const Layer &lv = g.layer(v);
                const NodeScheme &cs = result.at(v);
                dh = lcm64(dh, static_cast<int64_t>(cs.deltaH) * lv.stride);
                dw = lcm64(dw, static_cast<int64_t>(cs.deltaW) * lv.stride);
            }
            int64_t xh = 1, xw = 1;
            for (NodeId v : ch) {
                const Layer &lv = g.layer(v);
                xh = std::max(xh, inputTileFor(lv, dh / lv.stride));
                xw = std::max(xw, inputTileFor(lv, dw / lv.stride));
            }
            // Clip to the tensor extent: a tile can never exceed the
            // tensor, and once the whole tensor is resident no halo
            // bookkeeping is needed.
            ns.deltaH = static_cast<int>(std::min<int64_t>(dh, lu.outH));
            ns.deltaW = static_cast<int>(std::min<int64_t>(dw, lu.outW));
            ns.xH = static_cast<int>(std::min<int64_t>(xh, lu.outH));
            ns.xW = static_cast<int>(std::min<int64_t>(xw, lu.outW));
        }
        result.emplace(u, ns);

        if (abort_above >= 0) {
            // Accumulate this node's MAIN + SIDE contribution with the
            // exact region-pass formulas below; once the partial sum
            // reaches the threshold the full footprint must too, so
            // the stage-3 solve and region assembly are skipped.
            int64_t main_b = static_cast<int64_t>(ns.xH) * ns.xW * lu.outC;
            int overlap = 0;
            for (NodeId v : children[u]) {
                const Layer &lv = g.layer(v);
                overlap = std::max(overlap, lv.kernel - lv.stride);
            }
            bool whole = (ns.xH >= lu.outH && ns.xW >= lu.outW);
            int64_t side_b = 0;
            if (overlap > 0 && !whole && lu.outW > ns.xW)
                side_b = static_cast<int64_t>(overlap) *
                         (lu.outW - ns.xW) * lu.outC;
            running_footprint += main_b + side_b;
            if (running_footprint >= abort_above) {
                scheme.aborted = true;
                scheme.actFootprintBytes = running_footprint;
                return scheme;
            }
        }
    }

    // --- Stage 3: minimal co-prime upd_num assignment. ---
    // Constraint per in-subgraph edge (u, v):
    //     upd(v) * Delta(v) * s(v) = upd(u) * Delta(u)
    // Define R(u) = upd(u) * Delta(u); then R(u) = R(v) * s(v) for
    // every child v. Solve by BFS over the undirected constraint graph
    // with exact rationals, then scale to the least integer solution.
    // (Height-dimension Deltas; the paper presents the 1-D case.)
    std::unordered_map<NodeId, Rational> rval;
    bool consistent = true;
    for (NodeId seed : extended) {
        if (rval.count(seed))
            continue;
        rval.emplace(seed, Rational(1));
        std::vector<NodeId> queue{seed};
        while (!queue.empty()) {
            NodeId u = queue.back();
            queue.pop_back();
            Rational ru = rval.at(u);
            // Children constraints: R(child) = R(u) / s(child).
            for (NodeId v : children[u]) {
                Rational want = ru / Rational(g.layer(v).stride);
                auto it2 = rval.find(v);
                if (it2 == rval.end()) {
                    rval.emplace(v, want);
                    queue.push_back(v);
                } else if (it2->second != want) {
                    consistent = false;
                }
            }
            // Parent constraints: R(parent) = R(u) * s(u); only edges
            // whose consumer u is inside the subgraph participate.
            if (in_sub.count(u)) {
                Rational want = ru * Rational(g.layer(u).stride);
                for (NodeId p : g.preds(u)) {
                    if (!in_ext.count(p))
                        continue;
                    auto it2 = rval.find(p);
                    if (it2 == rval.end()) {
                        rval.emplace(p, want);
                        queue.push_back(p);
                    } else if (it2->second != want) {
                        consistent = false;
                    }
                }
            }
        }
    }
    scheme.updConsistent = consistent;

    if (consistent) {
        // upd(u) = lambda * R(u) / Delta(u); choose the least lambda
        // making every upd integral, then strip the common factor.
        int64_t lambda = 1;
        std::unordered_map<NodeId, Rational> upd_frac;
        for (NodeId u : extended) {
            Rational f = rval.at(u) / Rational(result.at(u).deltaH);
            upd_frac.emplace(u, f);
            lambda = lcm64(lambda, f.den());
        }
        int64_t common = 0;
        for (NodeId u : extended) {
            Rational f = upd_frac.at(u);
            int64_t v = f.num() * (lambda / f.den());
            result.at(u).updNum = v;
            common = gcd64(common, std::llabs(v));
        }
        if (common > 1)
            for (NodeId u : extended)
                result.at(u).updNum /= common;
    }

    // --- Memory regions (Section 3.2). ---
    // MAIN holds the resident tile xH x xW x C. SIDE reserves the
    // horizontal overlap (F - s rows of the part of the feature map
    // outside the current tile) for nodes whose in-subgraph consumers
    // have kernel > stride. Whole-tensor-resident nodes need no SIDE.
    for (NodeId u : extended) {
        NodeScheme &ns = result.at(u);
        const Layer &lu = g.layer(u);
        ns.mainBytes = static_cast<int64_t>(ns.xH) * ns.xW * lu.outC;
        int overlap = 0;
        for (NodeId v : children[u]) {
            const Layer &lv = g.layer(v);
            overlap = std::max(overlap, lv.kernel - lv.stride);
        }
        bool whole_resident = (ns.xH >= lu.outH && ns.xW >= lu.outW);
        if (overlap > 0 && !whole_resident && lu.outW > ns.xW) {
            ns.sideBytes = static_cast<int64_t>(overlap) *
                           (lu.outW - ns.xW) * lu.outC;
        }
        scheme.actFootprintBytes += ns.mainBytes + ns.sideBytes;
        scheme.numRegions += 1 + (ns.sideBytes > 0 ? 1 : 0);
    }

    scheme.nodes.reserve(extended.size());
    // Boundary inputs first, then members, each ascending by id.
    for (NodeId u : extended)
        if (result.at(u).external)
            scheme.nodes.push_back(result.at(u));
    for (NodeId u : extended)
        if (!result.at(u).external)
            scheme.nodes.push_back(result.at(u));
    return scheme;
}

} // namespace cocco
