#include "tileflow/schedule.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math_util.h"

namespace cocco {

std::string
ElementarySchedule::str(const Graph &g) const
{
    std::string out;
    for (const UpdateStep &s : steps) {
        out += strprintf("%s%s upd#%d -> [%d:%d)\n",
                         g.layer(s.node).name.c_str(),
                         s.external ? " (ext)" : "", s.index, s.lo, s.hi);
    }
    return out;
}

ElementarySchedule
buildElementarySchedule(const Graph &g, const ExecutionScheme &scheme,
                        int64_t op_index)
{
    if (op_index < 0)
        panic("negative elementary-operation index");

    ElementarySchedule sched;

    // Total operations: enough for every output node to sweep its
    // tensor height (warm-up op included).
    int64_t ops = 1;
    for (const NodeScheme &ns : scheme.nodes) {
        if (!ns.is_output)
            continue;
        const Layer &l = g.layer(ns.node);
        int64_t advance = ns.updNum * ns.deltaH;
        if (advance <= 0)
            continue;
        int64_t remaining = std::max<int64_t>(0, l.outH - ns.xH);
        ops = std::max(ops, ceilDiv(remaining, advance) + 1);
    }
    sched.operationCount = ops;

    // Max updates per op define the slot count; each node's j-th
    // update lands in slot floor(j * slots / upd_num), so every
    // node's first update is in slot 0 (producers lead consumers via
    // the topological within-slot order).
    int64_t slots = 1;
    for (const NodeScheme &ns : scheme.nodes)
        slots = std::max(slots, ns.updNum);

    for (int64_t slot = 0; slot < slots; ++slot) {
        for (const NodeScheme &ns : scheme.nodes) {
            // Updates of this node that fall into this slot.
            for (int64_t j = 0; j < ns.updNum; ++j) {
                if (j * slots / ns.updNum != slot)
                    continue;
                const Layer &l = g.layer(ns.node);
                int64_t n = op_index * ns.updNum + j; // global update no.
                int64_t start = n * ns.deltaH;
                // Clamp the window to the tensor extent: the final
                // updates of a sweep shrink instead of running past
                // the end.
                start = std::min<int64_t>(
                    start, std::max<int64_t>(0, l.outH - ns.xH));
                UpdateStep step;
                step.node = ns.node;
                step.external = ns.external;
                step.index = static_cast<int>(j);
                step.lo = static_cast<int>(start);
                step.hi = static_cast<int>(
                    std::min<int64_t>(start + ns.xH, l.outH));
                sched.steps.push_back(step);
            }
        }
    }
    return sched;
}

} // namespace cocco
