/**
 * @file
 * The consumption-centric subgraph execution scheme of paper
 * Section 3.1: a three-stage flow that derives, for every node of a
 * subgraph, the update offset Delta, the resident tile size x, and
 * the per-elementary-operation update count upd_num.
 *
 *  stage-1  output nodes get a tile size (Delta = x = t) chosen by the
 *           single-layer mapper;
 *  stage-2  reverse-topological backward derivation:
 *             Delta(u) = lcm_{v in children(u)} { Delta(v) * s(v) }
 *             x(u)     = max_v f_v(Delta(u) / s(v)),
 *             f_v(t)   = F(v) + (t - 1) * s(v)
 *  stage-3  minimal co-prime solution of
 *             upd_num(v) * Delta(v) * s(v) = upd_num(u) * Delta(u)
 *           for every in-subgraph edge (u, v).
 *
 * Height and width are derived independently (same square F, s);
 * upd_num is reported for the height dimension, matching the paper's
 * 1-D presentation.
 */

#ifndef COCCO_TILEFLOW_SCHEME_H
#define COCCO_TILEFLOW_SCHEME_H

#include <vector>

#include "graph/graph.h"

namespace cocco {

/** Per-node result of the tile-flow derivation. */
struct NodeScheme
{
    NodeId node = -1;      ///< graph node id
    bool external = false; ///< boundary input tensor (loaded from DRAM)
    bool is_output = false; ///< no consumer inside the subgraph

    int deltaH = 1;        ///< update offset, height dim
    int deltaW = 1;        ///< update offset, width dim
    int xH = 1;            ///< resident tile size, height dim
    int xW = 1;            ///< resident tile size, width dim
    int64_t updNum = 1;    ///< memory updates per elementary operation

    int64_t mainBytes = 0; ///< MAIN region size (resident tile)
    int64_t sideBytes = 0; ///< SIDE region size (horizontal overlap)
};

/** Derived execution scheme of one subgraph. */
struct ExecutionScheme
{
    /** Entries for boundary inputs first, then subgraph nodes, each in
     *  topological order. */
    std::vector<NodeScheme> nodes;

    int64_t actFootprintBytes = 0; ///< sum of MAIN + SIDE over all nodes
    int numRegions = 0;            ///< buffer regions required
    int outTile = 1;               ///< stage-1 output tile size used
    bool updConsistent = true;     ///< stage-3 system had a solution

    /** True when the derivation stopped early because the running
     *  footprint reached the caller's abort threshold. An aborted
     *  scheme carries only the partial actFootprintBytes (already >=
     *  the threshold) — nodes/regions/upd are not populated. */
    bool aborted = false;

    /** Entry for graph node @p v, or nullptr if absent. */
    const NodeScheme *find(NodeId v) const;
};

/**
 * Run the consumption-centric flow on subgraph @p nodes of @p g with
 * stage-1 output tile size @p out_tile (both dims).
 *
 * @param g        the computation graph
 * @param nodes    the subgraph's node ids (any order; must be distinct)
 * @param out_tile stage-1 tile size for output nodes (>= 1)
 * @param abort_above when >= 0, stop as soon as the running activation
 *                 footprint (accumulated during the stage-2 sweep)
 *                 reaches this value and return a scheme with
 *                 `aborted` set. The footprint is a sum of
 *                 non-negative per-node terms, so a partial sum at or
 *                 above the threshold proves the full footprint is
 *                 too: callers comparing candidate tiles can skip the
 *                 stage-3 solve and region assembly for candidates
 *                 that cannot beat their incumbent. -1 = never abort.
 */
ExecutionScheme deriveConsumptionScheme(const Graph &g,
                                        const std::vector<NodeId> &nodes,
                                        int out_tile,
                                        int64_t abort_above = -1);

} // namespace cocco

#endif // COCCO_TILEFLOW_SCHEME_H
