#include "tileflow/footprint.h"

#include "util/logging.h"

namespace cocco {

const std::vector<int> &
defaultTileCandidates()
{
    static const std::vector<int> candidates{1, 2, 4, 8};
    return candidates;
}

ExecutionScheme
bestScheme(const Graph &g, const std::vector<NodeId> &nodes,
           const std::vector<int> &candidates)
{
    if (candidates.empty())
        panic("bestScheme needs at least one tile candidate");

    ExecutionScheme best;
    bool have = false;
    for (int t : candidates) {
        ExecutionScheme s = deriveConsumptionScheme(g, nodes, t);
        if (!have || s.actFootprintBytes < best.actFootprintBytes ||
            (s.actFootprintBytes == best.actFootprintBytes &&
             s.outTile > best.outTile)) {
            best = std::move(s);
            have = true;
        }
    }
    return best;
}

} // namespace cocco
