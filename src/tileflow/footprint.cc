#include "tileflow/footprint.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace cocco {

const std::vector<int> &
defaultTileCandidates()
{
    static const std::vector<int> candidates{1, 2, 4, 8};
    return candidates;
}

ExecutionScheme
bestScheme(const Graph &g, const std::vector<NodeId> &nodes,
           const std::vector<int> &candidates, bool prune,
           uint64_t *schemes_pruned)
{
    if (candidates.empty())
        panic("bestScheme needs at least one tile candidate");

    if (prune) {
        // Largest tile first with a strict improve-only comparison:
        // equivalent to the ascending walk below (minimal footprint,
        // largest tile among ties), but every candidate after the
        // first can abort its derivation at the incumbent footprint.
        std::vector<int> order(candidates);
        std::sort(order.begin(), order.end(), std::greater<int>());
        ExecutionScheme best;
        bool have = false;
        for (int t : order) {
            ExecutionScheme s = deriveConsumptionScheme(
                g, nodes, t, have ? best.actFootprintBytes : -1);
            if (s.aborted) {
                if (schemes_pruned)
                    ++*schemes_pruned;
                continue;
            }
            if (!have || s.actFootprintBytes < best.actFootprintBytes) {
                best = std::move(s);
                have = true;
            }
        }
        return best;
    }

    ExecutionScheme best;
    bool have = false;
    for (int t : candidates) {
        ExecutionScheme s = deriveConsumptionScheme(g, nodes, t);
        if (!have || s.actFootprintBytes < best.actFootprintBytes ||
            (s.actFootprintBytes == best.actFootprintBytes &&
             s.outTile > best.outTile)) {
            best = std::move(s);
            have = true;
        }
    }
    return best;
}

} // namespace cocco
