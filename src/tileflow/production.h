/**
 * @file
 * The production-centric baseline scheme of paper Figure 4(a):
 * forward derivation from a predetermined input tile, where every
 * producer emits as much as its inputs allow and results that cannot
 * be consumed immediately stay buffered. Used only as an ablation
 * reference against the consumption-centric flow.
 */

#ifndef COCCO_TILEFLOW_PRODUCTION_H
#define COCCO_TILEFLOW_PRODUCTION_H

#include <vector>

#include "graph/graph.h"
#include "tileflow/scheme.h"

namespace cocco {

/**
 * Derive the production-centric scheme for subgraph @p nodes of @p g:
 * boundary inputs are given a tile of @p in_tile (clipped to tensor
 * extents); each node's resident tile is what its producers' tiles
 * allow it to compute, plus the horizontal SIDE overlap. The returned
 * footprint is >= the consumption-centric one on unbalanced branches.
 *
 * The @p in_tile is chosen so comparisons are apples-to-apples: pass
 * the maximum input-side x of the consumption scheme.
 */
ExecutionScheme deriveProductionScheme(const Graph &g,
                                       const std::vector<NodeId> &nodes,
                                       int in_tile);

} // namespace cocco

#endif // COCCO_TILEFLOW_PRODUCTION_H
