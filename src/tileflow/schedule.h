/**
 * @file
 * Elementary-operation schedule generation (paper Figure 6): given a
 * derived ExecutionScheme, emit the explicit sequence of per-node
 * memory updates that one subgraph elementary operation performs, and
 * the memory snapshot (resident index range per node) after every
 * step — exactly the diagram the paper draws for its running example.
 *
 * This is what a compiler backend would lower to DMA/compute
 * descriptors; here it doubles as an executable specification that
 * the tests check against the paper's published snapshot.
 */

#ifndef COCCO_TILEFLOW_SCHEDULE_H
#define COCCO_TILEFLOW_SCHEDULE_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "tileflow/scheme.h"

namespace cocco {

/** One memory update of one node during an elementary operation. */
struct UpdateStep
{
    NodeId node = -1;
    bool external = false; ///< data comes from DRAM (boundary input)
    int index = 0;         ///< which of the node's upd_num updates
    int lo = 0;            ///< resident range after the update: [lo, hi)
    int hi = 0;
};

/** The schedule of one subgraph elementary operation (height dim). */
struct ElementarySchedule
{
    /** Steps in execution order: producers update before consumers
     *  within one elementary operation. */
    std::vector<UpdateStep> steps;

    /** Number of elementary operations to cover the whole tensor
     *  extent of the subgraph's outputs. */
    int64_t operationCount = 0;

    /** Render the step list as "[lo:hi)" chains for debugging. */
    std::string str(const Graph &g) const;
};

/**
 * Generate the update schedule of the @p op_index -th elementary
 * operation for a derived scheme (op 0 is the warm-up operation that
 * first fills each node's resident tile; later ops slide by
 * upd_num * Delta). Ranges are clipped to each node's tensor extent.
 */
ElementarySchedule buildElementarySchedule(const Graph &g,
                                           const ExecutionScheme &scheme,
                                           int64_t op_index);

} // namespace cocco

#endif // COCCO_TILEFLOW_SCHEDULE_H
