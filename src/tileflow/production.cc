#include "tileflow/production.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace cocco {

ExecutionScheme
deriveProductionScheme(const Graph &g, const std::vector<NodeId> &nodes,
                       int in_tile)
{
    if (in_tile < 1)
        panic("in_tile must be >= 1, got %d", in_tile);
    if (nodes.empty())
        panic("deriveProductionScheme on empty subgraph");

    std::unordered_set<NodeId> in_sub(nodes.begin(), nodes.end());

    std::vector<NodeId> extended;
    std::unordered_set<NodeId> in_ext = in_sub;
    for (NodeId v : nodes)
        for (NodeId u : g.preds(v))
            if (!in_sub.count(u) && in_ext.insert(u).second)
                extended.push_back(u);
    for (NodeId v : nodes)
        extended.push_back(v);
    std::sort(extended.begin(), extended.end());

    std::unordered_map<NodeId, std::vector<NodeId>> children;
    for (NodeId u : extended)
        for (NodeId w : g.succs(u))
            if (in_sub.count(w))
                children[u].push_back(w);

    ExecutionScheme scheme;
    scheme.outTile = in_tile;

    // Forward sweep: sources (boundary inputs, or in-subgraph nodes
    // whose producers all lie outside) hold an in_tile x in_tile tile;
    // every other node holds everything its producers' resident tiles
    // let it produce. Data is retained (the production-centric flaw):
    // a node's tile is the max of what each path can produce, and
    // mismatched branch depths leave extra cached rows.
    std::unordered_map<NodeId, NodeScheme> result;
    for (NodeId u : extended) {
        const Layer &lu = g.layer(u);
        NodeScheme ns;
        ns.node = u;
        ns.external = !in_sub.count(u);

        bool is_source = ns.external;
        if (!is_source) {
            is_source = true;
            for (NodeId p : g.preds(u))
                if (in_ext.count(p) && result.count(p))
                    is_source = false;
        }

        if (is_source) {
            ns.xH = std::min(in_tile, lu.outH);
            ns.xW = std::min(in_tile, lu.outW);
        } else {
            // Producible outputs from the *minimum* producer tile
            // (all operands must be available), yet the *maximum*
            // producer tile worth of source data stays cached, which
            // is exactly the Figure 4(a) overhead; we account for the
            // unconsumed slack below via the producers' tiles.
            int avail_h = INT32_MAX, avail_w = INT32_MAX;
            for (NodeId p : g.preds(u)) {
                if (!in_ext.count(p))
                    continue;
                const NodeScheme &ps = result.at(p);
                avail_h = std::min(avail_h, ps.xH);
                avail_w = std::min(avail_w, ps.xW);
            }
            auto producible = [&](int avail) {
                if (avail < lu.kernel)
                    return 1;
                return (avail - lu.kernel) / lu.stride + 1;
            };
            ns.xH = std::min(producible(avail_h), lu.outH);
            ns.xW = std::min(producible(avail_w), lu.outW);
        }
        ns.deltaH = ns.xH;
        ns.deltaW = ns.xW;
        result.emplace(u, ns);
    }

    for (NodeId u : extended) {
        NodeScheme &ns = result.at(u);
        const Layer &lu = g.layer(u);
        ns.mainBytes = static_cast<int64_t>(ns.xH) * ns.xW * lu.outC;
        int overlap = 0;
        for (NodeId v : children[u]) {
            const Layer &lv = g.layer(v);
            overlap = std::max(overlap, lv.kernel - lv.stride);
        }
        bool whole_resident = (ns.xH >= lu.outH && ns.xW >= lu.outW);
        if (overlap > 0 && !whole_resident && lu.outW > ns.xW)
            ns.sideBytes = static_cast<int64_t>(overlap) *
                           (lu.outW - ns.xW) * lu.outC;
        scheme.actFootprintBytes += ns.mainBytes + ns.sideBytes;
        scheme.numRegions += 1 + (ns.sideBytes > 0 ? 1 : 0);
    }

    for (NodeId u : extended)
        if (result.at(u).external)
            scheme.nodes.push_back(result.at(u));
    for (NodeId u : extended)
        if (!result.at(u).external)
            scheme.nodes.push_back(result.at(u));
    return scheme;
}

} // namespace cocco
