#include "schedule/workload_set.h"

#include <cmath>

#include "util/json.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** Set *err (when empty) and return false, parser style. */
bool
bad(std::string *err, const std::string &msg)
{
    if (err && err->empty())
        *err = msg;
    return false;
}

bool
finitePositive(double v)
{
    return std::isfinite(v) && v > 0.0;
}

} // namespace

bool
validateWorkloadSet(const WorkloadSet &set, std::string *err)
{
    if (set.tenants.empty())
        return bad(err, "\"workload_set\" must declare at least one tenant");
    for (int i = 0; i < set.size(); ++i) {
        const TenantSpec &t = set.tenants[i];
        std::string who = strprintf("workload_set[%d]", i);
        if (t.name.empty())
            return bad(err, who + ": tenant \"name\" must be non-empty");
        for (int j = 0; j < i; ++j)
            if (set.tenants[j].name == t.name)
                return bad(err, strprintf("duplicate tenant name \"%s\"",
                                          t.name.c_str()));
        who = strprintf("tenant \"%s\"", t.name.c_str());
        bool has_model = !t.workload.model.empty();
        bool has_file = !t.workload.file.empty();
        if (has_model == has_file)
            return bad(err, who + " must address exactly one of "
                            "\"model\" or \"file\"");
        if (has_model && !ModelRegistry::instance().contains(t.workload.model))
            return bad(err, strprintf("%s: unknown model \"%s\"",
                                      who.c_str(),
                                      t.workload.model.c_str()));
        if (!finitePositive(t.arrivalRateHz))
            return bad(err, who + ": \"arrival_rate_hz\" must be > 0");
        if (!finitePositive(t.slaLatencyMs))
            return bad(err, who + ": \"sla_latency_ms\" must be > 0");
    }
    return true;
}

bool
workloadSetFromJson(const JsonValue &v, WorkloadSet *out, std::string *err)
{
    WorkloadSet set;
    if (!v.isArray())
        return bad(err, "\"workload_set\" must be an array of tenants");
    for (size_t i = 0; i < v.array().size(); ++i) {
        const JsonValue &tv = v.array()[i];
        std::string who = strprintf("workload_set[%zu]", i);
        if (!tv.isObject())
            return bad(err, who + " must be an object");
        TenantSpec t;
        bool saw_rate = false, saw_sla = false;
        for (const auto &[k, mv] : tv.members()) {
            std::string key = who + "." + k;
            if (k == "name") {
                if (!jsonReadString(mv, key.c_str(), &t.name, err))
                    return false;
            } else if (k == "model") {
                if (!jsonReadString(mv, key.c_str(), &t.workload.model,
                                    err))
                    return false;
            } else if (k == "file") {
                if (!jsonReadString(mv, key.c_str(), &t.workload.file,
                                    err))
                    return false;
            } else if (k == "params") {
                if (!modelParamsFromJson(mv, &t.workload.params, err))
                    return false;
            } else if (k == "arrival_rate_hz") {
                if (!jsonReadNumber(mv, key.c_str(), &t.arrivalRateHz,
                                    err))
                    return false;
                saw_rate = true;
            } else if (k == "sla_latency_ms") {
                if (!jsonReadNumber(mv, key.c_str(), &t.slaLatencyMs, err))
                    return false;
                saw_sla = true;
            } else {
                return bad(err, strprintf("unknown workload_set key "
                                          "\"%s\" (tenant %zu)",
                                          k.c_str(), i));
            }
        }
        if (!saw_rate)
            return bad(err, who + " is missing \"arrival_rate_hz\"");
        if (!saw_sla)
            return bad(err, who + " is missing \"sla_latency_ms\"");
        set.tenants.push_back(std::move(t));
    }
    if (!validateWorkloadSet(set, err))
        return false;
    *out = std::move(set);
    return true;
}

void
workloadSetToJson(JsonWriter &w, const WorkloadSet &set)
{
    const ModelParams defaults;
    w.beginArray();
    for (const TenantSpec &t : set.tenants) {
        w.beginObject();
        w.field("name", t.name);
        if (!t.workload.model.empty())
            w.field("model", t.workload.model);
        if (!t.workload.file.empty())
            w.field("file", t.workload.file);
        const ModelParams &p = t.workload.params;
        if (p.batch != defaults.batch ||
            p.resolution != defaults.resolution ||
            p.seqLen != defaults.seqLen || p.depth != defaults.depth ||
            p.widthMult != defaults.widthMult ||
            p.seed != defaults.seed) {
            w.key("params").beginObject();
            if (p.batch != defaults.batch)
                w.field("batch", p.batch);
            if (p.resolution != defaults.resolution)
                w.field("resolution", p.resolution);
            if (p.seqLen != defaults.seqLen)
                w.field("seqLen", p.seqLen);
            if (p.depth != defaults.depth)
                w.field("depth", p.depth);
            if (p.widthMult != defaults.widthMult)
                w.field("widthMult", p.widthMult);
            if (p.seed != defaults.seed)
                w.field("seed", p.seed);
            w.endObject();
        }
        w.field("arrival_rate_hz", t.arrivalRateHz);
        w.field("sla_latency_ms", t.slaLatencyMs);
        w.endObject();
    }
    w.endArray();
}

std::string
workloadSetJson(const WorkloadSet &set)
{
    JsonWriter w;
    workloadSetToJson(w, set);
    return w.str();
}

} // namespace cocco
