/**
 * @file
 * The `greedy-place` baseline searcher (registered like ga/sa/ts-*).
 *
 * A deterministic, search-free constructor in the spirit of greedy
 * fusion solvers: pick the buffer configuration by two independent
 * axis sweeps over the capacity grids (singleton-partition objective
 * decides), then grow the partition from singletons by repeatedly
 * taking the best improving merge of two adjacent blocks until no
 * merge improves the objective or the sample budget runs out. Each
 * objective evaluation goes through the shared EvalEngine, so cache
 * sharing, salting and observers behave exactly as in the other
 * strategies.
 *
 * It is intentionally myopic — no backtracking, no buffer/partition
 * interleaving — which is what gives GA/SA/two-step (and the
 * co-scheduler's joint placement search) a meaningful baseline to
 * beat. CoScheduler uses it per tenant for its greedy placement.
 */

#ifndef COCCO_SCHEDULE_GREEDY_PLACE_H
#define COCCO_SCHEDULE_GREEDY_PLACE_H

#include "search/driver.h"

namespace cocco {

/** Run the greedy constructor (the "greedy-place" strategy). */
SearchResult greedyPlaceSearch(CostModel &model, const DseSpace &space,
                               const EvalOptions &opts);

/** Registration hook, called from SearcherRegistry's constructor. */
void registerGreedyPlaceSearcher(SearcherRegistry &r);

} // namespace cocco

#endif // COCCO_SCHEDULE_GREEDY_PLACE_H
