/**
 * @file
 * Multi-tenant co-scheduling over one deployment.
 *
 * A Schedule pins each tenant of a WorkloadSet to one core of a
 * resolved DeploymentConfig, gives it its own graph partition, and
 * shares one buffer configuration across all cores (the buffer is a
 * property of the silicon, not of a tenant). ScheduleCostModel
 * composes per-tenant CostModel evaluations — one model per (tenant,
 * distinct core configuration), so a big-little deployment costs each
 * graph on both core kinds but never twice on identical cores — into
 * per-tenant latency/energy, per-core utilization, and an
 * SLA-violation count.
 *
 * Contention model: tenants pinned to the same core time-share it.
 * With steady arrival rate r_t (Hz) and uncontended service time s_t
 * (seconds) per request, core c's utilization is U_c = sum r_t * s_t
 * over its tenants, and each request's effective latency is
 * s_t / (1 - U_c) (processor sharing). U_c >= 1 means the core is
 * saturated: its tenants' latencies are unbounded and every one of
 * them violates its SLA. The model is deterministic and monotone in
 * load — exactly what a search objective needs.
 *
 * Cache salting: a schedule evaluation decomposes into plain
 * (graph, core accelerator, buffer, partition) evaluations, which
 * deliberately share process-wide EvalCache entries with solo runs —
 * arrival rates and SLAs only enter the schedule-level aggregation
 * above, never a cached value. Anything that *does* change cached
 * values must go through CostModel::contextHash as usual;
 * ScheduleCostModel::contextHash additionally fingerprints the
 * schedule-level inputs (tenant graphs, rates, SLAs, core configs)
 * for callers that memoize whole-schedule results.
 */

#ifndef COCCO_SCHEDULE_CO_SCHEDULER_H
#define COCCO_SCHEDULE_CO_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "schedule/workload_set.h"
#include "search/driver.h"
#include "sim/deployment.h"

namespace cocco {

/** Core saturated / tenant infeasible latency sentinel (finite so
 *  schedules still rank: fewer saturated tenants wins). */
constexpr double kSaturatedLatencyMs = 1e9;

/** One joint placement decision for a WorkloadSet. */
struct Schedule
{
    BufferConfig buffer;        ///< shared by every core
    std::vector<int> coreOf;    ///< tenant -> core index
    std::vector<Partition> parts; ///< tenant -> its graph's partition
};

/** Evaluated serving behavior of one tenant under a Schedule. */
struct TenantCost
{
    bool feasible = false;   ///< partition fits its assigned core
    double serviceMs = 0.0;  ///< uncontended per-request latency
    double latencyMs = 0.0;  ///< contention-scaled effective latency
    double energyPj = 0.0;   ///< per-request energy
    bool slaViolation = true;
    GraphCost graph;         ///< full per-tenant breakdown
};

/** Evaluated behavior of a whole Schedule. */
struct ScheduleCost
{
    std::vector<TenantCost> tenants;
    std::vector<double> coreUtilization; ///< U_c per deployment core
    int slaViolations = 0;
    double meanLatencyMs = 0.0;   ///< mean effective latency
    double energyPjPerSec = 0.0;  ///< sum r_t * energy_t (power)
    bool feasible = false;        ///< every tenant feasible
};

/**
 * Scalar schedule objective: SLA violations dominate (each one costs
 * kSlaViolationPenalty), mean effective latency breaks ties, and an
 * infeasible schedule lands at kInfeasiblePenalty (+violations so
 * even those rank). Lower is better.
 */
constexpr double kSlaViolationPenalty = 1e6;
double scheduleObjective(const ScheduleCost &c);

/**
 * Per-tenant cost-model composer (see file comment). Keeps references
 * to @p graphs — the caller owns them and must keep them alive — and
 * copies the set and deployment.
 */
class ScheduleCostModel
{
  public:
    /** @p graphs must parallel @p set.tenants; @p dep must be
     *  resolved (>= 1 core). */
    ScheduleCostModel(const std::vector<Graph> &graphs,
                      const WorkloadSet &set,
                      const DeploymentConfig &dep);

    int tenants() const { return set_.size(); }
    int cores() const { return dep_.cores(); }
    const WorkloadSet &set() const { return set_; }
    const DeploymentConfig &deployment() const { return dep_; }
    const Graph &graph(int tenant) const { return graphs_[tenant]; }

    /** The model of @p tenant's graph on @p core (deduped: cores with
     *  identical configurations share one model per tenant). */
    CostModel &model(int tenant, int core);

    /** Representative core index of @p core's configuration class
     *  (the lowest core index with an identical configuration). */
    int coreClass(int core) const { return classOf_[core]; }

    /** Evaluate a full placement (see the contention model above). */
    ScheduleCost evaluate(const Schedule &s);

    /** Schedule-level fingerprint: deployment cores + interconnect +
     *  every tenant's graph, arrival rate and SLA, in order. */
    uint64_t contextHash(uint64_t h) const;

  private:
    const std::vector<Graph> &graphs_;
    WorkloadSet set_;
    DeploymentConfig dep_;
    std::vector<int> classOf_; ///< core -> representative core index
    /** models_[tenant * cores + representative]; built lazily. */
    std::vector<std::unique_ptr<CostModel>> models_;
};

/** The outcome of a co-scheduling exploration. */
struct ScheduleResult
{
    Schedule schedule;
    ScheduleCost cost;
    double objective = kInfeasiblePenalty;
    int64_t samples = 0;    ///< inner per-tenant search evaluations
    int64_t placements = 0; ///< (buffer, placement) combinations scored
    StopReason stop = StopReason::BudgetExhausted;
    EvalCacheStats cacheStats;
};

/**
 * The joint search driver. `explore` dispatches on spec.algo:
 * "greedy-place" runs the myopic baseline (heaviest tenant first onto
 * the fastest feasible core, contention-blind, buffer frozen by the
 * first tenant); every other registered strategy runs per
 * (tenant, core-class), and the winners' buffers and partitions feed
 * an exhaustive (or, past kMaxEnumPlacements, hill-climbed) placement
 * enumeration scored by ScheduleCostModel.
 */
class CoScheduler
{
  public:
    /** Caps full placement enumeration (cores^tenants combinations);
     *  larger spaces fall back to greedy-seeded hill climbing. */
    static constexpr int64_t kMaxEnumPlacements = 4096;

    CoScheduler(const std::vector<Graph> &graphs, const WorkloadSet &set,
                const DeploymentConfig &dep);

    ScheduleCostModel &model() { return model_; }

    /** Run the strategy named by @p spec.algo (see class comment). */
    ScheduleResult explore(const SearchSpec &spec);

    /** The myopic baseline, directly (what "greedy-place" runs). */
    ScheduleResult greedy(const SearchSpec &spec);

  private:
    ScheduleResult searched(const SearchSpec &spec);

    ScheduleCostModel model_;
};

/** Result document (the co-schedule analogue of resultToJson). */
std::string scheduleResultToJson(ScheduleCostModel &model,
                                 const ScheduleResult &r);

struct RunMetrics;

/** Fill @p m's "tenants" metrics block from an evaluated result
 *  (no-op when the result carries no evaluated schedule). */
void fillTenantMetrics(const ScheduleCostModel &model,
                       const ScheduleResult &r, RunMetrics *m);

/**
 * Render the schedule: one utilization lane per core with its
 * tenants' lanes indented beneath (1-second horizon), then each
 * tenant's per-subgraph Gantt chart.
 */
std::string scheduleGantt(ScheduleCostModel &model,
                          const ScheduleResult &r, int width = 60);

} // namespace cocco

#endif // COCCO_SCHEDULE_CO_SCHEDULER_H
