#include "schedule/co_scheduler.h"

#include <algorithm>
#include <cmath>

#include "core/metrics.h"
#include "partition/repair.h"
#include "schedule/greedy_place.h"
#include "sim/timeline.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** A core is saturated at (or numerically near) full utilization. */
constexpr double kSaturationUtil = 0.999;

bool
sameBuffer(const BufferConfig &a, const BufferConfig &b)
{
    return a.style == b.style && a.actBytes == b.actBytes &&
           a.weightBytes == b.weightBytes &&
           a.sharedBytes == b.sharedBytes;
}

/** Peak compute throughput, the greedy "fastest core" order key. */
double
coreThroughput(const AcceleratorConfig &a)
{
    return a.macsPerCycle() * a.clockGhz;
}

/** Accumulate the monotonic counters of one inner run's stats. */
void
foldCacheStats(EvalCacheStats *acc, const EvalCacheStats &run)
{
    acc->hits += run.hits;
    acc->misses += run.misses;
    acc->insertions += run.insertions;
    acc->evictions += run.evictions;
    acc->blockHits += run.blockHits;
    acc->blockMisses += run.blockMisses;
    acc->blockInsertions += run.blockInsertions;
    acc->blockEvictions += run.blockEvictions;
    acc->boundRejections += run.boundRejections;
    acc->boundSkippedSamples += run.boundSkippedSamples;
    acc->incReusedBlocks += run.incReusedBlocks;
    acc->incRecostBlocks += run.incRecostBlocks;
    // Sizes are snapshots, not counters: keep the latest.
    acc->entries = run.entries;
    acc->blockEntries = run.blockEntries;
}

bool
cancelled(const SearchSpec &spec)
{
    return spec.eval.observer && spec.eval.observer->cancelled();
}

} // namespace

double
scheduleObjective(const ScheduleCost &c)
{
    if (!c.feasible)
        return kInfeasiblePenalty + c.slaViolations;
    return c.slaViolations * kSlaViolationPenalty + c.meanLatencyMs;
}

ScheduleCostModel::ScheduleCostModel(const std::vector<Graph> &graphs,
                                     const WorkloadSet &set,
                                     const DeploymentConfig &dep)
    : graphs_(graphs), set_(set), dep_(dep)
{
    if (graphs_.size() != set_.tenants.size())
        fatal("co-schedule: %zu graphs for %zu tenants", graphs_.size(),
              set_.tenants.size());
    if (dep_.cores() < 1)
        fatal("co-schedule: the deployment must be resolved "
              "(>= 1 core)");
    classOf_.resize(dep_.coreConfigs.size());
    for (size_t c = 0; c < dep_.coreConfigs.size(); ++c) {
        classOf_[c] = static_cast<int>(c);
        for (size_t j = 0; j < c; ++j)
            if (accelEqual(dep_.coreConfigs[j], dep_.coreConfigs[c])) {
                classOf_[c] = static_cast<int>(j);
                break;
            }
    }
    models_.resize(graphs_.size() * dep_.coreConfigs.size());
}

CostModel &
ScheduleCostModel::model(int tenant, int core)
{
    if (tenant < 0 || tenant >= tenants() || core < 0 || core >= cores())
        fatal("co-schedule: model(%d, %d) out of range (%d tenants, "
              "%d cores)",
              tenant, core, tenants(), cores());
    int rep = classOf_[core];
    auto &slot = models_[static_cast<size_t>(tenant) * cores() + rep];
    if (!slot)
        slot = std::make_unique<CostModel>(graphs_[tenant],
                                           dep_.coreConfigs[rep]);
    return *slot;
}

ScheduleCost
ScheduleCostModel::evaluate(const Schedule &s)
{
    const int T = tenants();
    if (static_cast<int>(s.coreOf.size()) != T ||
        static_cast<int>(s.parts.size()) != T)
        fatal("co-schedule: schedule shape (%zu cores, %zu parts) does "
              "not match %d tenants",
              s.coreOf.size(), s.parts.size(), T);
    ScheduleCost out;
    out.tenants.resize(T);
    out.coreUtilization.assign(cores(), 0.0);
    out.feasible = true;
    // Pass 1: uncontended per-tenant costs and core utilizations.
    for (int t = 0; t < T; ++t) {
        int core = s.coreOf[t];
        if (core < 0 || core >= cores())
            fatal("co-schedule: tenant %d placed on core %d of %d", t,
                  core, cores());
        TenantCost &tc = out.tenants[t];
        tc.graph = model(t, core).partitionCost(s.parts[t], s.buffer);
        tc.feasible = tc.graph.feasible;
        double clock = dep_.coreConfigs[core].clockGhz;
        tc.serviceMs = tc.graph.latencyMs(clock);
        tc.energyPj = tc.graph.energyPj;
        if (tc.feasible)
            out.coreUtilization[core] +=
                set_.tenants[t].arrivalRateHz * tc.serviceMs / 1000.0;
        else
            out.feasible = false;
    }
    // Pass 2: contention-scaled latencies and SLA verdicts.
    double latency_sum = 0.0;
    for (int t = 0; t < T; ++t) {
        TenantCost &tc = out.tenants[t];
        double util = out.coreUtilization[s.coreOf[t]];
        if (!tc.feasible || util >= kSaturationUtil) {
            tc.latencyMs = kSaturatedLatencyMs;
            tc.slaViolation = true;
        } else {
            tc.latencyMs = tc.serviceMs / (1.0 - util);
            tc.slaViolation =
                tc.latencyMs > set_.tenants[t].slaLatencyMs;
        }
        out.slaViolations += tc.slaViolation;
        latency_sum += tc.latencyMs;
        out.energyPjPerSec +=
            set_.tenants[t].arrivalRateHz * tc.energyPj;
    }
    out.meanLatencyMs = T > 0 ? latency_sum / T : 0.0;
    return out;
}

uint64_t
ScheduleCostModel::contextHash(uint64_t h) const
{
    h = hashU64(h, static_cast<uint64_t>(dep_.cores()));
    for (const AcceleratorConfig &core : dep_.coreConfigs)
        h = hashAccelerator(h, core);
    h = hashDouble(h, dep_.interconnect.bytesPerCycle);
    h = hashDouble(h, dep_.interconnect.pjPerByteHop);
    for (int t = 0; t < tenants(); ++t) {
        h = hashString(h, set_.tenants[t].name);
        h = hashGraph(h, graphs_[t]);
        h = hashDouble(h, set_.tenants[t].arrivalRateHz);
        h = hashDouble(h, set_.tenants[t].slaLatencyMs);
    }
    return h;
}

CoScheduler::CoScheduler(const std::vector<Graph> &graphs,
                         const WorkloadSet &set,
                         const DeploymentConfig &dep)
    : model_(graphs, set, dep)
{
}

ScheduleResult
CoScheduler::explore(const SearchSpec &spec)
{
    if (spec.algo == "greedy-place")
        return greedy(spec);
    return searched(spec);
}

ScheduleResult
CoScheduler::greedy(const SearchSpec &spec)
{
    const int T = model_.tenants();
    const int C = model_.cores();
    ScheduleResult res;
    res.schedule.coreOf.assign(T, 0);
    res.schedule.parts.resize(T);
    // Well-defined even when cancellation interrupts placement below.
    for (int t = 0; t < T; ++t)
        res.schedule.parts[t] = Partition::singletons(model_.graph(t));

    // Heaviest tenant first: compute demand rate (MACs/s) decides,
    // declaration order breaks ties.
    std::vector<int> order(T);
    for (int t = 0; t < T; ++t)
        order[t] = t;
    auto demand = [&](int t) {
        return static_cast<double>(model_.graph(t).totalMacs()) *
               model_.set().tenants[t].arrivalRateHz;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return demand(a) > demand(b); });

    // Fastest core first: peak throughput decides, index breaks ties.
    std::vector<int> core_order(C);
    for (int c = 0; c < C; ++c)
        core_order[c] = c;
    std::stable_sort(core_order.begin(), core_order.end(), [&](int a,
                                                               int b) {
        return coreThroughput(model_.deployment().coreConfigs[a]) >
               coreThroughput(model_.deployment().coreConfigs[b]);
    });

    // The first (heaviest) tenant's run fixes the shared buffer; the
    // rest search partitions only, under the frozen buffer. Inner
    // results are memoized per (tenant, core class).
    bool have_buffer = !spec.eval.coExplore;
    BufferConfig buffer = spec.fixedBuffer;
    std::vector<SearchResult> memo(
        static_cast<size_t>(T) * C); // by tenant * C + class
    std::vector<char> have(static_cast<size_t>(T) * C, 0);
    auto inner = [&](int t, int core) -> const SearchResult & {
        size_t slot = static_cast<size_t>(t) * C + model_.coreClass(core);
        if (!have[slot]) {
            DseSpace space =
                have_buffer ? DseSpace::fixedSpace(buffer)
                            : DseSpace::paperSpace(spec.style);
            memo[slot] = greedyPlaceSearch(model_.model(t, core), space,
                                           spec.eval);
            res.samples += memo[slot].samples;
            foldCacheStats(&res.cacheStats, memo[slot].cacheStats);
            have[slot] = 1;
        }
        return memo[slot];
    };

    std::vector<double> util(C, 0.0);
    for (int t : order) {
        if (cancelled(spec)) {
            res.stop = StopReason::Cancelled;
            break;
        }
        double rate = model_.set().tenants[t].arrivalRateHz;
        int placed = -1;
        for (int c : core_order) {
            const SearchResult &r = inner(t, c);
            if (!r.bestGraphCost.feasible)
                continue;
            double load =
                rate *
                r.bestGraphCost.latencyMs(
                    model_.deployment().coreConfigs[c].clockGhz) /
                1000.0;
            // Contention-blind: only the hard capacity check — no
            // lookahead on how the added load inflates latencies.
            if (util[c] + load >= kSaturationUtil)
                continue;
            placed = c;
            util[c] += load;
            break;
        }
        if (placed < 0)
            placed = core_order.front(); // overloaded: eat the violation
        const SearchResult &r = inner(t, placed);
        res.schedule.coreOf[t] = placed;
        res.schedule.parts[t] = r.best.part;
        if (!have_buffer) {
            buffer = r.bestBuffer;
            have_buffer = true;
            // Later tenants must respect the frozen buffer: their
            // memoized entries (if any) were searched under it too,
            // since the first tenant is resolved first.
        }
    }
    res.schedule.buffer = buffer;
    res.cost = model_.evaluate(res.schedule);
    res.objective = scheduleObjective(res.cost);
    res.placements = 1;
    return res;
}

ScheduleResult
CoScheduler::searched(const SearchSpec &spec)
{
    const int T = model_.tenants();
    const int C = model_.cores();
    ScheduleResult res;

    // Distinct core classes, by representative index.
    std::vector<int> reps;
    for (int c = 0; c < C; ++c)
        if (model_.coreClass(c) == c)
            reps.push_back(c);

    // Stage 1: one inner search per (tenant, core class).
    DseSpace space = spec.eval.coExplore
                         ? DseSpace::paperSpace(spec.style)
                         : DseSpace::fixedSpace(spec.fixedBuffer);
    std::vector<std::vector<SearchResult>> found(
        T, std::vector<SearchResult>(reps.size()));
    for (int t = 0; t < T; ++t)
        for (size_t k = 0; k < reps.size(); ++k) {
            if (cancelled(spec)) {
                res.stop = StopReason::Cancelled;
                return res;
            }
            auto searcher = SearcherRegistry::instance().make(
                spec.algo, model_.model(t, reps[k]), space, spec);
            found[t][k] = searcher->run();
            res.samples += found[t][k].samples;
            foldCacheStats(&res.cacheStats, found[t][k].cacheStats);
        }

    // Stage 2: candidate shared buffers = the distinct winners.
    std::vector<BufferConfig> buffers;
    for (int t = 0; t < T; ++t)
        for (size_t k = 0; k < reps.size(); ++k) {
            if (found[t][k].samples == 0)
                continue;
            const BufferConfig &b = found[t][k].bestBuffer;
            bool seen = false;
            for (const BufferConfig &have : buffers)
                seen = seen || sameBuffer(have, b);
            if (!seen)
                buffers.push_back(b);
        }
    if (buffers.empty())
        buffers.push_back(spec.fixedBuffer);

    // Stage 3: for each candidate buffer, re-fit every (tenant,
    // class) partition (a winner searched under another buffer gets
    // capacity-repaired), then search placements.
    for (const BufferConfig &buf : buffers) {
        std::vector<std::vector<Partition>> part(
            T, std::vector<Partition>(reps.size()));
        for (int t = 0; t < T; ++t)
            for (size_t k = 0; k < reps.size(); ++k) {
                const SearchResult &r = found[t][k];
                if (sameBuffer(r.bestBuffer, buf) || !spec.eval.inSituSplit)
                    part[t][k] = r.best.part;
                else
                    part[t][k] = repairToCapacity(
                        model_.graph(t), r.best.part,
                        model_.model(t, reps[k]), buf);
            }
        auto classIndex = [&](int core) {
            int rep = model_.coreClass(core);
            for (size_t k = 0; k < reps.size(); ++k)
                if (reps[k] == rep)
                    return k;
            return size_t{0}; // unreachable
        };
        auto score = [&](const std::vector<int> &core_of) {
            Schedule s;
            s.buffer = buf;
            s.coreOf = core_of;
            s.parts.resize(T);
            for (int t = 0; t < T; ++t)
                s.parts[t] = part[t][classIndex(core_of[t])];
            ScheduleCost cost = model_.evaluate(s);
            double obj = scheduleObjective(cost);
            ++res.placements;
            if (obj < res.objective) {
                res.objective = obj;
                res.schedule = std::move(s);
                res.cost = std::move(cost);
            }
            return obj;
        };

        int64_t combos = 1;
        for (int t = 0; t < T && combos <= kMaxEnumPlacements; ++t)
            combos *= C;
        if (combos <= kMaxEnumPlacements) {
            // Exhaustive: odometer over tenant -> core digits.
            std::vector<int> core_of(T, 0);
            for (;;) {
                score(core_of);
                int d = 0;
                while (d < T && ++core_of[d] == C)
                    core_of[d++] = 0;
                if (d == T)
                    break;
            }
        } else {
            // Hill climb from a deterministic spread placement.
            std::vector<int> core_of(T);
            for (int t = 0; t < T; ++t)
                core_of[t] = t % C;
            double cur = score(core_of);
            bool improved = true;
            while (improved && !cancelled(spec)) {
                improved = false;
                for (int t = 0; t < T; ++t) {
                    int best_c = core_of[t];
                    for (int c = 0; c < C; ++c) {
                        if (c == core_of[t])
                            continue;
                        std::vector<int> cand = core_of;
                        cand[t] = c;
                        double obj = score(cand);
                        if (obj < cur) {
                            cur = obj;
                            best_c = c;
                            improved = true;
                        }
                    }
                    core_of[t] = best_c;
                }
            }
        }
    }
    if (cancelled(spec))
        res.stop = StopReason::Cancelled;
    return res;
}

std::string
scheduleResultToJson(ScheduleCostModel &model, const ScheduleResult &r)
{
    const WorkloadSet &set = model.set();
    JsonWriter w;
    if (static_cast<int>(r.cost.tenants.size()) != model.tenants() ||
        static_cast<int>(r.schedule.coreOf.size()) != model.tenants()) {
        // A run cancelled before any placement was scored has no
        // schedule to report.
        w.beginObject();
        w.field("cancelled", true);
        w.field("objective", r.objective);
        w.field("samples", r.samples);
        w.field("placements", r.placements);
        w.endObject();
        return w.str();
    }
    w.beginObject();
    w.key("tenants").beginArray();
    for (int t = 0; t < model.tenants(); ++t) {
        const TenantSpec &spec = set.tenants[t];
        const TenantCost &tc = r.cost.tenants[t];
        w.beginObject();
        w.field("name", spec.name);
        w.field("model", model.graph(t).name());
        w.field("core", r.schedule.coreOf[t]);
        w.field("arrival_rate_hz", spec.arrivalRateHz);
        w.field("sla_latency_ms", spec.slaLatencyMs);
        w.field("feasible", tc.feasible);
        w.field("service_ms", tc.serviceMs);
        w.field("latency_ms", tc.latencyMs);
        w.field("energy_pj", tc.energyPj);
        w.field("sla_violation", tc.slaViolation);
        w.key("subgraphs").beginArray();
        for (const auto &blk : r.schedule.parts[t].blocks()) {
            w.beginArray();
            for (NodeId v : blk)
                w.value(model.graph(t).layer(v).name);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("buffer").beginObject();
    w.field("style", r.schedule.buffer.style == BufferStyle::Shared
                         ? "shared"
                         : "separate");
    w.field("act_bytes", r.schedule.buffer.actBytes);
    w.field("weight_bytes", r.schedule.buffer.weightBytes);
    w.field("shared_bytes", r.schedule.buffer.sharedBytes);
    w.field("total_bytes", r.schedule.buffer.totalBytes());
    w.endObject();
    w.key("cost").beginObject();
    w.field("feasible", r.cost.feasible);
    w.field("sla_violations", r.cost.slaViolations);
    w.field("mean_latency_ms", r.cost.meanLatencyMs);
    w.field("energy_pj_per_sec", r.cost.energyPjPerSec);
    w.key("core_utilization").beginArray();
    for (double u : r.cost.coreUtilization)
        w.value(u);
    w.endArray();
    w.endObject();
    w.field("objective", r.objective);
    w.field("samples", r.samples);
    w.field("placements", r.placements);
    w.endObject();
    return w.str();
}

void
fillTenantMetrics(const ScheduleCostModel &model, const ScheduleResult &r,
                  RunMetrics *m)
{
    const WorkloadSet &set = model.set();
    if (static_cast<int>(r.cost.tenants.size()) != set.size() ||
        static_cast<int>(r.schedule.coreOf.size()) != set.size())
        return;
    m->hasTenants = true;
    m->slaViolations = r.cost.slaViolations;
    m->meanLatencyMs = r.cost.meanLatencyMs;
    m->tenants.clear();
    for (int t = 0; t < set.size(); ++t) {
        RunMetrics::TenantMetrics tm;
        tm.name = set.tenants[t].name;
        tm.core = r.schedule.coreOf[t];
        tm.arrivalRateHz = set.tenants[t].arrivalRateHz;
        tm.slaLatencyMs = set.tenants[t].slaLatencyMs;
        tm.latencyMs = r.cost.tenants[t].latencyMs;
        tm.energyPj = r.cost.tenants[t].energyPj;
        tm.slaViolation = r.cost.tenants[t].slaViolation;
        m->tenants.push_back(std::move(tm));
    }
}

std::string
scheduleGantt(ScheduleCostModel &model, const ScheduleResult &r,
              int width)
{
    const WorkloadSet &set = model.set();
    if (static_cast<int>(r.cost.tenants.size()) != model.tenants() ||
        static_cast<int>(r.schedule.coreOf.size()) != model.tenants())
        return "(no schedule: the run was cancelled before any "
               "placement was scored)\n";
    std::string out = "schedule lanes (1 s horizon):\n";
    for (int c = 0; c < model.cores(); ++c) {
        out += ganttLane(strprintf(" c%-7d ", c),
                         r.cost.coreUtilization[c], width);
        for (int t = 0; t < model.tenants(); ++t) {
            if (r.schedule.coreOf[t] != c)
                continue;
            const TenantCost &tc = r.cost.tenants[t];
            double busy = tc.feasible ? set.tenants[t].arrivalRateHz *
                                            tc.serviceMs / 1000.0
                                      : 0.0;
            out += ganttLane(strprintf("   %-7.7s ",
                                       set.tenants[t].name.c_str()),
                             busy, width);
        }
    }
    for (int t = 0; t < model.tenants(); ++t) {
        const TenantCost &tc = r.cost.tenants[t];
        int core = r.schedule.coreOf[t];
        out += strprintf("tenant %s (%s on core %d): %.1f req/s, "
                         "service %.3f ms, latency %.3f ms, SLA %.3f ms "
                         "%s\n",
                         set.tenants[t].name.c_str(),
                         model.graph(t).name().c_str(), core,
                         set.tenants[t].arrivalRateHz, tc.serviceMs,
                         tc.latencyMs, set.tenants[t].slaLatencyMs,
                         tc.slaViolation ? "VIOLATED" : "ok");
        if (tc.feasible)
            out += buildTimeline(model.model(t, core),
                                 r.schedule.parts[t], r.schedule.buffer)
                       .gantt(width);
    }
    return out;
}

} // namespace cocco
