/**
 * @file
 * Multi-tenant workload declarations (run-spec `workload_set`).
 *
 * A WorkloadSet names N tenants sharing one deployment: each tenant
 * is a workload (model + params, same addressing as the plain
 * `workload` section) plus the two serving-side numbers the
 * co-scheduler needs — a Poisson-less steady arrival rate and a
 * latency SLA. Parsing is strict (unknown keys, duplicate names,
 * non-positive rates/SLAs and unknown models are all rejected with a
 * reason), and a one-tenant set is *normalized away* by the run-spec
 * reader: it degenerates to the plain `workload` section so every
 * frontend (run/serve/batch) produces bit-identical output for the
 * two spellings.
 */

#ifndef COCCO_SCHEDULE_WORKLOAD_SET_H
#define COCCO_SCHEDULE_WORKLOAD_SET_H

#include <string>
#include <vector>

#include "models/models.h"

namespace cocco {

class JsonValue;
class JsonWriter;

/** One tenant: a named workload with serving requirements. */
struct TenantSpec
{
    std::string name;      ///< unique within the set
    WorkloadSpec workload; ///< model/file + params (as `workload`)
    double arrivalRateHz = 0.0; ///< steady request rate (> 0)
    double slaLatencyMs = 0.0;  ///< per-request latency target (> 0)
};

/** The `workload_set` run-spec section: N tenants on one deployment. */
struct WorkloadSet
{
    std::vector<TenantSpec> tenants;

    bool enabled() const { return !tenants.empty(); }
    int size() const { return static_cast<int>(tenants.size()); }
};

/**
 * Semantic validation shared by the JSON parser and programmatic
 * callers (JobManager admission): names unique and non-empty, exactly
 * one of model/file per tenant, model names known to the registry,
 * rates and SLAs strictly positive and finite.
 * @return false with *err set to the first violation.
 */
bool validateWorkloadSet(const WorkloadSet &set, std::string *err);

/**
 * Strict parser for the `workload_set` JSON section: a non-empty
 * array of tenant objects `{"name": ..., "model"|"file": ...,
 * "params": {...}?, "arrival_rate_hz": N, "sla_latency_ms": N}`.
 * Unknown keys are rejected. @return false with *err set.
 */
bool workloadSetFromJson(const JsonValue &v, WorkloadSet *out,
                         std::string *err);

/** Serialize the section (round-trips through workloadSetFromJson). */
void workloadSetToJson(JsonWriter &w, const WorkloadSet &set);

/** The section as a standalone document (for tests / tooling). */
std::string workloadSetJson(const WorkloadSet &set);

} // namespace cocco

#endif // COCCO_SCHEDULE_WORKLOAD_SET_H
