#include "schedule/greedy_place.h"

#include <algorithm>

#include "search/eval_engine.h"

namespace cocco {

namespace {

/** Merge blocks b and b+1 of a valid partition (numbering stays
 *  contiguous; the quotient stays acyclic because the blocks are
 *  adjacent in a topological order of the quotient). */
Partition
mergeAdjacent(const Partition &p, int b)
{
    Partition out = p;
    for (int &blk : out.block)
        if (blk > b)
            --blk;
    out.numBlocks = p.numBlocks - 1;
    return out;
}

class GreedyPlaceSearcher : public Searcher
{
  public:
    GreedyPlaceSearcher(CostModel &model, const DseSpace &space,
                        const SearchSpec &spec)
        : model_(model), space_(space), opts_(spec.eval)
    {
    }

    std::string name() const override { return "greedy-place"; }

    std::string
    describe() const override
    {
        return "greedy constructor: axis-swept buffer pick + best "
               "improving adjacent-block merges (deterministic, no "
               "randomness; seeds ignored)";
    }

    SearchResult
    run(const std::vector<Genome> &seeds = {}) override
    {
        (void)seeds; // no population to warm-start
        return greedyPlaceSearch(model_, space_, opts_);
    }

  private:
    CostModel &model_;
    DseSpace space_;
    EvalOptions opts_;
};

std::unique_ptr<Searcher>
makeGreedyPlace(CostModel &model, const DseSpace &space,
                const SearchSpec &spec)
{
    return std::make_unique<GreedyPlaceSearcher>(model, space, spec);
}

} // namespace

SearchResult
greedyPlaceSearch(CostModel &model, const DseSpace &space,
                  const EvalOptions &opts)
{
    EvalEngine eng(model, space, opts);
    SearchMonitor &mon = eng.monitor();
    SearchResult res;
    EvalCacheStats cache_start;
    if (eng.cache())
        cache_start = eng.cache()->stats();

    const Graph &g = model.graph();
    const int64_t budget = std::max<int64_t>(opts.sampleBudget, 1);

    // Evaluate one genome through the engine (repairs in place),
    // recording the sample like every other strategy. Returns the
    // cost, or stops contributing once the budget ran out.
    auto evaluate = [&](Genome &x) {
        double c = eng.evaluate(x);
        ++res.samples;
        bool improved = c < res.bestCost;
        if (improved) {
            res.bestCost = c;
            res.best = x;
        }
        res.trace.push_back({res.samples, res.bestCost});
        mon.recordSample(res.trace.back(), improved);
        return c;
    };
    auto exhausted = [&] {
        return res.samples >= budget || mon.shouldStop();
    };

    // --- Buffer pick: two independent axis sweeps on singletons. ---
    Genome cur;
    cur.part = Partition::singletons(g);
    cur.actIdx = space.actGrid.count / 2;
    cur.weightIdx = space.weightGrid.count / 2;
    cur.sharedIdx = space.sharedGrid.count / 2;
    evaluate(cur);
    Genome incumbent = res.best;
    if (space.searchHw) {
        auto sweep = [&](int Genome::*idx, int count) {
            Genome pick = incumbent;
            double pick_cost = res.bestCost;
            for (int i = 0; i < count && !exhausted(); ++i) {
                if (i == incumbent.*idx)
                    continue; // already scored
                Genome x = incumbent;
                x.*idx = i;
                x.part = Partition::singletons(g);
                double c = evaluate(x);
                if (c < pick_cost) {
                    pick = x;
                    pick_cost = c;
                }
            }
            incumbent = pick;
        };
        if (space.style == BufferStyle::Shared) {
            sweep(&Genome::sharedIdx, space.sharedGrid.count);
        } else {
            sweep(&Genome::actIdx, space.actGrid.count);
            sweep(&Genome::weightIdx, space.weightGrid.count);
        }
    }
    cur = incumbent;

    // --- Partition growth: best improving adjacent merge, repeat. ---
    double cur_cost = res.bestCost;
    bool improved_any = true;
    while (improved_any && !exhausted()) {
        improved_any = false;
        Genome pick;
        double pick_cost = cur_cost;
        int nb = *std::max_element(cur.part.block.begin(),
                                   cur.part.block.end()) +
                 1;
        for (int b = 0; b + 1 < nb && !exhausted(); ++b) {
            Partition cand = mergeAdjacent(cur.part, b);
            if (!cand.valid(g))
                continue;
            Genome x = cur;
            x.part = std::move(cand);
            double c = evaluate(x);
            if (c < pick_cost) {
                pick = x;
                pick_cost = c;
            }
        }
        if (pick_cost < cur_cost) {
            cur = pick;
            cur_cost = pick_cost;
            improved_any = true;
        }
    }

    res.stop = mon.stopReason();
    if (res.samples > 0) {
        res.bestBuffer = res.best.buffer(space);
        res.bestGraphCost =
            model.partitionCost(res.best.part, res.bestBuffer);
    }
    if (eng.cache())
        res.cacheStats = eng.cache()->stats() - cache_start;
    res.cacheStats.incReusedBlocks = eng.recordBlocksReused();
    res.cacheStats.incRecostBlocks = eng.recordBlocksRecosted();
    res.deltaStats = eng.deltaStats();
    return res;
}

void
registerGreedyPlaceSearcher(SearcherRegistry &r)
{
    r.add("greedy-place",
          "greedy constructor (buffer axis sweep + adjacent merges); "
          "the co-scheduler's placement baseline",
          &makeGreedyPlace);
}

} // namespace cocco
