/**
 * @file
 * Graph algorithms shared by the tile-flow, partitioning, and search
 * layers: topological ordering, depth layering, connectivity of node
 * subsets, and validity of quotient (partition) graphs.
 */

#ifndef COCCO_GRAPH_ALGORITHMS_H
#define COCCO_GRAPH_ALGORITHMS_H

#include <vector>

#include "graph/graph.h"

namespace cocco {

/**
 * Topological order of the whole graph. Node ids are already a valid
 * topological order by construction (producers precede consumers), so
 * this is the identity permutation; provided for clarity at call sites.
 */
std::vector<NodeId> topoOrder(const Graph &g);

/**
 * Depth of each node: Input nodes have depth 0; otherwise
 * 1 + max(depth of producers). Used by the DP baseline's depth-order
 * sequencing (Irregular-NN).
 */
std::vector<int> nodeDepths(const Graph &g);

/**
 * Node ids sorted by (depth, id): the sequential order the DP baseline
 * partitions along.
 */
std::vector<NodeId> depthOrder(const Graph &g);

/**
 * @return true if the node subset @p nodes is weakly connected in @p g
 * (connected when edge direction is ignored). Empty sets and singletons
 * are connected.
 */
bool isWeaklyConnected(const Graph &g, const std::vector<NodeId> &nodes);

/**
 * Split a node subset into weakly-connected components.
 * @return one vector of node ids per component, each sorted ascending;
 * components ordered by their smallest node id.
 */
std::vector<std::vector<NodeId>>
weakComponents(const Graph &g, const std::vector<NodeId> &nodes);

/**
 * Check whether the block assignment @p block (node -> block id) has an
 * acyclic quotient graph with blocks numbered in a valid execution
 * order, i.e. for every edge (u, v): block[u] <= block[v].
 */
bool quotientRespectsPrecedence(const Graph &g,
                                const std::vector<int> &block);

/**
 * @return true if the quotient graph induced by @p block is acyclic
 * (ignoring the numeric order of block ids).
 */
bool quotientIsAcyclic(const Graph &g, const std::vector<int> &block);

/**
 * For each node, the set of graph-input-reachable ancestors is implied;
 * this helper returns, for a node set S, the ids of *boundary inputs*:
 * producers outside S that feed some node in S (deduplicated, sorted).
 */
std::vector<NodeId> boundaryInputs(const Graph &g,
                                   const std::vector<NodeId> &nodes);

/**
 * For a node set S, the ids of nodes in S whose output escapes S
 * (consumed by a node outside S, or a model output). Sorted ascending.
 */
std::vector<NodeId> escapingOutputs(const Graph &g,
                                    const std::vector<NodeId> &nodes);

} // namespace cocco

#endif // COCCO_GRAPH_ALGORITHMS_H
