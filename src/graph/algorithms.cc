#include "graph/algorithms.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace cocco {

std::vector<NodeId>
topoOrder(const Graph &g)
{
    std::vector<NodeId> order(g.size());
    std::iota(order.begin(), order.end(), 0);
    return order;
}

std::vector<int>
nodeDepths(const Graph &g)
{
    std::vector<int> depth(g.size(), 0);
    for (NodeId v = 0; v < g.size(); ++v) {
        int d = 0;
        for (NodeId u : g.preds(v))
            d = std::max(d, depth[u] + 1);
        depth[v] = d;
    }
    return depth;
}

std::vector<NodeId>
depthOrder(const Graph &g)
{
    std::vector<int> depth = nodeDepths(g);
    std::vector<NodeId> order(g.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return depth[a] < depth[b];
    });
    return order;
}

bool
isWeaklyConnected(const Graph &g, const std::vector<NodeId> &nodes)
{
    if (nodes.size() <= 1)
        return true;
    return weakComponents(g, nodes).size() == 1;
}

std::vector<std::vector<NodeId>>
weakComponents(const Graph &g, const std::vector<NodeId> &nodes)
{
    std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
    std::unordered_set<NodeId> visited;
    std::vector<std::vector<NodeId>> comps;

    std::vector<NodeId> sorted = nodes;
    std::sort(sorted.begin(), sorted.end());

    for (NodeId seed : sorted) {
        if (visited.count(seed))
            continue;
        std::vector<NodeId> comp;
        std::vector<NodeId> stack{seed};
        visited.insert(seed);
        while (!stack.empty()) {
            NodeId v = stack.back();
            stack.pop_back();
            comp.push_back(v);
            auto visit = [&](NodeId w) {
                if (in_set.count(w) && !visited.count(w)) {
                    visited.insert(w);
                    stack.push_back(w);
                }
            };
            for (NodeId u : g.preds(v))
                visit(u);
            for (NodeId u : g.succs(v))
                visit(u);
        }
        std::sort(comp.begin(), comp.end());
        comps.push_back(std::move(comp));
    }
    return comps;
}

bool
quotientRespectsPrecedence(const Graph &g, const std::vector<int> &block)
{
    if (static_cast<int>(block.size()) != g.size())
        panic("block assignment size mismatch");
    for (NodeId v = 0; v < g.size(); ++v)
        for (NodeId u : g.preds(v))
            if (block[u] > block[v])
                return false;
    return true;
}

bool
quotientIsAcyclic(const Graph &g, const std::vector<int> &block)
{
    if (static_cast<int>(block.size()) != g.size())
        panic("block assignment size mismatch");

    // Collect distinct block ids and inter-block edges.
    std::unordered_map<int, int> idx;
    for (int b : block)
        if (!idx.count(b)) {
            int next = static_cast<int>(idx.size());
            idx[b] = next;
        }
    int nb = static_cast<int>(idx.size());
    std::vector<std::unordered_set<int>> adj(nb);
    std::vector<int> indeg(nb, 0);
    for (NodeId v = 0; v < g.size(); ++v) {
        int bv = idx[block[v]];
        for (NodeId u : g.preds(v)) {
            int bu = idx[block[u]];
            if (bu != bv && adj[bu].insert(bv).second)
                ++indeg[bv];
        }
    }
    // Kahn's algorithm.
    std::vector<int> queue;
    for (int b = 0; b < nb; ++b)
        if (indeg[b] == 0)
            queue.push_back(b);
    int seen = 0;
    while (!queue.empty()) {
        int b = queue.back();
        queue.pop_back();
        ++seen;
        for (int w : adj[b])
            if (--indeg[w] == 0)
                queue.push_back(w);
    }
    return seen == nb;
}

std::vector<NodeId>
boundaryInputs(const Graph &g, const std::vector<NodeId> &nodes)
{
    std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
    std::unordered_set<NodeId> result;
    for (NodeId v : nodes)
        for (NodeId u : g.preds(v))
            if (!in_set.count(u))
                result.insert(u);
    std::vector<NodeId> out(result.begin(), result.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<NodeId>
escapingOutputs(const Graph &g, const std::vector<NodeId> &nodes)
{
    std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
    std::vector<NodeId> out;
    for (NodeId v : nodes) {
        bool escapes = g.succs(v).empty();
        for (NodeId w : g.succs(v))
            if (!in_set.count(w)) {
                escapes = true;
                break;
            }
        if (escapes)
            out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace cocco
