/**
 * @file
 * Graph JSON import/export: the file form of a workload.
 *
 * Any DAG a user can describe — not just the built-in model zoo —
 * becomes an explorable workload through this module: export a
 * registry model with graphToJson()/`cocco export-model`, edit or
 * generate a document from another tool, and feed it back via
 * `--model-file` or a run spec's workload.file.
 *
 * Schema (cocco-graph v1; strict — unknown keys, type mismatches and
 * non-topological edges are hard errors):
 *
 *   {
 *     "schema_version": 1,
 *     "name": "ResNet50",
 *     "nodes": [
 *       {"name": "input", "kind": "input",
 *        "outH": 224, "outW": 224, "outC": 3,
 *        "kernel": 1, "stride": 1, "preds": []},
 *       ...
 *     ]
 *   }
 *
 * "kernel", "stride" (default 1) and "preds" (default []) are
 * optional on input; export always writes every field. "preds" holds
 * indices into "nodes" and must reference earlier entries only, so a
 * valid document is a topologically-ordered DAG by construction —
 * cycles cannot be expressed and forward references are rejected.
 *
 * Round-trip contract: import(export(g)) reproduces g's content hash
 * (util/hash's hashGraph) bit-identically, so a file-based workload
 * is indistinguishable from the compiled-in graph to the evaluation
 * cache and every search driver.
 */

#ifndef COCCO_GRAPH_GRAPH_JSON_H
#define COCCO_GRAPH_GRAPH_JSON_H

#include <string>

#include "graph/graph.h"

namespace cocco {

class JsonValue;

/** Serialize @p g as a cocco-graph v1 document. */
std::string graphToJson(const Graph &g);

/**
 * Rebuild a graph from a parsed cocco-graph document. Strict: any
 * unknown key, type mismatch, missing required field, duplicate node
 * name, shape/kernel/stride < 1, or edge that is not
 * earlier-to-later (i.e. would form a cycle or a dangling reference)
 * is an error. @return false with *err set on any problem.
 */
bool graphFromJson(const JsonValue &doc, Graph *out, std::string *err);

/** Read + parse + import @p path. @return false with *err set. */
bool loadGraphJson(const std::string &path, Graph *out, std::string *err);

/** Write graphToJson(g) to @p path. @return false on I/O failure. */
bool saveGraphJson(const Graph &g, const std::string &path);

} // namespace cocco

#endif // COCCO_GRAPH_GRAPH_JSON_H
