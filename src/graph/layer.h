/**
 * @file
 * Layer (node) description for the DNN computation graph.
 *
 * Following the paper's methodology (Section 5.1.1): FC layers are
 * modelled as 1x1 convolutions, pooling and element-wise layers as
 * depth-wise convolutions without weights, and scalar ops (activation
 * functions, layernorm scaling) are hidden in the PE pipeline.
 *
 * Every node produces exactly one output tensor of shape
 * (height, width, channels); activations are 8-bit (1 byte/element)
 * as in the Simba-like platform the paper evaluates.
 */

#ifndef COCCO_GRAPH_LAYER_H
#define COCCO_GRAPH_LAYER_H

#include <cstdint>
#include <string>

namespace cocco {

/** The operator categories the cost model distinguishes. */
enum class LayerKind
{
    Input,    ///< graph input placeholder (no compute, no weights)
    Conv,     ///< dense 2-D convolution (includes FC as 1x1)
    DWConv,   ///< depth-wise convolution (with weights)
    Pool,     ///< pooling: depth-wise, no weights
    Eltwise,  ///< element-wise add/mul: kernel 1, stride 1, no weights
    Concat,   ///< channel concatenation: no compute, no weights
    Matmul,   ///< activation-activation matmul (attention); no weights
};

/** @return a short stable name for @p kind ("conv", "pool", ...). */
const char *layerKindName(LayerKind kind);

/** Reverse of layerKindName: parse @p name into *out.
 *  @return false when @p name is not a layer kind. */
bool layerKindFromName(const std::string &name, LayerKind *out);

/**
 * One layer of the network: the vertex payload of the computation
 * graph. Spatial kernel/stride are square (F x F / s); the tile-flow
 * derivation treats height and width independently with the same F, s.
 */
struct Layer
{
    std::string name;          ///< unique human-readable name
    LayerKind kind = LayerKind::Conv;

    int outH = 1;              ///< output tensor height
    int outW = 1;              ///< output tensor width
    int outC = 1;              ///< output tensor channels

    int kernel = 1;            ///< spatial kernel size F
    int stride = 1;            ///< spatial stride s

    /** @return output activation tensor size in bytes (1 B/element). */
    int64_t outBytes() const;

    /**
     * Weight bytes of this layer given the input channel count.
     * Conv: F*F*Cin*Cout; DWConv: F*F*C; others: 0.
     */
    int64_t weightBytes(int in_channels) const;

    /**
     * Multiply-accumulate count given the total input channels.
     * Conv: H*W*Cout*F*F*Cin; DWConv/Pool/Eltwise: H*W*C*F*F;
     * Matmul: H*W*C*Cin; Input/Concat: 0.
     */
    int64_t macs(int in_channels) const;

    /** @return true for kinds that carry trained weights. */
    bool hasWeights() const;
};

} // namespace cocco

#endif // COCCO_GRAPH_LAYER_H
