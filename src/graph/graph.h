/**
 * @file
 * The DNN computation graph G = (V, E): a DAG of Layer nodes.
 *
 * Node ids are dense indices [0, size). Edges (u, v) mean "the output
 * of u is an input of v". The graph is append-only: models are built
 * once by the builders in src/models/ and then treated as immutable by
 * the partitioning and search layers.
 */

#ifndef COCCO_GRAPH_GRAPH_H
#define COCCO_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/layer.h"

namespace cocco {

/** Dense node id. */
using NodeId = int;

/** A DAG of layers with per-node derived byte/MAC metadata. */
class Graph
{
  public:
    /** Create an empty graph with an optional model name. */
    explicit Graph(std::string name = "graph");

    /**
     * Append a node.
     * @param layer   the layer payload
     * @param inputs  producer node ids (must be < the new node's id)
     * @return the new node's id
     */
    NodeId addNode(const Layer &layer, const std::vector<NodeId> &inputs = {});

    /** Model name ("ResNet50", ...). */
    const std::string &name() const { return name_; }

    /** Number of nodes. */
    int size() const { return static_cast<int>(layers_.size()); }

    /** Number of edges. */
    int numEdges() const { return num_edges_; }

    /** Layer payload of node @p v. */
    const Layer &layer(NodeId v) const { return layers_[v]; }

    /** Producer ids of node @p v (in insertion order). */
    const std::vector<NodeId> &preds(NodeId v) const { return preds_[v]; }

    /** Consumer ids of node @p v (in insertion order). */
    const std::vector<NodeId> &succs(NodeId v) const { return succs_[v]; }

    /** Sum of producers' output channels (input channel count of @p v). */
    int inChannels(NodeId v) const { return in_channels_[v]; }

    /** Weight bytes of node @p v. */
    int64_t weightBytes(NodeId v) const { return weight_bytes_[v]; }

    /** MAC count of node @p v. */
    int64_t macs(NodeId v) const { return macs_[v]; }

    /** Output activation bytes of node @p v. */
    int64_t outBytes(NodeId v) const { return layers_[v].outBytes(); }

    /** Total weight bytes of the model. */
    int64_t totalWeightBytes() const { return total_weight_bytes_; }

    /** Total MACs of the model. */
    int64_t totalMacs() const { return total_macs_; }

    /** Ids of Input-kind nodes. */
    const std::vector<NodeId> &inputs() const { return input_nodes_; }

    /** Ids of nodes with no consumers (model outputs). */
    std::vector<NodeId> outputs() const;

    /** @return true if @p v is an Input placeholder. */
    bool isInput(NodeId v) const
    {
        return layers_[v].kind == LayerKind::Input;
    }

    /** One-line per-node dump for debugging. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<Layer> layers_;
    std::vector<std::vector<NodeId>> preds_;
    std::vector<std::vector<NodeId>> succs_;
    std::vector<int> in_channels_;
    std::vector<int64_t> weight_bytes_;
    std::vector<int64_t> macs_;
    std::vector<NodeId> input_nodes_;
    int num_edges_ = 0;
    int64_t total_weight_bytes_ = 0;
    int64_t total_macs_ = 0;
};

} // namespace cocco

#endif // COCCO_GRAPH_GRAPH_H
