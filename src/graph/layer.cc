#include "graph/layer.h"

#include "util/logging.h"

namespace cocco {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Input:
        return "input";
      case LayerKind::Conv:
        return "conv";
      case LayerKind::DWConv:
        return "dwconv";
      case LayerKind::Pool:
        return "pool";
      case LayerKind::Eltwise:
        return "eltwise";
      case LayerKind::Concat:
        return "concat";
      case LayerKind::Matmul:
        return "matmul";
    }
    panic("unknown LayerKind %d", static_cast<int>(kind));
}

bool
layerKindFromName(const std::string &name, LayerKind *out)
{
    static const LayerKind kinds[] = {
        LayerKind::Input, LayerKind::Conv,    LayerKind::DWConv,
        LayerKind::Pool,  LayerKind::Eltwise, LayerKind::Concat,
        LayerKind::Matmul,
    };
    for (LayerKind kind : kinds) {
        if (name == layerKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

int64_t
Layer::outBytes() const
{
    return static_cast<int64_t>(outH) * outW * outC;
}

int64_t
Layer::weightBytes(int in_channels) const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<int64_t>(kernel) * kernel * in_channels * outC;
      case LayerKind::DWConv:
        return static_cast<int64_t>(kernel) * kernel * outC;
      default:
        return 0;
    }
}

int64_t
Layer::macs(int in_channels) const
{
    int64_t spatial = static_cast<int64_t>(outH) * outW;
    switch (kind) {
      case LayerKind::Conv:
        return spatial * outC * kernel * kernel * in_channels;
      case LayerKind::DWConv:
      case LayerKind::Pool:
      case LayerKind::Eltwise:
        return spatial * outC * kernel * kernel;
      case LayerKind::Matmul:
        // Two activation operands contribute to in_channels; the
        // contraction dimension is half the sum (exact when both
        // operands have the same channel width, e.g. Q and K).
        return spatial * outC * (in_channels / 2);
      case LayerKind::Input:
      case LayerKind::Concat:
        return 0;
    }
    panic("unknown LayerKind %d", static_cast<int>(kind));
}

bool
Layer::hasWeights() const
{
    return kind == LayerKind::Conv || kind == LayerKind::DWConv;
}

} // namespace cocco
