/**
 * @file
 * Graphviz DOT export of computation graphs, optionally coloured by a
 * partition (one colour per subgraph, clustered). Handy for
 * inspecting the execution strategies the search produces.
 */

#ifndef COCCO_GRAPH_DOT_H
#define COCCO_GRAPH_DOT_H

#include <string>

#include "graph/graph.h"
#include "partition/partition.h"

namespace cocco {

/** Render @p g as a DOT digraph. */
std::string toDot(const Graph &g);

/**
 * Render @p g with nodes grouped into subgraph clusters according to
 * @p p (must cover the graph).
 */
std::string toDot(const Graph &g, const Partition &p);

} // namespace cocco

#endif // COCCO_GRAPH_DOT_H
