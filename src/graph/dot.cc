#include "graph/dot.h"

#include "util/logging.h"

namespace cocco {

namespace {

const char *kPalette[] = {"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                          "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};

std::string
nodeLabel(const Graph &g, NodeId v)
{
    const Layer &l = g.layer(v);
    return strprintf("%s\\n%s %dx%dx%d", l.name.c_str(),
                     layerKindName(l.kind), l.outH, l.outW, l.outC);
}

std::string
edges(const Graph &g)
{
    std::string out;
    for (NodeId v = 0; v < g.size(); ++v)
        for (NodeId u : g.preds(v))
            out += strprintf("  n%d -> n%d;\n", u, v);
    return out;
}

} // namespace

std::string
toDot(const Graph &g)
{
    std::string out = strprintf("digraph \"%s\" {\n  rankdir=TB;\n"
                                "  node [shape=box, style=filled, "
                                "fillcolor=\"#eeeeee\"];\n",
                                g.name().c_str());
    for (NodeId v = 0; v < g.size(); ++v)
        out += strprintf("  n%d [label=\"%s\"];\n", v,
                         nodeLabel(g, v).c_str());
    out += edges(g);
    out += "}\n";
    return out;
}

std::string
toDot(const Graph &g, const Partition &p)
{
    if (static_cast<int>(p.block.size()) != g.size())
        panic("toDot: partition does not cover the graph");

    std::string out = strprintf("digraph \"%s\" {\n  rankdir=TB;\n"
                                "  node [shape=box, style=filled];\n",
                                g.name().c_str());
    auto blocks = p.blocks();
    for (size_t b = 0; b < blocks.size(); ++b) {
        const char *colour = kPalette[b % (sizeof(kPalette) /
                                           sizeof(kPalette[0]))];
        out += strprintf("  subgraph cluster_%zu {\n"
                         "    label=\"subgraph %zu\";\n",
                         b, b);
        for (NodeId v : blocks[b])
            out += strprintf("    n%d [label=\"%s\", fillcolor=\"%s\"];\n",
                             v, nodeLabel(g, v).c_str(), colour);
        out += "  }\n";
    }
    out += edges(g);
    out += "}\n";
    return out;
}

} // namespace cocco
