#include "graph/stats.h"

#include <algorithm>
#include <map>

#include "graph/algorithms.h"
#include "util/logging.h"

namespace cocco {

double
GraphStats::actWeightRatio() const
{
    if (totalWeightBytes == 0)
        return totalActBytes > 0 ? 1e18 : 0.0;
    return static_cast<double>(totalActBytes) /
           static_cast<double>(totalWeightBytes);
}

std::string
GraphStats::str() const
{
    return strprintf(
        "nodes=%d edges=%d depth=%d width=%d fan-out<=%d fan-in<=%d\n"
        "branch nodes=%d merge nodes=%d\n"
        "activations=%.2f MB (peak tensor %.2f MB), weights=%.2f MB "
        "(act/wgt %.2f)\nMACs=%.2f G\n",
        nodes, edges, depth, maxWidth, maxFanOut, maxFanIn, branchNodes,
        mergeNodes, totalActBytes / 1048576.0, peakActBytes / 1048576.0,
        totalWeightBytes / 1048576.0, actWeightRatio(), totalMacs / 1e9);
}

GraphStats
computeStats(const Graph &g)
{
    GraphStats s;
    s.nodes = g.size();
    s.edges = g.numEdges();
    s.totalWeightBytes = g.totalWeightBytes();
    s.totalMacs = g.totalMacs();

    std::vector<int> depth = nodeDepths(g);
    std::map<int, int> width;
    for (NodeId v = 0; v < g.size(); ++v) {
        s.depth = std::max(s.depth, depth[v]);
        ++width[depth[v]];
        s.maxFanOut =
            std::max(s.maxFanOut, static_cast<int>(g.succs(v).size()));
        s.maxFanIn =
            std::max(s.maxFanIn, static_cast<int>(g.preds(v).size()));
        s.branchNodes += g.succs(v).size() > 1;
        s.mergeNodes += g.preds(v).size() > 1;
        s.totalActBytes += g.outBytes(v);
        s.peakActBytes = std::max(s.peakActBytes, g.outBytes(v));
    }
    for (auto [d, w] : width)
        s.maxWidth = std::max(s.maxWidth, w);
    return s;
}

} // namespace cocco
