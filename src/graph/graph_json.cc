#include "graph/graph_json.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "util/json.h"
#include "util/logging.h"

namespace cocco {

namespace {

constexpr int kGraphSchemaVersion = 1;

} // namespace

std::string
graphToJson(const Graph &g)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", kGraphSchemaVersion);
    w.field("name", g.name());
    w.key("nodes").beginArray();
    for (NodeId v = 0; v < g.size(); ++v) {
        const Layer &l = g.layer(v);
        w.beginObject();
        w.field("name", l.name);
        w.field("kind", layerKindName(l.kind));
        w.field("outH", l.outH);
        w.field("outW", l.outW);
        w.field("outC", l.outC);
        w.field("kernel", l.kernel);
        w.field("stride", l.stride);
        w.key("preds").beginArray();
        for (NodeId u : g.preds(v))
            w.value(u);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

namespace {

/** Parse one "nodes" entry; @p index is the node's id-to-be. */
bool
nodeFromJson(const JsonValue &v, int index, Layer *layer,
             std::vector<NodeId> *preds, std::string *err)
{
    auto bad = [&](const std::string &what) {
        if (err && err->empty())
            *err = strprintf("nodes[%d]: %s", index, what.c_str());
        return false;
    };
    if (!v.isObject())
        return bad("must be an object");

    bool has_name = false, has_kind = false, has_h = false, has_w = false,
         has_c = false;
    for (const auto &[k, val] : v.members()) {
        bool ok;
        std::string field_err;
        if (k == "name") {
            ok = jsonReadString(val, "name", &layer->name, &field_err);
            has_name = ok;
        } else if (k == "kind") {
            std::string kind;
            ok = jsonReadString(val, "kind", &kind, &field_err);
            if (ok && !layerKindFromName(kind, &layer->kind))
                return bad(strprintf("unknown layer kind \"%s\"",
                                     kind.c_str()));
            has_kind = ok;
        } else if (k == "outH") {
            ok = jsonReadIntAs(val, "outH", &layer->outH, &field_err);
            has_h = ok;
        } else if (k == "outW") {
            ok = jsonReadIntAs(val, "outW", &layer->outW, &field_err);
            has_w = ok;
        } else if (k == "outC") {
            ok = jsonReadIntAs(val, "outC", &layer->outC, &field_err);
            has_c = ok;
        } else if (k == "kernel") {
            ok = jsonReadIntAs(val, "kernel", &layer->kernel, &field_err);
        } else if (k == "stride") {
            ok = jsonReadIntAs(val, "stride", &layer->stride, &field_err);
        } else if (k == "preds") {
            if (!val.isArray())
                return bad("\"preds\" must be an array");
            for (const JsonValue &p : val.array()) {
                int64_t u = 0;
                if (!jsonReadInt(p, "preds", &u, &field_err))
                    return bad(field_err);
                if (u < 0 || u >= index)
                    return bad(strprintf(
                        "pred %lld is not an earlier node (documents "
                        "must be topologically ordered; cycles cannot "
                        "be expressed)",
                        static_cast<long long>(u)));
                NodeId id = static_cast<NodeId>(u);
                // A repeated pred would double-count the producer's
                // channels in every derived weight/MAC figure.
                if (std::find(preds->begin(), preds->end(), id) !=
                    preds->end())
                    return bad(strprintf("duplicate pred %lld",
                                         static_cast<long long>(u)));
                preds->push_back(id);
            }
            ok = true;
        } else {
            return bad(strprintf("unknown key \"%s\"", k.c_str()));
        }
        if (!ok)
            return bad(field_err);
    }

    if (!has_name || !has_kind || !has_h || !has_w || !has_c)
        return bad("\"name\", \"kind\", \"outH\", \"outW\" and \"outC\" "
                   "are required");
    if (layer->outH < 1 || layer->outW < 1 || layer->outC < 1 ||
        layer->kernel < 1 || layer->stride < 1)
        return bad("shape, kernel and stride must be >= 1");
    if (layer->kind == LayerKind::Input && !preds->empty())
        return bad("an input node cannot have preds");
    if (layer->kind != LayerKind::Input && preds->empty())
        return bad("a non-input node needs at least one pred");
    return true;
}

} // namespace

bool
graphFromJson(const JsonValue &doc, Graph *out, std::string *err)
{
    auto bad = [&](const std::string &what) {
        return jsonFail(err, what);
    };
    if (!doc.isObject())
        return bad("graph document must be a JSON object");

    std::string name;
    const JsonValue *nodes = nullptr;
    bool has_version = false;
    for (const auto &[k, v] : doc.members()) {
        if (k == "schema_version") {
            int64_t version = 0;
            if (!jsonReadInt(v, "schema_version", &version, err))
                return false;
            if (version != kGraphSchemaVersion)
                return bad(strprintf(
                    "unsupported schema_version %lld (this build reads "
                    "%d)",
                    static_cast<long long>(version), kGraphSchemaVersion));
            has_version = true;
        } else if (k == "name") {
            if (!jsonReadString(v, "name", &name, err))
                return false;
        } else if (k == "nodes") {
            if (!v.isArray())
                return bad("\"nodes\" must be an array");
            nodes = &v;
        } else {
            return bad(strprintf("unknown graph key \"%s\"", k.c_str()));
        }
    }
    if (!has_version)
        return bad("missing \"schema_version\"");
    if (name.empty())
        return bad("missing \"name\"");
    if (!nodes)
        return bad("missing \"nodes\"");

    Graph g(name);
    std::set<std::string> seen;
    int index = 0;
    for (const JsonValue &nv : nodes->array()) {
        Layer layer;
        std::vector<NodeId> preds;
        if (!nodeFromJson(nv, index, &layer, &preds, err))
            return false;
        if (!seen.insert(layer.name).second)
            return bad(strprintf("nodes[%d]: duplicate node name \"%s\"",
                                 index, layer.name.c_str()));
        // Every addNode precondition was checked above, so this
        // cannot fatal on user input.
        g.addNode(layer, preds);
        ++index;
    }
    if (g.size() == 0)
        return bad("\"nodes\" must not be empty");

    *out = std::move(g);
    return true;
}

bool
loadGraphJson(const std::string &path, Graph *out, std::string *err)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, err))
        return false;
    std::string sub;
    if (!graphFromJson(doc, out, &sub)) {
        if (err && err->empty())
            *err = path + ": " + sub;
        return false;
    }
    return true;
}

bool
saveGraphJson(const Graph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << graphToJson(g) << '\n';
    return static_cast<bool>(out);
}

} // namespace cocco
