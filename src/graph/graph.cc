#include "graph/graph.h"

#include "util/logging.h"

namespace cocco {

Graph::Graph(std::string name)
    : name_(std::move(name))
{
}

NodeId
Graph::addNode(const Layer &layer, const std::vector<NodeId> &inputs)
{
    NodeId id = static_cast<NodeId>(layers_.size());
    for (NodeId u : inputs) {
        if (u < 0 || u >= id)
            fatal("node '%s': input id %d out of range [0, %d)",
                  layer.name.c_str(), u, id);
    }
    if (layer.kind == LayerKind::Input && !inputs.empty())
        fatal("input node '%s' cannot have producers", layer.name.c_str());
    if (layer.kind != LayerKind::Input && inputs.empty())
        fatal("non-input node '%s' needs at least one producer",
              layer.name.c_str());
    if (layer.outH < 1 || layer.outW < 1 || layer.outC < 1 ||
        layer.kernel < 1 || layer.stride < 1) {
        fatal("node '%s': non-positive shape/kernel/stride",
              layer.name.c_str());
    }

    layers_.push_back(layer);
    preds_.push_back(inputs);
    succs_.emplace_back();
    num_edges_ += static_cast<int>(inputs.size());

    int in_ch = 0;
    for (NodeId u : inputs) {
        succs_[u].push_back(id);
        in_ch += layers_[u].outC;
    }
    in_channels_.push_back(in_ch);

    int64_t wb = layer.weightBytes(in_ch);
    int64_t mc = layer.macs(in_ch);
    weight_bytes_.push_back(wb);
    macs_.push_back(mc);
    total_weight_bytes_ += wb;
    total_macs_ += mc;

    if (layer.kind == LayerKind::Input)
        input_nodes_.push_back(id);
    return id;
}

std::vector<NodeId>
Graph::outputs() const
{
    std::vector<NodeId> out;
    for (NodeId v = 0; v < size(); ++v)
        if (succs_[v].empty())
            out.push_back(v);
    return out;
}

std::string
Graph::str() const
{
    std::string s = strprintf("%s: %d nodes, %d edges, %.2f MMACs, "
                              "%.2f MB weights\n",
                              name_.c_str(), size(), num_edges_,
                              total_macs_ / 1e6,
                              total_weight_bytes_ / (1024.0 * 1024.0));
    for (NodeId v = 0; v < size(); ++v) {
        const Layer &l = layers_[v];
        s += strprintf("  [%3d] %-24s %-7s %dx%dx%d F=%d s=%d preds={",
                       v, l.name.c_str(), layerKindName(l.kind), l.outH,
                       l.outW, l.outC, l.kernel, l.stride);
        for (size_t i = 0; i < preds_[v].size(); ++i)
            s += (i ? "," : "") + strprintf("%d", preds_[v][i]);
        s += "}\n";
    }
    return s;
}

} // namespace cocco
