/**
 * @file
 * Workload statistics: the graph-level features Cocco's search
 * exploits (depth, width, branching, activation/weight balance).
 * Used by the CLI's describe command and handy when judging which
 * partitioners a topology will favour.
 */

#ifndef COCCO_GRAPH_STATS_H
#define COCCO_GRAPH_STATS_H

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace cocco {

/** Summary statistics of one computation graph. */
struct GraphStats
{
    int nodes = 0;
    int edges = 0;
    int depth = 0;           ///< longest path length (edges)
    int maxWidth = 0;        ///< max nodes sharing one depth level
    int maxFanOut = 0;
    int maxFanIn = 0;
    int branchNodes = 0;     ///< nodes with >1 consumer
    int mergeNodes = 0;      ///< nodes with >1 producer
    int64_t totalActBytes = 0;
    int64_t totalWeightBytes = 0;
    int64_t totalMacs = 0;
    int64_t peakActBytes = 0; ///< largest single tensor

    /** Activations-to-weights byte ratio (inf-safe). */
    double actWeightRatio() const;

    /** Multi-line human-readable report. */
    std::string str() const;
};

/** Compute statistics for @p g. */
GraphStats computeStats(const Graph &g);

} // namespace cocco

#endif // COCCO_GRAPH_STATS_H
