/**
 * @file
 * The machine-readable metrics pipeline: a flat per-run record
 * (search outcome, evaluation/cache accounting, wall time, thread
 * count) serialized to a versioned JSON document. The bench harnesses
 * (--metrics-out) and the CLI emit it; CI uploads it as an artifact
 * so the perf trajectory is tracked from structured data instead of
 * stdout scraping.
 *
 * Schema (version 1):
 * {
 *   "schema_version": 1,
 *   "generator": "<tool name>",
 *   "runs": [
 *     {
 *       "name": "...", "model": "...",
 *       "threads": N, "seed": N, "samples": N,
 *       "best_cost": X, "wall_seconds": X,
 *       "evals_total": N, "evals_computed": N, "evals_cached": N,
 *       "cache": { "enabled": B, "hits": N, "misses": N,
 *                  "insertions": N, "evictions": N, "hit_rate": X,
 *                  "block_hits": N, "block_misses": N,
 *                  "entries": N, "block_entries": N },
 *       "deployment": { "cores": N,
 *                       "crossbar_energy_share": X,
 *                       "crossbar_latency_share": X,
 *                       "core_utilization": [X, ...] },   // optional
 *       "job": { "id": N, "tenant": "...", "state": "...",
 *                "queued_seconds": X, "resumed": B },     // optional
 *       "tenants": { "count": N, "sla_violations": N,
 *                    "mean_latency_ms": X,
 *                    "list": [ { "name": "...", "core": N,
 *                                "arrival_rate_hz": X,
 *                                "sla_latency_ms": X,
 *                                "latency_ms": X, "energy_pj": X,
 *                                "sla_violation": B }, ... ] },
 *                                                         // optional
 *       "portfolio": { "winner": "...",
 *                      "racers": [ { "algo": "...", "samples": N,
 *                                    "best_cost": X,
 *                                    "improvements": N,
 *                                    "wall_seconds": X, "threads": N,
 *                                    "regrants": N, "culled": B,
 *                                    "winner": B, "stop": "..." },
 *                                  ... ] },                // optional
 *       "pareto": { "frontier_size": N, "hypervolume": X,
 *                   "frontier": [ { "buffer_bytes": N,
 *                                   "energy_pj": X,
 *                                   "latency_cycles": X,
 *                                   "metric": X, "sample": N },
 *                                 ... ] },                 // optional
 *       "extra": { "<key>": X, ... }
 *     }, ...
 *   ]
 * }
 *
 * The "deployment" object appears when the producing run evaluated a
 * CoccoResult (the CLI search modes and the deployment-aware bench
 * harnesses) so the multi-core trajectory — per-core utilization and
 * the crossbar's energy/latency share — is machine-checkable.
 *
 * The "job" object appears when the run went through the exploration
 * service (`cocco serve` / `cocco batch`): job id, tenant label,
 * terminal state ("done"/"cancelled"/"failed"), queue latency, and
 * whether the run was resumed from a checkpoint. Solo `cocco run`
 * documents omit it, keeping their exact prior shape.
 *
 * The "tenants" object appears when the run co-scheduled a
 * WorkloadSet (`cocco coschedule`, a `workload_set` run spec through
 * any frontend): per-tenant effective latency/energy and SLA verdict,
 * plus the schedule-level violation count.
 *
 * The "portfolio" object appears when the run raced several searchers
 * (algo "portfolio"): the winning racer plus each racer's evaluation
 * count, improvement count, final cost, thread grant, regrant count,
 * cull verdict, and stop reason.
 *
 * The "pareto" object appears when the run asked for the frontier
 * ("mode": "pareto"): the non-dominated {buffer, energy, latency}
 * points collected over the whole run plus the normalized
 * hypervolume.
 */

#ifndef COCCO_CORE_METRICS_H
#define COCCO_CORE_METRICS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "search/eval_cache.h"
#include "sim/cost_model.h"

namespace cocco {

/** One run's worth of metrics (one element of the "runs" array). */
struct RunMetrics
{
    std::string name;   ///< run label ("ga-cold", "coexplore", ...)
    std::string model;  ///< workload model name
    int threads = 1;
    uint64_t seed = 0;
    int64_t samples = 0;
    double bestCost = 0.0;
    double wallSeconds = 0.0;

    bool cacheEnabled = false;
    EvalCacheStats cache; ///< per-run counter deltas

    /** Per-core / crossbar accounting of the run's recommendation;
     *  emitted only when set (so documents from non-search producers
     *  keep their exact shape). */
    bool hasDeployment = false;
    DeploymentBreakdown deployment;

    /** Serving context (`cocco serve` / `cocco batch`); emitted only
     *  when set, so solo-run documents keep their exact shape. */
    bool hasJob = false;
    int64_t jobId = 0;
    std::string tenant;
    std::string jobState;      ///< terminal JobState name
    double queuedSeconds = 0.0;
    bool resumed = false;      ///< run was resumed from a checkpoint

    /** Per-tenant serving metrics of a co-scheduled run; emitted only
     *  when set (schedule/co_scheduler.h produces the numbers). */
    struct TenantMetrics
    {
        std::string name;
        int core = 0;
        double arrivalRateHz = 0.0;
        double slaLatencyMs = 0.0;
        double latencyMs = 0.0;
        double energyPj = 0.0;
        bool slaViolation = false;
    };
    bool hasTenants = false;
    int slaViolations = 0;
    double meanLatencyMs = 0.0;
    std::vector<TenantMetrics> tenants;

    /** Per-racer breakdown of a portfolio race; emitted only when
     *  set. Self-contained mirror of search/ga.h RacerStats so the
     *  metrics layer stays decoupled from the search headers. */
    struct RacerMetrics
    {
        std::string algo;
        int64_t samples = 0;
        double bestCost = 0.0;
        int64_t improvements = 0;
        double wallSeconds = 0.0;
        int threads = 1;
        int regrants = 0;
        bool culled = false;
        bool winner = false;
        std::string stop; ///< stopReasonName of the racer's end
    };
    bool hasPortfolio = false;
    std::string portfolioWinner;
    std::vector<RacerMetrics> racers;

    /** The non-dominated frontier of a pareto-mode run; emitted only
     *  when set. */
    struct FrontierPoint
    {
        int64_t bufferBytes = 0;
        double energyPj = 0.0;
        double latencyCycles = 0.0;
        double metric = 0.0;
        int64_t sample = 0;
    };
    bool hasPareto = false;
    double hypervolume = 0.0;
    std::vector<FrontierPoint> frontier;

    /** Free-form numeric side channel ("speedup", "budget", ...). */
    std::vector<std::pair<std::string, double>> extra;

    /** Evaluations answered, computed and served from cache. */
    int64_t evalsTotal() const;
    int64_t evalsComputed() const;
    int64_t evalsCached() const;
};

/** Serialize a metrics document (schema above). */
std::string metricsToJson(const std::string &generator,
                          const std::vector<RunMetrics> &runs);

/** Write a metrics document to @p path. @return false on I/O error. */
bool writeMetricsFile(const std::string &path, const std::string &generator,
                      const std::vector<RunMetrics> &runs);

} // namespace cocco

#endif // COCCO_CORE_METRICS_H
