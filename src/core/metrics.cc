#include "core/metrics.h"

#include <cstdio>

#include "util/json.h"

namespace cocco {

int64_t
RunMetrics::evalsTotal() const
{
    if (!cacheEnabled)
        return samples;
    return static_cast<int64_t>(cache.hits + cache.misses);
}

int64_t
RunMetrics::evalsComputed() const
{
    return evalsTotal() - evalsCached();
}

int64_t
RunMetrics::evalsCached() const
{
    return cacheEnabled ? static_cast<int64_t>(cache.hits) : 0;
}

std::string
metricsToJson(const std::string &generator,
              const std::vector<RunMetrics> &runs)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", 1);
    w.field("generator", generator);
    w.key("runs").beginArray();
    for (const RunMetrics &r : runs) {
        w.beginObject();
        w.field("name", r.name);
        w.field("model", r.model);
        w.field("threads", r.threads);
        w.field("seed", r.seed);
        w.field("samples", r.samples);
        w.field("best_cost", r.bestCost);
        w.field("wall_seconds", r.wallSeconds);
        w.field("evals_total", r.evalsTotal());
        w.field("evals_computed", r.evalsComputed());
        w.field("evals_cached", r.evalsCached());
        w.key("cache").beginObject();
        w.field("enabled", r.cacheEnabled);
        w.field("hits", r.cache.hits);
        w.field("misses", r.cache.misses);
        w.field("insertions", r.cache.insertions);
        w.field("evictions", r.cache.evictions);
        w.field("hit_rate", r.cache.hitRate());
        w.field("block_hits", r.cache.blockHits);
        w.field("block_misses", r.cache.blockMisses);
        w.field("entries", r.cache.entries);
        w.field("block_entries", r.cache.blockEntries);
        w.field("bound_rejections", r.cache.boundRejections);
        w.field("bound_skipped_samples", r.cache.boundSkippedSamples);
        w.field("inc_blocks_reused", r.cache.incReusedBlocks);
        w.field("inc_blocks_recosted", r.cache.incRecostBlocks);
        w.endObject();
        if (r.hasDeployment) {
            w.key("deployment").beginObject();
            w.field("cores", r.deployment.cores);
            w.field("crossbar_energy_pj", r.deployment.crossbarEnergyPj);
            w.field("crossbar_cycles", r.deployment.crossbarCycles);
            w.field("crossbar_energy_share",
                    r.deployment.crossbarEnergyShare);
            w.field("crossbar_latency_share",
                    r.deployment.crossbarLatencyShare);
            w.key("core_utilization").beginArray();
            for (double u : r.deployment.coreUtilization)
                w.value(u);
            w.endArray();
            w.endObject();
        }
        if (r.hasJob) {
            w.key("job").beginObject();
            w.field("id", r.jobId);
            w.field("tenant", r.tenant);
            w.field("state", r.jobState);
            w.field("queued_seconds", r.queuedSeconds);
            w.field("resumed", r.resumed);
            w.endObject();
        }
        if (r.hasTenants) {
            w.key("tenants").beginObject();
            w.field("count", static_cast<int64_t>(r.tenants.size()));
            w.field("sla_violations", r.slaViolations);
            w.field("mean_latency_ms", r.meanLatencyMs);
            w.key("list").beginArray();
            for (const RunMetrics::TenantMetrics &t : r.tenants) {
                w.beginObject();
                w.field("name", t.name);
                w.field("core", t.core);
                w.field("arrival_rate_hz", t.arrivalRateHz);
                w.field("sla_latency_ms", t.slaLatencyMs);
                w.field("latency_ms", t.latencyMs);
                w.field("energy_pj", t.energyPj);
                w.field("sla_violation", t.slaViolation);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        if (r.hasPortfolio) {
            w.key("portfolio").beginObject();
            w.field("winner", r.portfolioWinner);
            w.key("racers").beginArray();
            for (const RunMetrics::RacerMetrics &rc : r.racers) {
                w.beginObject();
                w.field("algo", rc.algo);
                w.field("samples", rc.samples);
                w.field("best_cost", rc.bestCost);
                w.field("improvements", rc.improvements);
                w.field("wall_seconds", rc.wallSeconds);
                w.field("threads", rc.threads);
                w.field("regrants", rc.regrants);
                w.field("culled", rc.culled);
                w.field("winner", rc.winner);
                w.field("stop", rc.stop);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        if (r.hasPareto) {
            w.key("pareto").beginObject();
            w.field("frontier_size",
                    static_cast<int64_t>(r.frontier.size()));
            w.field("hypervolume", r.hypervolume);
            w.key("frontier").beginArray();
            for (const RunMetrics::FrontierPoint &p : r.frontier) {
                w.beginObject();
                w.field("buffer_bytes", p.bufferBytes);
                w.field("energy_pj", p.energyPj);
                w.field("latency_cycles", p.latencyCycles);
                w.field("metric", p.metric);
                w.field("sample", p.sample);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.key("extra").beginObject();
        for (const auto &[key, value] : r.extra)
            w.field(key, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
writeMetricsFile(const std::string &path, const std::string &generator,
                 const std::vector<RunMetrics> &runs)
{
    std::string doc = metricsToJson(generator, runs);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    ok = std::fputc('\n', f) != EOF && ok;
    return std::fclose(f) == 0 && ok;
}

} // namespace cocco
