#include "core/serialize.h"

#include "util/json.h"

namespace cocco {

std::string
partitionToJson(const Graph &g, const Partition &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("subgraphs").beginArray();
    for (const auto &blk : p.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
schemeToJson(const Graph &g, const ExecutionScheme &s)
{
    JsonWriter w;
    w.beginObject();
    w.field("out_tile", s.outTile);
    w.field("act_footprint_bytes", s.actFootprintBytes);
    w.field("regions", s.numRegions);
    w.field("upd_consistent", s.updConsistent);
    w.key("nodes").beginArray();
    for (const NodeScheme &ns : s.nodes) {
        w.beginObject();
        w.field("name", g.layer(ns.node).name);
        w.field("external", ns.external);
        w.field("output", ns.is_output);
        w.field("delta_h", ns.deltaH);
        w.field("delta_w", ns.deltaW);
        w.field("x_h", ns.xH);
        w.field("x_w", ns.xW);
        w.field("upd_num", ns.updNum);
        w.field("main_bytes", ns.mainBytes);
        w.field("side_bytes", ns.sideBytes);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
resultToJson(const Graph &g, const CoccoResult &r)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("buffer").beginObject();
    w.field("style", r.buffer.style == BufferStyle::Shared ? "shared"
                                                           : "separate");
    w.field("act_bytes", r.buffer.actBytes);
    w.field("weight_bytes", r.buffer.weightBytes);
    w.field("shared_bytes", r.buffer.sharedBytes);
    w.field("total_bytes", r.buffer.totalBytes());
    w.endObject();
    w.key("cost").beginObject();
    w.field("feasible", r.cost.feasible);
    w.field("subgraphs", r.cost.subgraphs);
    w.field("ema_bytes", r.cost.emaBytes);
    w.field("energy_pj", r.cost.energyPj);
    w.field("latency_cycles", r.cost.latencyCycles);
    w.field("avg_bw_gbps", r.cost.avgBwGBps);
    w.endObject();
    w.field("objective", r.objective);
    w.field("samples", r.samples);
    w.key("subgraphs").beginArray();
    for (const auto &blk : r.partition.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace cocco
