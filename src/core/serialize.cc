#include "core/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "graph/graph_json.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

std::string
partitionToJson(const Graph &g, const Partition &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("subgraphs").beginArray();
    for (const auto &blk : p.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
schemeToJson(const Graph &g, const ExecutionScheme &s)
{
    JsonWriter w;
    w.beginObject();
    w.field("out_tile", s.outTile);
    w.field("act_footprint_bytes", s.actFootprintBytes);
    w.field("regions", s.numRegions);
    w.field("upd_consistent", s.updConsistent);
    w.key("nodes").beginArray();
    for (const NodeScheme &ns : s.nodes) {
        w.beginObject();
        w.field("name", g.layer(ns.node).name);
        w.field("external", ns.external);
        w.field("output", ns.is_output);
        w.field("delta_h", ns.deltaH);
        w.field("delta_w", ns.deltaW);
        w.field("x_h", ns.xH);
        w.field("x_w", ns.xW);
        w.field("upd_num", ns.updNum);
        w.field("main_bytes", ns.mainBytes);
        w.field("side_bytes", ns.sideBytes);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
resultToJson(const Graph &g, const CoccoResult &r)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("buffer").beginObject();
    w.field("style", r.buffer.style == BufferStyle::Shared ? "shared"
                                                           : "separate");
    w.field("act_bytes", r.buffer.actBytes);
    w.field("weight_bytes", r.buffer.weightBytes);
    w.field("shared_bytes", r.buffer.sharedBytes);
    w.field("total_bytes", r.buffer.totalBytes());
    w.endObject();
    w.key("cost").beginObject();
    w.field("feasible", r.cost.feasible);
    w.field("subgraphs", r.cost.subgraphs);
    w.field("ema_bytes", r.cost.emaBytes);
    w.field("energy_pj", r.cost.energyPj);
    w.field("latency_cycles", r.cost.latencyCycles);
    w.field("avg_bw_gbps", r.cost.avgBwGBps);
    w.endObject();
    w.field("objective", r.objective);
    w.field("samples", r.samples);
    w.key("deployment").beginObject();
    w.field("cores", r.deployment.cores);
    w.field("crossbar_energy_pj", r.deployment.crossbarEnergyPj);
    w.field("crossbar_cycles", r.deployment.crossbarCycles);
    w.field("crossbar_energy_share", r.deployment.crossbarEnergyShare);
    w.field("crossbar_latency_share", r.deployment.crossbarLatencyShare);
    w.key("core_utilization").beginArray();
    for (double u : r.deployment.coreUtilization)
        w.value(u);
    w.endArray();
    w.endObject();
    w.key("subgraphs").beginArray();
    for (const auto &blk : r.partition.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

namespace {

constexpr const char *kCacheMagic = "COCCO-EVALCACHE";
constexpr int kCacheVersion = 1;

/** Guard against absurd vector lengths from corrupt files. */
constexpr int kMaxPersistedNodes = 1 << 22;

} // namespace

bool
saveEvalCache(const EvalCache &cache, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "%s %d\n", kCacheMagic, kCacheVersion);
    bool ok = true;
    cache.forEachEntry([&](const EvalCache::Entry &e) {
        if (!ok || e.keyBlock.size() != e.repairedBlock.size())
            return;
        // E hash salt act wgt shr numBlocks cost n key... repaired...
        std::fprintf(f, "E %" PRIx64 " %" PRIx64 " %d %d %d %d %a %zu",
                     e.hash, e.salt, e.actIdx, e.weightIdx, e.sharedIdx,
                     e.numBlocks, e.cost, e.keyBlock.size());
        for (int b : e.keyBlock)
            std::fprintf(f, " %d", b);
        for (int b : e.repairedBlock)
            std::fprintf(f, " %d", b);
        if (std::fputc('\n', f) == EOF)
            ok = false;
    });
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

int
loadEvalCache(EvalCache &cache, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1;
    char magic[32] = {0};
    int version = 0;
    if (std::fscanf(f, "%31s %d", magic, &version) != 2 ||
        std::string(magic) != kCacheMagic || version != kCacheVersion) {
        std::fclose(f);
        return -1;
    }
    int loaded = 0;
    char tag[4];
    while (std::fscanf(f, "%3s", tag) == 1 && tag[0] == 'E' && !tag[1]) {
        EvalCache::Entry e;
        size_t n = 0;
        if (std::fscanf(f, "%" SCNx64 " %" SCNx64 " %d %d %d %d %la %zu",
                        &e.hash, &e.salt, &e.actIdx, &e.weightIdx,
                        &e.sharedIdx, &e.numBlocks, &e.cost, &n) != 8 ||
            n > static_cast<size_t>(kMaxPersistedNodes))
            break;
        e.keyBlock.resize(n);
        e.repairedBlock.resize(n);
        bool ok = true;
        for (size_t i = 0; ok && i < n; ++i)
            ok = std::fscanf(f, "%d", &e.keyBlock[i]) == 1;
        for (size_t i = 0; ok && i < n; ++i)
            ok = std::fscanf(f, "%d", &e.repairedBlock[i]) == 1;
        if (!ok)
            break;
        cache.insertEntry(std::move(e));
        ++loaded;
    }
    std::fclose(f);
    return loaded;
}

// --- Search checkpoints --------------------------------------------------

namespace {

constexpr const char *kCheckpointMagic = "COCCO-CHECKPOINT";

/** Sanity ceiling for persisted trace/points/population lengths. */
constexpr int64_t kMaxPersistedSamples = 1LL << 26;

void
writeGenome(std::FILE *f, const Genome &g)
{
    std::fprintf(f, "%d %d %d %d %zu", g.actIdx, g.weightIdx, g.sharedIdx,
                 g.part.numBlocks, g.part.block.size());
    for (int b : g.part.block)
        std::fprintf(f, " %d", b);
}

bool
readGenome(std::FILE *f, Genome *g)
{
    size_t n = 0;
    if (std::fscanf(f, "%d %d %d %d %zu", &g->actIdx, &g->weightIdx,
                    &g->sharedIdx, &g->part.numBlocks, &n) != 5 ||
        n > static_cast<size_t>(kMaxPersistedNodes))
        return false;
    g->part.block.resize(n);
    for (size_t i = 0; i < n; ++i)
        if (std::fscanf(f, "%d", &g->part.block[i]) != 1)
            return false;
    return true;
}

bool
readTag(std::FILE *f, const char *want)
{
    char tag[4] = {0};
    return std::fscanf(f, "%3s", tag) == 1 &&
           std::string(tag) == std::string(want);
}

/** Serialize one driver's state (the A..W sections). Shared between
 *  the top-level snapshot and the portfolio's nested racer
 *  snapshots, which use the identical encoding (nesting is one level
 *  deep: racer bodies never carry a Q section of their own). */
void
writeCheckpointBody(std::FILE *f, const SearchCheckpoint &c)
{
    std::fprintf(f, "A %s %" PRIx64 " %" PRIx64 "\n", c.algo.c_str(),
                 c.fence, c.seed);
    std::fprintf(f, "S %lld %a %lld %" PRIx64 "\n",
                 static_cast<long long>(c.samples), c.bestCost,
                 static_cast<long long>(c.sinceImprove), c.streamCounter);
    std::fprintf(f, "R %" PRIx64 " %" PRIx64 " %" PRIx64 " %" PRIx64 "\n",
                 c.rng[0], c.rng[1], c.rng[2], c.rng[3]);
    std::fprintf(f, "B ");
    writeGenome(f, c.best);
    std::fputc('\n', f);
    std::fprintf(f, "T %zu\n", c.trace.size());
    for (const TracePoint &tp : c.trace)
        std::fprintf(f, "t %lld %a\n", static_cast<long long>(tp.sample),
                     tp.bestCost);
    std::fprintf(f, "P %zu\n", c.points.size());
    for (const SamplePoint &sp : c.points)
        std::fprintf(f, "p %lld %a %lld\n",
                     static_cast<long long>(sp.sample), sp.metric,
                     static_cast<long long>(sp.bufferBytes));
    size_t npop = std::min(c.population.size(), c.popCosts.size());
    std::fprintf(f, "G %zu\n", npop);
    for (size_t i = 0; i < npop; ++i) {
        std::fprintf(f, "g %a ", c.popCosts[i]);
        writeGenome(f, c.population[i]);
        std::fputc('\n', f);
    }
    if (c.hasSa) {
        std::fprintf(f, "V 1 %a %a ", c.saCurCost, c.saT0);
        writeGenome(f, c.saCur);
        std::fputc('\n', f);
    } else {
        std::fprintf(f, "V 0\n");
    }
    if (c.hasTs) {
        std::fprintf(f,
                     "W 1 %lld %" PRIx64 " %" PRIu64 " %" PRIu64
                     " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                     " %" PRIu64 " %" PRIu64 " %d %lld %lld %lld\n",
                     static_cast<long long>(c.tsCandidate), c.tsSubSeed,
                     c.tsBoundRejections, c.tsBoundSkippedSamples,
                     c.tsIncReused, c.tsIncRecost, c.tsDelta.reports,
                     c.tsDelta.nodesTouched, c.tsDelta.hwOnly,
                     c.tsDelta.rewrites,
                     static_cast<int>(c.tsBestBuffer.style),
                     static_cast<long long>(c.tsBestBuffer.actBytes),
                     static_cast<long long>(c.tsBestBuffer.weightBytes),
                     static_cast<long long>(c.tsBestBuffer.sharedBytes));
    } else {
        std::fprintf(f, "W 0\n");
    }
}

/** Parse one driver's state (the A..W sections) into @p out. Returns
 *  nullptr on success, else a static failure reason. */
const char *
readCheckpointBody(std::FILE *f, SearchCheckpoint *out)
{
    SearchCheckpoint &c = *out;
    char algo[32] = {0};
    long long samples = 0, since = 0;
    if (!readTag(f, "A") ||
        std::fscanf(f, "%31s %" SCNx64 " %" SCNx64, algo, &c.fence,
                    &c.seed) != 3)
        return "corrupt header";
    c.algo = algo;
    if (!readTag(f, "S") ||
        std::fscanf(f, "%lld %la %lld %" SCNx64, &samples, &c.bestCost,
                    &since, &c.streamCounter) != 4 ||
        samples < 0 || samples > kMaxPersistedSamples)
        return "corrupt run state";
    c.samples = samples;
    c.sinceImprove = since;
    if (!readTag(f, "R") ||
        std::fscanf(f, "%" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64,
                    &c.rng[0], &c.rng[1], &c.rng[2], &c.rng[3]) != 4)
        return "corrupt RNG state";
    if (!readTag(f, "B") || !readGenome(f, &c.best))
        return "corrupt incumbent genome";

    size_t count = 0;
    if (!readTag(f, "T") || std::fscanf(f, "%zu", &count) != 1 ||
        count > static_cast<size_t>(kMaxPersistedSamples))
        return "corrupt trace header";
    c.trace.resize(count);
    for (TracePoint &tp : c.trace) {
        if (!readTag(f, "t") ||
            std::fscanf(f, "%lld %la", &samples, &tp.bestCost) != 2)
            return "corrupt trace entry";
        tp.sample = samples;
    }
    if (!readTag(f, "P") || std::fscanf(f, "%zu", &count) != 1 ||
        count > static_cast<size_t>(kMaxPersistedSamples))
        return "corrupt points header";
    c.points.resize(count);
    for (SamplePoint &sp : c.points) {
        long long bytes = 0;
        if (!readTag(f, "p") ||
            std::fscanf(f, "%lld %la %lld", &samples, &sp.metric,
                        &bytes) != 3)
            return "corrupt points entry";
        sp.sample = samples;
        sp.bufferBytes = bytes;
    }
    if (!readTag(f, "G") || std::fscanf(f, "%zu", &count) != 1 ||
        count > static_cast<size_t>(1 << 20))
        return "corrupt population header";
    c.population.resize(count);
    c.popCosts.resize(count);
    for (size_t i = 0; i < count; ++i) {
        if (!readTag(f, "g") ||
            std::fscanf(f, "%la", &c.popCosts[i]) != 1 ||
            !readGenome(f, &c.population[i]))
            return "corrupt population entry";
    }

    int flag = 0;
    if (!readTag(f, "V") || std::fscanf(f, "%d", &flag) != 1)
        return "corrupt SA section";
    if (flag) {
        c.hasSa = true;
        if (std::fscanf(f, "%la %la", &c.saCurCost, &c.saT0) != 2 ||
            !readGenome(f, &c.saCur))
            return "corrupt SA section";
    }
    if (!readTag(f, "W") || std::fscanf(f, "%d", &flag) != 1)
        return "corrupt two-step section";
    if (flag) {
        c.hasTs = true;
        long long cand = 0, act = 0, wgt = 0, shr = 0;
        int style = 0;
        if (std::fscanf(f,
                        "%lld %" SCNx64 " %" SCNu64 " %" SCNu64
                        " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                        " %" SCNu64 " %" SCNu64 " %d %lld %lld %lld",
                        &cand, &c.tsSubSeed, &c.tsBoundRejections,
                        &c.tsBoundSkippedSamples, &c.tsIncReused,
                        &c.tsIncRecost, &c.tsDelta.reports,
                        &c.tsDelta.nodesTouched, &c.tsDelta.hwOnly,
                        &c.tsDelta.rewrites, &style, &act, &wgt,
                        &shr) != 14 ||
            cand < 0 || (style != 0 && style != 1))
            return "corrupt two-step section";
        c.tsCandidate = cand;
        c.tsBestBuffer.style = static_cast<BufferStyle>(style);
        c.tsBestBuffer.actBytes = act;
        c.tsBestBuffer.weightBytes = wgt;
        c.tsBestBuffer.sharedBytes = shr;
    }
    return nullptr;
}

/** Racer-count ceiling in a persisted portfolio checkpoint. The
 *  registry holds a handful of algorithms; anything beyond this is a
 *  corrupt or hostile file, not a real race. */
constexpr size_t kMaxPersistedRacers = 64;

} // namespace

bool
saveCheckpoint(const SearchCheckpoint &c, const std::string &path)
{
    // Write-then-rename: a crash mid-write must never replace the
    // previous good checkpoint with a truncated one.
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "%s %d\n", kCheckpointMagic,
                 SearchCheckpoint::kVersion);
    writeCheckpointBody(f, c);
    // Portfolio section: racer state + one nested body per racer (one
    // nesting level only — racer snapshots never carry a Q of their
    // own, matching the struct contract).
    size_t nracers =
        c.hasPortfolio ? std::min(c.racers.size(), c.racerState.size())
                       : 0;
    std::fprintf(f, "Q %zu\n", nracers);
    for (size_t i = 0; i < nracers; ++i) {
        std::fprintf(f, "q %d\n", c.racerState[i]);
        writeCheckpointBody(f, c.racers[i]);
    }
    std::fprintf(f, "END\n");
    bool ok = std::fclose(f) == 0;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

bool
loadCheckpoint(const std::string &path, SearchCheckpoint *out,
               std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    auto fail = [&](const char *what) {
        if (err)
            *err = path + ": " + what;
        if (f)
            std::fclose(f);
        return false;
    };
    if (!f)
        return fail("cannot open checkpoint file");
    char magic[32] = {0};
    int version = 0;
    if (std::fscanf(f, "%31s %d", magic, &version) != 2 ||
        std::string(magic) != kCheckpointMagic)
        return fail("not a cocco checkpoint file");
    if (version != SearchCheckpoint::kVersion)
        return fail("unsupported checkpoint format version");

    SearchCheckpoint c;
    if (const char *why = readCheckpointBody(f, &c))
        return fail(why);
    size_t nracers = 0;
    if (!readTag(f, "Q") || std::fscanf(f, "%zu", &nracers) != 1 ||
        nracers > kMaxPersistedRacers)
        return fail("corrupt portfolio header");
    if (nracers > 0) {
        c.hasPortfolio = true;
        c.racers.resize(nracers);
        c.racerState.resize(nracers);
        for (size_t i = 0; i < nracers; ++i) {
            int state = 0;
            if (!readTag(f, "q") || std::fscanf(f, "%d", &state) != 1 ||
                state < SearchCheckpoint::kRacerActive ||
                state > SearchCheckpoint::kRacerFinished)
                return fail("corrupt racer state");
            c.racerState[i] = state;
            if (const char *why = readCheckpointBody(f, &c.racers[i]))
                return fail(why);
        }
    }
    if (!readTag(f, "END"))
        return fail("truncated checkpoint file");
    std::fclose(f);
    *out = std::move(c);
    return true;
}

// --- Workload & platform resolution -------------------------------------

bool
resolveWorkload(const WorkloadSpec &spec, Graph *out, std::string *err)
{
    if (!spec.model.empty() && !spec.file.empty())
        return jsonFail(err, "workload: give a model name or a graph "
                                "file, not both");
    if (!spec.file.empty()) {
        // A file fixes the graph's shape; accepting shape params here
        // would silently run a different experiment than requested.
        const ModelParams def;
        const ModelParams &p = spec.params;
        if (p.resolution != def.resolution || p.seqLen != def.seqLen ||
            p.depth != def.depth || p.widthMult != def.widthMult ||
            p.seed != def.seed)
            return jsonFail(err,
                            "workload: model-shaping params (resolution, "
                            "seqLen, depth, widthMult, seed) do not apply "
                            "to a \"file\" workload — only \"batch\" "
                            "does");
        return loadGraphJson(spec.file, out, err);
    }
    if (spec.model.empty())
        return jsonFail(err, "workload: a model name or a graph file "
                                "is required");
    if (!ModelRegistry::instance().contains(spec.model))
        return jsonFail(
            err, strprintf("unknown model \"%s\" (known: %s)",
                           spec.model.c_str(),
                           joinComma(allModelNames()).c_str()));
    *out = buildModel(spec.model, spec.params);
    return true;
}

bool
resolvePlatform(const PlatformSpec &spec, AcceleratorConfig *out,
                std::string *err)
{
    int sources = (!spec.preset.empty() ? 1 : 0) +
                  (!spec.file.empty() ? 1 : 0) +
                  (spec.inlineConfig ? 1 : 0);
    if (sources > 1)
        return jsonFail(err, "platform: give a preset, a file, or an "
                                "inline configuration, not several");
    if (!spec.file.empty())
        return loadPlatformJson(spec.file, out, err);
    if (spec.inlineConfig) {
        *out = spec.config;
        return true;
    }
    std::string name = spec.preset.empty() ? "simba" : spec.preset;
    if (!PlatformRegistry::instance().find(name, out))
        return jsonFail(
            err, strprintf(
                     "unknown platform \"%s\" (known: %s)", name.c_str(),
                     joinComma(PlatformRegistry::instance().keys())
                         .c_str()));
    return true;
}

bool
resolveDeployment(const DeploymentSpec &spec, const AcceleratorConfig &base,
                  DeploymentConfig *out, std::string *err)
{
    if (!spec.enabled) {
        *out = homogeneousDeployment(base, 1);
        return true;
    }
    int sources = (!spec.preset.empty() ? 1 : 0) +
                  (!spec.file.empty() ? 1 : 0) + (spec.inlineDesc ? 1 : 0);
    if (sources > 1)
        return jsonFail(err, "deployment: give a preset, a file, or an "
                             "inline description, not several");

    DeploymentDesc desc;
    if (!spec.preset.empty()) {
        if (!DeploymentRegistry::instance().find(spec.preset, &desc))
            return jsonFail(
                err,
                strprintf("unknown deployment \"%s\" (known: %s)",
                          spec.preset.c_str(),
                          joinComma(DeploymentRegistry::instance().keys())
                              .c_str()));
    } else if (!spec.file.empty()) {
        if (!loadDeploymentJson(spec.file, &desc, err))
            return false;
    } else {
        desc = spec.desc; // inline (or the defaults: one core)
    }

    if (desc.cores < 1)
        return jsonFail(err, "deployment: cores must be >= 1");
    if (!desc.corePlatforms.empty() &&
        static_cast<int>(desc.corePlatforms.size()) != desc.cores)
        return jsonFail(
            err, strprintf("deployment: corePlatforms has %zu entries "
                           "for %d cores",
                           desc.corePlatforms.size(), desc.cores));

    DeploymentConfig dep;
    dep.coreConfigs.reserve(static_cast<size_t>(desc.cores));
    for (int i = 0; i < desc.cores; ++i) {
        AcceleratorConfig core;
        if (desc.corePlatforms.empty()) {
            core = base;
        } else {
            std::string sub;
            if (!resolvePlatform(desc.corePlatforms[i], &core, &sub))
                return jsonFail(err,
                                strprintf("deployment: core %d: %s", i,
                                          sub.c_str()));
        }
        // The deployment owns the scale-out: a core that is itself
        // multi-core would nest two crossbars the model cannot see.
        if (core.cores != 1)
            return jsonFail(
                err, strprintf("deployment: core %d's platform is "
                               "already multi-core (cores = %d); "
                               "deployments are built from single-core "
                               "platforms",
                               i, core.cores));
        dep.coreConfigs.push_back(core);
    }
    for (size_t i = 1; i < dep.coreConfigs.size(); ++i)
        if (dep.coreConfigs[i].batch != dep.coreConfigs[0].batch)
            return jsonFail(
                err, strprintf("deployment: core %zu's batch (%d) "
                               "disagrees with core 0's (%d); a batch "
                               "is a property of the run",
                               i, dep.coreConfigs[i].batch,
                               dep.coreConfigs[0].batch));
    // Unset interconnect knobs inherit core 0's built-in crossbar
    // parameters (including a platform file's customized values).
    dep.interconnect =
        resolveInterconnect(desc.interconnect, dep.coreConfigs[0]);
    *out = dep;
    return true;
}

bool
saveDeploymentJson(const DeploymentDesc &desc, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << deploymentToJson(desc) << '\n';
    return static_cast<bool>(out);
}

bool
loadDeploymentJson(const std::string &path, DeploymentDesc *out,
                   std::string *err)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, err))
        return false;
    std::string sub;
    if (!deploymentFromJson(doc, out, &sub))
        return jsonFail(err, path + ": " + sub);
    return true;
}

bool
savePlatformJson(const AcceleratorConfig &accel, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << acceleratorToJson(accel) << '\n';
    return static_cast<bool>(out);
}

bool
loadPlatformJson(const std::string &path, AcceleratorConfig *out,
                 std::string *err)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, err))
        return false;
    std::string sub;
    if (!acceleratorFromJson(doc, out, &sub))
        return jsonFail(err, path + ": " + sub);
    return true;
}

} // namespace cocco
