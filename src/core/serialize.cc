#include "core/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "graph/graph_json.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

std::string
partitionToJson(const Graph &g, const Partition &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("subgraphs").beginArray();
    for (const auto &blk : p.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
schemeToJson(const Graph &g, const ExecutionScheme &s)
{
    JsonWriter w;
    w.beginObject();
    w.field("out_tile", s.outTile);
    w.field("act_footprint_bytes", s.actFootprintBytes);
    w.field("regions", s.numRegions);
    w.field("upd_consistent", s.updConsistent);
    w.key("nodes").beginArray();
    for (const NodeScheme &ns : s.nodes) {
        w.beginObject();
        w.field("name", g.layer(ns.node).name);
        w.field("external", ns.external);
        w.field("output", ns.is_output);
        w.field("delta_h", ns.deltaH);
        w.field("delta_w", ns.deltaW);
        w.field("x_h", ns.xH);
        w.field("x_w", ns.xW);
        w.field("upd_num", ns.updNum);
        w.field("main_bytes", ns.mainBytes);
        w.field("side_bytes", ns.sideBytes);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
resultToJson(const Graph &g, const CoccoResult &r)
{
    JsonWriter w;
    w.beginObject();
    w.field("model", g.name());
    w.key("buffer").beginObject();
    w.field("style", r.buffer.style == BufferStyle::Shared ? "shared"
                                                           : "separate");
    w.field("act_bytes", r.buffer.actBytes);
    w.field("weight_bytes", r.buffer.weightBytes);
    w.field("shared_bytes", r.buffer.sharedBytes);
    w.field("total_bytes", r.buffer.totalBytes());
    w.endObject();
    w.key("cost").beginObject();
    w.field("feasible", r.cost.feasible);
    w.field("subgraphs", r.cost.subgraphs);
    w.field("ema_bytes", r.cost.emaBytes);
    w.field("energy_pj", r.cost.energyPj);
    w.field("latency_cycles", r.cost.latencyCycles);
    w.field("avg_bw_gbps", r.cost.avgBwGBps);
    w.endObject();
    w.field("objective", r.objective);
    w.field("samples", r.samples);
    w.key("deployment").beginObject();
    w.field("cores", r.deployment.cores);
    w.field("crossbar_energy_pj", r.deployment.crossbarEnergyPj);
    w.field("crossbar_cycles", r.deployment.crossbarCycles);
    w.field("crossbar_energy_share", r.deployment.crossbarEnergyShare);
    w.field("crossbar_latency_share", r.deployment.crossbarLatencyShare);
    w.key("core_utilization").beginArray();
    for (double u : r.deployment.coreUtilization)
        w.value(u);
    w.endArray();
    w.endObject();
    w.key("subgraphs").beginArray();
    for (const auto &blk : r.partition.blocks()) {
        w.beginArray();
        for (NodeId v : blk)
            w.value(g.layer(v).name);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

namespace {

constexpr const char *kCacheMagic = "COCCO-EVALCACHE";
constexpr int kCacheVersion = 1;

/** Guard against absurd vector lengths from corrupt files. */
constexpr int kMaxPersistedNodes = 1 << 22;

} // namespace

bool
saveEvalCache(const EvalCache &cache, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "%s %d\n", kCacheMagic, kCacheVersion);
    bool ok = true;
    cache.forEachEntry([&](const EvalCache::Entry &e) {
        if (!ok || e.keyBlock.size() != e.repairedBlock.size())
            return;
        // E hash salt act wgt shr numBlocks cost n key... repaired...
        std::fprintf(f, "E %" PRIx64 " %" PRIx64 " %d %d %d %d %a %zu",
                     e.hash, e.salt, e.actIdx, e.weightIdx, e.sharedIdx,
                     e.numBlocks, e.cost, e.keyBlock.size());
        for (int b : e.keyBlock)
            std::fprintf(f, " %d", b);
        for (int b : e.repairedBlock)
            std::fprintf(f, " %d", b);
        if (std::fputc('\n', f) == EOF)
            ok = false;
    });
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

int
loadEvalCache(EvalCache &cache, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1;
    char magic[32] = {0};
    int version = 0;
    if (std::fscanf(f, "%31s %d", magic, &version) != 2 ||
        std::string(magic) != kCacheMagic || version != kCacheVersion) {
        std::fclose(f);
        return -1;
    }
    int loaded = 0;
    char tag[4];
    while (std::fscanf(f, "%3s", tag) == 1 && tag[0] == 'E' && !tag[1]) {
        EvalCache::Entry e;
        size_t n = 0;
        if (std::fscanf(f, "%" SCNx64 " %" SCNx64 " %d %d %d %d %la %zu",
                        &e.hash, &e.salt, &e.actIdx, &e.weightIdx,
                        &e.sharedIdx, &e.numBlocks, &e.cost, &n) != 8 ||
            n > static_cast<size_t>(kMaxPersistedNodes))
            break;
        e.keyBlock.resize(n);
        e.repairedBlock.resize(n);
        bool ok = true;
        for (size_t i = 0; ok && i < n; ++i)
            ok = std::fscanf(f, "%d", &e.keyBlock[i]) == 1;
        for (size_t i = 0; ok && i < n; ++i)
            ok = std::fscanf(f, "%d", &e.repairedBlock[i]) == 1;
        if (!ok)
            break;
        cache.insertEntry(std::move(e));
        ++loaded;
    }
    std::fclose(f);
    return loaded;
}

// --- Workload & platform resolution -------------------------------------

bool
resolveWorkload(const WorkloadSpec &spec, Graph *out, std::string *err)
{
    if (!spec.model.empty() && !spec.file.empty())
        return jsonFail(err, "workload: give a model name or a graph "
                                "file, not both");
    if (!spec.file.empty()) {
        // A file fixes the graph's shape; accepting shape params here
        // would silently run a different experiment than requested.
        const ModelParams def;
        const ModelParams &p = spec.params;
        if (p.resolution != def.resolution || p.seqLen != def.seqLen ||
            p.depth != def.depth || p.widthMult != def.widthMult ||
            p.seed != def.seed)
            return jsonFail(err,
                            "workload: model-shaping params (resolution, "
                            "seqLen, depth, widthMult, seed) do not apply "
                            "to a \"file\" workload — only \"batch\" "
                            "does");
        return loadGraphJson(spec.file, out, err);
    }
    if (spec.model.empty())
        return jsonFail(err, "workload: a model name or a graph file "
                                "is required");
    if (!ModelRegistry::instance().contains(spec.model))
        return jsonFail(
            err, strprintf("unknown model \"%s\" (known: %s)",
                           spec.model.c_str(),
                           joinComma(allModelNames()).c_str()));
    *out = buildModel(spec.model, spec.params);
    return true;
}

bool
resolvePlatform(const PlatformSpec &spec, AcceleratorConfig *out,
                std::string *err)
{
    int sources = (!spec.preset.empty() ? 1 : 0) +
                  (!spec.file.empty() ? 1 : 0) +
                  (spec.inlineConfig ? 1 : 0);
    if (sources > 1)
        return jsonFail(err, "platform: give a preset, a file, or an "
                                "inline configuration, not several");
    if (!spec.file.empty())
        return loadPlatformJson(spec.file, out, err);
    if (spec.inlineConfig) {
        *out = spec.config;
        return true;
    }
    std::string name = spec.preset.empty() ? "simba" : spec.preset;
    if (!PlatformRegistry::instance().find(name, out))
        return jsonFail(
            err, strprintf(
                     "unknown platform \"%s\" (known: %s)", name.c_str(),
                     joinComma(PlatformRegistry::instance().keys())
                         .c_str()));
    return true;
}

bool
resolveDeployment(const DeploymentSpec &spec, const AcceleratorConfig &base,
                  DeploymentConfig *out, std::string *err)
{
    if (!spec.enabled) {
        *out = homogeneousDeployment(base, 1);
        return true;
    }
    int sources = (!spec.preset.empty() ? 1 : 0) +
                  (!spec.file.empty() ? 1 : 0) + (spec.inlineDesc ? 1 : 0);
    if (sources > 1)
        return jsonFail(err, "deployment: give a preset, a file, or an "
                             "inline description, not several");

    DeploymentDesc desc;
    if (!spec.preset.empty()) {
        if (!DeploymentRegistry::instance().find(spec.preset, &desc))
            return jsonFail(
                err,
                strprintf("unknown deployment \"%s\" (known: %s)",
                          spec.preset.c_str(),
                          joinComma(DeploymentRegistry::instance().keys())
                              .c_str()));
    } else if (!spec.file.empty()) {
        if (!loadDeploymentJson(spec.file, &desc, err))
            return false;
    } else {
        desc = spec.desc; // inline (or the defaults: one core)
    }

    if (desc.cores < 1)
        return jsonFail(err, "deployment: cores must be >= 1");
    if (!desc.corePlatforms.empty() &&
        static_cast<int>(desc.corePlatforms.size()) != desc.cores)
        return jsonFail(
            err, strprintf("deployment: corePlatforms has %zu entries "
                           "for %d cores",
                           desc.corePlatforms.size(), desc.cores));

    DeploymentConfig dep;
    dep.coreConfigs.reserve(static_cast<size_t>(desc.cores));
    for (int i = 0; i < desc.cores; ++i) {
        AcceleratorConfig core;
        if (desc.corePlatforms.empty()) {
            core = base;
        } else {
            std::string sub;
            if (!resolvePlatform(desc.corePlatforms[i], &core, &sub))
                return jsonFail(err,
                                strprintf("deployment: core %d: %s", i,
                                          sub.c_str()));
        }
        // The deployment owns the scale-out: a core that is itself
        // multi-core would nest two crossbars the model cannot see.
        if (core.cores != 1)
            return jsonFail(
                err, strprintf("deployment: core %d's platform is "
                               "already multi-core (cores = %d); "
                               "deployments are built from single-core "
                               "platforms",
                               i, core.cores));
        dep.coreConfigs.push_back(core);
    }
    for (size_t i = 1; i < dep.coreConfigs.size(); ++i)
        if (dep.coreConfigs[i].batch != dep.coreConfigs[0].batch)
            return jsonFail(
                err, strprintf("deployment: core %zu's batch (%d) "
                               "disagrees with core 0's (%d); a batch "
                               "is a property of the run",
                               i, dep.coreConfigs[i].batch,
                               dep.coreConfigs[0].batch));
    // Unset interconnect knobs inherit core 0's built-in crossbar
    // parameters (including a platform file's customized values).
    dep.interconnect =
        resolveInterconnect(desc.interconnect, dep.coreConfigs[0]);
    *out = dep;
    return true;
}

bool
saveDeploymentJson(const DeploymentDesc &desc, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << deploymentToJson(desc) << '\n';
    return static_cast<bool>(out);
}

bool
loadDeploymentJson(const std::string &path, DeploymentDesc *out,
                   std::string *err)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, err))
        return false;
    std::string sub;
    if (!deploymentFromJson(doc, out, &sub))
        return jsonFail(err, path + ": " + sub);
    return true;
}

bool
savePlatformJson(const AcceleratorConfig &accel, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << acceleratorToJson(accel) << '\n';
    return static_cast<bool>(out);
}

bool
loadPlatformJson(const std::string &path, AcceleratorConfig *out,
                 std::string *err)
{
    JsonValue doc;
    if (!loadJsonFile(path, &doc, err))
        return false;
    std::string sub;
    if (!acceleratorFromJson(doc, out, &sub))
        return jsonFail(err, path + ": " + sub);
    return true;
}

} // namespace cocco
