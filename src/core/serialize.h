/**
 * @file
 * Serialization of the framework's artifacts: JSON for downstream
 * compilers/visualizers (recommended configuration, partition,
 * per-subgraph execution schemes), platform documents, the workload /
 * platform spec resolvers behind `cocco run --spec`, and the on-disk
 * evaluation-cache format that lets repeated CLI/bench runs
 * warm-start.
 */

#ifndef COCCO_CORE_SERIALIZE_H
#define COCCO_CORE_SERIALIZE_H

#include <string>

#include "core/cocco.h"
#include "search/checkpoint.h"
#include "search/eval_cache.h"
#include "sim/deployment.h"
#include "sim/platform.h"
#include "tileflow/scheme.h"

namespace cocco {

/** Serialize a partition (block list with layer names). */
std::string partitionToJson(const Graph &g, const Partition &p);

/** Serialize a derived execution scheme (per-node Delta/x/upd/regions). */
std::string schemeToJson(const Graph &g, const ExecutionScheme &s);

/** Serialize a full CoccoResult (buffer, costs, partition). */
std::string resultToJson(const Graph &g, const CoccoResult &r);

/**
 * Persist the genome level of an evaluation cache to @p path.
 *
 * Line-oriented text format, version-tagged; doubles are written as
 * hexfloats so a round trip is bit-exact. Entries carry their context
 * salt, so a file may safely be loaded into any run — entries from a
 * different model/accelerator/space/option set simply never hit.
 *
 * @return false when the file cannot be written.
 */
bool saveEvalCache(const EvalCache &cache, const std::string &path);

/**
 * Merge the entries stored at @p path into @p cache (subject to its
 * capacity/LRU policy).
 *
 * @return the number of entries loaded, or -1 when the file cannot
 *         be read or has an unknown format version. A truncated or
 *         corrupt tail stops the load but keeps earlier entries.
 */
int loadEvalCache(EvalCache &cache, const std::string &path);

/**
 * Persist a mid-run search checkpoint (search/checkpoint.h) to
 * @p path.
 *
 * Same family as the cache format: line-oriented versioned text
 * ("COCCO-CHECKPOINT <version>"), hexfloat doubles for bit-exact
 * round trips. Unlike the cache, a checkpoint is all-or-nothing — a
 * partial resume state would silently fork the run — so the write
 * goes to a temporary file first and renames over @p path only on
 * success, and the loader rejects any malformed or truncated content
 * outright. The format version is SearchCheckpoint::kVersion: bump it
 * whenever the struct or its encoding changes (see CONTRIBUTING).
 *
 * @return false when the file cannot be written.
 */
bool saveCheckpoint(const SearchCheckpoint &c, const std::string &path);

/**
 * Load a checkpoint written by saveCheckpoint into @p out.
 * @return false with *err describing the problem when the file is
 *         missing, corrupt, or carries another format version.
 */
bool loadCheckpoint(const std::string &path, SearchCheckpoint *out,
                    std::string *err);

// --- Workload & platform resolution -------------------------------------
// The file-and-name layer that makes a run spec self-contained: a
// WorkloadSpec / PlatformSpec (as parsed from a spec document or
// assembled from CLI flags) becomes a concrete Graph /
// AcceleratorConfig here. Both report problems as errors, never
// crashes — an unknown model, preset or file is always a clean user
// error at this level.

/**
 * Resolve a workload address into a graph: build the named registry
 * model with its parameters, or import the Graph JSON file. Exactly
 * one of model/file must be set.
 * @return false with *err set on any problem.
 */
bool resolveWorkload(const WorkloadSpec &spec, Graph *out,
                     std::string *err);

/**
 * Resolve a platform address into a configuration: a named preset
 * (default "simba"), a platform JSON file, or the inline config. At
 * most one source may be given.
 * @return false with *err set on any problem.
 */
bool resolvePlatform(const PlatformSpec &spec, AcceleratorConfig *out,
                     std::string *err);

/**
 * Resolve a deployment address into per-core configurations. The
 * description comes from the spec's preset, file, or inline form (at
 * most one; none means the inline defaults, i.e. a single core).
 * Cores without an explicit platform run @p base (the run's resolved
 * platform). Every core platform must be single-core (the deployment
 * owns the scale-out) and all cores must agree on the batch size.
 * When the spec is disabled, *out becomes the trivial one-core
 * deployment of @p base.
 * @return false with *err set on any problem.
 */
bool resolveDeployment(const DeploymentSpec &spec,
                       const AcceleratorConfig &base,
                       DeploymentConfig *out, std::string *err);

/** Write deploymentToJson(desc) to @p path. @return false on I/O
 *  failure. */
bool saveDeploymentJson(const DeploymentDesc &desc,
                        const std::string &path);

/** Read + parse + validate the deployment document at @p path.
 *  @return false with *err set. */
bool loadDeploymentJson(const std::string &path, DeploymentDesc *out,
                        std::string *err);

/** Write acceleratorToJson(accel) to @p path. @return false on I/O
 *  failure. */
bool savePlatformJson(const AcceleratorConfig &accel,
                      const std::string &path);

/** Read + parse + validate the platform document at @p path.
 *  @return false with *err set. */
bool loadPlatformJson(const std::string &path, AcceleratorConfig *out,
                      std::string *err);

} // namespace cocco

#endif // COCCO_CORE_SERIALIZE_H
