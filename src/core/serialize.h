/**
 * @file
 * JSON serialization of the framework's artifacts — the recommended
 * configuration, the partition, per-subgraph execution schemes —
 * so downstream compilers/visualizers can consume search results.
 */

#ifndef COCCO_CORE_SERIALIZE_H
#define COCCO_CORE_SERIALIZE_H

#include <string>

#include "core/cocco.h"
#include "tileflow/scheme.h"

namespace cocco {

/** Serialize a partition (block list with layer names). */
std::string partitionToJson(const Graph &g, const Partition &p);

/** Serialize a derived execution scheme (per-node Delta/x/upd/regions). */
std::string schemeToJson(const Graph &g, const ExecutionScheme &s);

/** Serialize a full CoccoResult (buffer, costs, partition). */
std::string resultToJson(const Graph &g, const CoccoResult &r);

} // namespace cocco

#endif // COCCO_CORE_SERIALIZE_H
