/**
 * @file
 * Serialization of the framework's artifacts: JSON for downstream
 * compilers/visualizers (recommended configuration, partition,
 * per-subgraph execution schemes), and the on-disk evaluation-cache
 * format that lets repeated CLI/bench runs warm-start.
 */

#ifndef COCCO_CORE_SERIALIZE_H
#define COCCO_CORE_SERIALIZE_H

#include <string>

#include "core/cocco.h"
#include "search/eval_cache.h"
#include "tileflow/scheme.h"

namespace cocco {

/** Serialize a partition (block list with layer names). */
std::string partitionToJson(const Graph &g, const Partition &p);

/** Serialize a derived execution scheme (per-node Delta/x/upd/regions). */
std::string schemeToJson(const Graph &g, const ExecutionScheme &s);

/** Serialize a full CoccoResult (buffer, costs, partition). */
std::string resultToJson(const Graph &g, const CoccoResult &r);

/**
 * Persist the genome level of an evaluation cache to @p path.
 *
 * Line-oriented text format, version-tagged; doubles are written as
 * hexfloats so a round trip is bit-exact. Entries carry their context
 * salt, so a file may safely be loaded into any run — entries from a
 * different model/accelerator/space/option set simply never hit.
 *
 * @return false when the file cannot be written.
 */
bool saveEvalCache(const EvalCache &cache, const std::string &path);

/**
 * Merge the entries stored at @p path into @p cache (subject to its
 * capacity/LRU policy).
 *
 * @return the number of entries loaded, or -1 when the file cannot
 *         be read or has an unknown format version. A truncated or
 *         corrupt tail stops the load but keeps earlier entries.
 */
int loadEvalCache(EvalCache &cache, const std::string &path);

} // namespace cocco

#endif // COCCO_CORE_SERIALIZE_H
