/**
 * @file
 * CoccoFramework: the one-stop public API (paper Figure 10).
 *
 * Feed it a model graph, the accelerator description, and the memory
 * design-space requirements; it runs the five stages (initialization,
 * crossover, mutation, evaluation with in-situ tuning, selection) and
 * returns the recommended memory configuration, the graph execution
 * strategy (partition), and the evaluated costs.
 *
 * Typical use:
 * @code
 *   Graph g = buildModel("ResNet50");
 *   CoccoFramework cocco(g, AcceleratorConfig{});
 *   CoccoResult r = cocco.coExplore(BufferStyle::Shared);
 *   // r.buffer, r.partition, r.cost ...
 * @endcode
 *
 * Parallel evaluation: population evaluation is batched through the
 * EvalEngine, so the searches scale across cores while staying
 * bit-identical to the serial run (per-genome RNG streams, results
 * written back by index, shared thread-safe profile memo):
 * @code
 *   GaOptions opts;
 *   opts.threads = 0;                       // one per hardware thread
 *   CoccoResult r = cocco.coExplore(BufferStyle::Shared, opts);
 *   // identical best/trace to opts.threads == 1, only faster
 * @endcode
 * The same knob exists on SaOptions (plus neighborBatch for the
 * speculative SA neighbor batches) and TwoStepOptions.
 */

#ifndef COCCO_CORE_COCCO_H
#define COCCO_CORE_COCCO_H

#include <memory>

#include "models/models.h"
#include "search/ga.h"
#include "search/sa.h"
#include "search/two_step.h"
#include "sim/cost_model.h"

namespace cocco {

/** Final recommendation returned by the framework. */
struct CoccoResult
{
    BufferConfig buffer;    ///< recommended memory configuration
    Partition partition;    ///< graph execution strategy
    GraphCost cost;         ///< evaluated performance
    double objective = 0.0; ///< Formula 2 value (or Formula 1 when
                            ///< partition-only)
    int64_t samples = 0;
    std::vector<TracePoint> trace;
    std::vector<SamplePoint> points;
    EvalCacheStats cacheStats; ///< evaluation-cache activity of the run
    DeltaStats deltaStats;     ///< operator gene-change accounting
};

/** The hardware-mapping co-exploration framework. */
class CoccoFramework
{
  public:
    /**
     * @param g     the workload (kept by reference; must outlive this)
     * @param accel the accelerator platform
     */
    CoccoFramework(const Graph &g, const AcceleratorConfig &accel);

    /** The shared evaluation environment (memoized simulator). */
    CostModel &model() { return *model_; }

    /**
     * Hardware-mapping co-exploration (Formula 2) over the paper's
     * capacity grid for @p style. Optional @p seed_partitions join
     * the initial population (the paper's flexible initialization:
     * warm-start the GA from other algorithms' results); each is
     * paired with a mid-grid hardware point.
     */
    CoccoResult coExplore(BufferStyle style, const GaOptions &opts = {},
                          const std::vector<Partition> &seed_partitions = {});

    /**
     * Partition-only optimization (Formula 1) under a fixed buffer,
     * optionally warm-started from @p seed_partitions.
     */
    CoccoResult partitionOnly(const BufferConfig &buffer,
                              GaOptions opts = {},
                              const std::vector<Partition> &seed_partitions =
                                  {});

  private:
    CoccoResult package(const SearchResult &r, const DseSpace &space,
                        const GaOptions &opts) const;

    const Graph &g_;
    std::unique_ptr<CostModel> model_;
};

} // namespace cocco

#endif // COCCO_CORE_COCCO_H
