/**
 * @file
 * CoccoFramework: the one-stop public API (paper Figure 10).
 *
 * Feed it a model graph, the accelerator description, and the memory
 * design-space requirements; it runs the five stages (initialization,
 * crossover, mutation, evaluation with in-situ tuning, selection) and
 * returns the recommended memory configuration, the graph execution
 * strategy (partition), and the evaluated costs.
 *
 * Typical use:
 * @code
 *   Graph g = buildModel("ResNet50");
 *   CoccoFramework cocco(g, AcceleratorConfig{});
 *   CoccoResult r = cocco.coExplore(BufferStyle::Shared);
 *   // r.buffer, r.partition, r.cost ...
 * @endcode
 *
 * Parallel evaluation: population evaluation is batched through the
 * EvalEngine, so the searches scale across cores while staying
 * bit-identical to the serial run (per-genome RNG streams, results
 * written back by index, shared thread-safe profile memo):
 * @code
 *   GaOptions opts;
 *   opts.threads = 0;                       // one per hardware thread
 *   CoccoResult r = cocco.coExplore(BufferStyle::Shared, opts);
 *   // identical best/trace to opts.threads == 1, only faster
 * @endcode
 * The same knob exists on SaOptions (plus neighborBatch for the
 * speculative SA neighbor batches) and TwoStepOptions.
 */

#ifndef COCCO_CORE_COCCO_H
#define COCCO_CORE_COCCO_H

#include <memory>

#include "core/metrics.h"
#include "models/models.h"
#include "search/driver.h"
#include "search/pareto.h"
#include "sim/cost_model.h"

namespace cocco {

/** Final recommendation returned by the framework. */
struct CoccoResult
{
    BufferConfig buffer;    ///< recommended memory configuration
    Partition partition;    ///< graph execution strategy
    GraphCost cost;         ///< evaluated performance
    double objective = 0.0; ///< Formula 2 value (or Formula 1 when
                            ///< partition-only)
    int64_t samples = 0;
    std::vector<TracePoint> trace;
    std::vector<SamplePoint> points;
    StopReason stop = StopReason::BudgetExhausted; ///< why the run ended
    EvalCacheStats cacheStats; ///< evaluation-cache activity of the run
    DeltaStats deltaStats;     ///< operator gene-change accounting

    /** Per-core utilization and crossbar share of the recommendation
     *  (trivial — one core, zero crossbar — for single-core runs). */
    DeploymentBreakdown deployment;

    /** Per-racer breakdown (algo = "portfolio" only; empty otherwise). */
    std::vector<RacerStats> racers;

    /** The non-dominated {buffer, energy, latency} frontier
     *  (spec.paretoMode only; empty otherwise). */
    std::vector<ParetoEntry> frontier;
    double hypervolume = 0.0; ///< normalized frontier hypervolume
};

/** Copy a result's optional portfolio / pareto blocks into a metrics
 *  record (shared by the CLI's --metrics-out and the serve API's
 *  metricsJson, so both emit the same schema). @p paretoMode gates
 *  the pareto block: an empty frontier from a pareto run is still a
 *  reportable (degenerate) frontier, while non-pareto runs omit the
 *  block entirely. */
void fillResultMetrics(const CoccoResult &r, bool paretoMode,
                       RunMetrics *m);

/** The hardware-mapping co-exploration framework. */
class CoccoFramework
{
  public:
    /**
     * @param g     the workload (kept by reference; must outlive this)
     * @param accel the accelerator platform
     */
    CoccoFramework(const Graph &g, const AcceleratorConfig &accel);

    /**
     * Evaluate on a multi-accelerator deployment (sim/deployment.h):
     * @p dep's cores behind the weight-rotation crossbar. A
     * single-core deployment is bit-identical to the plain
     * constructor over that core's platform.
     */
    CoccoFramework(const Graph &g, const DeploymentConfig &dep);

    /** The shared evaluation environment (memoized simulator). */
    CostModel &model() { return *model_; }

    /**
     * Run any registered search strategy from a declarative spec:
     * spec.algo is resolved through the SearcherRegistry ("ga",
     * "sa", "ts-random", "ts-grid", or anything registered at
     * startup), spec.eval.coExplore selects hardware-mapping
     * co-exploration over the paper's grid for spec.style (Formula
     * 2) versus partition-only optimization under spec.fixedBuffer
     * (Formula 1). Optional @p seed_partitions join the initial
     * population where the strategy supports warm starts (the GA's
     * flexible initialization); each is paired with a mid-grid
     * hardware point.
     *
     * At a fixed seed and thread count the result is bit-identical
     * to calling the strategy's legacy entry point directly.
     */
    CoccoResult explore(const SearchSpec &spec,
                        const std::vector<Partition> &seed_partitions = {});

    /**
     * Hardware-mapping co-exploration (Formula 2) with the genetic
     * search. Compatibility wrapper over explore(): builds a spec
     * with algo = "ga" from @p opts.
     */
    CoccoResult coExplore(BufferStyle style, const GaOptions &opts = {},
                          const std::vector<Partition> &seed_partitions = {});

    /**
     * Partition-only optimization (Formula 1) under a fixed buffer.
     * Compatibility wrapper over explore() (algo = "ga").
     */
    CoccoResult partitionOnly(const BufferConfig &buffer,
                              const GaOptions &opts = {},
                              const std::vector<Partition> &seed_partitions =
                                  {});

  private:
    CoccoResult package(const SearchResult &r, const DseSpace &space) const;

    const Graph &g_;
    std::unique_ptr<CostModel> model_;
};

} // namespace cocco

#endif // COCCO_CORE_COCCO_H
