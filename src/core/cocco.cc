#include "core/cocco.h"

namespace cocco {

void
fillResultMetrics(const CoccoResult &r, bool paretoMode, RunMetrics *m)
{
    if (!r.racers.empty()) {
        m->hasPortfolio = true;
        for (const RacerStats &rs : r.racers) {
            RunMetrics::RacerMetrics rm;
            rm.algo = rs.algo;
            rm.samples = rs.samples;
            rm.bestCost = rs.bestCost;
            rm.improvements = rs.improvements;
            rm.wallSeconds = rs.wallSeconds;
            rm.threads = rs.threads;
            rm.regrants = rs.regrants;
            rm.culled = rs.culled;
            rm.winner = rs.winner;
            rm.stop = stopReasonName(rs.stop);
            if (rs.winner)
                m->portfolioWinner = rs.algo;
            m->racers.push_back(std::move(rm));
        }
    }
    if (paretoMode) {
        m->hasPareto = true;
        m->hypervolume = r.hypervolume;
        for (const ParetoEntry &e : r.frontier) {
            RunMetrics::FrontierPoint p;
            p.bufferBytes = e.bufferBytes;
            p.energyPj = e.energyPj;
            p.latencyCycles = e.latencyCycles;
            p.metric = e.metric;
            p.sample = e.sample;
            m->frontier.push_back(p);
        }
    }
}

CoccoFramework::CoccoFramework(const Graph &g, const AcceleratorConfig &accel)
    : g_(g), model_(std::make_unique<CostModel>(g, accel))
{
}

CoccoFramework::CoccoFramework(const Graph &g, const DeploymentConfig &dep)
    : g_(g), model_(std::make_unique<DeploymentCostModel>(g, dep))
{
}

CoccoResult
CoccoFramework::package(const SearchResult &r, const DseSpace &space) const
{
    CoccoResult out;
    // bestBuffer, not best.buffer(space): the two-step drivers search
    // capacities outside the genome's hardware genes, so only the
    // recorded buffer is authoritative (identical for GA/SA).
    out.buffer = r.bestBuffer;
    out.partition = r.best.part;
    out.cost = r.bestGraphCost;
    out.objective = r.bestCost;
    out.samples = r.samples;
    out.trace = r.trace;
    out.points = r.points;
    out.stop = r.stop;
    out.cacheStats = r.cacheStats;
    out.deltaStats = r.deltaStats;
    out.racers = r.racers;
    // Per-core / crossbar accounting of the recommendation (pure
    // bookkeeping over the memoized profiles; no search state).
    out.deployment = model_->breakdown(out.partition, out.buffer);
    (void)space;
    return out;
}

namespace {

/** Wrap seed partitions as genomes with mid-grid hardware points. */
std::vector<Genome>
wrapSeeds(const std::vector<Partition> &parts, const DseSpace &space)
{
    std::vector<Genome> seeds;
    for (const Partition &p : parts) {
        Genome g;
        g.part = p;
        g.actIdx = space.actGrid.count / 2;
        g.weightIdx = space.weightGrid.count / 2;
        g.sharedIdx = space.sharedGrid.count / 2;
        seeds.push_back(std::move(g));
    }
    return seeds;
}

} // namespace

CoccoResult
CoccoFramework::explore(const SearchSpec &spec,
                        const std::vector<Partition> &seed_partitions)
{
    DseSpace space = spec.eval.coExplore
                         ? DseSpace::paperSpace(spec.style)
                         : DseSpace::fixedSpace(spec.fixedBuffer);
    if (spec.paretoMode && !spec.eval.pareto) {
        // Frontier mode: materialize the archive here and hand it to
        // the drivers through the eval core (a portfolio fans it out
        // into per-racer archives and merges them back).
        ParetoArchive archive;
        SearchSpec s = spec;
        s.eval.pareto = &archive;
        std::unique_ptr<Searcher> searcher =
            SearcherRegistry::instance().make(s.algo, *model_, space, s);
        CoccoResult out =
            package(searcher->run(wrapSeeds(seed_partitions, space)),
                    space);
        out.frontier = archive.entries();
        out.hypervolume = archive.hypervolume();
        return out;
    }
    std::unique_ptr<Searcher> searcher =
        SearcherRegistry::instance().make(spec.algo, *model_, space, spec);
    return package(searcher->run(wrapSeeds(seed_partitions, space)), space);
}

CoccoResult
CoccoFramework::coExplore(BufferStyle style, const GaOptions &opts,
                          const std::vector<Partition> &seed_partitions)
{
    SearchSpec spec;
    spec.algo = "ga";
    spec.style = style;
    spec.eval = opts; // slice: the shared core
    spec.ga = opts;   // slice: the GA block
    spec.eval.coExplore = true;
    return explore(spec, seed_partitions);
}

CoccoResult
CoccoFramework::partitionOnly(const BufferConfig &buffer,
                              const GaOptions &opts,
                              const std::vector<Partition> &seed_partitions)
{
    SearchSpec spec;
    spec.algo = "ga";
    spec.fixedBuffer = buffer;
    spec.eval = opts;
    spec.ga = opts;
    spec.eval.coExplore = false;
    return explore(spec, seed_partitions);
}

} // namespace cocco
