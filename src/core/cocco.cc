#include "core/cocco.h"

namespace cocco {

CoccoFramework::CoccoFramework(const Graph &g, const AcceleratorConfig &accel)
    : g_(g), model_(std::make_unique<CostModel>(g, accel))
{
}

CoccoResult
CoccoFramework::package(const SearchResult &r, const DseSpace &space,
                        const GaOptions &opts) const
{
    CoccoResult out;
    out.buffer = r.best.buffer(space);
    out.partition = r.best.part;
    out.cost = r.bestGraphCost;
    out.objective = r.bestCost;
    out.samples = r.samples;
    out.trace = r.trace;
    out.points = r.points;
    out.cacheStats = r.cacheStats;
    out.deltaStats = r.deltaStats;
    (void)opts;
    return out;
}

namespace {

/** Wrap seed partitions as genomes with mid-grid hardware points. */
std::vector<Genome>
wrapSeeds(const std::vector<Partition> &parts, const DseSpace &space)
{
    std::vector<Genome> seeds;
    for (const Partition &p : parts) {
        Genome g;
        g.part = p;
        g.actIdx = space.actGrid.count / 2;
        g.weightIdx = space.weightGrid.count / 2;
        g.sharedIdx = space.sharedGrid.count / 2;
        seeds.push_back(std::move(g));
    }
    return seeds;
}

} // namespace

CoccoResult
CoccoFramework::coExplore(BufferStyle style, const GaOptions &opts,
                          const std::vector<Partition> &seed_partitions)
{
    GaOptions o = opts;
    o.coExplore = true;
    DseSpace space = DseSpace::paperSpace(style);
    GeneticSearch search(*model_, space, o);
    return package(search.run(wrapSeeds(seed_partitions, space)), space, o);
}

CoccoResult
CoccoFramework::partitionOnly(const BufferConfig &buffer, GaOptions opts,
                              const std::vector<Partition> &seed_partitions)
{
    opts.coExplore = false;
    DseSpace space = DseSpace::fixedSpace(buffer);
    GeneticSearch search(*model_, space, opts);
    return package(search.run(wrapSeeds(seed_partitions, space)), space,
                   opts);
}

} // namespace cocco
