#include "util/json.h"

#include <cmath>

#include "util/logging.h"

namespace cocco {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (!stack_.empty()) {
        if (has_item_.back() && !pending_key_)
            out_ += ",";
        has_item_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    pending_key_ = false;
    out_ += "{";
    stack_.push_back('{');
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    pending_key_ = false;
    out_ += "[";
    stack_.push_back('[');
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != '{' || pending_key_)
        panic("JsonWriter: unbalanced endObject");
    stack_.pop_back();
    has_item_.pop_back();
    out_ += "}";
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != '[')
        panic("JsonWriter: unbalanced endArray");
    stack_.pop_back();
    has_item_.pop_back();
    out_ += "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != '{')
        panic("JsonWriter: key outside object");
    if (pending_key_)
        panic("JsonWriter: key after key");
    comma();
    out_ += "\"" + escape(k) + "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    pending_key_ = false;
    out_ += "\"" + escape(v) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    pending_key_ = false;
    out_ += strprintf("%lld", static_cast<long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    comma();
    pending_key_ = false;
    out_ += strprintf("%llu", static_cast<unsigned long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    pending_key_ = false;
    if (std::isfinite(v))
        out_ += strprintf("%.10g", v);
    else
        out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    pending_key_ = false;
    out_ += v ? "true" : "false";
    return *this;
}

std::string
JsonWriter::str() const
{
    if (!stack_.empty() || pending_key_)
        panic("JsonWriter: document not closed");
    return out_;
}

} // namespace cocco
