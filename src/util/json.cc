#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace cocco {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (!stack_.empty()) {
        if (has_item_.back() && !pending_key_)
            out_ += ",";
        has_item_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    pending_key_ = false;
    out_ += "{";
    stack_.push_back('{');
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    pending_key_ = false;
    out_ += "[";
    stack_.push_back('[');
    has_item_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != '{' || pending_key_)
        panic("JsonWriter: unbalanced endObject");
    stack_.pop_back();
    has_item_.pop_back();
    out_ += "}";
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != '[')
        panic("JsonWriter: unbalanced endArray");
    stack_.pop_back();
    has_item_.pop_back();
    out_ += "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != '{')
        panic("JsonWriter: key outside object");
    if (pending_key_)
        panic("JsonWriter: key after key");
    comma();
    out_ += "\"" + escape(k) + "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    pending_key_ = false;
    out_ += "\"" + escape(v) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    comma();
    pending_key_ = false;
    out_ += strprintf("%lld", static_cast<long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    comma();
    pending_key_ = false;
    out_ += strprintf("%llu", static_cast<unsigned long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    pending_key_ = false;
    if (std::isfinite(v))
        out_ += strprintf("%.10g", v);
    else
        out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    pending_key_ = false;
    out_ += v ? "true" : "false";
    return *this;
}

std::string
JsonWriter::str() const
{
    if (!stack_.empty() || pending_key_)
        panic("JsonWriter: document not closed");
    return out_;
}

// --- JsonValue ---------------------------------------------------------------

const char *
JsonValue::typeName() const
{
    switch (type_) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return "bool";
      case Type::Number:
        return "number";
      case Type::String:
        return "string";
      case Type::Array:
        return "array";
      case Type::Object:
        return "object";
    }
    return "?";
}

bool
JsonValue::boolean() const
{
    if (type_ != Type::Bool)
        panic("JsonValue: boolean() on a %s", typeName());
    return bool_;
}

double
JsonValue::number() const
{
    if (type_ != Type::Number)
        panic("JsonValue: number() on a %s", typeName());
    return num_;
}

int64_t
JsonValue::integer() const
{
    double v = number();
    if (v != std::floor(v) || std::abs(v) > 9007199254740992.0) // 2^53
        panic("JsonValue: %g is not an exact integer", v);
    return static_cast<int64_t>(v);
}

const std::string &
JsonValue::str() const
{
    if (type_ != Type::String)
        panic("JsonValue: str() on a %s", typeName());
    return str_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (type_ != Type::Array)
        panic("JsonValue: array() on a %s", typeName());
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (type_ != Type::Object)
        panic("JsonValue: members() on a %s", typeName());
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members())
        if (k == key)
            return &v;
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.type_ = Type::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j.type_ = Type::Number;
    j.num_ = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.type_ = Type::String;
    j.str_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.type_ = Type::Array;
    j.arr_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> v)
{
    JsonValue j;
    j.type_ = Type::Object;
    j.obj_ = std::move(v);
    return j;
}

// --- parseJson ---------------------------------------------------------------

namespace {

/** Strict recursive-descent JSON parser over a string. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err_ && err_->empty()) {
            int line = 1;
            for (size_t i = 0; i < pos_ && i < text_.size(); ++i)
                if (text_[i] == '\n')
                    ++line;
            *err_ = strprintf("line %d: %s", line, what.c_str());
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        bool ok = parseValueInner(out);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = JsonValue::makeString(std::move(s));
            return true;
        }
        if (literal("true")) {
            *out = JsonValue::makeBool(true);
            return true;
        }
        if (literal("false")) {
            *out = JsonValue::makeBool(false);
            return true;
        }
        if (literal("null")) {
            *out = JsonValue::makeNull();
            return true;
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        return fail(strprintf("unexpected character '%c'", c));
    }

    bool
    parseObject(JsonValue *out)
    {
        ++pos_; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(&v))
                return false;
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                *out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue *out)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = JsonValue::makeArray(std::move(items));
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(&v))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                *out = JsonValue::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected a string");
        ++pos_;
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                *out = std::move(s);
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"':
                s += '"';
                break;
              case '\\':
                s += '\\';
                break;
              case '/':
                s += '/';
                break;
              case 'b':
                s += '\b';
                break;
              case 'f':
                s += '\f';
                break;
              case 'n':
                s += '\n';
                break;
              case 'r':
                s += '\r';
                break;
              case 't':
                s += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(&cp))
                    return false;
                appendUtf8(s, cp);
                break;
              }
              default:
                return fail(strprintf("bad escape '\\%c'", e));
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(unsigned *out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        *out = cp;
        return true;
    }

    /** BMP code point to UTF-8 (surrogates pass through as-is; the
     *  specs we parse are ASCII in practice). */
    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    /** The RFC 8259 number grammar:
     *  -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? */
    static bool
    validNumberToken(const std::string &t)
    {
        auto digit = [&](size_t i) {
            return i < t.size() &&
                   std::isdigit(static_cast<unsigned char>(t[i]));
        };
        size_t i = 0;
        if (i < t.size() && t[i] == '-')
            ++i;
        if (!digit(i))
            return false;
        if (t[i] == '0')
            ++i; // no leading zeros
        else
            while (digit(i))
                ++i;
        if (i < t.size() && t[i] == '.') {
            ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
            ++i;
            if (i < t.size() && (t[i] == '+' || t[i] == '-'))
                ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        return i == t.size();
    }

    bool
    parseNumber(JsonValue *out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string tok = text_.substr(start, pos_ - start);
        if (!validNumberToken(tok))
            return fail(strprintf("bad number '%s'", tok.c_str()));
        *out = JsonValue::makeNumber(std::strtod(tok.c_str(), nullptr));
        return true;
    }

    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    std::string *err_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *err)
{
    if (err)
        err->clear();
    JsonParser p(text, err);
    JsonValue v;
    if (!p.parse(&v))
        return false;
    *out = std::move(v);
    return true;
}

bool
loadJsonFile(const std::string &path, JsonValue *out, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot read file";
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string sub;
    if (!parseJson(ss.str(), out, &sub)) {
        if (err)
            *err = path + ": " + sub;
        return false;
    }
    return true;
}

bool
jsonFail(std::string *err, const std::string &what)
{
    if (err && err->empty())
        *err = what;
    return false;
}

bool
jsonReadString(const JsonValue &v, const char *key, std::string *out,
               std::string *err)
{
    if (!v.isString())
        return jsonFail(err, strprintf("\"%s\" must be a string (got %s)",
                                         key, v.typeName()));
    *out = v.str();
    return true;
}

bool
jsonReadNumber(const JsonValue &v, const char *key, double *out,
               std::string *err)
{
    if (!v.isNumber())
        return jsonFail(err, strprintf("\"%s\" must be a number (got %s)",
                                         key, v.typeName()));
    *out = v.number();
    return true;
}

bool
jsonReadInt(const JsonValue &v, const char *key, int64_t *out,
            std::string *err)
{
    double d = 0.0;
    if (!jsonReadNumber(v, key, &d, err))
        return false;
    if (std::floor(d) != d || std::abs(d) > 9007199254740992.0)
        return jsonFail(err,
                          strprintf("\"%s\" must be an integer", key));
    *out = static_cast<int64_t>(d);
    return true;
}

bool
jsonReadBool(const JsonValue &v, const char *key, bool *out,
             std::string *err)
{
    if (!v.isBool())
        return jsonFail(err, strprintf("\"%s\" must be a boolean (got %s)",
                                         key, v.typeName()));
    *out = v.boolean();
    return true;
}

} // namespace cocco
