#include "util/hash.h"

#include <cmath>
#include <limits>
#include <type_traits>

#include "graph/graph.h"
#include "mem/buffer_config.h"
#include "partition/partition.h"
#include "search/genome.h"
#include "sim/accelerator.h"

namespace cocco {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

} // namespace

uint64_t
hashU64(uint64_t h, uint64_t lane)
{
    // One FNV-1a xor/multiply per lane; lanes are pre-mixed so
    // low-entropy integers (small block ids) still perturb high bits.
    lane *= 0x9e3779b97f4a7c15ULL;
    lane ^= lane >> 29;
    return (h ^ lane) * kFnvPrime;
}

uint64_t
hashDouble(uint64_t h, double v)
{
    if (std::isnan(v))
        v = std::numeric_limits<double>::quiet_NaN(); // one canonical NaN
    if (v == 0.0)
        v = 0.0; // collapse -0.0 onto +0.0
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return hashU64(h, bits);
}

uint64_t
hashBytes(uint64_t h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * kFnvPrime;
    return h;
}

uint64_t
hashString(uint64_t h, const std::string &s)
{
    h = hashU64(h, s.size());
    return hashBytes(h, s.data(), s.size());
}

uint64_t
hashFinalize(uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    return h ^ (h >> 33);
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return hashFinalize(hashU64(hashU64(kHashSeed, a), b));
}

uint64_t
hashPartition(uint64_t h, const Partition &p)
{
    return hashIntVector(h, p.block);
}

uint64_t
hashBufferConfig(uint64_t h, const BufferConfig &buf)
{
    h = hashU64(h, static_cast<uint64_t>(buf.style));
    if (buf.style == BufferStyle::Shared)
        return hashI64(h, buf.sharedBytes);
    h = hashI64(h, buf.actBytes);
    return hashI64(h, buf.weightBytes);
}

uint64_t
hashCapacityGrid(uint64_t h, const CapacityGrid &grid)
{
    h = hashI64(h, grid.minBytes);
    h = hashI64(h, grid.stepBytes);
    return hashI64(h, grid.count);
}

uint64_t
hashDseSpace(uint64_t h, const DseSpace &space)
{
    h = hashU64(h, static_cast<uint64_t>(space.style));
    h = hashU64(h, space.searchHw ? 1 : 0);
    if (!space.searchHw)
        return hashBufferConfig(h, space.fixed);
    h = hashCapacityGrid(h, space.actGrid);
    h = hashCapacityGrid(h, space.weightGrid);
    return hashCapacityGrid(h, space.sharedGrid);
}

uint64_t
hashGenome(uint64_t h, const Genome &genome, const DseSpace &space)
{
    h = hashPartition(h, genome.part);
    if (!space.searchHw)
        return h; // frozen buffer: hardware genes are dead
    if (space.style == BufferStyle::Shared)
        return hashI64(h, genome.sharedIdx);
    h = hashI64(h, genome.actIdx);
    return hashI64(h, genome.weightIdx);
}

uint64_t
hashAccelerator(uint64_t h, const AcceleratorConfig &accel)
{
    h = hashI64(h, accel.peRows);
    h = hashI64(h, accel.peCols);
    h = hashI64(h, accel.macsPerPe);
    h = hashDouble(h, accel.clockGhz);
    h = hashDouble(h, accel.dramGBpsPerCore);
    h = hashI64(h, accel.maxRegions);
    h = hashI64(h, accel.channelAlign);
    h = hashU64(h, accel.doubleBufferWeights ? 1 : 0);
    h = hashI64(h, accel.cores);
    h = hashI64(h, accel.batch);
    h = hashDouble(h, accel.crossbarBytesPerCycle);
    h = hashDouble(h, accel.energy.dramPjPerByte);
    h = hashDouble(h, accel.energy.sramBasePjPerByte);
    h = hashDouble(h, accel.energy.sramSlopePjPerByte);
    h = hashDouble(h, accel.energy.macPj);
    h = hashDouble(h, accel.energy.crossbarPjPerByte);
    return h;
}

uint64_t
hashGraph(uint64_t h, const Graph &g)
{
    h = hashString(h, g.name());
    h = hashU64(h, g.size());
    h = hashU64(h, g.numEdges());
    for (NodeId v = 0; v < g.size(); ++v) {
        const Layer &l = g.layer(v);
        h = hashU64(h, static_cast<uint64_t>(l.kind));
        h = hashI64(h, l.outH);
        h = hashI64(h, l.outW);
        h = hashI64(h, l.outC);
        h = hashI64(h, l.kernel);
        h = hashI64(h, l.stride);
        h = hashIntVector(h, g.preds(v));
    }
    return h;
}

} // namespace cocco
