#include "util/csv.h"

#include <cstdio>

#include "util/logging.h"

namespace cocco {

std::string
CsvWriter::quote(const std::string &field)
{
    bool needs = field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size())
{
    if (columns_ == 0)
        panic("CsvWriter needs at least one column");
    std::string line;
    for (size_t i = 0; i < header.size(); ++i)
        line += (i ? "," : "") + quote(header[i]);
    out_ = line + "\n";
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    if (cells.size() != columns_)
        panic("CSV row has %zu cells, expected %zu", cells.size(),
              columns_);
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i)
        line += (i ? "," : "") + quote(cells[i]);
    out_ += line + "\n";
}

std::string
CsvWriter::str() const
{
    return out_;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
    std::fclose(f);
    if (n != out_.size()) {
        warn("short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace cocco
