/**
 * @file
 * A small fixed-width ASCII table printer used by the benchmark
 * harnesses to emit the same row/column structure as the paper's
 * tables and figures.
 */

#ifndef COCCO_UTIL_TABLE_H
#define COCCO_UTIL_TABLE_H

#include <string>
#include <vector>

namespace cocco {

/** Column-aligned ASCII table with a header row and separator rules. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule. */
    void addRule();

    /** Render the table to a string (trailing newline included). */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helpers for numeric cells. */
    static std::string fmtDouble(double v, int precision = 2);
    static std::string fmtSci(double v, int precision = 2);
    static std::string fmtInt(int64_t v);
    static std::string fmtKB(int64_t bytes);
    static std::string fmtMB(double bytes, int precision = 2);
    static std::string fmtPercent(double frac, int precision = 1);

  private:
    std::vector<std::string> headers_;
    // Each row is either a cell vector or an empty vector marking a rule.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cocco

#endif // COCCO_UTIL_TABLE_H
