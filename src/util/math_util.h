/**
 * @file
 * Integer math helpers used by the tile-flow derivation: gcd/lcm,
 * ceiling division, and an exact rational number type for solving the
 * upd_num system of Section 3.1 stage-3.
 */

#ifndef COCCO_UTIL_MATH_UTIL_H
#define COCCO_UTIL_MATH_UTIL_H

#include <cstdint>
#include <string>

namespace cocco {

/** Greatest common divisor; gcd(0, x) == x. Inputs must be >= 0. */
int64_t gcd64(int64_t a, int64_t b);

/** Least common multiple; lcm(0, x) == 0. */
int64_t lcm64(int64_t a, int64_t b);

/** Ceiling division for non-negative numerator, positive denominator. */
inline int64_t
ceilDiv(int64_t num, int64_t den)
{
    return (num + den - 1) / den;
}

/** Round @p v up to the next multiple of @p align (align > 0). */
inline int64_t
roundUp(int64_t v, int64_t align)
{
    return ceilDiv(v, align) * align;
}

/**
 * An exact rational number (int64 numerator / positive int64 denominator),
 * always stored in lowest terms. Used to solve the multiplicative
 * constraint system that yields the minimal co-prime upd_num assignment.
 */
class Rational
{
  public:
    /** Construct num/den, reduced; den must be non-zero. */
    Rational(int64_t num = 0, int64_t den = 1);

    int64_t num() const { return num_; }
    int64_t den() const { return den_; }

    Rational operator*(const Rational &o) const;
    Rational operator/(const Rational &o) const;
    Rational operator+(const Rational &o) const;
    Rational operator-(const Rational &o) const;
    bool operator==(const Rational &o) const;
    bool operator!=(const Rational &o) const { return !(*this == o); }

    /** @return true when the value is a whole number. */
    bool isInteger() const { return den_ == 1; }

    /** Exact integer value; panics if not an integer. */
    int64_t toInteger() const;

    /** Human-readable "num/den" (or just "num" for integers). */
    std::string str() const;

  private:
    void reduce();

    int64_t num_;
    int64_t den_;
};

} // namespace cocco

#endif // COCCO_UTIL_MATH_UTIL_H
