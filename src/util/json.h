/**
 * @file
 * Minimal JSON support: a streaming writer used to export search
 * results and execution schemes to downstream tooling, and a strict
 * recursive-descent parser (JsonValue / parseJson) used to ingest
 * declarative run specs (`cocco run --spec`) and to validate emitted
 * metrics documents. No third-party dependency; both directions are
 * plain standard-library code.
 */

#ifndef COCCO_UTIL_JSON_H
#define COCCO_UTIL_JSON_H

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cocco {

/** Streaming JSON writer with nesting validation. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Begin the root (or nested) object/array. */
    JsonWriter &beginObject();
    JsonWriter &beginArray();
    JsonWriter &endObject();
    JsonWriter &endArray();

    /** Set the key for the next value inside an object. */
    JsonWriter &key(const std::string &k);

    /** Scalar values. */
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** Convenience: key + scalar. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        return key(k).value(v);
    }

    /** Finish and return the document; panics on unbalanced nesting. */
    std::string str() const;

    /** JSON string escaping (exposed for tests). */
    static std::string escape(const std::string &s);

  private:
    void comma();

    std::string out_;
    std::vector<char> stack_;    // '{' or '['
    std::vector<bool> has_item_; // per nesting level
    bool pending_key_ = false;
};

/**
 * One parsed JSON value. Type accessors panic on mismatch (callers
 * check the type, or use the checked find()/lookup patterns), so a
 * malformed document can never be silently misread. Object member
 * order is preserved. Numbers are stored as double: integers are
 * exact up to 2^53, which covers every knob in our schemas.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default; ///< null

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Human-readable type name ("object", "number", ...). */
    const char *typeName() const;

    /** Checked accessors (panic on type mismatch). */
    bool boolean() const;
    double number() const;
    /** number() rounded to int64 (panics when out of exact range). */
    int64_t integer() const;
    const std::string &str() const;
    const std::vector<JsonValue> &array() const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Object member lookup; null when absent (panics: not object). */
    const JsonValue *find(const std::string &key) const;

    /** Construction (used by the parser and tests). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> v);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/**
 * Parse a complete JSON document (strict: no comments, no trailing
 * commas, nothing after the root value). @return false with *err set
 * to "line L: problem" on malformed input.
 */
bool parseJson(const std::string &text, JsonValue *out, std::string *err);

/**
 * Read the file at @p path and parse it as one JSON document.
 * @return false with *err set to "path: problem" when the file cannot
 * be read or does not parse.
 */
bool loadJsonFile(const std::string &path, JsonValue *out,
                  std::string *err);

// --- Checked member readers for strict schema parsers -------------------
// Each returns false on a type mismatch and sets *err (when non-null
// and still empty) to a '"key" must be ...' message, so schemas built
// on top reject malformed documents instead of misreading them.
// jsonReadInt additionally requires exactness (2^53 bound): casting an
// out-of-range double to an integer is undefined behavior.

/** The shared failure path of the strict parsers: record @p what in
 *  *err (when non-null and still empty — the first error wins) and
 *  return false. */
bool jsonFail(std::string *err, const std::string &what);

bool jsonReadString(const JsonValue &v, const char *key, std::string *out,
                    std::string *err);
bool jsonReadNumber(const JsonValue &v, const char *key, double *out,
                    std::string *err);
bool jsonReadInt(const JsonValue &v, const char *key, int64_t *out,
                 std::string *err);
bool jsonReadBool(const JsonValue &v, const char *key, bool *out,
                  std::string *err);

/** jsonReadInt + a range check against T ('"key" is out of range'). */
template <typename T>
bool
jsonReadIntAs(const JsonValue &v, const char *key, T *out, std::string *err)
{
    int64_t i = 0;
    if (!jsonReadInt(v, key, &i, err))
        return false;
    bool in_range =
        std::is_unsigned<T>::value
            ? i >= 0 &&
                  static_cast<uint64_t>(i) <=
                      static_cast<uint64_t>(std::numeric_limits<T>::max())
            : i >= static_cast<int64_t>(std::numeric_limits<T>::min()) &&
                  i <= static_cast<int64_t>(std::numeric_limits<T>::max());
    if (!in_range) {
        if (err && err->empty())
            *err = std::string("\"") + key + "\" is out of range";
        return false;
    }
    *out = static_cast<T>(i);
    return true;
}

} // namespace cocco

#endif // COCCO_UTIL_JSON_H
