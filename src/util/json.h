/**
 * @file
 * A minimal JSON writer (no parsing) used to export search results
 * and execution schemes to downstream tooling. Values are emitted
 * with correct escaping; objects and arrays nest via RAII-free
 * explicit begin/end calls, validated at runtime.
 */

#ifndef COCCO_UTIL_JSON_H
#define COCCO_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace cocco {

/** Streaming JSON writer with nesting validation. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Begin the root (or nested) object/array. */
    JsonWriter &beginObject();
    JsonWriter &beginArray();
    JsonWriter &endObject();
    JsonWriter &endArray();

    /** Set the key for the next value inside an object. */
    JsonWriter &key(const std::string &k);

    /** Scalar values. */
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** Convenience: key + scalar. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        return key(k).value(v);
    }

    /** Finish and return the document; panics on unbalanced nesting. */
    std::string str() const;

    /** JSON string escaping (exposed for tests). */
    static std::string escape(const std::string &s);

  private:
    void comma();

    std::string out_;
    std::vector<char> stack_;    // '{' or '['
    std::vector<bool> has_item_; // per nesting level
    bool pending_key_ = false;
};

} // namespace cocco

#endif // COCCO_UTIL_JSON_H
