#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cocco {

namespace {

bool quiet_flag = false;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
isQuiet()
{
    return quiet_flag;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

std::string
joinComma(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items)
        out += (out.empty() ? "" : ", ") + item;
    return out;
}

} // namespace cocco
