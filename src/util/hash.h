/**
 * @file
 * Stable 64-bit content hashing for the evaluation cache: FNV-1a
 * over raw lanes with a SplitMix64-style finalizer, plus combinators
 * for the domain types a cache key is built from (partition scheme,
 * genome, buffer configuration, accelerator platform).
 *
 * Stability contract: these hashes are part of the on-disk cache
 * format (core/serialize), so they must produce the same value for
 * the same logical content on every platform and in every run. Only
 * value content is hashed — never addresses, iteration order of
 * unordered containers, or padding bytes.
 */

#ifndef COCCO_UTIL_HASH_H
#define COCCO_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cocco {

struct AcceleratorConfig;
struct BufferConfig;
struct CapacityGrid;
struct DseSpace;
struct Genome;
struct Partition;
class Graph;

/** FNV-1a offset basis: the seed of an empty hash chain. */
constexpr uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/** Fold one 64-bit lane into the running hash (FNV-1a step over the
 *  lane's bytes, collapsed to one multiply per lane). */
uint64_t hashU64(uint64_t h, uint64_t lane);

/** Fold a signed integer lane. */
inline uint64_t
hashI64(uint64_t h, int64_t lane)
{
    return hashU64(h, static_cast<uint64_t>(lane));
}

/** Fold a double by its bit pattern (NaNs normalized; -0.0 == +0.0
 *  so equal-comparing keys hash equal). */
uint64_t hashDouble(uint64_t h, double v);

/** Fold a byte buffer. */
uint64_t hashBytes(uint64_t h, const void *data, size_t n);

/** Fold a string's characters (length-prefixed so "ab","c" and
 *  "a","bc" chains differ). */
uint64_t hashString(uint64_t h, const std::string &s);

/** Fold a vector of integer lanes, length-prefixed. */
template <typename T>
uint64_t
hashIntVector(uint64_t h, const std::vector<T> &v)
{
    static_assert(std::is_integral<T>::value, "integer lanes only");
    h = hashU64(h, v.size());
    for (T x : v)
        h = hashI64(h, static_cast<int64_t>(x));
    return h;
}

/** Final avalanche: spreads low-entropy chains across all 64 bits.
 *  Apply once, after the last lane. */
uint64_t hashFinalize(uint64_t h);

/** Combine two already-finalized hashes order-dependently. */
uint64_t hashCombine(uint64_t a, uint64_t b);

// --- Domain combinators (all fold into a running chain; call
//     hashFinalize() after the last one). ---------------------------

/** Fold a partition scheme (the per-node block vector). */
uint64_t hashPartition(uint64_t h, const Partition &p);

/** Fold a concrete buffer configuration (style + sizes). */
uint64_t hashBufferConfig(uint64_t h, const BufferConfig &buf);

/** Fold a capacity grid. */
uint64_t hashCapacityGrid(uint64_t h, const CapacityGrid &grid);

/** Fold a hardware design space (style, grids, frozen buffer). */
uint64_t hashDseSpace(uint64_t h, const DseSpace &space);

/** Fold a genome: partition scheme plus the hardware gene indices
 *  that are live under @p space (frozen genes are skipped so genomes
 *  that decode identically hash identically). */
uint64_t hashGenome(uint64_t h, const Genome &genome, const DseSpace &space);

/** Fold an accelerator platform (every field the cost model reads). */
uint64_t hashAccelerator(uint64_t h, const AcceleratorConfig &accel);

/** Fold a workload graph's identity: name, size, edge structure and
 *  per-layer shape content. */
uint64_t hashGraph(uint64_t h, const Graph &g);

} // namespace cocco

#endif // COCCO_UTIL_HASH_H
