/**
 * @file
 * Status-message and error-termination helpers, gem5-style.
 *
 * fatal()  — the situation is the user's fault (bad configuration,
 *            invalid arguments); exits with code 1.
 * panic()  — an internal invariant was violated (a cocco bug); aborts.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef COCCO_UTIL_LOGGING_H
#define COCCO_UTIL_LOGGING_H

#include <cstdarg>
#include <string>
#include <vector>

namespace cocco {

/** Print "fatal: <msg>" to stderr and exit(1). User-level error. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print "panic: <msg>" to stderr and abort(). Internal bug. */
[[noreturn]] void panic(const char *fmt, ...);

/** Print "warn: <msg>" to stderr. */
void warn(const char *fmt, ...);

/** Print an informational message to stdout. */
void inform(const char *fmt, ...);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

/** "a, b, c" join — the standard rendering of a registry's known
 *  keys in error messages and listings. */
std::string joinComma(const std::vector<std::string> &items);

} // namespace cocco

#endif // COCCO_UTIL_LOGGING_H
