#include "util/thread_pool.h"

#include <algorithm>

namespace cocco {

int
ThreadPool::resolveThreads(int threads)
{
    if (threads > 0)
        return threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int total = resolveThreads(threads);
    workers_.reserve(total - 1);
    for (int i = 1; i < total; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runIndices(const std::function<void(size_t)> &fn, size_t n)
{
    for (size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;)
        fn(i);
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        wake_cv_.wait(lk, [&] { return stop_ || jobId_ != seen; });
        if (stop_)
            return;
        seen = jobId_;
        ++arrived_;
        ++busy_;
        const std::function<void(size_t)> *fn = fn_;
        size_t n = jobSize_;
        lk.unlock();
        runIndices(*fn, n);
        lk.lock();
        if (--busy_ == 0 && arrived_ == workers_.size())
            done_cv_.notify_one();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        fn_ = &fn;
        jobSize_ = n;
        next_.store(0, std::memory_order_relaxed);
        arrived_ = 0;
        busy_ = 0;
        ++jobId_;
    }
    wake_cv_.notify_all();
    runIndices(fn, n);
    // Wait for every worker to have both picked up and finished this
    // job; a worker that wakes late must not see the next job's state.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk,
                  [&] { return arrived_ == workers_.size() && busy_ == 0; });
}

} // namespace cocco
