#include "util/math_util.h"

#include <cstdlib>

#include "util/logging.h"

namespace cocco {

int64_t
gcd64(int64_t a, int64_t b)
{
    if (a < 0 || b < 0)
        panic("gcd64 requires non-negative inputs (%lld, %lld)",
              static_cast<long long>(a), static_cast<long long>(b));
    while (b != 0) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int64_t
lcm64(int64_t a, int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return a / gcd64(a, b) * b;
}

Rational::Rational(int64_t num, int64_t den)
    : num_(num), den_(den)
{
    if (den_ == 0)
        panic("Rational with zero denominator");
    reduce();
}

void
Rational::reduce()
{
    if (den_ < 0) {
        den_ = -den_;
        num_ = -num_;
    }
    int64_t g = gcd64(std::llabs(num_), den_);
    if (g > 1) {
        num_ /= g;
        den_ /= g;
    }
    if (num_ == 0)
        den_ = 1;
}

Rational
Rational::operator*(const Rational &o) const
{
    // Cross-reduce first to keep intermediates small.
    int64_t g1 = gcd64(std::llabs(num_), o.den_);
    int64_t g2 = gcd64(std::llabs(o.num_), den_);
    return Rational((num_ / g1) * (o.num_ / g2), (den_ / g2) * (o.den_ / g1));
}

Rational
Rational::operator/(const Rational &o) const
{
    if (o.num_ == 0)
        panic("Rational division by zero");
    return *this * Rational(o.den_, o.num_);
}

Rational
Rational::operator+(const Rational &o) const
{
    int64_t g = gcd64(den_, o.den_);
    int64_t l = den_ / g * o.den_;
    return Rational(num_ * (l / den_) + o.num_ * (l / o.den_), l);
}

Rational
Rational::operator-(const Rational &o) const
{
    return *this + Rational(-o.num_, o.den_);
}

bool
Rational::operator==(const Rational &o) const
{
    return num_ == o.num_ && den_ == o.den_;
}

int64_t
Rational::toInteger() const
{
    if (den_ != 1)
        panic("Rational %s is not an integer", str().c_str());
    return num_;
}

std::string
Rational::str() const
{
    if (den_ == 1)
        return strprintf("%lld", static_cast<long long>(num_));
    return strprintf("%lld/%lld", static_cast<long long>(num_),
                     static_cast<long long>(den_));
}

} // namespace cocco
