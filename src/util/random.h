/**
 * @file
 * Deterministic pseudo-random number generation for the search
 * algorithms. A thin xoshiro256** wrapper with helpers for the
 * distributions the GA/SA operators need (uniform ints, reals,
 * gaussian steps, choice, shuffle).
 *
 * All stochastic components take an explicit Rng so experiments are
 * reproducible from a single seed.
 */

#ifndef COCCO_UTIL_RANDOM_H
#define COCCO_UTIL_RANDOM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cocco {

/** xoshiro256** PRNG seeded via SplitMix64. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** The raw generator state (for checkpointing a search run). */
    std::array<uint64_t, 4> state() const;

    /** Restore a state captured by state(); the subsequent draw
     *  sequence continues exactly where the captured one left off. */
    void setState(const std::array<uint64_t, 4> &s);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /** Uniformly pick an index in [0, n); requires n > 0. */
    size_t index(size_t n);

    /** Uniformly pick an element of @p v; requires non-empty. */
    template <typename T>
    const T &
    choice(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
};

} // namespace cocco

#endif // COCCO_UTIL_RANDOM_H
