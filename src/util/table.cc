#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace cocco {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.emplace_back();
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            s += " " + cells[c] +
                 std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::string out = rule() + line(headers_) + rule();
    for (const auto &row : rows_)
        out += row.empty() ? rule() : line(row);
    out += rule();
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
Table::fmtDouble(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
Table::fmtSci(double v, int precision)
{
    return strprintf("%.*E", precision, v);
}

std::string
Table::fmtInt(int64_t v)
{
    return strprintf("%lld", static_cast<long long>(v));
}

std::string
Table::fmtKB(int64_t bytes)
{
    return strprintf("%lldKB", static_cast<long long>(bytes / 1024));
}

std::string
Table::fmtMB(double bytes, int precision)
{
    return strprintf("%.*fMB", precision, bytes / (1024.0 * 1024.0));
}

std::string
Table::fmtPercent(double frac, int precision)
{
    return strprintf("%.*f%%", precision, frac * 100.0);
}

} // namespace cocco
