#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace cocco {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::array<uint64_t, 4>
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const std::array<uint64_t, 4> &s)
{
    for (size_t i = 0; i < 4; ++i)
        s_[i] = s[i];
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo %lld > hi %lld", static_cast<long long>(lo),
              static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t r;
    do {
        r = next();
    } while (r >= limit);
    return lo + static_cast<int64_t>(r % span);
}

double
Rng::uniformReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    double u1 = uniformReal();
    double u2 = uniformReal();
    while (u1 <= 0.0)
        u1 = uniformReal();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

size_t
Rng::index(size_t n)
{
    if (n == 0)
        panic("Rng::index on empty range");
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

} // namespace cocco
