/**
 * @file
 * Minimal CSV writer for exporting benchmark series (convergence
 * traces, sample clouds) to plotting tools. Handles quoting of
 * fields containing separators/quotes/newlines per RFC 4180.
 */

#ifndef COCCO_UTIL_CSV_H
#define COCCO_UTIL_CSV_H

#include <string>
#include <vector>

namespace cocco {

/** Row-oriented CSV document builder. */
class CsvWriter
{
  public:
    /** Create with the header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(const std::vector<std::string> &cells);

    /** Render the document (CRLF-free, trailing newline). */
    std::string str() const;

    /** Write to @p path; returns false (with a warn) on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** RFC-4180 field quoting (exposed for tests). */
    static std::string quote(const std::string &field);

  private:
    size_t columns_;
    std::string out_;
};

} // namespace cocco

#endif // COCCO_UTIL_CSV_H
