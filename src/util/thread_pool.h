/**
 * @file
 * A fixed-size worker pool with a parallel-for primitive, sized for
 * the search layer's batched genome evaluation.
 *
 * Design points:
 *   - the calling thread participates in every parallelFor, so a pool
 *     constructed with 1 thread spawns no workers and runs inline
 *     (zero overhead, bit-identical to a plain loop);
 *   - indices are handed out through a shared atomic counter, so work
 *     is dynamically balanced across workers;
 *   - parallelFor blocks until every index has been processed and all
 *     workers have quiesced, so the callable may safely live on the
 *     caller's stack.
 *
 * parallelFor is not reentrant: the callable must not itself call
 * parallelFor on the same pool.
 */

#ifndef COCCO_UTIL_THREAD_POOL_H
#define COCCO_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cocco {

/** Fixed worker pool; see file comment for semantics. */
class ThreadPool
{
  public:
    /**
     * @param threads total parallelism including the caller; <= 0
     *                means one per hardware thread.
     */
    explicit ThreadPool(int threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the participating caller). */
    int size() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across
     * the workers and the calling thread; returns when all are done.
     * fn must not throw.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** Resolve a threads knob: <= 0 means hardware concurrency. */
    static int resolveThreads(int threads);

  private:
    void workerLoop();
    void runIndices(const std::function<void(size_t)> &fn, size_t n);

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_cv_;  ///< caller -> workers: new job
    std::condition_variable done_cv_;  ///< workers -> caller: job done

    // Current job, guarded by mu_ except for next_.
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t jobSize_ = 0;
    std::atomic<size_t> next_{0};
    uint64_t jobId_ = 0;   ///< bumped per job so workers detect new work
    size_t arrived_ = 0;   ///< workers that have picked up this job
    size_t busy_ = 0;      ///< workers still running this job
    bool stop_ = false;
};

} // namespace cocco

#endif // COCCO_UTIL_THREAD_POOL_H
