#include "search/eval_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace cocco {

namespace {

/** Sum of hits and misses, guarding the empty-cache division. */
double
rate(uint64_t hit, uint64_t miss)
{
    uint64_t total = hit + miss;
    return total == 0 ? 0.0
                      : static_cast<double>(hit) / static_cast<double>(total);
}

} // namespace

double
EvalCacheStats::hitRate() const
{
    return rate(hits, misses);
}

double
EvalCacheStats::blockHitRate() const
{
    return rate(blockHits, blockMisses);
}

EvalCacheStats
EvalCacheStats::operator-(const EvalCacheStats &o) const
{
    EvalCacheStats d = *this;
    d.hits -= o.hits;
    d.misses -= o.misses;
    d.insertions -= o.insertions;
    d.evictions -= o.evictions;
    d.blockHits -= o.blockHits;
    d.blockMisses -= o.blockMisses;
    d.blockInsertions -= o.blockInsertions;
    d.blockEvictions -= o.blockEvictions;
    d.boundRejections -= o.boundRejections;
    d.boundSkippedSamples -= o.boundSkippedSamples;
    d.incReusedBlocks -= o.incReusedBlocks;
    d.incRecostBlocks -= o.incRecostBlocks;
    return d;
}

EvalCache::EvalCache(size_t capacity, int shards)
    : capacity_(std::max<size_t>(capacity, 1)),
      shardCount_(std::clamp(shards, 1, 256)),
      shards_(static_cast<size_t>(shardCount_)),
      blockShards_(static_cast<size_t>(shardCount_))
{
    perShardCap_ = std::max<size_t>(
        1, capacity_ / static_cast<size_t>(shardCount_));
    perShardBlockCap_ = 4 * perShardCap_;
}

bool
EvalCache::keyMatches(const Entry &e, const KeyView &key) const
{
    return e.salt == key.salt && e.actIdx == key.actIdx &&
           e.weightIdx == key.weightIdx && e.sharedIdx == key.sharedIdx &&
           e.keyBlock == key.block;
}

bool
EvalCache::lookup(const KeyView &key, Partition *repaired, double *cost)
{
    GenomeShard &shard =
        shards_[key.hash % static_cast<uint64_t>(shardCount_)];
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(key.hash);
    if (it == shard.map.end() || !keyMatches(*it->second, key)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    const Entry &e = *it->second;
    repaired->block = e.repairedBlock;
    repaired->numBlocks = e.numBlocks;
    *cost = e.cost;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
EvalCache::insert(const KeyView &key, const Partition &repaired, double cost)
{
    Entry e;
    e.hash = key.hash;
    e.salt = key.salt;
    e.keyBlock = key.block;
    e.actIdx = key.actIdx;
    e.weightIdx = key.weightIdx;
    e.sharedIdx = key.sharedIdx;
    e.repairedBlock = repaired.block;
    e.numBlocks = repaired.numBlocks;
    e.cost = cost;
    insertEntry(std::move(e));
}

void
EvalCache::insertEntry(Entry entry)
{
    GenomeShard &shard =
        shards_[entry.hash % static_cast<uint64_t>(shardCount_)];
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(entry.hash);
    if (it != shard.map.end()) {
        // Same hash seen again: either a concurrent duplicate insert
        // (identical value) or a 64-bit collision (the newcomer wins
        // the slot; the loser degrades to misses).
        *it->second = std::move(entry);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(std::move(entry));
    shard.map.emplace(shard.lru.front().hash, shard.lru.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > perShardCap_) {
        shard.map.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

uint64_t
EvalCache::blockKeyHash(uint64_t salt, const std::vector<NodeId> &nodes,
                        const BufferConfig &buf)
{
    uint64_t h = hashU64(kHashSeed, salt);
    h = hashIntVector(h, nodes);
    return hashFinalize(hashBufferConfig(h, buf));
}

bool
EvalCache::sameBuffer(const BufferConfig &a, const BufferConfig &b)
{
    if (a.style != b.style)
        return false;
    if (a.style == BufferStyle::Shared)
        return a.sharedBytes == b.sharedBytes;
    return a.actBytes == b.actBytes && a.weightBytes == b.weightBytes;
}

bool
EvalCache::lookupBlock(uint64_t salt, const std::vector<NodeId> &nodes,
                       const BufferConfig &buf, SubgraphCost *out,
                       uint64_t *hash_out)
{
    uint64_t h = blockKeyHash(salt, nodes, buf);
    if (hash_out)
        *hash_out = h;
    BlockShard &shard = blockShards_[h % static_cast<uint64_t>(shardCount_)];
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(h);
    if (it == shard.map.end() || it->second->salt != salt ||
        it->second->nodes != nodes || !sameBuffer(it->second->buf, buf)) {
        blockMisses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->cost;
    blockHits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
EvalCache::insertBlock(uint64_t salt, const std::vector<NodeId> &nodes,
                       const BufferConfig &buf, const SubgraphCost &cost)
{
    insertBlockHashed(blockKeyHash(salt, nodes, buf), salt, nodes, buf,
                      cost);
}

void
EvalCache::insertBlockHashed(uint64_t h, uint64_t salt,
                             const std::vector<NodeId> &nodes,
                             const BufferConfig &buf,
                             const SubgraphCost &cost)
{
    BlockShard &shard = blockShards_[h % static_cast<uint64_t>(shardCount_)];
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(h);
    if (it != shard.map.end()) {
        it->second->salt = salt;
        it->second->nodes = nodes;
        it->second->buf = buf;
        it->second->cost = cost;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(BlockEntry{h, salt, nodes, buf, cost});
    shard.map.emplace(h, shard.lru.begin());
    blockInsertions_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > perShardBlockCap_) {
        shard.map.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        blockEvictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

size_t
EvalCache::size() const
{
    size_t n = 0;
    for (const GenomeShard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        n += shard.lru.size();
    }
    return n;
}

size_t
EvalCache::blockSize() const
{
    size_t n = 0;
    for (const BlockShard &shard : blockShards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        n += shard.lru.size();
    }
    return n;
}

EvalCacheStats
EvalCache::stats() const
{
    EvalCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.blockHits = blockHits_.load(std::memory_order_relaxed);
    s.blockMisses = blockMisses_.load(std::memory_order_relaxed);
    s.blockInsertions = blockInsertions_.load(std::memory_order_relaxed);
    s.blockEvictions = blockEvictions_.load(std::memory_order_relaxed);
    s.entries = size();
    s.blockEntries = blockSize();
    return s;
}

void
EvalCache::resetStats()
{
    hits_ = misses_ = insertions_ = evictions_ = 0;
    blockHits_ = blockMisses_ = blockInsertions_ = blockEvictions_ = 0;
}

void
EvalCache::clear()
{
    for (GenomeShard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.lru.clear();
        shard.map.clear();
    }
    for (BlockShard &shard : blockShards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.lru.clear();
        shard.map.clear();
    }
}

void
EvalCache::forEachEntry(const std::function<void(const Entry &)> &fn) const
{
    for (const GenomeShard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        // Least recently used first, so re-inserting a dump in order
        // reproduces the recency ranking.
        for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it)
            fn(*it);
    }
}

} // namespace cocco
