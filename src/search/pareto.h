/**
 * @file
 * Pareto-front extraction over the (buffer capacity, metric) plane
 * from a search's recorded sample points — the analytical content of
 * the paper's Figures 13/14: which capacity/energy trade-offs are
 * undominated, and what alpha range selects each of them.
 */

#ifndef COCCO_SEARCH_PARETO_H
#define COCCO_SEARCH_PARETO_H

#include <vector>

#include "search/ga.h"

namespace cocco {

/** One undominated (capacity, metric) point. */
struct ParetoPoint
{
    int64_t bufferBytes = 0;
    double metric = 0.0;

    /**
     * The alpha range [alphaLo, alphaHi) of Formula 2 for which this
     * point minimizes BUF + alpha * metric among the front
     * (alphaHi = +inf for the largest-capacity point).
     */
    double alphaLo = 0.0;
    double alphaHi = 0.0;
};

/**
 * Extract the Pareto front (minimal capacity and metric) from sample
 * points. Points with identical capacity keep only the best metric.
 * The result is sorted by ascending capacity (hence descending
 * metric), with the alpha selection ranges filled in.
 */
std::vector<ParetoPoint>
paretoFront(const std::vector<SamplePoint> &points);

/** The front point Formula 2 selects at a given alpha. */
const ParetoPoint &selectByAlpha(const std::vector<ParetoPoint> &front,
                                 double alpha);

} // namespace cocco

#endif // COCCO_SEARCH_PARETO_H
