/**
 * @file
 * Pareto-front machinery in two layers.
 *
 * The 2D helpers (paretoFront/selectByAlpha) extract the undominated
 * (buffer capacity, metric) trade-offs from a finished run's recorded
 * sample points — the analytical content of the paper's Figures 13/14:
 * which capacity/energy points are undominated, and what alpha range
 * of Formula 2 selects each of them.
 *
 * ParetoArchive is the first-class search mode built on top: an
 * NSGA-II-style non-dominated archive over {buffer size, energy,
 * latency} maintained *inside* the evaluation loop (every recorded
 * sample is offered via EvalOptions::pareto), so ONE run emits the
 * whole frontier instead of a scalarized alpha sweep re-running the
 * search once per alpha. Selectable via `"mode": "pareto"` in a run
 * spec; bench_fig14 builds its alpha table from a single archive.
 *
 * Offers arrive on the driver thread in recorded-sample order, so the
 * archive needs no locking and its content is bit-reproducible for a
 * fixed seed at any thread count. Invariants (asserted by tests):
 * no retained entry dominates another, entries stay sorted by
 * (bufferBytes, energyPj, latencyCycles), and capacity overflow
 * truncates by NSGA-II crowding distance (boundary points are
 * infinitely crowded, so the frontier's extremes survive).
 */

#ifndef COCCO_SEARCH_PARETO_H
#define COCCO_SEARCH_PARETO_H

#include <vector>

#include "search/ga.h"

namespace cocco {

/** One undominated (capacity, metric) point. */
struct ParetoPoint
{
    int64_t bufferBytes = 0;
    double metric = 0.0;

    /**
     * The alpha range [alphaLo, alphaHi) of Formula 2 for which this
     * point minimizes BUF + alpha * metric among the front
     * (alphaHi = +inf for the largest-capacity point).
     */
    double alphaLo = 0.0;
    double alphaHi = 0.0;
};

/**
 * Extract the Pareto front (minimal capacity and metric) from sample
 * points. Points with identical capacity keep only the best metric.
 * The result is sorted by ascending capacity (hence descending
 * metric), with the alpha selection ranges filled in.
 */
std::vector<ParetoPoint>
paretoFront(const std::vector<SamplePoint> &points);

/** The front point Formula 2 selects at a given alpha. */
const ParetoPoint &selectByAlpha(const std::vector<ParetoPoint> &front,
                                 double alpha);

/** One archive entry: an undominated point of the 3D objective space
 *  (all minimized), plus the run's scalarization metric value and the
 *  sample index that first produced it. */
struct ParetoEntry
{
    int64_t bufferBytes = 0;
    double energyPj = 0.0;
    double latencyCycles = 0.0;
    double metric = 0.0; ///< metricValue(run metric) — 2D projection
    int64_t sample = 0;  ///< racer-local sample index of discovery
};

/** In-loop non-dominated archive (see file comment). Single-threaded
 *  by contract: offers come from one driver thread in sample order. */
class ParetoArchive
{
  public:
    static constexpr size_t kDefaultCapacity = 512;

    explicit ParetoArchive(size_t capacity = kDefaultCapacity);

    /** Offer one evaluated point. Infeasible points (caller checks
     *  GraphCost::feasible) must not be offered. @return true when
     *  the point entered the archive (it was non-dominated). */
    bool offer(const ParetoEntry &e);

    /** Fold another archive in (deterministic: entry order of @p o).
     *  Used by the portfolio to merge per-racer archives. */
    void merge(const ParetoArchive &o);

    /** The frontier, sorted by (bufferBytes, energyPj, latencyCycles). */
    const std::vector<ParetoEntry> &entries() const { return entries_; }

    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }

    /** Total points offered (including dominated rejects). */
    int64_t offered() const { return offered_; }

    /**
     * Normalized 3D hypervolume of the frontier: each objective is
     * scaled to [0, 1] over the frontier's own span and the reference
     * point sits at 1.05 per dimension, so the value is comparable
     * across runs of one study (larger = better coverage). 0 for an
     * empty archive.
     */
    double hypervolume() const;

    /** 2D (capacity, metric) projection of the frontier in the shape
     *  paretoFront()/selectByAlpha() consume. */
    std::vector<SamplePoint> samplePoints() const;

  private:
    void truncate();

    size_t capacity_;
    int64_t offered_ = 0;
    std::vector<ParetoEntry> entries_;
};

} // namespace cocco

#endif // COCCO_SEARCH_PARETO_H
