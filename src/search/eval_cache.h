/**
 * @file
 * The evaluation cache: memoized genome evaluation for the search
 * drivers (GA/SA/two-step), so near-identical genomes produced by
 * crossover/mutation are never re-evaluated.
 *
 * Two levels, both thread-safe sharded LRU maps:
 *
 *  - genome level: key = 64-bit hash of (evaluation-context salt,
 *    pre-repair partition scheme, live hardware gene indices). The
 *    payload is the evaluation's full observable effect — the
 *    objective value AND the in-situ-repaired partition — so a cache
 *    hit is bit-identical to recomputing, including the mutation of
 *    genome.part that downstream variation operators see.
 *
 *  - block level (served to the SubgraphCostCache hook of
 *    sim/cost_model.h through a salt-scoped BlockView): key =
 *    (model salt, subgraph node set, buffer configuration). When an
 *    operator only changed part of a genome, the unchanged blocks'
 *    SubgraphCosts are served from here (incremental re-evaluation).
 *
 * Collision safety: entries store their exact key material (salt,
 * block vector, gene indices / node set, buffer sizes) and compare it
 * on lookup, so a 64-bit hash collision degrades to a miss, never to
 * a wrong result. Eviction order may vary across thread schedules;
 * values may not, so search results stay deterministic for any
 * thread count and for cache on vs. off.
 *
 * The genome level persists to disk (core/serialize) so repeated
 * CLI/bench runs warm-start; entries from a different model,
 * accelerator, design space or evaluation option set are fenced off
 * by the salt.
 */

#ifndef COCCO_SEARCH_EVAL_CACHE_H
#define COCCO_SEARCH_EVAL_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "partition/partition.h"
#include "sim/cost_model.h"

namespace cocco {

/** Cumulative cache counters (monotonic; snapshot via stats()). */
struct EvalCacheStats
{
    // Genome level.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;

    // Block (subgraph-cost) level.
    uint64_t blockHits = 0;
    uint64_t blockMisses = 0;
    uint64_t blockInsertions = 0;
    uint64_t blockEvictions = 0;

    // Pruning / incremental re-evaluation accounting. The cache
    // itself never fills these (stats() reports zeros): the search
    // drivers overlay them from the evaluation engine after taking
    // the per-run delta, so they flow with the rest of the cache
    // report whether or not a cache is in play.
    uint64_t boundRejections = 0;    ///< candidates skipped via bounds
    uint64_t boundSkippedSamples = 0; ///< samples folded without running
    uint64_t incReusedBlocks = 0;    ///< blocks served from eval records
    uint64_t incRecostBlocks = 0;    ///< blocks a record failed to cover

    // Snapshot sizes (not monotonic; a stat delta carries the
    // minuend's — i.e. end-of-run — sizes unchanged).
    uint64_t entries = 0;
    uint64_t blockEntries = 0;

    /** Fraction of genome evaluations served from cache (0 when no
     *  lookups happened). */
    double hitRate() const;

    /** Fraction of block-cost assemblies served from cache. */
    double blockHitRate() const;

    /** Counter-wise difference (for per-run deltas of a shared,
     *  long-lived cache). Sizes are copied from *this. */
    EvalCacheStats operator-(const EvalCacheStats &o) const;
};

/** Two-level sharded LRU evaluation cache; see file comment. */
class EvalCache
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 15;
    static constexpr int kDefaultShards = 16;

    /** One persisted/cached genome evaluation. */
    struct Entry
    {
        uint64_t hash = 0;  ///< full key hash (shard + bucket selector)
        uint64_t salt = 0;  ///< evaluation-context fingerprint

        // Exact key material (compared on lookup).
        std::vector<int> keyBlock; ///< pre-repair block vector
        int actIdx = 0;            ///< live hardware genes; dead genes
        int weightIdx = 0;         ///< are normalized to 0 by the caller
        int sharedIdx = 0;

        // Payload.
        std::vector<int> repairedBlock; ///< post in-situ-tuning blocks
        int numBlocks = 0;
        double cost = 0.0;
    };

    /** Borrowed key for allocation-free lookups. */
    struct KeyView
    {
        uint64_t hash = 0;
        uint64_t salt = 0;
        const std::vector<int> &block; ///< pre-repair block vector
        int actIdx = 0;
        int weightIdx = 0;
        int sharedIdx = 0;
    };

    /**
     * @param capacity genome-entry capacity; under sharding each of
     *                 @p shards stripes holds max(1, capacity/shards)
     *                 entries, so the bound is approximate unless
     *                 shards == 1. The block level holds 4x this.
     * @param shards   lock stripes (1 = strict global LRU, for tests)
     */
    explicit EvalCache(size_t capacity = kDefaultCapacity,
                       int shards = kDefaultShards);

    /**
     * Genome lookup. On a hit, writes the cached repaired partition
     * into @p repaired and the objective into @p cost, refreshes the
     * entry's recency, and returns true.
     */
    bool lookup(const KeyView &key, Partition *repaired, double *cost);

    /** Record one evaluation: key -> (repaired partition, cost). */
    void insert(const KeyView &key, const Partition &repaired, double cost);

    // --- Block level. Entries are fenced by a model salt (graph +
    //     accelerator — everything a SubgraphCost depends on beyond
    //     the node set and buffer), so one cache may serve engines
    //     over different models concurrently. ---

    /** @p hash_out, when non-null, receives the computed key hash
     *  (so a following insert can skip rehashing the node set). */
    bool lookupBlock(uint64_t salt, const std::vector<NodeId> &nodes,
                     const BufferConfig &buf, SubgraphCost *out,
                     uint64_t *hash_out = nullptr);
    void insertBlock(uint64_t salt, const std::vector<NodeId> &nodes,
                     const BufferConfig &buf, const SubgraphCost &cost);

    /** insertBlock with the key hash precomputed by lookupBlock. */
    void insertBlockHashed(uint64_t hash, uint64_t salt,
                           const std::vector<NodeId> &nodes,
                           const BufferConfig &buf,
                           const SubgraphCost &cost);

    /**
     * Salt-scoped adapter implementing the CostModel hook. Not
     * thread-safe (the underlying cache is): each evaluation makes
     * its own view, which lets the view carry the lookup's key hash
     * over to the matching miss-path insert instead of rehashing.
     */
    class BlockView : public SubgraphCostCache
    {
      public:
        BlockView(EvalCache &cache, uint64_t salt)
            : cache_(cache), salt_(salt)
        {
        }

        bool
        lookupBlock(const std::vector<NodeId> &nodes,
                    const BufferConfig &buf, SubgraphCost *out) override
        {
            lastNodes_ = &nodes;
            return cache_.lookupBlock(salt_, nodes, buf, out, &lastHash_);
        }

        void
        insertBlock(const std::vector<NodeId> &nodes,
                    const BufferConfig &buf,
                    const SubgraphCost &cost) override
        {
            if (&nodes == lastNodes_)
                cache_.insertBlockHashed(lastHash_, salt_, nodes, buf,
                                         cost);
            else
                cache_.insertBlock(salt_, nodes, buf, cost);
        }

      private:
        EvalCache &cache_;
        uint64_t salt_;
        const std::vector<NodeId> *lastNodes_ = nullptr;
        uint64_t lastHash_ = 0;
    };

    /** The block level scoped to @p salt, for partitionCost(). */
    BlockView blockView(uint64_t salt) { return BlockView(*this, salt); }

    /** Current genome-entry count. */
    size_t size() const;

    /** Current block-entry count. */
    size_t blockSize() const;

    /** Genome-entry capacity. */
    size_t capacity() const { return capacity_; }

    /** Counter snapshot (entries/blockEntries filled in). */
    EvalCacheStats stats() const;

    /** Zero every counter (entry contents are untouched). */
    void resetStats();

    /** Drop every entry at both levels (counters are untouched). */
    void clear();

    // --- Persistence support (used by core/serialize). ---

    /** Visit every genome entry (shard by shard, least recently used
     *  first, so re-inserting a dump in visit order reproduces the
     *  recency ranking). Do not call cache methods from @p fn (the
     *  shard lock is held). */
    void forEachEntry(const std::function<void(const Entry &)> &fn) const;

    /** Insert a deserialized entry verbatim (keeps entry.hash). */
    void insertEntry(Entry entry);

  private:
    struct GenomeShard
    {
        mutable std::mutex mu;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    };

    /** One cached (salt, node set, buffer) -> SubgraphCost mapping. */
    struct BlockEntry
    {
        uint64_t hash = 0;
        uint64_t salt = 0;
        std::vector<NodeId> nodes;
        BufferConfig buf;
        SubgraphCost cost;
    };

    struct BlockShard
    {
        mutable std::mutex mu;
        std::list<BlockEntry> lru;
        std::unordered_map<uint64_t, std::list<BlockEntry>::iterator> map;
    };

    bool keyMatches(const Entry &e, const KeyView &key) const;
    static uint64_t blockKeyHash(uint64_t salt,
                                 const std::vector<NodeId> &nodes,
                                 const BufferConfig &buf);
    static bool sameBuffer(const BufferConfig &a, const BufferConfig &b);

    size_t capacity_;
    size_t perShardCap_;
    size_t perShardBlockCap_;
    int shardCount_;

    std::vector<GenomeShard> shards_;
    std::vector<BlockShard> blockShards_;

    // Counters (relaxed atomics; exactness only matters per-run).
    std::atomic<uint64_t> hits_{0}, misses_{0}, insertions_{0},
        evictions_{0};
    std::atomic<uint64_t> blockHits_{0}, blockMisses_{0},
        blockInsertions_{0}, blockEvictions_{0};
};

} // namespace cocco

#endif // COCCO_SEARCH_EVAL_CACHE_H
