/**
 * @file
 * Checkpoint/resume for in-flight searches.
 *
 * A SearchCheckpoint is a complete snapshot of a driver's state at a
 * batch boundary — the only points where parallel runs have a
 * well-defined serial state (forEachStream discards cut-short batches
 * whole, so a boundary snapshot never captures half a batch). Resuming
 * from one replays the remainder of the run bit-identically to the
 * uninterrupted original, for any thread count: everything
 * thread-count-independent that feeds the result stream is captured
 * (master RNG, engine stream counter, incumbent, trace, per-algorithm
 * working state), and nothing timing-dependent is.
 *
 * Drivers see checkpointing through CheckpointHooks on
 * EvalOptions::checkpoint:
 *   - hooks.resume:   a snapshot to restore before the first batch;
 *   - hooks.request:  set from any thread to ask for a snapshot at the
 *                     next boundary (served once, then auto-cleared);
 *   - hooks.save:     receives every snapshot taken;
 *   - hooks.saveOnStop: additionally snapshot when the run ends early
 *                     (cancellation or the wall-clock limit) — the
 *                     "killed job" path, where the last boundary state
 *                     is exactly what a restart needs.
 *
 * A snapshot is only meaningful for the exact run configuration that
 * produced it, so each one carries a fence hash of everything
 * result-affecting: model, space, algorithm + its parameters, seed,
 * budget, objective knobs. Thread count and pruning are deliberately
 * excluded — both are guaranteed not to change results, so a job may
 * legitimately resume with different parallelism. Drivers fatal on a
 * fence mismatch rather than silently producing a forked run.
 *
 * Persistence (save/loadCheckpoint) lives in core/serialize next to
 * the cache file format and follows the same versioning rule.
 */

#ifndef COCCO_SEARCH_CHECKPOINT_H
#define COCCO_SEARCH_CHECKPOINT_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "search/ga.h"
#include "search/portfolio.h"
#include "search/sa.h"
#include "search/two_step.h"

namespace cocco {

/** One mid-run snapshot at a batch boundary (see file comment). */
struct SearchCheckpoint
{
    /** Persisted-format version (core/serialize). Bump on ANY change
     *  to this struct or its encoding; loaders reject other versions
     *  (a half-understood resume state would fork the run). */
    static constexpr int kVersion = 2; ///< v2: portfolio racer section

    std::string algo;   ///< driver key ("ga", "sa", "ts-random", ...)
    uint64_t fence = 0; ///< run-identity hash (checkpointFence below)
    uint64_t seed = 0;

    // --- State shared by every driver. ---
    int64_t samples = 0;
    double bestCost = kInfeasiblePenalty;
    Genome best;
    std::vector<TracePoint> trace;
    std::vector<SamplePoint> points;   ///< GA --record-points stream
    std::array<uint64_t, 4> rng{};     ///< the driver's master Rng
    uint64_t streamCounter = 0;        ///< engine counter at the boundary
    int64_t sinceImprove = 0;          ///< stall counter

    // --- GA: the population at the generation boundary. ---
    std::vector<Genome> population;
    std::vector<double> popCosts; ///< parallel to population

    // --- SA: current state + the frozen temperature schedule. ---
    bool hasSa = false;
    Genome saCur;
    double saCurCost = 0.0;
    double saT0 = 0.0; ///< derived from the first evaluation; frozen

    // --- Two-step: sweep position + folded accounting. ---
    bool hasTs = false;
    int64_t tsCandidate = 0; ///< next candidate index to run
    uint64_t tsSubSeed = 0;
    BufferConfig tsBestBuffer;
    uint64_t tsBoundRejections = 0;
    uint64_t tsBoundSkippedSamples = 0;
    uint64_t tsIncReused = 0;
    uint64_t tsIncRecost = 0;
    DeltaStats tsDelta;

    // --- Portfolio: one nested per-racer snapshot each (never nested
    //     twice — racer snapshots are plain single-driver ones). ---
    /** Racer checkpoint state: still racing (resumed by its driver,
     *  sub-fence validated), culled by the monitor, or finished. */
    enum RacerState
    {
        kRacerActive = 0,
        kRacerCulled = 1,
        kRacerFinished = 2,
    };
    bool hasPortfolio = false;
    std::vector<SearchCheckpoint> racers; ///< index-parallel to spec
    std::vector<int> racerState;          ///< RacerState per racer
};

/** Driver-facing checkpoint wiring (EvalOptions::checkpoint). */
struct CheckpointHooks
{
    /** Snapshot to restore before the first batch; null = fresh run.
     *  Must outlive the run. Fence-validated (fatal on mismatch). */
    const SearchCheckpoint *resume = nullptr;

    /** Receives every snapshot taken. Called on the driver thread at
     *  a batch boundary — keep it quick (a file write is fine). */
    std::function<void(const SearchCheckpoint &)> save;

    /** Set from any thread to request a snapshot at the next batch
     *  boundary; cleared once served. */
    std::atomic<bool> request{false};

    /** Snapshot the last boundary when the run stops early
     *  (Cancelled / TimeLimit) — the resume-after-kill path. */
    bool saveOnStop = true;
};

/** Fence hash for a GA run (model + space + result-affecting options
 *  + the GA knobs; threads/pruning excluded — see file comment). */
uint64_t gaCheckpointFence(const CostModel &model, const DseSpace &space,
                           const GaOptions &opts);

/** Fence hash for an SA run. */
uint64_t saCheckpointFence(const CostModel &model, const DseSpace &space,
                           const SaOptions &opts);

/** Fence hash for a two-step sweep; @p algo distinguishes the
 *  candidate schedule ("ts-random" vs "ts-grid"). */
uint64_t twoStepCheckpointFence(const CostModel &model,
                                const DseSpace &space,
                                const TwoStepOptions &opts,
                                const std::string &algo);

/** Fence hash for a portfolio race: the shared evaluation core plus
 *  the racer line-up and race knobs (each racer's own parameters are
 *  fenced by its nested snapshot, validated when that racer
 *  resumes). */
uint64_t portfolioCheckpointFence(const CostModel &model,
                                  const DseSpace &space,
                                  const EvalOptions &opts,
                                  const PortfolioParams &params);

} // namespace cocco

#endif // COCCO_SEARCH_CHECKPOINT_H
