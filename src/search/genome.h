/**
 * @file
 * Genome encoding for the co-exploration (paper Section 4.3): a
 * candidate solution is a graph partition plus a memory configuration
 * drawn from the capacity candidate grids. In partition-only mode the
 * hardware part is frozen.
 */

#ifndef COCCO_SEARCH_GENOME_H
#define COCCO_SEARCH_GENOME_H

#include <memory>

#include "mem/buffer_config.h"
#include "partition/partition.h"

namespace cocco {

struct EvalRecord;

/** The hardware design space being searched. */
struct DseSpace
{
    BufferStyle style = BufferStyle::Separate;
    CapacityGrid actGrid;
    CapacityGrid weightGrid;
    CapacityGrid sharedGrid;
    bool searchHw = true;      ///< false = partition-only (fixed buffer)
    BufferConfig fixed;        ///< used when !searchHw

    /** The paper's search space for @p style. */
    static DseSpace paperSpace(BufferStyle style);

    /** A frozen space around @p fixed (partition-only search). */
    static DseSpace fixedSpace(const BufferConfig &fixed);
};

/** One candidate solution. */
struct Genome
{
    Partition part;
    int actIdx = 0;    ///< global-buffer grid index (Separate)
    int weightIdx = 0; ///< weight-buffer grid index (Separate)
    int sharedIdx = 0; ///< shared-buffer grid index (Shared)

    /**
     * Per-block costs of this genome's most recent evaluation
     * (search/eval_engine.h), inherited by copy when an operator
     * derives a child from a parent, so re-evaluating the child
     * re-costs only the blocks the mutation actually changed.
     * Content-verified on use — never part of the genome's identity
     * (hashing and equality ignore it) and never required for
     * correctness; crossover children start from scratch (null).
     */
    std::shared_ptr<const EvalRecord> evalRecord;

    /** Decode the hardware part into a concrete configuration. */
    BufferConfig buffer(const DseSpace &space) const;
};

/**
 * Change report filled by the variation operators: which genes a
 * crossover/mutation touched, so the evaluation layer knows how much
 * of a genome survived from its parent (incremental re-evaluation
 * accounting — the unchanged blocks' cost contributions come from the
 * EvalCache's block level instead of being recomputed).
 *
 * The report covers the operator's direct reassignments, pre-repair:
 * structural repair may ripple block renumbering further, which is
 * why the cache layers key on content, not on this report. An empty
 * `nodes` with `partitionChanged` set means a global rewrite
 * (crossover builds the child partition from scratch).
 */
struct GeneDelta
{
    std::vector<NodeId> nodes;     ///< nodes the operator reassigned
    bool partitionChanged = false; ///< any partition gene touched
    bool hwChanged = false;        ///< any hardware gene touched

    /** Record the reassignment of one node. */
    void
    noteNode(NodeId v)
    {
        nodes.push_back(v);
        partitionChanged = true;
    }

    /** Record a hardware-gene change. */
    void noteHw() { hwChanged = true; }

    /** True when no gene changed (the child equals its parent). */
    bool unchanged() const { return !partitionChanged && !hwChanged; }
};

} // namespace cocco

#endif // COCCO_SEARCH_GENOME_H
