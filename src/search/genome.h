/**
 * @file
 * Genome encoding for the co-exploration (paper Section 4.3): a
 * candidate solution is a graph partition plus a memory configuration
 * drawn from the capacity candidate grids. In partition-only mode the
 * hardware part is frozen.
 */

#ifndef COCCO_SEARCH_GENOME_H
#define COCCO_SEARCH_GENOME_H

#include "mem/buffer_config.h"
#include "partition/partition.h"

namespace cocco {

/** The hardware design space being searched. */
struct DseSpace
{
    BufferStyle style = BufferStyle::Separate;
    CapacityGrid actGrid;
    CapacityGrid weightGrid;
    CapacityGrid sharedGrid;
    bool searchHw = true;      ///< false = partition-only (fixed buffer)
    BufferConfig fixed;        ///< used when !searchHw

    /** The paper's search space for @p style. */
    static DseSpace paperSpace(BufferStyle style);

    /** A frozen space around @p fixed (partition-only search). */
    static DseSpace fixedSpace(const BufferConfig &fixed);
};

/** One candidate solution. */
struct Genome
{
    Partition part;
    int actIdx = 0;    ///< global-buffer grid index (Separate)
    int weightIdx = 0; ///< weight-buffer grid index (Separate)
    int sharedIdx = 0; ///< shared-buffer grid index (Shared)

    /** Decode the hardware part into a concrete configuration. */
    BufferConfig buffer(const DseSpace &space) const;
};

} // namespace cocco

#endif // COCCO_SEARCH_GENOME_H
