/**
 * @file
 * Racing searcher portfolio (`algo: "portfolio"`).
 *
 * Runs several registered searchers concurrently over slices of the
 * evaluation-thread budget — JobManager-style ledger semantics: each
 * racer gets an integer thread grant with a floor of one, no nested
 * thread pools — all against the ONE shared EvalCache so racers warm
 * each other at the genome level. A PortfolioMonitor built on the
 * SearchObserver cooperative-cancellation hooks tracks each racer's
 * observed improvement rate, early-stops losers, and re-allocates a
 * stopped racer's thread grant to the smallest surviving racer (a
 * regrant rides the checkpoint/resume machinery: batch-boundary
 * snapshots resume bit-identically at any thread count, so growing a
 * survivor's grant mid-race never changes its results).
 *
 * Determinism contract (tested): with a fixed seed, each racer's
 * results are bit-identical to running that algorithm solo with the
 * same seed; only the race outcome — who wins, when losers stop —
 * depends on wall-clock. With `deterministicRace`, stop decisions are
 * pinned to eval-count milestones through a barrier, making winner
 * and per-racer stop points bit-identical across thread budgets.
 */

#ifndef COCCO_SEARCH_PORTFOLIO_H
#define COCCO_SEARCH_PORTFOLIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace cocco {

class SearcherRegistry; // search/driver.h

/** Portfolio knobs (the `"portfolio"` block of a run spec). */
struct PortfolioParams
{
    /** Registry keys raced against each other. Every key must be
     *  registered and must not itself be "portfolio". */
    std::vector<std::string> racers{"ga", "sa", "ts-random", "ts-grid"};

    /**
     * Pin cull decisions to eval counts: racers rendezvous at
     * checkEvals milestones and losers stop at deterministic sample
     * positions, so the winner is bit-identical across thread
     * budgets (CLI --deterministic-race; used by tests and bench).
     * Off = decisions fire on live stats as milestones are reached,
     * which is faster but makes the race outcome timing-dependent.
     */
    bool deterministicRace = false;

    /** Samples between cull-decision milestones (per racer). */
    int64_t checkEvals = 1000;

    /** No racer is culled before it recorded this many samples. */
    int64_t warmupEvals = 2000;
};

/** Register the "portfolio" meta-searcher (called by the
 *  SearcherRegistry constructor, like the greedy-place hook). */
void registerPortfolioSearcher(SearcherRegistry &reg);

} // namespace cocco

#endif // COCCO_SEARCH_PORTFOLIO_H
