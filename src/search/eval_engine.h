/**
 * @file
 * The parallel evaluation engine: evaluates batches of genomes
 * (decode buffer, in-situ capacity tuning, cost-model assembly)
 * concurrently on a fixed thread pool, with deterministic semantics.
 *
 * Determinism contract: a batch produces bit-identical results for
 * any thread count. This rests on three rules:
 *   - every stochastic decision made on behalf of batch element i
 *     draws from a private RNG stream derived from (seed, stream
 *     counter + i), never from a shared generator;
 *   - results are written back by index, so completion order is
 *     irrelevant;
 *   - the CostModel's profile memo is shared and thread-safe, and
 *     profiles are pure functions of the node set, so cache warm-up
 *     order cannot change any value.
 *
 * GA populations, SA neighbor batches and the two-step baselines all
 * submit work through this engine (paper Section 4.4's evaluation
 * stage, parallelized).
 */

#ifndef COCCO_SEARCH_EVAL_ENGINE_H
#define COCCO_SEARCH_EVAL_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "search/genome.h"
#include "sim/cost_model.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace cocco {

/** Evaluation-environment knobs shared by all search drivers. */
struct EvalOptions
{
    double alpha = 0.002;        ///< Formula 2 weight
    Metric metric = Metric::Energy;
    bool coExplore = true;       ///< false = Formula 1 (metric only)
    bool inSituSplit = true;     ///< capacity repair at evaluation
    int threads = 1;             ///< total parallelism; <= 0 = all cores
    uint64_t seed = 1;           ///< base of the per-genome RNG streams
};

/** Batched, thread-parallel genome evaluator. */
class EvalEngine
{
  public:
    /**
     * @param pool an existing pool to share (e.g. across the inner
     *             GAs of a two-step sweep); null = own one sized by
     *             opts.threads. Shared pools must not be used from
     *             two engines concurrently (parallelFor is not
     *             reentrant).
     */
    EvalEngine(CostModel &model, const DseSpace &space,
               const EvalOptions &opts,
               std::shared_ptr<ThreadPool> pool = nullptr);

    /** Resolved parallelism (>= 1). */
    int threads() const { return pool_ ? pool_->size() : 1; }

    /** The evaluation environment. */
    CostModel &model() { return model_; }
    const DseSpace &space() const { return space_; }
    const EvalOptions &options() const { return opts_; }

    /**
     * Evaluate one genome in the calling thread: decode its buffer,
     * apply in-situ capacity tuning (mutates genome.part), and return
     * the objective (Formula 2) or metric (Formula 1) value.
     */
    double evaluate(Genome &genome);

    /**
     * Evaluate a batch concurrently; genome i's cost lands in slot i
     * of the returned vector. In-situ tuning mutates each genome in
     * place, exactly as the serial path does.
     */
    std::vector<double> evaluateBatch(std::vector<Genome> &genomes);

    /**
     * Run fn(i, rng) for every i in [0, n) on the pool, where rng is
     * a private stream derived from (seed, stream counter + i). Use
     * this to generate *and* evaluate batch elements concurrently:
     * the per-index streams keep any stochastic construction (e.g.
     * GA variation operators) deterministic for any thread count.
     * Advances the stream counter by n.
     */
    void forEachStream(size_t n,
                       const std::function<void(size_t, Rng &)> &fn);

    /** RNG stream for the i-th element of the *next* batch. */
    Rng streamRng(uint64_t index) const;

  private:
    CostModel &model_;
    DseSpace space_;
    EvalOptions opts_;
    std::shared_ptr<ThreadPool> pool_; ///< null when threads == 1
    uint64_t streamCounter_ = 0;
};

} // namespace cocco

#endif // COCCO_SEARCH_EVAL_ENGINE_H
