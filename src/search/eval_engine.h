/**
 * @file
 * The parallel evaluation engine: evaluates batches of genomes
 * (decode buffer, in-situ capacity tuning, cost-model assembly)
 * concurrently on a fixed thread pool, with deterministic semantics.
 *
 * Determinism contract: a batch produces bit-identical results for
 * any thread count. This rests on three rules:
 *   - every stochastic decision made on behalf of batch element i
 *     draws from a private RNG stream derived from (seed, stream
 *     counter + i), never from a shared generator;
 *   - results are written back by index, so completion order is
 *     irrelevant;
 *   - the CostModel's profile memo is shared and thread-safe, and
 *     profiles are pure functions of the node set, so cache warm-up
 *     order cannot change any value.
 *
 * GA populations, SA neighbor batches and the two-step baselines all
 * submit work through this engine (paper Section 4.4's evaluation
 * stage, parallelized).
 *
 * Caching: unless disabled, every evaluation is memoized in an
 * EvalCache keyed by a content hash of (evaluation context, genome).
 * A hit restores the cached objective AND the cached in-situ-repaired
 * partition, so cached and uncached runs are bit-identical. Cache
 * misses additionally reuse per-subgraph cost contributions through
 * the cache's block level, so a genome that shares most blocks with
 * previously seen ones (the common case after one mutation) only
 * assembles the changed blocks. Pass a shared cache to warm-start
 * across engines/runs (e.g. two-step candidate sweeps, repeated CLI
 * runs via the on-disk format).
 */

#ifndef COCCO_SEARCH_EVAL_ENGINE_H
#define COCCO_SEARCH_EVAL_ENGINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "search/eval_cache.h"
#include "search/genome.h"
#include "search/observer.h"
#include "sim/cost_model.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace cocco {

struct CheckpointHooks; // search/checkpoint.h
class ParetoArchive;    // search/pareto.h

/**
 * The evaluation-environment core shared by every search driver:
 * GaOptions / SaOptions / TwoStepOptions all layer their algorithm
 * parameters on top of this struct, and a SearchSpec carries it
 * verbatim, so budget/seed/objective/parallelism/cache/early-stop
 * knobs are declared (and documented) exactly once.
 */
struct EvalOptions
{
    int64_t sampleBudget = 50000; ///< total evaluations for the run
    uint64_t seed = 1;           ///< base of the per-genome RNG streams
    double alpha = 0.002;        ///< Formula 2 weight
    Metric metric = Metric::Energy;
    bool coExplore = true;       ///< false = Formula 1 (metric only)
    bool inSituSplit = true;     ///< capacity repair at evaluation
    int threads = 1;             ///< total parallelism; <= 0 = all cores

    /**
     * Bound-based pruning + incremental re-evaluation (CLI
     * --no-prune clears it). Bounds may only skip work that cannot
     * win: results are bit-identical either way, which is why the
     * flag is absent from the evaluation-context salt — pruned and
     * unpruned runs legitimately share cache entries. Off buys a
     * slower run whose every intermediate is computed the long way,
     * for benchmarking and for verifying that claim.
     */
    bool pruning = true;

    bool cacheEnabled = true;    ///< memoize evaluations in an EvalCache
    size_t cacheCapacity = EvalCache::kDefaultCapacity; ///< genome entries

    /** Optional shared cache (warm-start / cross-run accumulation);
     *  null = the engine owns one per cacheCapacity. */
    std::shared_ptr<EvalCache> cache;

    /** Optional progress/cancellation callbacks (not owned; must
     *  outlive the run). Null = silent. */
    SearchObserver *observer = nullptr;

    /** Early stop: end the run after this much wall-clock (seconds;
     *  0 = unlimited). Checked between and, cooperatively, inside
     *  evaluation batches. */
    double timeLimitSec = 0.0;

    /** Early stop: end the run after this many recorded samples
     *  without the incumbent improving (0 = never). */
    int64_t stallLimit = 0;

    /** Optional checkpoint/resume wiring (search/checkpoint.h; not
     *  owned, must outlive the run). Read by the GA/SA/two-step
     *  drivers, ignored by the engine itself. Null = none. */
    CheckpointHooks *checkpoint = nullptr;

    /**
     * Optional non-dominated archive (search/pareto.h; not owned,
     * must outlive the run). When set, every feasible recorded sample
     * is offered as a {buffer, energy, latency} point on the driver
     * thread — this is `"mode": "pareto"`. Like the observer, it
     * never changes results, so it is absent from the evaluation-
     * context salt. Null = off.
     */
    ParetoArchive *pareto = nullptr;
};

/** Operator-reported gene-change accounting (see GeneDelta). */
struct DeltaStats
{
    uint64_t reports = 0;      ///< evaluations arriving with a delta
    uint64_t nodesTouched = 0; ///< total reassigned nodes across them
    uint64_t hwOnly = 0;       ///< deltas that touched hardware genes only
    uint64_t rewrites = 0;     ///< global partition rewrites (crossover)

    /** Counter-wise accumulation (e.g. across two-step inner GAs). */
    DeltaStats &
    operator+=(const DeltaStats &o)
    {
        reports += o.reports;
        nodesTouched += o.nodesTouched;
        hwOnly += o.hwOnly;
        rewrites += o.rewrites;
        return *this;
    }
};

/**
 * Per-block costs captured by one genome evaluation, carried on the
 * genome (Genome::evalRecord) so a child produced by mutation can
 * re-cost only its changed blocks. Reuse is content-verified: a block
 * is served from the record only when its exact node vector matches
 * and the record was taken under the same model salt and buffer
 * configuration, so a record can speed evaluation up but never change
 * a value. Immutable once attached (parents share it with any number
 * of concurrently evaluated children).
 *
 * Records only run when the engine has no EvalCache: the cache's
 * block level already provides the same verified incremental reuse
 * (plus cross-genome sharing), so a record there would be duplicate
 * bookkeeping on every miss. Lookup is a linear scan — partitions
 * hold tens of blocks, and the blocks are disjoint, so comparing
 * front nodes rejects non-matches in one probe.
 */
struct EvalRecord
{
    uint64_t modelSalt = 0; ///< graph + accelerator fingerprint
    BufferConfig buf;       ///< configuration the costs were taken under
    std::vector<std::vector<NodeId>> blocks; ///< evaluated node sets
    std::vector<SubgraphCost> costs;         ///< parallel to blocks
};

/** Batched, thread-parallel genome evaluator. */
class EvalEngine
{
  public:
    /**
     * @param pool  an existing pool to share (e.g. across the inner
     *              GAs of a two-step sweep); null = own one sized by
     *              opts.threads. Shared pools must not be used from
     *              two engines concurrently (parallelFor is not
     *              reentrant).
     * @param cache an existing cache to share/warm-start from; null =
     *              opts.cache, else own one sized by opts.cacheCapacity
     *              (none at all when opts.cacheEnabled is false).
     *              Shared caches may serve any number of engines
     *              concurrently.
     */
    EvalEngine(CostModel &model, const DseSpace &space,
               const EvalOptions &opts,
               std::shared_ptr<ThreadPool> pool = nullptr,
               std::shared_ptr<EvalCache> cache = nullptr);

    /** Resolved parallelism (>= 1). */
    int threads() const { return pool_ ? pool_->size() : 1; }

    /** The evaluation environment. */
    CostModel &model() { return model_; }
    const DseSpace &space() const { return space_; }
    const EvalOptions &options() const { return opts_; }

    /** The evaluation cache (null when disabled). */
    std::shared_ptr<EvalCache> cache() const { return cache_; }

    /** The run's observer/early-stop bookkeeping, built from the
     *  options (drivers record samples and poll stop through it). */
    SearchMonitor &monitor() { return monitor_; }

    /** Evaluation-context fingerprint: graph, accelerator, space and
     *  the result-affecting options (not seed/threads). Two engines
     *  share cache entries iff their salts match. */
    uint64_t salt() const { return salt_; }

    /** Gene-change accounting accumulated from evaluate() deltas. */
    DeltaStats deltaStats() const;

    /** Blocks served from a parent's evaluation record (incremental
     *  re-evaluation) across this engine's lifetime. */
    uint64_t recordBlocksReused() const;

    /** Blocks a present record could not cover (the mutation's actual
     *  re-cost work). */
    uint64_t recordBlocksRecosted() const;

    /**
     * Evaluate one genome in the calling thread: decode its buffer,
     * apply in-situ capacity tuning (mutates genome.part), and return
     * the objective (Formula 2) or metric (Formula 1) value. Served
     * from the cache when the genome was evaluated before (the cached
     * repaired partition is restored, so hits are indistinguishable
     * from recomputation). @p delta, when provided, reports which
     * genes the producing operator chain touched (accounting only —
     * correctness never depends on it).
     */
    double evaluate(Genome &genome, const GeneDelta *delta = nullptr);

    /**
     * Cheap lower bound on what evaluate(genome) would return: the
     * cost model's per-block roofline bounds over the genome's
     * pre-repair partition, folded into objective space. No in-situ
     * repair, no tile-flow enumeration — orders of magnitude cheaper
     * than a full evaluation. Valid against the post-repair cost
     * because capacity repair only ever splits blocks, and a block's
     * bound also bounds every split of it.
     */
    double objectiveBound(const Genome &genome);

    /**
     * Incumbent-screened evaluation: exact evaluate() whenever the
     * genome could beat @p incumbent. When pruning is on and
     * objectiveBound() already exceeds the incumbent, the expensive
     * evaluation (repair + tile-flow) is skipped and the bound is
     * returned instead — the return value is then NOT the genome's
     * cost, only a certificate that the cost exceeds the incumbent,
     * and genome.part is left unrepaired. For best-tracking callers
     * (two-step sweeps, throughput benches): never feed the returned
     * value into rank-sensitive logic like tournament selection or
     * Metropolis acceptance, where the exact costs of non-improving
     * genomes still matter. @p skipped, when non-null, reports
     * whether screening fired (counted in boundRejections()).
     */
    double evaluateBounded(Genome &genome, double incumbent,
                           bool *skipped = nullptr);

    /** Evaluations screened out by evaluateBounded() so far. */
    uint64_t boundRejections() const;

    /**
     * Evaluate a batch concurrently; genome i's cost lands in slot i
     * of the returned vector. In-situ tuning mutates each genome in
     * place, exactly as the serial path does.
     */
    std::vector<double> evaluateBatch(std::vector<Genome> &genomes);

    /**
     * Run fn(i, rng) for every i in [0, n) on the pool, where rng is
     * a private stream derived from (seed, stream counter + i). Use
     * this to generate *and* evaluate batch elements concurrently:
     * the per-index streams keep any stochastic construction (e.g.
     * GA variation operators) deterministic for any thread count.
     * Advances the stream counter by n.
     *
     * Cooperative cancellation: when the monitor reports a hard stop
     * (observer cancellation or the wall-clock limit) the remaining
     * elements are skipped. @return true when every element ran —
     * false means the batch is partial and the caller must discard
     * it and end the run (results would otherwise depend on timing).
     */
    bool forEachStream(size_t n,
                       const std::function<void(size_t, Rng &)> &fn);

    /** RNG stream for the i-th element of the *next* batch. */
    Rng streamRng(uint64_t index) const;

    /** The stream counter (checkpointing: capture it at a completed
     *  batch boundary — forEachStream advances it up front, so after
     *  a discarded partial batch the live value is already past the
     *  boundary state). */
    uint64_t streamCounter() const { return streamCounter_; }

    /** Restore a counter captured by streamCounter() (resume). */
    void setStreamCounter(uint64_t counter) { streamCounter_ = counter; }

  private:
    double evaluateUncached(Genome &genome);
    EvalCache::KeyView makeKey(uint64_t hash,
                               const std::vector<int> &block,
                               const Genome &genome) const;
    uint64_t genomeHash(const Genome &genome) const;
    void noteDelta(const GeneDelta &delta);

    CostModel &model_;
    DseSpace space_;
    EvalOptions opts_;
    std::shared_ptr<ThreadPool> pool_; ///< null when threads == 1
    std::shared_ptr<EvalCache> cache_; ///< null when caching disabled
    SearchMonitor monitor_;            ///< observer + early-stop state
    uint64_t salt_ = 0;      ///< full evaluation context (genome level)
    uint64_t modelSalt_ = 0; ///< graph + accelerator only (block level)
    uint64_t streamCounter_ = 0;

    std::atomic<uint64_t> deltaReports_{0};
    std::atomic<uint64_t> deltaNodes_{0};
    std::atomic<uint64_t> deltaHwOnly_{0};
    std::atomic<uint64_t> deltaRewrites_{0};
    std::atomic<uint64_t> recordReused_{0};
    std::atomic<uint64_t> recordRecosted_{0};
    std::atomic<uint64_t> boundRejections_{0};
};

} // namespace cocco

#endif // COCCO_SEARCH_EVAL_ENGINE_H
