#include "search/pareto.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/logging.h"

namespace cocco {

std::vector<ParetoPoint>
paretoFront(const std::vector<SamplePoint> &points)
{
    // Best metric per capacity.
    std::map<int64_t, double> best;
    for (const SamplePoint &pt : points) {
        auto [it, inserted] = best.emplace(pt.bufferBytes, pt.metric);
        if (!inserted && pt.metric < it->second)
            it->second = pt.metric;
    }

    // Sweep ascending capacity, keep strict metric improvements.
    std::vector<ParetoPoint> front;
    double best_metric = std::numeric_limits<double>::infinity();
    for (auto [bytes, metric] : best) {
        if (metric < best_metric) {
            ParetoPoint p;
            p.bufferBytes = bytes;
            p.metric = metric;
            front.push_back(p);
            best_metric = metric;
        }
    }

    // Alpha selection ranges: moving from point i to the larger point
    // i+1 pays (buf_{i+1} - buf_i) capacity for (metric_i -
    // metric_{i+1}) metric, so i+1 wins once
    //   alpha > (buf_{i+1} - buf_i) / (metric_i - metric_{i+1}).
    for (size_t i = 0; i < front.size(); ++i) {
        front[i].alphaLo =
            i == 0 ? 0.0
                   : static_cast<double>(front[i].bufferBytes -
                                         front[i - 1].bufferBytes) /
                         (front[i - 1].metric - front[i].metric);
        front[i].alphaHi =
            i + 1 == front.size()
                ? std::numeric_limits<double>::infinity()
                : static_cast<double>(front[i + 1].bufferBytes -
                                      front[i].bufferBytes) /
                      (front[i].metric - front[i + 1].metric);
    }
    // The alpha thresholds of a non-convex front are not monotone;
    // clamp ranges so selectByAlpha stays well-defined.
    for (size_t i = 1; i < front.size(); ++i)
        front[i].alphaLo = std::max(front[i].alphaLo, front[i - 1].alphaLo);
    return front;
}

const ParetoPoint &
selectByAlpha(const std::vector<ParetoPoint> &front, double alpha)
{
    if (front.empty())
        panic("selectByAlpha on an empty front");
    // Formula 2 minimization over the front (exact, small n).
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < front.size(); ++i) {
        double cost = static_cast<double>(front[i].bufferBytes) +
                      alpha * front[i].metric;
        if (cost < best_cost) {
            best_cost = cost;
            best = i;
        }
    }
    return front[best];
}

namespace {

/** a dominates b: no worse in every objective, better in one. */
bool
dominates(const ParetoEntry &a, const ParetoEntry &b)
{
    if (a.bufferBytes > b.bufferBytes || a.energyPj > b.energyPj ||
        a.latencyCycles > b.latencyCycles)
        return false;
    return a.bufferBytes < b.bufferBytes || a.energyPj < b.energyPj ||
           a.latencyCycles < b.latencyCycles;
}

bool
sameObjectives(const ParetoEntry &a, const ParetoEntry &b)
{
    return a.bufferBytes == b.bufferBytes && a.energyPj == b.energyPj &&
           a.latencyCycles == b.latencyCycles;
}

bool
archiveOrder(const ParetoEntry &a, const ParetoEntry &b)
{
    if (a.bufferBytes != b.bufferBytes)
        return a.bufferBytes < b.bufferBytes;
    if (a.energyPj != b.energyPj)
        return a.energyPj < b.energyPj;
    return a.latencyCycles < b.latencyCycles;
}

} // namespace

ParetoArchive::ParetoArchive(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 2))
{
}

bool
ParetoArchive::offer(const ParetoEntry &e)
{
    ++offered_;
    for (const ParetoEntry &kept : entries_)
        if (dominates(kept, e) || sameObjectives(kept, e))
            return false;
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const ParetoEntry &kept) {
                                      return dominates(e, kept);
                                  }),
                   entries_.end());
    entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e,
                                     archiveOrder),
                    e);
    while (entries_.size() > capacity_)
        truncate();
    return true;
}

void
ParetoArchive::merge(const ParetoArchive &o)
{
    for (const ParetoEntry &e : o.entries_)
        offer(e);
    // offer() counted the merged entries; fold in o's rejects too so
    // offered() stays "total points seen".
    offered_ += o.offered_ - static_cast<int64_t>(o.entries_.size());
}

/**
 * Drop the most crowded entry (NSGA-II crowding distance over the
 * three normalized objectives). Extremes per objective get infinite
 * distance and always survive; ties break toward keeping the earlier
 * entry in archive order, so truncation is deterministic.
 */
void
ParetoArchive::truncate()
{
    const size_t n = entries_.size();
    std::vector<double> crowd(n, 0.0);
    constexpr double kInf = std::numeric_limits<double>::infinity();

    auto accumulate = [&](auto value) {
        std::vector<size_t> idx(n);
        for (size_t i = 0; i < n; ++i)
            idx[i] = i;
        std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            return value(entries_[a]) < value(entries_[b]);
        });
        double span = value(entries_[idx[n - 1]]) - value(entries_[idx[0]]);
        crowd[idx[0]] = kInf;
        crowd[idx[n - 1]] = kInf;
        if (span <= 0.0)
            return;
        for (size_t i = 1; i + 1 < n; ++i)
            crowd[idx[i]] += (value(entries_[idx[i + 1]]) -
                              value(entries_[idx[i - 1]])) /
                             span;
    };
    accumulate([](const ParetoEntry &e) {
        return static_cast<double>(e.bufferBytes);
    });
    accumulate([](const ParetoEntry &e) { return e.energyPj; });
    accumulate([](const ParetoEntry &e) { return e.latencyCycles; });

    // Deterministic tie-break: latest entry in archive order among the
    // minimum-crowding set.
    double minCrowd = *std::min_element(crowd.begin(), crowd.end());
    size_t victim = 0;
    for (size_t i = 0; i < n; ++i)
        if (crowd[i] == minCrowd)
            victim = i;
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
}

double
ParetoArchive::hypervolume() const
{
    if (entries_.empty())
        return 0.0;

    // Normalize each objective to [0, 1] over the frontier's own span
    // (degenerate span -> 0), reference point at 1.05 per dimension.
    double bufLo = kInfeasiblePenalty, bufHi = -kInfeasiblePenalty;
    double enLo = kInfeasiblePenalty, enHi = -kInfeasiblePenalty;
    double latLo = kInfeasiblePenalty, latHi = -kInfeasiblePenalty;
    for (const ParetoEntry &e : entries_) {
        double buf = static_cast<double>(e.bufferBytes);
        bufLo = std::min(bufLo, buf);
        bufHi = std::max(bufHi, buf);
        enLo = std::min(enLo, e.energyPj);
        enHi = std::max(enHi, e.energyPj);
        latLo = std::min(latLo, e.latencyCycles);
        latHi = std::max(latHi, e.latencyCycles);
    }
    auto norm = [](double v, double lo, double hi) {
        return hi > lo ? (v - lo) / (hi - lo) : 0.0;
    };
    constexpr double kRef = 1.05;

    // Sweep latency ascending; each slab contributes (latency step to
    // the next plane) x (2D buf/energy staircase area of everything
    // seen so far). O(n^2), fine at archive capacities.
    struct P3
    {
        double buf, en, lat;
    };
    std::vector<P3> pts;
    pts.reserve(entries_.size());
    for (const ParetoEntry &e : entries_)
        pts.push_back({norm(static_cast<double>(e.bufferBytes), bufLo, bufHi),
                       norm(e.energyPj, enLo, enHi),
                       norm(e.latencyCycles, latLo, latHi)});
    std::sort(pts.begin(), pts.end(),
              [](const P3 &a, const P3 &b) { return a.lat < b.lat; });

    // 2D staircase: undominated (buf, en) prefix set, kept sorted by
    // buf ascending / en descending.
    std::vector<std::pair<double, double>> stair; // (buf, en)
    auto stairArea = [&]() {
        double area = 0.0, prevEn = kRef;
        for (auto [buf, en] : stair) {
            area += (kRef - buf) * (prevEn - en);
            prevEn = en;
        }
        return area;
    };
    double hv = 0.0;
    for (size_t i = 0; i < pts.size(); ++i) {
        // Insert pts[i] into the staircase unless 2D-dominated.
        bool dominated = false;
        for (auto [buf, en] : stair)
            if (buf <= pts[i].buf && en <= pts[i].en) {
                dominated = true;
                break;
            }
        if (!dominated) {
            stair.erase(std::remove_if(stair.begin(), stair.end(),
                                       [&](const std::pair<double, double> &s) {
                                           return pts[i].buf <= s.first &&
                                                  pts[i].en <= s.second;
                                       }),
                        stair.end());
            stair.insert(std::upper_bound(stair.begin(), stair.end(),
                                          std::make_pair(pts[i].buf,
                                                         pts[i].en)),
                         {pts[i].buf, pts[i].en});
        }
        double nextLat = i + 1 < pts.size() ? pts[i + 1].lat : kRef;
        if (nextLat > pts[i].lat)
            hv += (nextLat - pts[i].lat) * stairArea();
    }
    return hv;
}

std::vector<SamplePoint>
ParetoArchive::samplePoints() const
{
    std::vector<SamplePoint> out;
    out.reserve(entries_.size());
    for (const ParetoEntry &e : entries_)
        out.push_back({e.sample, e.metric, e.bufferBytes});
    return out;
}

} // namespace cocco
