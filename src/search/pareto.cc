#include "search/pareto.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/logging.h"

namespace cocco {

std::vector<ParetoPoint>
paretoFront(const std::vector<SamplePoint> &points)
{
    // Best metric per capacity.
    std::map<int64_t, double> best;
    for (const SamplePoint &pt : points) {
        auto [it, inserted] = best.emplace(pt.bufferBytes, pt.metric);
        if (!inserted && pt.metric < it->second)
            it->second = pt.metric;
    }

    // Sweep ascending capacity, keep strict metric improvements.
    std::vector<ParetoPoint> front;
    double best_metric = std::numeric_limits<double>::infinity();
    for (auto [bytes, metric] : best) {
        if (metric < best_metric) {
            ParetoPoint p;
            p.bufferBytes = bytes;
            p.metric = metric;
            front.push_back(p);
            best_metric = metric;
        }
    }

    // Alpha selection ranges: moving from point i to the larger point
    // i+1 pays (buf_{i+1} - buf_i) capacity for (metric_i -
    // metric_{i+1}) metric, so i+1 wins once
    //   alpha > (buf_{i+1} - buf_i) / (metric_i - metric_{i+1}).
    for (size_t i = 0; i < front.size(); ++i) {
        front[i].alphaLo =
            i == 0 ? 0.0
                   : static_cast<double>(front[i].bufferBytes -
                                         front[i - 1].bufferBytes) /
                         (front[i - 1].metric - front[i].metric);
        front[i].alphaHi =
            i + 1 == front.size()
                ? std::numeric_limits<double>::infinity()
                : static_cast<double>(front[i + 1].bufferBytes -
                                      front[i].bufferBytes) /
                      (front[i].metric - front[i + 1].metric);
    }
    // The alpha thresholds of a non-convex front are not monotone;
    // clamp ranges so selectByAlpha stays well-defined.
    for (size_t i = 1; i < front.size(); ++i)
        front[i].alphaLo = std::max(front[i].alphaLo, front[i - 1].alphaLo);
    return front;
}

const ParetoPoint &
selectByAlpha(const std::vector<ParetoPoint> &front, double alpha)
{
    if (front.empty())
        panic("selectByAlpha on an empty front");
    // Formula 2 minimization over the front (exact, small n).
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < front.size(); ++i) {
        double cost = static_cast<double>(front[i].bufferBytes) +
                      alpha * front[i].metric;
        if (cost < best_cost) {
            best_cost = cost;
            best = i;
        }
    }
    return front[best];
}

} // namespace cocco
