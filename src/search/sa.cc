#include "search/sa.h"

#include <algorithm>
#include <cmath>

#include "search/checkpoint.h"
#include "search/operators.h"
#include "search/pareto.h"
#include "util/logging.h"

namespace cocco {

SearchResult
simulatedAnnealing(CostModel &model, const DseSpace &space,
                   const SaOptions &opts)
{
    Rng rng(opts.seed);

    // Same evaluation environment as the GA (in-situ capacity tuning
    // included), shared through the parallel engine. SaOptions slices
    // to the shared EvalOptions core.
    EvalEngine engine(model, space, opts);
    SearchMonitor &mon = engine.monitor();
    EvalCacheStats cache_start;
    if (engine.cache())
        cache_start = engine.cache()->stats();

    int batch = std::max(opts.neighborBatch, 1);

    SearchResult res;
    Genome cur;
    double cur_cost = 0.0;
    double t0 = 0.0;

    auto record = [&](const Genome &genome, double cost) {
        ++res.samples;
        bool improved = cost < res.bestCost;
        if (improved) {
            res.bestCost = cost;
            res.best = genome;
        }
        res.trace.push_back({res.samples, res.bestCost});
        mon.recordSample(res.trace.back(), improved);
        if (opts.pareto) {
            BufferConfig buf = genome.buffer(space);
            GraphCost gc = model.partitionCost(genome.part, buf);
            if (gc.feasible)
                opts.pareto->offer({buf.totalBytes(), gc.energyPj,
                                    gc.latencyCycles,
                                    gc.metricValue(opts.metric),
                                    res.samples});
        }
    };

    // --- Checkpointing at sweep boundaries (see GA): `boundary` is
    //     the stream counter after the last fully recorded sweep; t0
    //     rides along because the temperature schedule is frozen from
    //     the very first evaluation. ---
    CheckpointHooks *ck = opts.checkpoint;
    const uint64_t fence = ck ? saCheckpointFence(model, space, opts) : 0;
    uint64_t boundary = 0;
    auto strip = [](Genome g) {
        g.evalRecord = nullptr;
        return g;
    };
    auto make_checkpoint = [&]() {
        SearchCheckpoint c;
        c.algo = "sa";
        c.fence = fence;
        c.seed = opts.seed;
        c.samples = res.samples;
        c.bestCost = res.bestCost;
        c.best = strip(res.best);
        c.trace = res.trace;
        c.rng = rng.state();
        c.streamCounter = boundary;
        c.sinceImprove = mon.samplesSinceImprove();
        c.hasSa = true;
        c.saCur = strip(cur);
        c.saCurCost = cur_cost;
        c.saT0 = t0;
        return c;
    };

    if (ck && ck->resume) {
        const SearchCheckpoint &c = *ck->resume;
        if (c.algo != "sa" || c.fence != fence)
            fatal("checkpoint does not match this run (saved by \"%s\", "
                  "fence mismatch or different configuration)",
                  c.algo.c_str());
        if (!c.hasSa)
            fatal("checkpoint is missing the SA state section");
        res.samples = c.samples;
        res.bestCost = c.bestCost;
        res.best = c.best;
        res.trace = c.trace;
        rng.setState(c.rng);
        engine.setStreamCounter(c.streamCounter);
        boundary = c.streamCounter;
        mon.restoreStall(c.sinceImprove);
        cur = c.saCur;
        cur_cost = c.saCurCost;
        t0 = c.saT0;
    } else {
        // The initial state is evaluated serially (no stream draw), so
        // the boundary stream counter stays 0 here.
        cur = randomGenome(model.graph(), space, rng);
        cur_cost = engine.evaluate(cur);
        record(cur, cur_cost);
        mon.batchDone(res.samples, res.bestCost);
        t0 = std::max(cur_cost * opts.tempStartFrac, 1.0);
    }
    double t_end = t0 * opts.tempEndFrac;

    while (!mon.shouldStop() && res.samples < opts.sampleBudget) {
        size_t want = static_cast<size_t>(std::min<int64_t>(
            batch, opts.sampleBudget - res.samples));

        // Speculatively mutate `want` neighbors of the current state
        // and evaluate them as one batch; per-neighbor RNG streams
        // keep the batch deterministic for any thread count. A batch
        // cut short by a hard stop is discarded whole (see GA).
        const Genome snapshot = cur;
        std::vector<Genome> cands(want);
        std::vector<double> costs(want, kInfeasiblePenalty);
        bool complete = engine.forEachStream(want, [&](size_t i, Rng &r) {
            Genome cand = snapshot;
            GeneDelta delta;
            switch (r.index(3)) {
              case 0:
                mutateModifyNode(model.graph(), cand, r, &delta);
                break;
              case 1:
                mutateSplitSubgraph(model.graph(), cand, r, &delta);
                break;
              default:
                mutateMergeSubgraph(model.graph(), cand, r, &delta);
            }
            if (space.searchHw && r.bernoulli(opts.dseMutationRate))
                mutateDse(space, cand, r, 2.0, &delta);
            cands[i] = std::move(cand);
            costs[i] = engine.evaluate(cands[i], &delta);
        });

        if (!complete)
            break;

        // Sequential Metropolis sweep in index order.
        for (size_t i = 0; i < want; ++i) {
            double progress =
                static_cast<double>(res.samples) / opts.sampleBudget;
            double temp = t0 * std::pow(t_end / t0, progress);
            record(cands[i], costs[i]);
            double delta = costs[i] - cur_cost;
            if (delta <= 0 || rng.bernoulli(std::exp(-delta / temp))) {
                cur = std::move(cands[i]);
                cur_cost = costs[i];
            }
        }
        mon.batchDone(res.samples, res.bestCost);
        boundary = engine.streamCounter();
        if (ck && ck->save &&
            ck->request.exchange(false, std::memory_order_acq_rel))
            ck->save(make_checkpoint());
    }

    res.stop = mon.stopReason();
    if (ck && ck->save && ck->saveOnStop && res.samples > 0 &&
        (res.stop == StopReason::Cancelled ||
         res.stop == StopReason::TimeLimit))
        ck->save(make_checkpoint());
    res.bestBuffer = res.best.buffer(space);
    res.bestGraphCost = model.partitionCost(res.best.part, res.bestBuffer);
    if (engine.cache())
        res.cacheStats = engine.cache()->stats() - cache_start;
    res.cacheStats.incReusedBlocks = engine.recordBlocksReused();
    res.cacheStats.incRecostBlocks = engine.recordBlocksRecosted();
    res.deltaStats = engine.deltaStats();
    return res;
}

} // namespace cocco
