#include "search/sa.h"

#include <algorithm>
#include <cmath>

#include "search/operators.h"
#include "util/logging.h"

namespace cocco {

SearchResult
simulatedAnnealing(CostModel &model, const DseSpace &space,
                   const SaOptions &opts)
{
    Rng rng(opts.seed);

    // Same evaluation environment as the GA (in-situ capacity tuning
    // included), shared through the parallel engine. SaOptions slices
    // to the shared EvalOptions core.
    EvalEngine engine(model, space, opts);
    SearchMonitor &mon = engine.monitor();
    EvalCacheStats cache_start;
    if (engine.cache())
        cache_start = engine.cache()->stats();

    int batch = std::max(opts.neighborBatch, 1);

    SearchResult res;
    Genome cur = randomGenome(model.graph(), space, rng);
    double cur_cost = engine.evaluate(cur);

    auto record = [&](const Genome &genome, double cost) {
        ++res.samples;
        bool improved = cost < res.bestCost;
        if (improved) {
            res.bestCost = cost;
            res.best = genome;
        }
        res.trace.push_back({res.samples, res.bestCost});
        mon.recordSample(res.trace.back(), improved);
    };
    record(cur, cur_cost);
    mon.batchDone(res.samples, res.bestCost);

    double t0 = std::max(cur_cost * opts.tempStartFrac, 1.0);
    double t_end = t0 * opts.tempEndFrac;

    while (!mon.shouldStop() && res.samples < opts.sampleBudget) {
        size_t want = static_cast<size_t>(std::min<int64_t>(
            batch, opts.sampleBudget - res.samples));

        // Speculatively mutate `want` neighbors of the current state
        // and evaluate them as one batch; per-neighbor RNG streams
        // keep the batch deterministic for any thread count. A batch
        // cut short by a hard stop is discarded whole (see GA).
        const Genome snapshot = cur;
        std::vector<Genome> cands(want);
        std::vector<double> costs(want, kInfeasiblePenalty);
        bool complete = engine.forEachStream(want, [&](size_t i, Rng &r) {
            Genome cand = snapshot;
            GeneDelta delta;
            switch (r.index(3)) {
              case 0:
                mutateModifyNode(model.graph(), cand, r, &delta);
                break;
              case 1:
                mutateSplitSubgraph(model.graph(), cand, r, &delta);
                break;
              default:
                mutateMergeSubgraph(model.graph(), cand, r, &delta);
            }
            if (space.searchHw && r.bernoulli(opts.dseMutationRate))
                mutateDse(space, cand, r, 2.0, &delta);
            cands[i] = std::move(cand);
            costs[i] = engine.evaluate(cands[i], &delta);
        });

        if (!complete)
            break;

        // Sequential Metropolis sweep in index order.
        for (size_t i = 0; i < want; ++i) {
            double progress =
                static_cast<double>(res.samples) / opts.sampleBudget;
            double temp = t0 * std::pow(t_end / t0, progress);
            record(cands[i], costs[i]);
            double delta = costs[i] - cur_cost;
            if (delta <= 0 || rng.bernoulli(std::exp(-delta / temp))) {
                cur = std::move(cands[i]);
                cur_cost = costs[i];
            }
        }
        mon.batchDone(res.samples, res.bestCost);
    }

    res.stop = mon.stopReason();
    res.bestBuffer = res.best.buffer(space);
    res.bestGraphCost = model.partitionCost(res.best.part, res.bestBuffer);
    if (engine.cache())
        res.cacheStats = engine.cache()->stats() - cache_start;
    res.cacheStats.incReusedBlocks = engine.recordBlocksReused();
    res.cacheStats.incRecostBlocks = engine.recordBlocksRecosted();
    res.deltaStats = engine.deltaStats();
    return res;
}

} // namespace cocco
