#include "search/sa.h"

#include <cmath>

#include "search/operators.h"
#include "util/logging.h"

namespace cocco {

SearchResult
simulatedAnnealing(CostModel &model, const DseSpace &space,
                   const SaOptions &opts)
{
    Rng rng(opts.seed);

    // Reuse the GA's evaluation (in-situ capacity tuning included).
    GaOptions ga_opts;
    ga_opts.alpha = opts.alpha;
    ga_opts.metric = opts.metric;
    ga_opts.coExplore = opts.coExplore;
    GeneticSearch evaluator(model, space, ga_opts);

    SearchResult res;
    Genome cur = randomGenome(model.graph(), space, rng);
    double cur_cost = evaluator.evaluate(cur);

    auto record = [&](const Genome &genome, double cost) {
        ++res.samples;
        if (cost < res.bestCost) {
            res.bestCost = cost;
            res.best = genome;
        }
        res.trace.push_back({res.samples, res.bestCost});
    };
    record(cur, cur_cost);

    double t0 = std::max(cur_cost * opts.tempStartFrac, 1.0);
    double t_end = t0 * opts.tempEndFrac;

    while (res.samples < opts.sampleBudget) {
        double progress =
            static_cast<double>(res.samples) / opts.sampleBudget;
        double temp = t0 * std::pow(t_end / t0, progress);

        Genome cand = cur;
        switch (rng.index(3)) {
          case 0:
            mutateModifyNode(model.graph(), cand, rng);
            break;
          case 1:
            mutateSplitSubgraph(model.graph(), cand, rng);
            break;
          default:
            mutateMergeSubgraph(model.graph(), cand, rng);
        }
        if (space.searchHw && rng.bernoulli(opts.dseMutationRate))
            mutateDse(space, cand, rng);

        double cand_cost = evaluator.evaluate(cand);
        record(cand, cand_cost);

        double delta = cand_cost - cur_cost;
        if (delta <= 0 || rng.bernoulli(std::exp(-delta / temp))) {
            cur = std::move(cand);
            cur_cost = cand_cost;
        }
    }

    res.bestBuffer = res.best.buffer(space);
    res.bestGraphCost = model.partitionCost(res.best.part, res.bestBuffer);
    return res;
}

} // namespace cocco
