#include "search/two_step.h"

#include <algorithm>
#include <cmath>

#include "search/checkpoint.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** Candidate hardware point = grid indices. */
struct HwPoint
{
    int actIdx = 0;
    int weightIdx = 0;
    int sharedIdx = 0;
};

BufferConfig
decode(const DseSpace &space, const HwPoint &pt)
{
    if (!space.searchHw)
        return space.fixed;
    BufferConfig c;
    c.style = space.style;
    if (space.style == BufferStyle::Shared) {
        c.sharedBytes = space.sharedGrid.value(pt.sharedIdx);
    } else {
        c.actBytes = space.actGrid.value(pt.actIdx);
        c.weightBytes = space.weightGrid.value(pt.weightIdx);
    }
    return c;
}

/**
 * Forwards only cancellation into the inner GAs: the outer sweep owns
 * the observer's trace (folded global samples), so inner callbacks
 * stay silent, but a cancel must still interrupt an inner run
 * mid-batch rather than wait for the candidate to finish.
 */
class InnerCancel : public SearchObserver
{
  public:
    explicit InnerCancel(SearchObserver *outer) : outer_(outer) {}

    bool
    cancelled() override
    {
        return outer_ && outer_->cancelled();
    }

  private:
    SearchObserver *outer_;
};

SearchResult
runCandidates(CostModel &model, const DseSpace &space,
              const std::vector<HwPoint> &candidates,
              const TwoStepOptions &opts, const char *algo)
{
    SearchResult global;
    uint64_t sub_seed = opts.seed;
    SearchMonitor mon(opts.observer, opts.timeLimitSec, opts.stallLimit);
    InnerCancel inner_cancel(opts.observer);

    // Bound-based candidate rejection: the whole graph as one block is
    // a valid roofline lower bound over every partition of it (any cut
    // only adds boundary traffic; weights and MACs are exact sums), so
    // a capacity whose bound already exceeds the incumbent cannot
    // yield an improvement and its inner GA is skipped wholesale. The
    // skip replicates the un-run GA's observable effects exactly — the
    // folded trace entries, monitor bookkeeping, and the candidate's
    // seed draw — so pruned and unpruned sweeps stay bit-identical.
    // Guarded off under an observer or wall-clock limit, where an
    // inner run could legitimately be cut short mid-batch.
    const bool can_reject = opts.pruning && !opts.observer &&
                            opts.timeLimitSec == 0.0 && opts.alpha >= 0.0;
    std::vector<NodeId> all_nodes(
        static_cast<size_t>(model.graph().size()));
    for (size_t i = 0; i < all_nodes.size(); ++i)
        all_nodes[i] = static_cast<NodeId>(i);
    uint64_t bound_rejections = 0, bound_skipped = 0;
    uint64_t inc_reused = 0, inc_recost = 0;

    // One worker pool shared by every inner GA: the candidate loop
    // must not pay thread spawn/join per hardware point.
    std::shared_ptr<ThreadPool> pool;
    if (ThreadPool::resolveThreads(opts.threads) > 1)
        pool = std::make_shared<ThreadPool>(opts.threads);

    // One evaluation cache shared by every inner GA likewise.
    std::shared_ptr<EvalCache> cache = opts.cache;
    if (!cache && opts.cacheEnabled)
        cache = std::make_shared<EvalCache>(opts.cacheCapacity);
    EvalCacheStats cache_start;
    if (cache)
        cache_start = cache->stats();

    // --- Checkpointing at candidate boundaries: the sweep's serial
    //     state between candidates is (index, sub_seed, folded trace,
    //     incumbent, counters). Inner GAs run without hooks of their
    //     own, so an interrupt mid-candidate resumes by re-running
    //     that candidate wholly from the pre-candidate snapshot —
    //     `pending` — which is exactly what the uninterrupted run did
    //     too (bit-identity holds either way). A candidate that DID
    //     finish advances `pending` past itself so a later save never
    //     redoes completed work. ---
    CheckpointHooks *ck = opts.checkpoint;
    const uint64_t fence =
        ck ? twoStepCheckpointFence(model, space, opts, algo) : 0;
    size_t start_idx = 0;
    if (ck && ck->resume) {
        const SearchCheckpoint &c = *ck->resume;
        if (c.algo != algo || c.fence != fence)
            fatal("checkpoint does not match this run (saved by \"%s\", "
                  "fence mismatch or different configuration)",
                  c.algo.c_str());
        if (!c.hasTs)
            fatal("checkpoint is missing the two-step state section");
        global.samples = c.samples;
        global.bestCost = c.bestCost;
        global.best = c.best;
        global.bestBuffer = c.tsBestBuffer;
        global.trace = c.trace;
        global.deltaStats = c.tsDelta;
        sub_seed = c.tsSubSeed;
        start_idx = static_cast<size_t>(c.tsCandidate);
        mon.restoreStall(c.sinceImprove);
        bound_rejections = c.tsBoundRejections;
        bound_skipped = c.tsBoundSkippedSamples;
        inc_reused = c.tsIncReused;
        inc_recost = c.tsIncRecost;
    }
    auto snapshot = [&](size_t next_idx) {
        SearchCheckpoint c;
        c.algo = algo;
        c.fence = fence;
        c.seed = opts.seed;
        c.samples = global.samples;
        c.bestCost = global.bestCost;
        c.best = global.best;
        c.best.evalRecord = nullptr;
        c.trace = global.trace;
        c.sinceImprove = mon.samplesSinceImprove();
        c.hasTs = true;
        c.tsCandidate = static_cast<int64_t>(next_idx);
        c.tsSubSeed = sub_seed;
        c.tsBestBuffer = global.bestBuffer;
        c.tsBoundRejections = bound_rejections;
        c.tsBoundSkippedSamples = bound_skipped;
        c.tsIncReused = inc_reused;
        c.tsIncRecost = inc_recost;
        c.tsDelta = global.deltaStats;
        return c;
    };
    SearchCheckpoint pending;
    bool have_pending = false;

    for (size_t idx = start_idx; idx < candidates.size(); ++idx) {
        if (mon.shouldStop() || global.samples >= opts.sampleBudget)
            break;
        if (ck && ck->save) {
            pending = snapshot(idx);
            have_pending = true;
            if (ck->request.exchange(false, std::memory_order_acq_rel))
                ck->save(pending);
        }
        const HwPoint &pt = candidates[idx];
        BufferConfig buf = decode(space, pt);

        if (can_reject && global.bestCost < kInfeasiblePenalty) {
            SubgraphBound gb = model.subgraphBound(all_nodes, buf);
            double lb = gb.metricValue(opts.metric);
            if (opts.coExplore)
                lb = static_cast<double>(buf.totalBytes()) +
                     opts.alpha * lb;
            if (lb > global.bestCost) {
                // Every folded cost this GA could produce is >= lb
                // (feasible: metric >= the bound; infeasible: the
                // penalty, which exceeds the incumbent by the guard),
                // so no trace entry would improve. Fold the exact
                // sample count the inner GA would have recorded: the
                // full init population, then generations up to the
                // budget.
                int64_t inner_budget = std::min<int64_t>(
                    opts.samplesPerCandidate,
                    opts.sampleBudget - global.samples);
                int64_t folded = std::max<int64_t>(
                    static_cast<int64_t>(opts.population), inner_budget);
                ++sub_seed; // consume the candidate's seed draw
                ++bound_rejections;
                bound_skipped += static_cast<uint64_t>(folded);
                for (int64_t s = 0; s < folded; ++s) {
                    ++global.samples;
                    global.trace.push_back(
                        {global.samples, global.bestCost});
                    mon.recordSample(global.trace.back(), false);
                }
                mon.batchDone(global.samples, global.bestCost);
                if (ck && ck->save) {
                    pending = snapshot(idx + 1);
                    have_pending = true;
                }
                continue;
            }
        }

        GaOptions ga;
        ga.population = opts.population;
        ga.sampleBudget = std::min<int64_t>(
            opts.samplesPerCandidate, opts.sampleBudget - global.samples);
        ga.seed = ++sub_seed;
        ga.alpha = opts.alpha;
        ga.metric = opts.metric;
        ga.coExplore = false; // partition-only under this capacity
        ga.inSituSplit = opts.inSituSplit;
        ga.pruning = opts.pruning;
        ga.threads = opts.threads; // batch populations through the engine
        ga.cacheEnabled = opts.cacheEnabled;
        ga.cacheCapacity = opts.cacheCapacity;
        ga.cache = cache;
        ga.pareto = opts.pareto; // frontier offers from every candidate
        // Early stop propagates as cancellation + remaining wall
        // clock; the stall limit stays an outer concern (it counts
        // folded global samples, not inner ones).
        if (opts.observer)
            ga.observer = &inner_cancel;
        if (opts.timeLimitSec > 0.0)
            ga.timeLimitSec = std::max(mon.remainingSec(), 1e-9);

        DseSpace fixed = DseSpace::fixedSpace(buf);
        GeneticSearch search(model, fixed, ga, pool);
        SearchResult inner = search.run();
        global.deltaStats += inner.deltaStats;
        inc_reused += inner.cacheStats.incReusedBlocks;
        inc_recost += inner.cacheStats.incRecostBlocks;

        // Fold the inner (metric-only) trace into the global trace:
        // Formula 2 per candidate capacity when co-exploring (the
        // paper's setup), the raw metric when partition-only.
        for (const TracePoint &tp : inner.trace) {
            double cost = tp.bestCost;
            if (opts.coExplore && cost < kInfeasiblePenalty)
                cost = buf.totalBytes() + opts.alpha * cost;
            ++global.samples;
            bool improved = cost < global.bestCost;
            if (improved) {
                global.bestCost = cost;
                global.best = inner.best;
                global.bestBuffer = buf;
            }
            global.trace.push_back({global.samples, global.bestCost});
            mon.recordSample(global.trace.back(), improved);
        }
        mon.batchDone(global.samples, global.bestCost);

        // Only a full inner run advances the boundary: one cut short
        // (cancel / time limit) folded a timing-dependent partial
        // trace, so the pre-candidate snapshot stays authoritative and
        // a resume re-runs this candidate from scratch.
        if (ck && ck->save && inner.stop == StopReason::BudgetExhausted) {
            pending = snapshot(idx + 1);
            have_pending = true;
        }
    }

    global.stop = mon.stopReason();
    if (ck && ck->save && ck->saveOnStop && have_pending &&
        (global.stop == StopReason::Cancelled ||
         global.stop == StopReason::TimeLimit))
        ck->save(pending);
    if (global.bestCost < kInfeasiblePenalty) {
        global.bestGraphCost =
            model.partitionCost(global.best.part, global.bestBuffer);
    }
    if (cache)
        global.cacheStats = cache->stats() - cache_start;
    global.cacheStats.boundRejections = bound_rejections;
    global.cacheStats.boundSkippedSamples = bound_skipped;
    global.cacheStats.incReusedBlocks = inc_reused;
    global.cacheStats.incRecostBlocks = inc_recost;
    return global;
}

/**
 * Frozen space (partition-only): capacity sampling is degenerate —
 * the sweep collapses to the one fixed buffer, which gets the whole
 * sample budget instead of a per-candidate slice.
 */
bool
frozenSweep(CostModel &model, const DseSpace &space,
            const TwoStepOptions &opts, SearchResult *out,
            const char *algo)
{
    if (space.searchHw)
        return false;
    TwoStepOptions single = opts;
    single.samplesPerCandidate = opts.sampleBudget;
    *out = runCandidates(model, space, {HwPoint{}}, single, algo);
    return true;
}

} // namespace

SearchResult
twoStepRandom(CostModel &model, const DseSpace &space,
              const TwoStepOptions &opts)
{
    SearchResult frozen;
    if (frozenSweep(model, space, opts, &frozen, "ts-random"))
        return frozen;
    Rng rng(opts.seed * 31 + 7);
    int64_t n = std::max<int64_t>(
        1, opts.sampleBudget / std::max<int64_t>(1,
                                                 opts.samplesPerCandidate));
    std::vector<HwPoint> candidates;
    for (int64_t i = 0; i < n; ++i) {
        HwPoint pt;
        pt.actIdx = static_cast<int>(rng.uniformInt(0,
                                                    space.actGrid.count - 1));
        pt.weightIdx =
            static_cast<int>(rng.uniformInt(0, space.weightGrid.count - 1));
        pt.sharedIdx =
            static_cast<int>(rng.uniformInt(0, space.sharedGrid.count - 1));
        candidates.push_back(pt);
    }
    return runCandidates(model, space, candidates, opts, "ts-random");
}

SearchResult
twoStepGrid(CostModel &model, const DseSpace &space,
            const TwoStepOptions &opts)
{
    SearchResult frozen;
    if (frozenSweep(model, space, opts, &frozen, "ts-grid"))
        return frozen;
    int64_t n = std::max<int64_t>(
        1, opts.sampleBudget / std::max<int64_t>(1,
                                                 opts.samplesPerCandidate));
    std::vector<HwPoint> candidates;

    if (space.style == BufferStyle::Shared) {
        int stride = std::max<int>(
            1, static_cast<int>(space.sharedGrid.count / n));
        for (int i = space.sharedGrid.count - 1; i >= 0; i -= stride) {
            HwPoint pt;
            pt.sharedIdx = i;
            candidates.push_back(pt);
        }
    } else {
        // Coarsen both dimensions so the pair count fits the budget,
        // then walk from large to small total capacity.
        int total = space.actGrid.count * space.weightGrid.count;
        int stride = std::max<int>(
            1, static_cast<int>(std::ceil(std::sqrt(
                   static_cast<double>(total) / static_cast<double>(n)))));
        for (int a = space.actGrid.count - 1; a >= 0; a -= stride)
            for (int w = space.weightGrid.count - 1; w >= 0; w -= stride) {
                HwPoint pt;
                pt.actIdx = a;
                pt.weightIdx = w;
                candidates.push_back(pt);
            }
        std::sort(candidates.begin(), candidates.end(),
                  [&](const HwPoint &x, const HwPoint &y) {
                      return decode(space, x).totalBytes() >
                             decode(space, y).totalBytes();
                  });
    }
    return runCandidates(model, space, candidates, opts, "ts-grid");
}

} // namespace cocco
