/**
 * @file
 * The customized GA operators of paper Section 4.4 and Figure 9:
 * random initialization, the subgraph-reproducing crossover, and the
 * four mutations (modify-node, split-subgraph, merge-subgraph,
 * mutation-DSE). Every operator returns a structurally valid genome
 * (operators call the repair pipeline); capacity enforcement happens
 * at evaluation time (in-situ tuning).
 */

#ifndef COCCO_SEARCH_OPERATORS_H
#define COCCO_SEARCH_OPERATORS_H

#include "search/genome.h"
#include "util/random.h"

namespace cocco {

/**
 * Random initialization (Section 4.4.1): P(v) chosen per node in
 * topological order within its valid range; hardware indices uniform
 * over the grids.
 */
Genome randomGenome(const Graph &g, const DseSpace &space, Rng &rng);

/**
 * Crossover (Section 4.4.2, Figure 9(b)): each undecided layer picks
 * a random parent and reproduces that parent's subgraph; collisions
 * with already-decided layers are resolved by splitting out a new
 * subgraph or merging with a decided one (both choices sampled).
 * Hardware indices average (rounded to the grid).
 *
 * Every operator optionally reports what it touched through @p delta
 * (appended, never cleared, so one report can span an operator
 * chain); crossover reports a global partition rewrite.
 */
Genome crossover(const Graph &g, const DseSpace &space, const Genome &dad,
                 const Genome &mom, Rng &rng, GeneDelta *delta = nullptr);

/** modify-node (Figure 9(c)): reassign one random node. */
void mutateModifyNode(const Graph &g, Genome &genome, Rng &rng,
                      GeneDelta *delta = nullptr);

/** split-subgraph (Figure 9(d)): split one random multi-node block. */
void mutateSplitSubgraph(const Graph &g, Genome &genome, Rng &rng,
                         GeneDelta *delta = nullptr);

/** merge-subgraph (Figure 9(e)): merge two adjacent blocks. */
void mutateMergeSubgraph(const Graph &g, Genome &genome, Rng &rng,
                         GeneDelta *delta = nullptr);

/**
 * mutation-DSE: gaussian step on the capacity grid indices
 * (std deviation @p sigma grid steps).
 */
void mutateDse(const DseSpace &space, Genome &genome, Rng &rng,
               double sigma = 2.0, GeneDelta *delta = nullptr);

} // namespace cocco

#endif // COCCO_SEARCH_OPERATORS_H
