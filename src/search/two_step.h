/**
 * @file
 * Two-step DSE baselines (paper Section 5.1.3): sample memory
 * capacity candidates first (random search or grid search), then run
 * a partition-only GA for each candidate with a fixed per-candidate
 * sample budget; the best (capacity, partition) pair wins. Grid
 * search walks the candidates from large to small capacity, matching
 * the paper's setup.
 */

#ifndef COCCO_SEARCH_TWO_STEP_H
#define COCCO_SEARCH_TWO_STEP_H

#include "search/ga.h"

namespace cocco {

/** Two-step-specific parameters (shared knobs live in EvalOptions). */
struct TwoStepParams
{
    int64_t samplesPerCandidate = 5000; ///< paper: 5,000 per capacity
    int population = 100;               ///< inner-GA population
};

/**
 * Two-step driver options: the shared evaluation core + the two-step
 * block. The cache knobs behave as in GaOptions, with one cache
 * shared across all inner GAs: genome entries are fenced per
 * candidate buffer (the salt covers the frozen space), while the
 * profile memo and the accounting accumulate across the sweep.
 * coExplore selects the outer fold: true scores each candidate with
 * Formula 2 (capacity + alpha * metric, the paper's setup), false
 * folds the raw metric (Formula 1) — useful when the space is frozen.
 */
struct TwoStepOptions : EvalOptions, TwoStepParams
{
};

/** Random-search capacity sampling + GA partition (RS+GA). */
SearchResult twoStepRandom(CostModel &model, const DseSpace &space,
                           const TwoStepOptions &opts);

/** Grid-search capacity sweep (large to small) + GA partition (GS+GA). */
SearchResult twoStepGrid(CostModel &model, const DseSpace &space,
                         const TwoStepOptions &opts);

} // namespace cocco

#endif // COCCO_SEARCH_TWO_STEP_H
