/**
 * @file
 * Two-step DSE baselines (paper Section 5.1.3): sample memory
 * capacity candidates first (random search or grid search), then run
 * a partition-only GA for each candidate with a fixed per-candidate
 * sample budget; the best (capacity, partition) pair wins. Grid
 * search walks the candidates from large to small capacity, matching
 * the paper's setup.
 */

#ifndef COCCO_SEARCH_TWO_STEP_H
#define COCCO_SEARCH_TWO_STEP_H

#include "search/ga.h"

namespace cocco {

/** Two-step driver options. */
struct TwoStepOptions
{
    int64_t sampleBudget = 50000;
    int64_t samplesPerCandidate = 5000; ///< paper: 5,000 per capacity
    uint64_t seed = 1;
    double alpha = 0.002;
    Metric metric = Metric::Energy;
    int population = 100;
    /** Evaluation parallelism for the per-candidate inner GAs
     *  (<= 0 = one per hardware thread). */
    int threads = 1;

    /** Evaluation-cache knobs (see GaOptions). One cache is shared
     *  across all inner GAs: genome entries are fenced per candidate
     *  buffer (the salt covers the frozen space), while the profile
     *  memo and the accounting accumulate across the sweep. */
    bool cacheEnabled = true;
    size_t cacheCapacity = EvalCache::kDefaultCapacity;
    std::shared_ptr<EvalCache> cache;
};

/** Random-search capacity sampling + GA partition (RS+GA). */
SearchResult twoStepRandom(CostModel &model, const DseSpace &space,
                           const TwoStepOptions &opts);

/** Grid-search capacity sweep (large to small) + GA partition (GS+GA). */
SearchResult twoStepGrid(CostModel &model, const DseSpace &space,
                         const TwoStepOptions &opts);

} // namespace cocco

#endif // COCCO_SEARCH_TWO_STEP_H
