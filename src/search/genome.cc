#include "search/genome.h"

namespace cocco {

DseSpace
DseSpace::paperSpace(BufferStyle style)
{
    DseSpace s;
    s.style = style;
    s.actGrid = globalBufferGrid();
    s.weightGrid = weightBufferGrid();
    s.sharedGrid = sharedBufferGrid();
    s.searchHw = true;
    return s;
}

DseSpace
DseSpace::fixedSpace(const BufferConfig &fixed)
{
    DseSpace s;
    s.style = fixed.style;
    s.actGrid = globalBufferGrid();
    s.weightGrid = weightBufferGrid();
    s.sharedGrid = sharedBufferGrid();
    s.searchHw = false;
    s.fixed = fixed;
    return s;
}

BufferConfig
Genome::buffer(const DseSpace &space) const
{
    if (!space.searchHw)
        return space.fixed;
    BufferConfig c;
    c.style = space.style;
    if (space.style == BufferStyle::Shared) {
        c.sharedBytes = space.sharedGrid.value(sharedIdx);
    } else {
        c.actBytes = space.actGrid.value(actIdx);
        c.weightBytes = space.weightGrid.value(weightIdx);
    }
    return c;
}

} // namespace cocco
