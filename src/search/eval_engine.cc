#include "search/eval_engine.h"

#include <utility>

#include "partition/repair.h"
#include "util/hash.h"

namespace cocco {

namespace {

/** SplitMix64-style mix so adjacent stream ids decorrelate and the
 *  streams never coincide with a driver's own Rng(seed). */
uint64_t
mixStream(uint64_t seed, uint64_t stream)
{
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Fingerprint of everything the objective value depends on. Seed and
 *  thread count are deliberately absent: results are independent of
 *  both, so caches warm across seeds and machines. The model folds
 *  its own identity (graph + accelerator, plus every core of a
 *  deployment) via contextHash, so entries from different deployments
 *  can never alias. The pruning flag is absent for the same reason:
 *  bounds only skip work that cannot win, so pruned and unpruned
 *  engines produce — and may share — identical entries. */
uint64_t
contextSalt(const CostModel &model, const DseSpace &space,
            const EvalOptions &opts)
{
    uint64_t h = model.contextHash(kHashSeed);
    h = hashDseSpace(h, space);
    h = hashDouble(h, opts.alpha);
    h = hashU64(h, static_cast<uint64_t>(opts.metric));
    h = hashU64(h, opts.coExplore ? 1 : 0);
    h = hashU64(h, opts.inSituSplit ? 1 : 0);
    return hashFinalize(h);
}

bool
sameBuffer(const BufferConfig &a, const BufferConfig &b)
{
    return a.style == b.style && a.actBytes == b.actBytes &&
           a.weightBytes == b.weightBytes && a.sharedBytes == b.sharedBytes;
}

/**
 * SubgraphCostCache adapter that consults a genome's previous
 * evaluation record before the shared block cache, and captures every
 * (block, cost) pair that flows through it — hits and misses alike —
 * into the next record. Single-threaded by construction (one view per
 * genome evaluation); the record it reads is immutable.
 */
class RecordView final : public SubgraphCostCache
{
  public:
    RecordView(const EvalRecord *prev, SubgraphCostCache *fallback,
               EvalRecord *next, std::atomic<uint64_t> &reused,
               std::atomic<uint64_t> &recosted)
        : prev_(prev), fallback_(fallback), next_(next), reused_(reused),
          recosted_(recosted)
    {
    }

    bool
    lookupBlock(const std::vector<NodeId> &nodes, const BufferConfig &buf,
                SubgraphCost *out) override
    {
        if (prev_ && !nodes.empty()) {
            // Blocks are disjoint, so the front node rejects every
            // non-matching record slot in a single comparison.
            for (size_t i = 0; i < prev_->blocks.size(); ++i) {
                const std::vector<NodeId> &b = prev_->blocks[i];
                if (b.front() == nodes.front() && b == nodes) {
                    *out = prev_->costs[i];
                    reused_.fetch_add(1, std::memory_order_relaxed);
                    capture(nodes, *out);
                    return true;
                }
            }
            recosted_.fetch_add(1, std::memory_order_relaxed);
        }
        if (fallback_ && fallback_->lookupBlock(nodes, buf, out)) {
            capture(nodes, *out);
            return true;
        }
        return false;
    }

    void
    insertBlock(const std::vector<NodeId> &nodes, const BufferConfig &buf,
                const SubgraphCost &cost) override
    {
        capture(nodes, cost);
        if (fallback_)
            fallback_->insertBlock(nodes, buf, cost);
    }

  private:
    void
    capture(const std::vector<NodeId> &nodes, const SubgraphCost &cost)
    {
        if (nodes.empty())
            return;
        next_->blocks.push_back(nodes);
        next_->costs.push_back(cost);
    }

    const EvalRecord *prev_;
    SubgraphCostCache *fallback_;
    EvalRecord *next_;
    std::atomic<uint64_t> &reused_;
    std::atomic<uint64_t> &recosted_;
};

} // namespace

EvalEngine::EvalEngine(CostModel &model, const DseSpace &space,
                       const EvalOptions &opts,
                       std::shared_ptr<ThreadPool> pool,
                       std::shared_ptr<EvalCache> cache)
    : model_(model), space_(space), opts_(opts), pool_(std::move(pool)),
      cache_(std::move(cache)),
      monitor_(opts.observer, opts.timeLimitSec, opts.stallLimit)
{
    if (!pool_) {
        int total = ThreadPool::resolveThreads(opts.threads);
        if (total > 1)
            pool_ = std::make_shared<ThreadPool>(total);
    } else if (pool_->size() == 1) {
        pool_ = nullptr; // a serial pool is just the inline path
    }
    if (!cache_)
        cache_ = opts_.cache;
    if (!cache_ && opts_.cacheEnabled)
        cache_ = std::make_shared<EvalCache>(opts_.cacheCapacity);
    if (!opts_.cacheEnabled)
        cache_ = nullptr;
    model_.setPruning(opts_.pruning);
    salt_ = contextSalt(model_, space_, opts_);
    // Block costs depend only on the model, so fencing them by this
    // narrower salt lets engines that differ in alpha/metric/space
    // still share per-subgraph work through one cache.
    modelSalt_ = hashFinalize(model_.contextHash(kHashSeed));
}

uint64_t
EvalEngine::genomeHash(const Genome &genome) const
{
    uint64_t h = hashU64(kHashSeed, salt_);
    return hashFinalize(hashGenome(h, genome, space_));
}

EvalCache::KeyView
EvalEngine::makeKey(uint64_t hash, const std::vector<int> &block,
                    const Genome &genome) const
{
    EvalCache::KeyView key{hash, salt_, block, 0, 0, 0};
    // Only live hardware genes participate: dead genes (frozen space,
    // other buffer style) are normalized to 0 so genomes that decode
    // identically share one entry.
    if (space_.searchHw) {
        if (space_.style == BufferStyle::Shared) {
            key.sharedIdx = genome.sharedIdx;
        } else {
            key.actIdx = genome.actIdx;
            key.weightIdx = genome.weightIdx;
        }
    }
    return key;
}

double
EvalEngine::evaluateUncached(Genome &genome)
{
    BufferConfig buf = genome.buffer(space_);
    if (opts_.inSituSplit) {
        genome.part = repairToCapacity(model_.graph(),
                                       std::move(genome.part), model_, buf);
    }
    // The objective never reads the bandwidth summaries, so pruned
    // evaluations stop at the fields it does read (bit-identically).
    CostModel::CostScope scope = opts_.pruning
                                     ? CostModel::CostScope::Objective
                                     : CostModel::CostScope::Full;
    GraphCost gc;
    if (cache_) {
        // The cache's block level is the incremental-reuse path here:
        // it serves unchanged blocks across genomes with full key
        // verification, so a per-genome record would re-track the
        // same information at a per-evaluation allocation cost.
        EvalCache::BlockView blocks = cache_->blockView(modelSalt_);
        gc = model_.partitionCost(genome.part, buf, &blocks, scope);
    } else if (opts_.pruning) {
        // No cache: incremental re-evaluation through the genome's
        // own record. Serve unchanged blocks from the parent's record
        // (valid only under the same model + buffer), capture this
        // evaluation's blocks into a fresh record for this genome's
        // children.
        const EvalRecord *prev = genome.evalRecord.get();
        if (prev && (prev->modelSalt != modelSalt_ ||
                     !sameBuffer(prev->buf, buf)))
            prev = nullptr;
        auto next = std::make_shared<EvalRecord>();
        next->modelSalt = modelSalt_;
        next->buf = buf;
        next->blocks.reserve(prev ? prev->blocks.size() : 8);
        next->costs.reserve(prev ? prev->costs.size() : 8);
        RecordView view(prev, nullptr, next.get(), recordReused_,
                        recordRecosted_);
        gc = model_.partitionCost(genome.part, buf, &view, scope);
        genome.evalRecord = std::move(next);
    } else {
        gc = model_.partitionCost(genome.part, buf, nullptr, scope);
    }
    if (opts_.coExplore)
        return objective(gc, buf, opts_.alpha, opts_.metric);
    if (!gc.feasible)
        return kInfeasiblePenalty;
    return gc.metricValue(opts_.metric);
}

void
EvalEngine::noteDelta(const GeneDelta &delta)
{
    deltaReports_.fetch_add(1, std::memory_order_relaxed);
    deltaNodes_.fetch_add(delta.nodes.size(), std::memory_order_relaxed);
    if (delta.hwChanged && !delta.partitionChanged)
        deltaHwOnly_.fetch_add(1, std::memory_order_relaxed);
    if (delta.partitionChanged && delta.nodes.empty())
        deltaRewrites_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
EvalEngine::recordBlocksReused() const
{
    return recordReused_.load(std::memory_order_relaxed);
}

uint64_t
EvalEngine::recordBlocksRecosted() const
{
    return recordRecosted_.load(std::memory_order_relaxed);
}

DeltaStats
EvalEngine::deltaStats() const
{
    DeltaStats s;
    s.reports = deltaReports_.load(std::memory_order_relaxed);
    s.nodesTouched = deltaNodes_.load(std::memory_order_relaxed);
    s.hwOnly = deltaHwOnly_.load(std::memory_order_relaxed);
    s.rewrites = deltaRewrites_.load(std::memory_order_relaxed);
    return s;
}

double
EvalEngine::evaluate(Genome &genome, const GeneDelta *delta)
{
    if (delta)
        noteDelta(*delta);
    if (!cache_)
        return evaluateUncached(genome);

    uint64_t hash = genomeHash(genome);
    double cost = 0.0;
    if (cache_->lookup(makeKey(hash, genome.part.block, genome),
                       &genome.part, &cost))
        return cost;

    // Snapshot the pre-repair key material: evaluation mutates the
    // partition in place (in-situ capacity tuning).
    std::vector<int> pre_block = genome.part.block;
    cost = evaluateUncached(genome);
    cache_->insert(makeKey(hash, pre_block, genome), genome.part, cost);
    return cost;
}

double
EvalEngine::objectiveBound(const Genome &genome)
{
    BufferConfig buf = genome.buffer(space_);
    SubgraphBound b = model_.partitionLowerBound(genome.part, buf);
    double metric = b.metricValue(opts_.metric);
    if (opts_.coExplore)
        return static_cast<double>(buf.totalBytes()) +
               opts_.alpha * metric;
    return metric;
}

double
EvalEngine::evaluateBounded(Genome &genome, double incumbent,
                            bool *skipped)
{
    if (skipped)
        *skipped = false;
    // A negative alpha would flip the objective fold's direction and
    // invalidate the bound; infeasible incumbents reject nothing
    // (every bound is far below the penalty).
    if (opts_.pruning && incumbent < kInfeasiblePenalty &&
        (!opts_.coExplore || opts_.alpha >= 0.0)) {
        double lb = objectiveBound(genome);
        if (lb > incumbent) {
            boundRejections_.fetch_add(1, std::memory_order_relaxed);
            if (skipped)
                *skipped = true;
            return lb;
        }
    }
    return evaluate(genome);
}

uint64_t
EvalEngine::boundRejections() const
{
    return boundRejections_.load(std::memory_order_relaxed);
}

Rng
EvalEngine::streamRng(uint64_t index) const
{
    return Rng(mixStream(opts_.seed, streamCounter_ + index));
}

bool
EvalEngine::forEachStream(size_t n,
                          const std::function<void(size_t, Rng &)> &fn)
{
    uint64_t base = streamCounter_;
    streamCounter_ += n;
    // Cooperative cancellation: a hard stop (observer cancel / time
    // limit) skips the remaining elements. The caller discards such
    // a partial batch, so which elements already ran never shows up
    // in any result.
    std::atomic<bool> aborted{false};
    auto task = [&](size_t i) {
        if (monitor_.cancelRequested()) {
            aborted.store(true, std::memory_order_relaxed);
            return;
        }
        Rng rng(mixStream(opts_.seed, base + i));
        fn(i, rng);
    };
    if (pool_) {
        pool_->parallelFor(n, task);
    } else {
        for (size_t i = 0; i < n; ++i)
            task(i);
    }
    return !aborted.load(std::memory_order_relaxed);
}

std::vector<double>
EvalEngine::evaluateBatch(std::vector<Genome> &genomes)
{
    std::vector<double> costs(genomes.size(), kInfeasiblePenalty);
    forEachStream(genomes.size(), [&](size_t i, Rng &rng) {
        (void)rng; // evaluation itself is deterministic today
        costs[i] = evaluate(genomes[i]);
    });
    return costs;
}

} // namespace cocco
