#include "search/eval_engine.h"

#include <utility>

#include "partition/repair.h"

namespace cocco {

namespace {

/** SplitMix64-style mix so adjacent stream ids decorrelate and the
 *  streams never coincide with a driver's own Rng(seed). */
uint64_t
mixStream(uint64_t seed, uint64_t stream)
{
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

EvalEngine::EvalEngine(CostModel &model, const DseSpace &space,
                       const EvalOptions &opts,
                       std::shared_ptr<ThreadPool> pool)
    : model_(model), space_(space), opts_(opts), pool_(std::move(pool))
{
    if (!pool_) {
        int total = ThreadPool::resolveThreads(opts.threads);
        if (total > 1)
            pool_ = std::make_shared<ThreadPool>(total);
    } else if (pool_->size() == 1) {
        pool_ = nullptr; // a serial pool is just the inline path
    }
}

double
EvalEngine::evaluate(Genome &genome)
{
    BufferConfig buf = genome.buffer(space_);
    if (opts_.inSituSplit) {
        genome.part = repairToCapacity(model_.graph(),
                                       std::move(genome.part), model_, buf);
    }
    GraphCost gc = model_.partitionCost(genome.part, buf);
    if (opts_.coExplore)
        return objective(gc, buf, opts_.alpha, opts_.metric);
    if (!gc.feasible)
        return kInfeasiblePenalty;
    return gc.metricValue(opts_.metric);
}

Rng
EvalEngine::streamRng(uint64_t index) const
{
    return Rng(mixStream(opts_.seed, streamCounter_ + index));
}

void
EvalEngine::forEachStream(size_t n,
                          const std::function<void(size_t, Rng &)> &fn)
{
    uint64_t base = streamCounter_;
    streamCounter_ += n;
    auto task = [&](size_t i) {
        Rng rng(mixStream(opts_.seed, base + i));
        fn(i, rng);
    };
    if (pool_) {
        pool_->parallelFor(n, task);
    } else {
        for (size_t i = 0; i < n; ++i)
            task(i);
    }
}

std::vector<double>
EvalEngine::evaluateBatch(std::vector<Genome> &genomes)
{
    std::vector<double> costs(genomes.size(), kInfeasiblePenalty);
    forEachStream(genomes.size(), [&](size_t i, Rng &rng) {
        (void)rng; // evaluation itself is deterministic today
        costs[i] = evaluate(genomes[i]);
    });
    return costs;
}

} // namespace cocco
