/**
 * @file
 * The Cocco genetic search (paper Section 4.4): initialization,
 * crossover, mutation, in-situ capacity tuning at evaluation, and
 * tournament selection, over genomes that pair a graph partition
 * with a memory configuration.
 */

#ifndef COCCO_SEARCH_GA_H
#define COCCO_SEARCH_GA_H

#include <cstdint>
#include <vector>

#include "search/eval_engine.h"
#include "search/genome.h"
#include "sim/cost_model.h"
#include "util/random.h"

namespace cocco {

/** Best-so-far cost after a given number of samples. */
struct TracePoint
{
    int64_t sample = 0;
    double bestCost = 0.0;
};

/** One evaluated genome (for the Figure 13 distribution study). */
struct SamplePoint
{
    int64_t sample = 0;
    double metric = 0.0;       ///< energy (pJ) or EMA (bytes)
    int64_t bufferBytes = 0;
};

/** Result of any search driver (GA, SA, two-step). */
struct SearchResult
{
    Genome best;
    double bestCost = kInfeasiblePenalty;
    GraphCost bestGraphCost;
    BufferConfig bestBuffer;
    int64_t samples = 0;
    std::vector<TracePoint> trace;
    std::vector<SamplePoint> points; ///< filled when recordPoints

    /** Evaluation-cache activity attributable to this run (a delta
     *  when the cache is shared across runs; zeros when disabled). */
    EvalCacheStats cacheStats;

    /** Operator gene-change accounting for this run. */
    DeltaStats deltaStats;
};

/** GA hyper-parameters. */
struct GaOptions
{
    int population = 100;
    int64_t sampleBudget = 50000;
    double crossoverRate = 0.6;  ///< fraction of offspring from crossover
    double mutPartitionRate = 0.5; ///< per-offspring partition mutation
    double mutDseRate = 0.3;     ///< per-offspring DSE mutation
    int tournament = 3;
    int elite = 2;
    uint64_t seed = 1;
    double alpha = 0.002;        ///< Formula 2 weight
    Metric metric = Metric::Energy;
    bool coExplore = true;       ///< false = Formula 1 (metric only)
    bool recordPoints = false;   ///< keep every sample (Figure 13)
    bool inSituSplit = true;     ///< capacity repair at evaluation

    /**
     * Evaluation parallelism: total threads used to produce and
     * evaluate each population batch (<= 0 = one per hardware
     * thread). Results are bit-identical for any value — offspring
     * are built from per-index RNG streams and written back by index
     * (see EvalEngine).
     */
    int threads = 1;

    /** Memoize evaluations (bit-identical either way; see EvalCache). */
    bool cacheEnabled = true;

    /** Genome-entry capacity of an engine-owned cache. */
    size_t cacheCapacity = EvalCache::kDefaultCapacity;

    /** Optional shared cache (warm-start / cross-run accumulation);
     *  null = the engine owns one per cacheCapacity. */
    std::shared_ptr<EvalCache> cache;
};

/** The genetic optimizer. */
class GeneticSearch
{
  public:
    /**
     * @param model evaluation environment (graph + accelerator)
     * @param space the hardware design space (or frozen buffer)
     * @param opts  hyper-parameters
     * @param pool  optional shared worker pool for the evaluation
     *              engine (e.g. reused across the inner GAs of a
     *              two-step sweep); null = own one per opts.threads
     */
    GeneticSearch(CostModel &model, const DseSpace &space,
                  const GaOptions &opts,
                  std::shared_ptr<ThreadPool> pool = nullptr);

    /** Run to the sample budget; optional seed genomes join the
     *  initial population (flexible initialization). */
    SearchResult run(const std::vector<Genome> &seeds = {});

    /**
     * Evaluate one genome: decode buffer, apply in-situ capacity
     * tuning to the partition, and return the objective value.
     * Exposed for SA and tests.
     */
    double evaluate(Genome &genome);

  private:
    CostModel &model_;
    DseSpace space_;
    GaOptions opts_;
    EvalEngine engine_;
};

} // namespace cocco

#endif // COCCO_SEARCH_GA_H
