/**
 * @file
 * The Cocco genetic search (paper Section 4.4): initialization,
 * crossover, mutation, in-situ capacity tuning at evaluation, and
 * tournament selection, over genomes that pair a graph partition
 * with a memory configuration.
 */

#ifndef COCCO_SEARCH_GA_H
#define COCCO_SEARCH_GA_H

#include <cstdint>
#include <string>
#include <vector>

#include "search/eval_engine.h"
#include "search/genome.h"
#include "sim/cost_model.h"
#include "util/random.h"

namespace cocco {

/**
 * Per-racer accounting of a portfolio run (search/portfolio.h): how
 * each concurrent searcher fared before it won, lost its thread
 * grant, or was early-stopped by the PortfolioMonitor.
 */
struct RacerStats
{
    std::string algo;
    int64_t samples = 0;
    double bestCost = kInfeasiblePenalty;
    int64_t improvements = 0; ///< incumbent improvements observed
    double wallSeconds = 0.0; ///< racer wall clock (across regrants)
    int threads = 1;          ///< final evaluation-thread grant
    int regrants = 0;         ///< times the racer absorbed freed threads
    bool culled = false;      ///< early-stopped by the monitor
    bool winner = false;

    /** The racer's own stop reason (Cancelled when culled). */
    StopReason stop = StopReason::BudgetExhausted;
};

/** Result of any search driver (GA, SA, two-step). */
struct SearchResult
{
    Genome best;
    double bestCost = kInfeasiblePenalty;
    GraphCost bestGraphCost;
    BufferConfig bestBuffer;
    int64_t samples = 0;
    std::vector<TracePoint> trace;
    std::vector<SamplePoint> points; ///< filled when recordPoints

    /** Why the run ended (budget unless an early stop tripped). */
    StopReason stop = StopReason::BudgetExhausted;

    /** Evaluation-cache activity attributable to this run (a delta
     *  when the cache is shared across runs; zeros when disabled). */
    EvalCacheStats cacheStats;

    /** Operator gene-change accounting for this run. */
    DeltaStats deltaStats;

    /** Per-racer breakdown (portfolio runs only; empty otherwise). */
    std::vector<RacerStats> racers;
};

/**
 * GA-specific parameters. The evaluation-environment knobs (budget,
 * seed, objective, threads, cache, observer/early-stop) live in the
 * shared EvalOptions core; GaOptions composes the two.
 */
struct GaParams
{
    int population = 100;
    double crossoverRate = 0.6;  ///< fraction of offspring from crossover
    double mutPartitionRate = 0.5; ///< per-offspring partition mutation
    double mutDseRate = 0.3;     ///< per-offspring DSE mutation
    int tournament = 3;
    int elite = 2;
    bool recordPoints = false;   ///< keep every sample (Figure 13)
};

/** GA hyper-parameters: the shared evaluation core + the GA block. */
struct GaOptions : EvalOptions, GaParams
{
};

/** The genetic optimizer. */
class GeneticSearch
{
  public:
    /**
     * @param model evaluation environment (graph + accelerator)
     * @param space the hardware design space (or frozen buffer)
     * @param opts  hyper-parameters
     * @param pool  optional shared worker pool for the evaluation
     *              engine (e.g. reused across the inner GAs of a
     *              two-step sweep); null = own one per opts.threads
     */
    GeneticSearch(CostModel &model, const DseSpace &space,
                  const GaOptions &opts,
                  std::shared_ptr<ThreadPool> pool = nullptr);

    /** Run to the sample budget; optional seed genomes join the
     *  initial population (flexible initialization). */
    SearchResult run(const std::vector<Genome> &seeds = {});

    /**
     * Evaluate one genome: decode buffer, apply in-situ capacity
     * tuning to the partition, and return the objective value.
     * Exposed for SA and tests.
     */
    double evaluate(Genome &genome);

  private:
    CostModel &model_;
    DseSpace space_;
    GaOptions opts_;
    EvalEngine engine_;
};

} // namespace cocco

#endif // COCCO_SEARCH_GA_H
