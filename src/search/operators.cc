#include "search/operators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "partition/repair.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** Clamp a grid index. */
int
clampIdx(int idx, const CapacityGrid &grid)
{
    return std::clamp(idx, 0, grid.count - 1);
}

/** Gaussian integer step on a grid index. */
int
gaussStep(int idx, const CapacityGrid &grid, Rng &rng, double sigma)
{
    int step = static_cast<int>(std::lround(rng.gaussian() * sigma));
    if (step == 0)
        step = rng.bernoulli(0.5) ? 1 : -1;
    return clampIdx(idx + step, grid);
}

} // namespace

Genome
randomGenome(const Graph &g, const DseSpace &space, Rng &rng)
{
    Genome genome;
    genome.part.block.assign(g.size(), 0);

    // Topological sweep; each node joins a block in
    // [max(pred blocks), next fresh block].
    int next_block = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
        int lo = 0;
        for (NodeId u : g.preds(v))
            lo = std::max(lo, genome.part.block[u]);
        int hi = next_block; // == fresh block id
        int pick = static_cast<int>(rng.uniformInt(lo, hi));
        genome.part.block[v] = pick;
        next_block = std::max(next_block, pick + 1);
    }
    genome.part = repairStructure(g, std::move(genome.part));

    if (space.searchHw) {
        genome.actIdx =
            static_cast<int>(rng.uniformInt(0, space.actGrid.count - 1));
        genome.weightIdx =
            static_cast<int>(rng.uniformInt(0, space.weightGrid.count - 1));
        genome.sharedIdx =
            static_cast<int>(rng.uniformInt(0, space.sharedGrid.count - 1));
    }
    return genome;
}

Genome
crossover(const Graph &g, const DseSpace &space, const Genome &dad,
          const Genome &mom, Rng &rng, GeneDelta *delta)
{
    if (delta) {
        // The child partition is written from scratch; an empty node
        // list with the flag set encodes the global rewrite.
        delta->partitionChanged = true;
        if (space.searchHw)
            delta->noteHw();
    }
    Genome child;
    child.part.block.assign(g.size(), -1);
    int next_block = 0;

    for (NodeId v = 0; v < g.size(); ++v) {
        if (child.part.block[v] >= 0)
            continue;
        const Partition &parent =
            rng.bernoulli(0.5) ? dad.part : mom.part;
        std::vector<NodeId> sub = parent.blockNodes(parent.block[v]);

        // Partition the reproduced subgraph into decided/undecided.
        std::vector<NodeId> undecided;
        std::set<int> decided_blocks;
        for (NodeId u : sub) {
            if (child.part.block[u] >= 0)
                decided_blocks.insert(child.part.block[u]);
            else
                undecided.push_back(u);
        }
        if (undecided.empty())
            continue;

        int target;
        if (!decided_blocks.empty() && rng.bernoulli(0.5)) {
            // Merge with one of the subgraphs the decided layers
            // belong to (Figure 9(b), Child-2).
            std::vector<int> opts(decided_blocks.begin(),
                                  decided_blocks.end());
            target = opts[rng.index(opts.size())];
        } else {
            // Split out a new subgraph (Child-1).
            target = next_block++;
        }
        for (NodeId u : undecided)
            child.part.block[u] = target;
    }

    child.part = repairStructure(g, std::move(child.part));

    if (space.searchHw) {
        child.actIdx = clampIdx((dad.actIdx + mom.actIdx + 1) / 2,
                                space.actGrid);
        child.weightIdx = clampIdx((dad.weightIdx + mom.weightIdx + 1) / 2,
                                   space.weightGrid);
        child.sharedIdx = clampIdx((dad.sharedIdx + mom.sharedIdx + 1) / 2,
                                   space.sharedGrid);
    }
    return child;
}

void
mutateModifyNode(const Graph &g, Genome &genome, Rng &rng, GeneDelta *delta)
{
    NodeId v = static_cast<NodeId>(rng.index(g.size()));

    // Candidate targets: blocks of neighbours, or a fresh block.
    std::vector<int> targets;
    for (NodeId u : g.preds(v))
        targets.push_back(genome.part.block[u]);
    for (NodeId u : g.succs(v))
        targets.push_back(genome.part.block[u]);
    int fresh = 0;
    for (int b : genome.part.block)
        fresh = std::max(fresh, b + 1);
    targets.push_back(fresh);

    int target = targets[rng.index(targets.size())];
    if (target == genome.part.block[v])
        return; // node keeps its block: genome unchanged
    if (delta)
        delta->noteNode(v);
    genome.part.block[v] = target;
    genome.part = repairStructure(g, std::move(genome.part));
}

void
mutateSplitSubgraph(const Graph &g, Genome &genome, Rng &rng,
                    GeneDelta *delta)
{
    auto blocks = genome.part.blocks();
    std::vector<int> multi;
    for (size_t b = 0; b < blocks.size(); ++b)
        if (blocks[b].size() >= 2)
            multi.push_back(static_cast<int>(b));
    if (multi.empty())
        return;

    const auto &blk = blocks[multi[rng.index(multi.size())]];
    // Split at a random interior point of the id-sorted node list.
    size_t cut = 1 + rng.index(blk.size() - 1);
    int fresh = 0;
    for (int b : genome.part.block)
        fresh = std::max(fresh, b + 1);
    for (size_t i = cut; i < blk.size(); ++i) {
        if (delta)
            delta->noteNode(blk[i]);
        genome.part.block[blk[i]] = fresh;
    }
    genome.part = repairStructure(g, std::move(genome.part));
}

void
mutateMergeSubgraph(const Graph &g, Genome &genome, Rng &rng,
                    GeneDelta *delta)
{
    // Collect inter-block edges; merging adjacent blocks keeps the
    // result connected (structural repair handles any cycle fallout).
    std::vector<std::pair<int, int>> pairs;
    for (NodeId v = 0; v < g.size(); ++v)
        for (NodeId u : g.preds(v))
            if (genome.part.block[u] != genome.part.block[v])
                pairs.emplace_back(genome.part.block[u],
                                   genome.part.block[v]);
    if (pairs.empty())
        return;
    auto [a, b] = pairs[rng.index(pairs.size())];
    for (NodeId v = 0; v < g.size(); ++v)
        if (genome.part.block[v] == b) {
            if (delta)
                delta->noteNode(v);
            genome.part.block[v] = a;
        }
    genome.part = repairStructure(g, std::move(genome.part));
}

void
mutateDse(const DseSpace &space, Genome &genome, Rng &rng, double sigma,
          GeneDelta *delta)
{
    if (!space.searchHw)
        return;
    if (space.style == BufferStyle::Shared) {
        int idx = gaussStep(genome.sharedIdx, space.sharedGrid, rng, sigma);
        if (delta && idx != genome.sharedIdx)
            delta->noteHw();
        genome.sharedIdx = idx;
    } else if (rng.bernoulli(0.5)) {
        int idx = gaussStep(genome.actIdx, space.actGrid, rng, sigma);
        if (delta && idx != genome.actIdx)
            delta->noteHw();
        genome.actIdx = idx;
    } else {
        int idx = gaussStep(genome.weightIdx, space.weightGrid, rng, sigma);
        if (delta && idx != genome.weightIdx)
            delta->noteHw();
        genome.weightIdx = idx;
    }
}

} // namespace cocco
