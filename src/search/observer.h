/**
 * @file
 * The search progress/control surface shared by every driver.
 *
 * A SearchObserver receives the same trace the drivers record
 * (onTrace per evaluated sample, onImprove when the incumbent drops,
 * onBatchDone after each evaluation batch) and can request
 * cooperative cancellation via cancelled(). Callbacks fire on the
 * driver's thread, strictly after the parallel batch completed, in
 * sample order; cancelled() is also polled from the evaluation
 * engine's worker threads mid-batch, so an implementation must be
 * thread-safe there (an std::atomic<bool> flag is the typical shape).
 *
 * SearchMonitor is the per-run bookkeeping every driver threads
 * through its loop: it multiplexes the observer with the declarative
 * early-stop limits (wall-clock and stall) and names the reason a
 * run ended. With no observer and no limits every check collapses to
 * a couple of compares, so legacy runs are bit-identical and pay
 * nothing.
 */

#ifndef COCCO_SEARCH_OBSERVER_H
#define COCCO_SEARCH_OBSERVER_H

#include <chrono>
#include <cstdint>

namespace cocco {

/** Best-so-far cost after a given number of samples. */
struct TracePoint
{
    int64_t sample = 0;
    double bestCost = 0.0;
};

/** One evaluated genome (for the Figure 13 distribution study). */
struct SamplePoint
{
    int64_t sample = 0;
    double metric = 0.0;       ///< energy (pJ) or EMA (bytes)
    int64_t bufferBytes = 0;
};

/** Why a search run ended. */
enum class StopReason
{
    BudgetExhausted, ///< the sample budget ran out (the normal end)
    Cancelled,       ///< the observer requested cancellation
    TimeLimit,       ///< EvalOptions::timeLimitSec elapsed
    Stalled,         ///< EvalOptions::stallLimit samples w/o improvement
};

/** Stable lowercase label ("budget", "cancelled", ...). */
const char *stopReasonName(StopReason reason);

/** Callback interface onto a running search (see file comment). */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /** Every recorded sample, in order (same data as the trace). */
    virtual void
    onTrace(const TracePoint &tp)
    {
        (void)tp;
    }

    /** The incumbent improved (fires after onTrace for the sample). */
    virtual void
    onImprove(const TracePoint &tp)
    {
        (void)tp;
    }

    /** One evaluation batch (GA generation, SA round, two-step
     *  candidate) finished and its samples were recorded. */
    virtual void
    onBatchDone(int64_t samples, double bestCost)
    {
        (void)samples;
        (void)bestCost;
    }

    /** Poll for cooperative cancellation. May be called concurrently
     *  from evaluation workers — must be thread-safe. */
    virtual bool
    cancelled()
    {
        return false;
    }
};

/** Per-run observer + early-stop bookkeeping (see file comment). */
class SearchMonitor
{
  public:
    SearchMonitor() = default;

    SearchMonitor(SearchObserver *observer, double timeLimitSec,
                  int64_t stallLimit)
        : observer_(observer), timeLimitSec_(timeLimitSec),
          stallLimit_(stallLimit)
    {
    }

    /** Seconds since this monitor (i.e. the run) started. */
    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Wall-clock budget left; <= 0 means the limit already passed
     *  (0 when no limit is set — callers treat 0 as "unlimited"). */
    double
    remainingSec() const
    {
        if (timeLimitSec_ <= 0.0)
            return 0.0;
        return timeLimitSec_ - elapsedSec();
    }

    /** Hard stop conditions, safe to poll mid-batch from any thread:
     *  observer cancellation and the wall-clock limit. */
    bool
    cancelRequested() const
    {
        if (observer_ && observer_->cancelled())
            return true;
        return timeLimitSec_ > 0.0 && elapsedSec() > timeLimitSec_;
    }

    /** Record one sample (driver thread, after the batch). */
    void
    recordSample(const TracePoint &tp, bool improved)
    {
        if (improved)
            sinceImprove_ = 0;
        else
            ++sinceImprove_;
        if (observer_) {
            observer_->onTrace(tp);
            if (improved)
                observer_->onImprove(tp);
        }
    }

    /** Announce a finished batch (driver thread). */
    void
    batchDone(int64_t samples, double bestCost)
    {
        if (observer_)
            observer_->onBatchDone(samples, bestCost);
    }

    /** Samples recorded since the incumbent last improved. */
    int64_t samplesSinceImprove() const { return sinceImprove_; }

    /** Restore the stall counter from a checkpoint so a resumed run's
     *  stall-limit behavior matches the uninterrupted run. The wall
     *  clock deliberately restarts (start_ is set at construction):
     *  a resume gets a fresh time budget, not a stale one. */
    void restoreStall(int64_t sinceImprove) { sinceImprove_ = sinceImprove; }

    /** The stall limit tripped. */
    bool
    stalled() const
    {
        return stallLimit_ > 0 && sinceImprove_ >= stallLimit_;
    }

    /** Between-batches check: any reason to end the run early. */
    bool shouldStop() const { return stalled() || cancelRequested(); }

    /** Name the run's end state (budget when nothing else tripped). */
    StopReason
    stopReason() const
    {
        if (observer_ && observer_->cancelled())
            return StopReason::Cancelled;
        if (timeLimitSec_ > 0.0 && elapsedSec() > timeLimitSec_)
            return StopReason::TimeLimit;
        if (stalled())
            return StopReason::Stalled;
        return StopReason::BudgetExhausted;
    }

  private:
    SearchObserver *observer_ = nullptr;
    double timeLimitSec_ = 0.0; ///< 0 = no wall-clock limit
    int64_t stallLimit_ = 0;    ///< 0 = no stall limit
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    int64_t sinceImprove_ = 0;
};

} // namespace cocco

#endif // COCCO_SEARCH_OBSERVER_H
