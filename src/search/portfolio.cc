#include "search/portfolio.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "search/checkpoint.h"
#include "search/driver.h"
#include "search/pareto.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cocco {

namespace {

/** Why a racer's stop flag was raised (beyond global cancellation). */
enum class StopWhy
{
    None,    ///< running normally
    Cull,    ///< early-stopped as a loser
    Regrant, ///< stopped to restart with a larger thread grant
};

/** What a racer thread should do after its driver returned. */
enum class ReturnAction
{
    Done,          ///< the racer is finished
    RestartResume, ///< restart from the stash with the new grant
    RestartFresh,  ///< restart from scratch (no stash was available)
};

/**
 * The PortfolioMonitor: every piece of shared race state behind one
 * mutex — per-racer live stats and milestone snapshots, the thread
 * ledger, cull decisions, the latest per-racer checkpoint stash, and
 * the deterministic-race rendezvous barrier.
 *
 * Milestones are registered from SearchObserver::onTrace, which every
 * driver fires once per recorded sample in order, so the snapshot a
 * racer leaves at milestone m (best cost, improvement count, exact
 * sample) is a pure function of that racer's own trajectory — never
 * of wall-clock. Cull decisions consume only those snapshots, which
 * is what makes `deterministicRace` reproducible across thread
 * budgets and across checkpoint/resume (a resume rebuilds the
 * snapshots by replaying each racer's persisted trace).
 */
class RaceController
{
  public:
    struct Racer
    {
        std::string algo;
        CheckpointHooks *hooks = nullptr; ///< the racer's own stash hooks

        int checkpointState = SearchCheckpoint::kRacerActive;
        bool done = false; ///< racer thread finished for good
        StopWhy why = StopWhy::None;
        std::atomic<bool> stopFlag{false};

        // Live stats (under the controller mutex).
        int64_t samples = 0;
        double best = kInfeasiblePenalty;
        int64_t improvements = 0;

        // Milestone ledger: snap*[m] holds the racer's state when its
        // recorded-sample count crossed m * checkEvals (index 0 = the
        // start of the run).
        int64_t reached = 0;
        // Milestone at which a cull froze this racer's say in later
        // decisions (-1 = not culled). The driver overruns its stop
        // flag by a timing-dependent number of samples, so ledger
        // entries past this point must not feed decisions.
        int64_t endMilestone = -1;
        std::vector<double> snapBest{kInfeasiblePenalty};
        std::vector<int64_t> snapImp{0};
        std::vector<int64_t> snapSamples{0};

        // Thread ledger.
        int grant = 0;
        int lastGrant = 0; ///< grant at the time the racer stopped
        int pendingGrant = 0;
        int regrants = 0;

        double wallSeconds = 0.0;

        bool haveResult = false;
        SearchResult result;

        // Latest snapshot from the racer's own checkpoint hooks.
        bool stashValid = false;
        uint64_t stashVersion = 0;
        SearchCheckpoint stash;
    };

    RaceController(const PortfolioParams &params, SearchObserver *parent,
                   int threadBudget)
        : params_(params), parent_(parent),
          racers_(params.racers.size()), threadBudget_(threadBudget)
    {
        for (size_t i = 0; i < racers_.size(); ++i)
            racers_[i].algo = params_.racers[i];
    }

    Racer &racer(size_t i) { return racers_[i]; }
    size_t racerCount() const { return racers_.size(); }

    /** Distribute the thread budget over the racers that will run
     *  (JobManager ledger semantics: integer grants, floor of one, so
     *  a small budget oversubscribes rather than starving racers). */
    void
    initGrants()
    {
        std::lock_guard<std::mutex> lk(mu_);
        int running = 0;
        for (const Racer &r : racers_)
            running += r.done ? 0 : 1;
        if (running == 0)
            return;
        int base = threadBudget_ / running, rem = threadBudget_ % running;
        int k = 0, granted = 0;
        for (Racer &r : racers_) {
            if (r.done)
                continue;
            r.grant = std::max(1, base + (k < rem ? 1 : 0));
            r.lastGrant = r.grant;
            granted += r.grant;
            ++k;
        }
        headroom_ = threadBudget_ - granted; // <= 0 when oversubscribed
    }

    int
    grantFor(size_t idx)
    {
        std::lock_guard<std::mutex> lk(mu_);
        return std::max(1, racers_[idx].grant);
    }

    /**
     * Restore one racer's monitor state from a persisted snapshot:
     * replay its trace through the same registration logic the live
     * observer path uses, so milestone snapshots (and therefore every
     * re-made cull decision) are bit-identical to the original run's.
     */
    void
    seedFromCheckpoint(size_t idx, const SearchCheckpoint &sub, int state)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Racer &r = racers_[idx];
        r.stash = sub;
        r.stashValid = true;
        r.checkpointState = state;
        double prevBest = kInfeasiblePenalty;
        for (const TracePoint &tp : sub.trace) {
            r.samples = tp.sample;
            r.best = tp.bestCost;
            registerMilestonesLocked(r, tp);
            if (tp.bestCost < prevBest) {
                ++r.improvements;
                prevBest = tp.bestCost;
            }
        }
        r.samples = sub.samples;
        r.best = std::min(r.best, sub.bestCost);
        globalBest_ = std::min(globalBest_, r.best);
        if (state != SearchCheckpoint::kRacerActive)
            r.done = true;
    }

    /** Attach the reconstructed final result of a racer that was
     *  already terminal in the resumed checkpoint. */
    void
    setTerminalResult(size_t idx, SearchResult res)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Racer &r = racers_[idx];
        r.best = std::min(r.best, res.bestCost);
        r.result = std::move(res);
        r.haveResult = true;
    }

    /** Replay any cull decisions the resumed trajectories already
     *  determine (deterministic mode), before racer threads launch. */
    void
    primeDecisions()
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (params_.deterministicRace)
            tryDecideLocked();
    }

    // --- Observer entry points (called from racer driver threads). ---

    void
    onTrace(size_t idx, const TracePoint &tp)
    {
        std::unique_lock<std::mutex> lk(mu_);
        Racer &r = racers_[idx];
        r.samples = tp.sample;
        r.best = tp.bestCost;
        bool crossed = registerMilestonesLocked(r, tp);
        if (crossed) {
            if (params_.deterministicRace)
                tryDecideLocked();
            else
                liveCullCheckLocked(idx);
        }
        if (params_.deterministicRace) {
            // Rendezvous: no racer runs past a milestone before the
            // cull decision for it was made, so losers stop at exact
            // sample positions. wait_for polls parent cancellation
            // (no notification crosses that boundary).
            while (decided_ < r.reached && !r.stopFlag.load() &&
                   !parentCancelled())
                cv_.wait_for(lk, std::chrono::milliseconds(50));
        }
    }

    void
    onImprove(size_t idx, const TracePoint &tp)
    {
        bool globalImprove = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++racers_[idx].improvements;
            if (tp.bestCost < globalBest_) {
                globalBest_ = tp.bestCost;
                globalImprove = true;
            }
        }
        // Forward portfolio-wide improvements to the parent observer
        // (outside the lock: the parent may do I/O). Racer-local
        // improvements that don't beat the race's incumbent stay
        // internal, so the parent sees one monotone stream.
        if (globalImprove && parent_)
            parent_->onImprove(tp);
    }

    /** A racer finished an evaluation batch: refresh the parent
     *  observer's view with portfolio-wide totals (cancellation by
     *  sample count must see the whole race's progress, not one
     *  racer's). */
    void
    onBatchDone(size_t idx, int64_t samples, double best)
    {
        (void)best;
        int64_t total = 0;
        double gb;
        {
            std::lock_guard<std::mutex> lk(mu_);
            Racer &r = racers_[idx];
            r.samples = std::max(r.samples, samples);
            for (const Racer &rc : racers_)
                total += rc.samples;
            gb = globalBest_;
        }
        if (parent_)
            parent_->onBatchDone(total, gb);
    }

    /** Cooperative-cancellation poll for one racer; called from its
     *  evaluation workers, so no mutex (atomic flag + the parent
     *  observer's own thread-safe cancelled()). */
    bool
    cancelledFor(size_t idx)
    {
        return racers_[idx].stopFlag.load(std::memory_order_relaxed) ||
               parentCancelled();
    }

    /** The racer's driver returned; decide what its thread does. */
    ReturnAction
    onRacerReturn(size_t idx, SearchResult res, double wallSeconds)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Racer &r = racers_[idx];
        r.wallSeconds += wallSeconds;
        if (r.why == StopWhy::Regrant &&
            res.stop == StopReason::Cancelled && !parentCancelled()) {
            // The stop was only the thread-regrant restart: resume
            // from the stash with the larger grant. Batch-boundary
            // snapshots resume bit-identically at any thread count,
            // so the restart cannot change this racer's results.
            r.grant = r.pendingGrant;
            if (headroom_ > 0) {
                // Headroom released while this racer was already
                // stopping rides along on the same restart.
                r.grant += headroom_;
                headroom_ = 0;
            }
            r.lastGrant = r.grant;
            r.pendingGrant = 0;
            ++r.regrants;
            r.why = StopWhy::None;
            r.stopFlag = false;
            return r.stashValid ? ReturnAction::RestartResume
                                : ReturnAction::RestartFresh;
        }

        r.done = true;
        r.haveResult = true;
        r.samples = res.samples;
        r.best = std::min(r.best, res.bestCost);
        r.result = std::move(res);
        if (r.why == StopWhy::Regrant) {
            // The racer ended for real before its regrant restart
            // could happen: reclaim the headroom it had absorbed so
            // releaseGrantLocked can hand it to a survivor instead of
            // losing those threads for the rest of the race.
            headroom_ += r.pendingGrant - r.grant;
            r.pendingGrant = 0;
            r.why = StopWhy::None;
        }
        if (r.why == StopWhy::Cull &&
            r.result.stop == StopReason::Cancelled) {
            r.checkpointState = SearchCheckpoint::kRacerCulled;
        } else if (r.result.stop == StopReason::BudgetExhausted ||
                   r.result.stop == StopReason::Stalled) {
            r.checkpointState = SearchCheckpoint::kRacerFinished;
            r.why = StopWhy::None; // a racing cull lost to the finish
        } else {
            // Involuntary stop (global cancel / time limit): the
            // racer is still "active" as far as a resume is concerned.
            r.checkpointState = SearchCheckpoint::kRacerActive;
        }
        releaseGrantLocked(idx);
        if (params_.deterministicRace)
            tryDecideLocked();
        cv_.notify_all();
        return ReturnAction::Done;
    }

    void
    storeStash(size_t idx, const SearchCheckpoint &c)
    {
        std::lock_guard<std::mutex> lk(mu_);
        Racer &r = racers_[idx];
        r.stash = c;
        r.stashValid = true;
        ++r.stashVersion;
        cv_.notify_all();
    }

    SearchCheckpoint
    stashCopy(size_t idx)
    {
        std::lock_guard<std::mutex> lk(mu_);
        return racers_[idx].stash;
    }

    /**
     * Coordinator loop for the portfolio run() thread: sleeps on the
     * controller CV and services user-level checkpoint requests — a
     * request fans out to every running racer's own hooks, and the
     * portfolio snapshot is assembled and saved once each of them
     * stashed a fresh boundary state (or went terminal).
     */
    void
    coordinate(CheckpointHooks *userCk, uint64_t fence, uint64_t seed)
    {
        std::unique_lock<std::mutex> lk(mu_);
        bool collecting = false;
        std::vector<uint64_t> goal(racers_.size(), 0);
        auto anyRunning = [&]() {
            for (const Racer &r : racers_)
                if (!r.done)
                    return true;
            return false;
        };
        while (anyRunning()) {
            cv_.wait_for(lk, std::chrono::milliseconds(50));
            if (userCk && !collecting &&
                userCk->request.exchange(false)) {
                collecting = true;
                for (Racer &r : racers_) {
                    goal[&r - racers_.data()] = r.stashVersion;
                    if (!r.done && r.hooks)
                        r.hooks->request = true;
                }
            }
            if (collecting) {
                bool ready = true;
                for (size_t i = 0; i < racers_.size(); ++i)
                    if (!racers_[i].done &&
                        racers_[i].stashVersion <= goal[i])
                        ready = false;
                if (ready) {
                    collecting = false;
                    if (userCk->save)
                        userCk->save(assembleLocked(fence, seed));
                }
            }
        }
        // All racers are terminal now, so every stash can be
        // synthesized from a final result: a request that was still
        // in flight (or arrived just as the race ended) must not be
        // silently dropped.
        if (userCk) {
            bool pending = userCk->request.exchange(false);
            if ((collecting || pending) && userCk->save)
                userCk->save(assembleLocked(fence, seed));
        }
    }

    /** Assemble the portfolio snapshot after the race ended (the
     *  saveOnStop path). */
    SearchCheckpoint
    assembleFinal(uint64_t fence, uint64_t seed)
    {
        std::lock_guard<std::mutex> lk(mu_);
        return assembleLocked(fence, seed);
    }

    bool
    parentCancelled() const
    {
        return parent_ && parent_->cancelled();
    }

  private:
    /** Record every milestone `tp` crossed. @return true if any. */
    bool
    registerMilestonesLocked(Racer &r, const TracePoint &tp)
    {
        int64_t k = tp.sample / params_.checkEvals;
        if (k <= r.reached)
            return false;
        for (int64_t m = r.reached + 1; m <= k; ++m) {
            r.snapBest.push_back(tp.bestCost);
            r.snapImp.push_back(r.improvements);
            r.snapSamples.push_back(tp.sample);
        }
        r.reached = k;
        return true;
    }

    /** A racer blocks milestone decisions while it can still register
     *  future milestones (running, or restarting after a regrant). */
    static bool
    blocking(const Racer &r)
    {
        return !r.done && r.why != StopWhy::Cull;
    }

    /** The ledger prefix that counts for decisions: everything a
     *  culled racer registered past its cull milestone is stop-
     *  boundary overrun, not trajectory. */
    static int64_t
    decisionReach(const Racer &r)
    {
        if (r.endMilestone >= 0)
            return std::min(r.reached, r.endMilestone);
        return r.reached;
    }

    /**
     * Deterministic mode: decide every milestone all still-racing
     * racers have reached. Inputs are milestone snapshots only, so a
     * decision is a pure function of racer trajectories.
     */
    void
    tryDecideLocked()
    {
        for (;;) {
            int64_t next = decided_ + 1;
            bool anyActive = false, ready = true;
            for (const Racer &r : racers_) {
                if (!blocking(r))
                    continue;
                anyActive = true;
                if (r.reached < next) {
                    ready = false;
                    break;
                }
            }
            if (!anyActive || !ready)
                break;
            decideLocked(next);
            decided_ = next;
            cv_.notify_all();
        }
    }

    /**
     * The cull rule at milestone m: the leader is the racer with the
     * lowest best as of m (its final best if its run ended earlier;
     * ties to the lower index). A racer past warmup is culled when it
     * is strictly worse than the leader AND its improvement count
     * over the last milestone window does not exceed the leader's —
     * i.e. it is behind and not catching up.
     */
    void
    decideLocked(int64_t m)
    {
        size_t leader = 0;
        double leaderBest = kInfeasiblePenalty * 2;
        int64_t leaderRate = 0;
        for (size_t i = 0; i < racers_.size(); ++i) {
            const Racer &r = racers_[i];
            int64_t reach = decisionReach(r);
            double b;
            int64_t rate;
            if (reach >= m) {
                b = r.snapBest[static_cast<size_t>(m)];
                rate = r.snapImp[static_cast<size_t>(m)] -
                       r.snapImp[static_cast<size_t>(m - 1)];
            } else {
                // Ended (or was culled) before m: judge it by its
                // last counted milestone snapshot, never by live
                // state — where the stop boundary landed is timing
                // dependent, the ledger is not.
                b = r.snapBest[static_cast<size_t>(reach)];
                rate = 0;
            }
            if (b < leaderBest) {
                leaderBest = b;
                leader = i;
                leaderRate = rate;
            }
        }
        for (size_t i = 0; i < racers_.size(); ++i) {
            Racer &r = racers_[i];
            if (i == leader || r.endMilestone >= 0 || r.reached < m)
                continue;
            // A racer resumed already-culled replays the same rule so
            // its decision cap lands on the same milestone as in the
            // original run; any other non-blocking racer is exempt.
            bool replay = r.done &&
                          r.checkpointState ==
                              SearchCheckpoint::kRacerCulled;
            if (!replay && (!blocking(r) || r.stopFlag.load()))
                continue;
            if (r.snapSamples[static_cast<size_t>(m)] <
                params_.warmupEvals)
                continue;
            if (r.snapBest[static_cast<size_t>(m)] > leaderBest &&
                r.snapImp[static_cast<size_t>(m)] -
                        r.snapImp[static_cast<size_t>(m - 1)] <=
                    leaderRate) {
                if (replay)
                    r.endMilestone = m;
                else
                    cullLocked(i, m);
            }
        }
    }

    /** Wall-clock mode: the racer that just crossed a milestone
     *  checks itself against the live leader. Same rule as
     *  decideLocked, but on live stats — faster, timing-dependent. */
    void
    liveCullCheckLocked(size_t idx)
    {
        size_t leader = 0;
        double leaderBest = kInfeasiblePenalty * 2;
        for (size_t i = 0; i < racers_.size(); ++i)
            if (racers_[i].best < leaderBest) {
                leaderBest = racers_[i].best;
                leader = i;
            }
        Racer &r = racers_[idx];
        if (idx == leader || r.stopFlag.load())
            return;
        if (r.samples < params_.warmupEvals || r.best <= leaderBest)
            return;
        auto window = [](const Racer &rc) {
            if (rc.reached < 1)
                return rc.improvements;
            return rc.snapImp[static_cast<size_t>(rc.reached)] -
                   rc.snapImp[static_cast<size_t>(rc.reached - 1)];
        };
        const Racer &lr = racers_[leader];
        int64_t leaderRate = lr.done ? 0 : window(lr);
        if (window(r) <= leaderRate)
            cullLocked(idx, r.reached);
    }

    void
    cullLocked(size_t idx, int64_t milestone)
    {
        Racer &r = racers_[idx];
        r.why = StopWhy::Cull;
        r.checkpointState = SearchCheckpoint::kRacerCulled;
        r.endMilestone = milestone;
        r.stopFlag = true;
        cv_.notify_all();
    }

    /** Return a stopped racer's grant to the pool and hand the whole
     *  headroom to the smallest surviving racer (lowest index on
     *  ties). The regrant rides a checkpoint restart, so it is
     *  result-neutral; it only happens when there is real headroom. */
    void
    releaseGrantLocked(size_t idx)
    {
        headroom_ += racers_[idx].grant;
        racers_[idx].grant = 0;
        int target = -1;
        for (size_t j = 0; j < racers_.size(); ++j) {
            Racer &t = racers_[j];
            if (t.done || t.why != StopWhy::None || t.stopFlag.load())
                continue;
            if (target < 0 || t.grant < racers_[static_cast<size_t>(
                                            target)].grant)
                target = static_cast<int>(j);
        }
        if (target >= 0 && headroom_ >= 1) {
            Racer &t = racers_[static_cast<size_t>(target)];
            t.pendingGrant = t.grant + headroom_;
            headroom_ = 0;
            t.why = StopWhy::Regrant;
            t.stopFlag = true;
            cv_.notify_all();
        }
    }

    /**
     * One portfolio snapshot: the per-racer stashes (live boundary
     * states for running racers, synthesized final states for
     * terminal ones) plus each racer's checkpoint state. Top-level
     * incumbent fields summarize across racers for inspection; the
     * racer sections are what a resume consumes.
     */
    SearchCheckpoint
    assembleLocked(uint64_t fence, uint64_t seed)
    {
        SearchCheckpoint c;
        c.algo = "portfolio";
        c.fence = fence;
        c.seed = seed;
        c.hasPortfolio = true;
        for (Racer &r : racers_) {
            SearchCheckpoint sub;
            if (r.checkpointState != SearchCheckpoint::kRacerActive &&
                r.haveResult) {
                // Terminal: synthesize a final stash from the result.
                // Never fed back into a driver, so no fence needed;
                // tsBestBuffer carries the exact best buffer for every
                // algo (genome decode is not authoritative for the
                // two-step drivers).
                sub.algo = r.algo;
                sub.seed = seed;
                sub.samples = r.result.samples;
                sub.bestCost = r.result.bestCost;
                sub.best = r.result.best;
                sub.best.evalRecord = nullptr;
                sub.trace = r.result.trace;
                sub.points = r.result.points;
                sub.hasTs = true;
                sub.tsBestBuffer = r.result.bestBuffer;
            } else if (r.stashValid) {
                sub = r.stash;
            } else {
                // Active racer that never reached a boundary: a fresh
                // start marker (algo set, zero samples, empty trace).
                sub.algo = r.algo;
                sub.seed = seed;
            }
            c.racers.push_back(std::move(sub));
            c.racerState.push_back(r.checkpointState);
            c.samples += c.racers.back().samples;
            if (c.racers.back().bestCost < c.bestCost) {
                c.bestCost = c.racers.back().bestCost;
                c.best = c.racers.back().best;
            }
        }
        return c;
    }

    const PortfolioParams &params_;
    SearchObserver *parent_;
    std::vector<Racer> racers_;
    int threadBudget_;
    int headroom_ = 0;
    int64_t decided_ = 0; ///< highest decided milestone (deterministic)
    double globalBest_ = kInfeasiblePenalty; ///< parent-stream incumbent

    mutable std::mutex mu_;
    std::condition_variable cv_;
};

/** Per-racer observer: forwards the racer's progress stream into the
 *  controller and polls its stop flag for cooperative cancellation. */
class RacerObserver : public SearchObserver
{
  public:
    void
    bind(RaceController *ctl, size_t idx)
    {
        ctl_ = ctl;
        idx_ = idx;
    }

    void
    onTrace(const TracePoint &tp) override
    {
        ctl_->onTrace(idx_, tp);
    }

    void
    onImprove(const TracePoint &tp) override
    {
        ctl_->onImprove(idx_, tp);
    }

    void
    onBatchDone(int64_t samples, double bestCost) override
    {
        ctl_->onBatchDone(idx_, samples, bestCost);
    }

    bool
    cancelled() override
    {
        return ctl_->cancelledFor(idx_);
    }

  private:
    RaceController *ctl_ = nullptr;
    size_t idx_ = 0;
};

/** The racing meta-searcher (see portfolio.h). */
class PortfolioSearcher : public Searcher
{
  public:
    PortfolioSearcher(CostModel &model, const DseSpace &space,
                      const SearchSpec &spec)
        : model_(model), space_(space), spec_(spec)
    {
    }

    std::string name() const override { return "portfolio"; }

    std::string
    describe() const override
    {
        return "racing portfolio: registered searchers race on thread "
               "slices over one shared cache; losers are early-stopped "
               "and their threads regranted";
    }

    SearchResult run(const std::vector<Genome> &seeds) override;

  private:
    struct Slot
    {
        SearchSpec rspec;        ///< the racer's solo spec
        RacerObserver shim;
        CheckpointHooks hooks;   ///< the racer's own stash hooks
        SearchCheckpoint resume; ///< stable storage for hooks.resume
        bool haveResume = false;
        ParetoArchive archive;   ///< per-racer frontier (merged at end)
        std::thread thread;
    };

    void racerMain(size_t idx, const std::vector<Genome> &seeds);
    SearchResult synthesizeTerminal(const SearchCheckpoint &sub,
                                    int state) const;

    CostModel &model_;
    DseSpace space_;
    SearchSpec spec_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::unique_ptr<RaceController> ctl_;
};

/** Reconstruct a terminal racer's final result from its persisted
 *  stash (the racer is not re-run on resume). */
SearchResult
PortfolioSearcher::synthesizeTerminal(const SearchCheckpoint &sub,
                                      int state) const
{
    SearchResult r;
    r.best = sub.best;
    r.bestCost = sub.bestCost;
    r.samples = sub.samples;
    r.trace = sub.trace;
    r.points = sub.points;
    r.stop = state == SearchCheckpoint::kRacerCulled
                 ? StopReason::Cancelled
                 : StopReason::BudgetExhausted;
    if (r.bestCost < kInfeasiblePenalty) {
        r.bestBuffer = sub.hasTs ? sub.tsBestBuffer
                                 : r.best.buffer(space_);
        r.bestGraphCost = model_.partitionCost(r.best.part, r.bestBuffer);
    }
    return r;
}

void
PortfolioSearcher::racerMain(size_t idx, const std::vector<Genome> &seeds)
{
    Slot &s = *slots_[idx];
    const double timeLimit = spec_.eval.timeLimitSec;
    double spent = 0.0;
    for (;;) {
        s.rspec.eval.threads = ctl_->grantFor(idx);
        s.hooks.resume = s.haveResume ? &s.resume : nullptr;
        if (timeLimit > 0.0)
            s.rspec.eval.timeLimitSec =
                std::max(timeLimit - spent, 1e-9);
        auto t0 = std::chrono::steady_clock::now();
        std::unique_ptr<Searcher> searcher = SearcherRegistry::instance()
            .make(s.rspec.algo, model_, space_, s.rspec);
        SearchResult r = searcher->run(seeds);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        spent += wall;
        ReturnAction act = ctl_->onRacerReturn(idx, std::move(r), wall);
        if (act == ReturnAction::Done)
            break;
        s.haveResume = act == ReturnAction::RestartResume;
        if (s.haveResume)
            s.resume = ctl_->stashCopy(idx);
    }
}

SearchResult
PortfolioSearcher::run(const std::vector<Genome> &seeds)
{
    const PortfolioParams &pp = spec_.portfolio;
    const SearcherRegistry &reg = SearcherRegistry::instance();
    if (pp.racers.empty())
        fatal("portfolio: racer list is empty");
    if (pp.checkEvals <= 0 || pp.warmupEvals < 0)
        fatal("portfolio: checkEvals must be > 0 and warmupEvals >= 0");
    for (size_t i = 0; i < pp.racers.size(); ++i) {
        const std::string &key = pp.racers[i];
        if (key == "portfolio")
            fatal("portfolio: a portfolio cannot race itself");
        if (!reg.contains(key))
            fatal("portfolio: unknown racer '%s'", key.c_str());
        for (size_t j = 0; j < i; ++j)
            if (pp.racers[j] == key)
                fatal("portfolio: duplicate racer '%s' (same seed => "
                      "identical runs)",
                      key.c_str());
    }

    // The ONE shared evaluation cache all racers warm for each other
    // (the salt excludes seed/threads/algo, so racers share entries at
    // the genome level).
    std::shared_ptr<EvalCache> cache = spec_.eval.cache;
    if (!cache && spec_.eval.cacheEnabled)
        cache = std::make_shared<EvalCache>(spec_.eval.cacheCapacity);
    EvalCacheStats cacheStart;
    if (cache)
        cacheStart = cache->stats();

    const int threadBudget =
        ThreadPool::resolveThreads(spec_.eval.threads);
    SearchObserver *parent = spec_.eval.observer;
    ctl_ = std::make_unique<RaceController>(pp, parent, threadBudget);

    // User-level checkpointing: the hooks on the spec belong to the
    // portfolio; racers get their own stash hooks below.
    CheckpointHooks *userCk = spec_.eval.checkpoint;
    const uint64_t fence =
        userCk ? portfolioCheckpointFence(model_, space_, spec_.eval, pp)
               : 0;
    const SearchCheckpoint *resumeCk = userCk ? userCk->resume : nullptr;
    if (resumeCk) {
        if (resumeCk->algo != "portfolio")
            fatal("portfolio: checkpoint is for algo '%s'",
                  resumeCk->algo.c_str());
        if (resumeCk->fence != fence)
            fatal("portfolio: checkpoint fence mismatch (the racer "
                  "line-up, race knobs, model, or budget changed)");
        if (!resumeCk->hasPortfolio ||
            resumeCk->racers.size() != pp.racers.size() ||
            resumeCk->racerState.size() != pp.racers.size())
            fatal("portfolio: malformed portfolio checkpoint");
    }

    const size_t n = pp.racers.size();
    slots_.clear();
    for (size_t i = 0; i < n; ++i) {
        slots_.push_back(std::make_unique<Slot>());
        Slot &s = *slots_[i];
        s.shim.bind(ctl_.get(), i);
        s.rspec = spec_;
        s.rspec.algo = pp.racers[i];
        s.rspec.eval.cache = cache;
        s.rspec.eval.cacheEnabled = cache != nullptr;
        s.rspec.eval.observer = &s.shim;
        s.rspec.eval.checkpoint = &s.hooks;
        s.rspec.eval.pareto = spec_.eval.pareto ? &s.archive : nullptr;
        s.rspec.paretoMode = false;
        s.hooks.save = [this, i](const SearchCheckpoint &c) {
            ctl_->storeStash(i, c);
        };
        RaceController::Racer &r = ctl_->racer(i);
        r.hooks = &s.hooks;
        if (resumeCk) {
            const SearchCheckpoint &sub = resumeCk->racers[i];
            int state = resumeCk->racerState[i];
            if (sub.algo != pp.racers[i])
                fatal("portfolio: racer %zu checkpoint is for '%s', "
                      "spec says '%s'",
                      i, sub.algo.c_str(), pp.racers[i].c_str());
            if (state == SearchCheckpoint::kRacerActive) {
                // Fresh-start marker: no samples recorded yet.
                if (sub.samples > 0 || !sub.trace.empty()) {
                    ctl_->seedFromCheckpoint(i, sub, state);
                    s.resume = sub;
                    s.haveResume = true;
                }
            } else {
                ctl_->seedFromCheckpoint(i, sub, state);
                ctl_->setTerminalResult(i,
                                        synthesizeTerminal(sub, state));
            }
        }
    }

    ctl_->initGrants();
    ctl_->primeDecisions();

    for (size_t i = 0; i < n; ++i)
        if (!ctl_->racer(i).done)
            slots_[i]->thread = std::thread(
                [this, i, &seeds] { racerMain(i, seeds); });

    ctl_->coordinate(userCk, fence, spec_.eval.seed);
    for (auto &slot : slots_)
        if (slot->thread.joinable())
            slot->thread.join();

    // Winner: lowest final best cost, ties to the lower index.
    size_t w = 0;
    for (size_t i = 1; i < n; ++i)
        if (ctl_->racer(i).result.bestCost <
            ctl_->racer(w).result.bestCost)
            w = i;

    SearchResult out = ctl_->racer(w).result;
    out.samples = 0;
    out.deltaStats = DeltaStats{};
    for (size_t i = 0; i < n; ++i) {
        RaceController::Racer &r = ctl_->racer(i);
        out.samples += r.result.samples;
        out.deltaStats += r.result.deltaStats;
        RacerStats stats;
        stats.algo = r.algo;
        stats.samples = r.result.samples;
        stats.bestCost = r.result.bestCost;
        stats.improvements = r.improvements;
        stats.wallSeconds = r.wallSeconds;
        stats.threads = r.lastGrant;
        stats.regrants = r.regrants;
        stats.culled =
            r.checkpointState == SearchCheckpoint::kRacerCulled;
        stats.winner = i == w;
        stats.stop = r.result.stop;
        out.racers.push_back(std::move(stats));
        // Merge per-racer frontiers in index order: deterministic
        // even under archive truncation.
        if (spec_.eval.pareto)
            spec_.eval.pareto->merge(slots_[i]->archive);
    }
    // The per-racer cache deltas overlap in time on the shared cache;
    // only the portfolio-wide delta is meaningful.
    if (cache)
        out.cacheStats = cache->stats() - cacheStart;

    bool parentCancel = ctl_->parentCancelled();
    if (parentCancel)
        out.stop = StopReason::Cancelled;
    else if (out.racers[w].culled)
        out.stop = StopReason::BudgetExhausted; // won posthumously
    else
        out.stop = ctl_->racer(w).result.stop;

    if (userCk && userCk->save && userCk->saveOnStop &&
        (out.stop == StopReason::Cancelled ||
         out.stop == StopReason::TimeLimit))
        userCk->save(ctl_->assembleFinal(fence, spec_.eval.seed));
    return out;
}

std::unique_ptr<Searcher>
makePortfolio(CostModel &m, const DseSpace &s, const SearchSpec &spec)
{
    return std::make_unique<PortfolioSearcher>(m, s, spec);
}

} // namespace

void
registerPortfolioSearcher(SearcherRegistry &reg)
{
    reg.add("portfolio",
            "racing portfolio over registered searchers (shared cache, "
            "losers early-stopped, threads regranted)",
            makePortfolio);
}

} // namespace cocco
