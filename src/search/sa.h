/**
 * @file
 * Simulated-annealing baseline (paper Section 4.2.4): single-state
 * optimization using the same customized mutation operators and the
 * same evaluation environment as the GA, with geometric cooling and
 * Metropolis acceptance.
 *
 * Parallelism: each round speculatively generates a batch of
 * neighbors of the current state (per-neighbor RNG streams), submits
 * the batch to the EvalEngine, then sweeps the results in index
 * order with the usual Metropolis rule. With the default
 * neighborBatch == 1 this is the classic serial chain. Results
 * depend on the batch size but never on the thread count, so a
 * fixed (seed, neighborBatch) pair reproduces exactly anywhere.
 */

#ifndef COCCO_SEARCH_SA_H
#define COCCO_SEARCH_SA_H

#include "search/ga.h"

namespace cocco {

/** SA hyper-parameters (shares the GA's evaluation options). */
struct SaOptions
{
    int64_t sampleBudget = 50000;
    double tempStartFrac = 0.1;  ///< T0 as a fraction of the initial cost
    double tempEndFrac = 1e-5;   ///< final T as a fraction of T0
    uint64_t seed = 1;
    double alpha = 0.002;
    Metric metric = Metric::Energy;
    bool coExplore = true;
    double dseMutationRate = 0.3;

    int threads = 1;       ///< evaluation parallelism; <= 0 = all cores
    /** Speculative neighbors per round. The default 1 is the classic
     *  serial chain (threads then gain nothing); raise it to occupy
     *  the pool. Results depend on this value, not on threads. */
    int neighborBatch = 1;

    /** Evaluation-cache knobs (see GaOptions). */
    bool cacheEnabled = true;
    size_t cacheCapacity = EvalCache::kDefaultCapacity;
    std::shared_ptr<EvalCache> cache;
};

/** Run simulated annealing over the same genome space as the GA. */
SearchResult simulatedAnnealing(CostModel &model, const DseSpace &space,
                                const SaOptions &opts);

} // namespace cocco

#endif // COCCO_SEARCH_SA_H
