/**
 * @file
 * Simulated-annealing baseline (paper Section 4.2.4): single-state
 * optimization using the same customized mutation operators and the
 * same evaluation environment as the GA, with geometric cooling and
 * Metropolis acceptance.
 *
 * Parallelism: each round speculatively generates a batch of
 * neighbors of the current state (per-neighbor RNG streams), submits
 * the batch to the EvalEngine, then sweeps the results in index
 * order with the usual Metropolis rule. With the default
 * neighborBatch == 1 this is the classic serial chain. Results
 * depend on the batch size but never on the thread count, so a
 * fixed (seed, neighborBatch) pair reproduces exactly anywhere.
 */

#ifndef COCCO_SEARCH_SA_H
#define COCCO_SEARCH_SA_H

#include "search/ga.h"

namespace cocco {

/** SA-specific parameters (the shared knobs live in EvalOptions). */
struct SaParams
{
    double tempStartFrac = 0.1;  ///< T0 as a fraction of the initial cost
    double tempEndFrac = 1e-5;   ///< final T as a fraction of T0
    double dseMutationRate = 0.3;

    /** Speculative neighbors per round. The default 1 is the classic
     *  serial chain (threads then gain nothing); raise it to occupy
     *  the pool. Results depend on this value, not on threads. */
    int neighborBatch = 1;
};

/** SA hyper-parameters: the shared evaluation core + the SA block. */
struct SaOptions : EvalOptions, SaParams
{
};

/** Run simulated annealing over the same genome space as the GA. */
SearchResult simulatedAnnealing(CostModel &model, const DseSpace &space,
                                const SaOptions &opts);

} // namespace cocco

#endif // COCCO_SEARCH_SA_H
