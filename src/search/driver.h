/**
 * @file
 * The polymorphic search-driver layer: one composable entry point
 * over every search strategy (paper Figure 10's one-stop framework).
 *
 * - Searcher: the abstract interface every strategy implements —
 *   run(seeds), name(), describe().
 * - SearcherRegistry: string-keyed factories ("ga", "sa",
 *   "ts-random", "ts-grid"), mirroring the model registry, so
 *   frontends dispatch by name and new algorithms plug in without
 *   touching any caller.
 * - SearchSpec: a declarative run description — algorithm key, mode
 *   (co-explore vs partition-only), the shared EvalOptions core and
 *   the per-algorithm parameter blocks — resolvable from C++ or from
 *   a JSON document (searchSpecFromJson).
 *
 * CoccoFramework::explore(SearchSpec) drives any registered strategy
 * through this layer; the legacy entry points (GeneticSearch,
 * simulatedAnnealing, twoStepRandom/Grid, coExplore/partitionOnly)
 * remain and are bit-identical to the registry path at a fixed seed
 * and thread count.
 */

#ifndef COCCO_SEARCH_DRIVER_H
#define COCCO_SEARCH_DRIVER_H

#include <memory>
#include <string>
#include <vector>

#include "models/models.h"
#include "schedule/workload_set.h"
#include "search/ga.h"
#include "search/portfolio.h"
#include "search/sa.h"
#include "search/two_step.h"
#include "sim/deployment.h"
#include "sim/platform.h"

namespace cocco {

class JsonValue;

/**
 * A declarative description of one search run. The evaluation core
 * (budget, seed, objective, threads, cache, observer/early-stop) is
 * shared; each strategy reads its own parameter block and ignores
 * the others, so one spec can be re-dispatched across algorithms by
 * only changing `algo`.
 *
 * Mode: eval.coExplore == true (default) searches the paper's
 * capacity grid for `style` (Formula 2); false freezes `fixedBuffer`
 * and optimizes the partition alone (Formula 1).
 *
 * Workload & platform: `workload` addresses what to run (a registry
 * model with parameters, or a Graph JSON file) and `platform` where
 * to run it (a named preset, a platform JSON file, or an inline
 * configuration), so one JSON document fully describes a run. Both
 * are addresses, not resolved objects — the frontend resolves them
 * via resolveWorkload()/resolvePlatform() (core/serialize.h) before
 * constructing the evaluation environment; an explicit workload
 * batch (>= 1, including 1) overrides the platform's at that point.
 *
 * Deployment: `deployment` optionally scales the run out over
 * crossbar-connected cores (a preset, a file, or an inline
 * description; see sim/deployment.h). It too is an address —
 * resolveDeployment() turns it into per-core configurations against
 * the resolved platform, and CoccoFramework's deployment constructor
 * evaluates under the composed DeploymentCostModel.
 */
struct SearchSpec
{
    std::string algo = "ga";     ///< SearcherRegistry key

    WorkloadSpec workload;       ///< what to run (model/file + params)

    /** Multi-tenant alternative to `workload`: N named workloads with
     *  arrival rates and latency SLAs, co-scheduled over the
     *  deployment (schedule/co_scheduler.h). Mutually exclusive with
     *  `workload`/`model` in a spec document; a one-tenant set is
     *  normalized into `workload` at parse time, so it is
     *  bit-identical to the plain spelling on every frontend. */
    WorkloadSet workloadSet;

    PlatformSpec platform;       ///< where to run it (default "simba")
    DeploymentSpec deployment;   ///< how many cores / which mix (off by
                                 ///< default; "cores": 1 is exactly the
                                 ///< plain single-platform run)

    BufferStyle style = BufferStyle::Shared; ///< co-explore grid
    BufferConfig fixedBuffer;    ///< partition-only target buffer

    EvalOptions eval;            ///< the shared evaluation core
    GaParams ga;                 ///< read by "ga" (and two-step inners)
    SaParams sa;                 ///< read by "sa"
    TwoStepParams twoStep;       ///< read by "ts-random" / "ts-grid"
    PortfolioParams portfolio;   ///< read by "portfolio"

    /** `"mode": "pareto"`: co-explore while maintaining a
     *  non-dominated {buffer, energy, latency} archive in the eval
     *  loop; the frontier lands in CoccoResult::frontier. Implies
     *  eval.coExplore (a frontier over one frozen capacity is a
     *  line). Works under any algo, including "portfolio". */
    bool paretoMode = false;
};

/** Assemble full per-algorithm options from a spec (core + block). */
GaOptions gaOptions(const SearchSpec &spec);
SaOptions saOptions(const SearchSpec &spec);
TwoStepOptions twoStepOptions(const SearchSpec &spec);

/** One search strategy bound to an evaluation environment. */
class Searcher
{
  public:
    virtual ~Searcher() = default;

    /** The registry key ("ga", "sa", ...). */
    virtual std::string name() const = 0;

    /** One-line human description of the strategy. */
    virtual std::string describe() const = 0;

    /**
     * Run to the spec's budget (or an early stop). @p seeds join the
     * initial population where the strategy supports warm starts
     * (the GA's flexible initialization); strategies without that
     * notion ignore them.
     */
    virtual SearchResult run(const std::vector<Genome> &seeds = {}) = 0;
};

/** Factory: bind a strategy to (model, space, spec). */
using SearcherFactory = std::unique_ptr<Searcher> (*)(
    CostModel &model, const DseSpace &space, const SearchSpec &spec);

/**
 * The string-keyed driver registry. The four built-in strategies
 * ("ga", "sa", "ts-random", "ts-grid") are registered on first use;
 * additional strategies can be added at startup via add().
 */
class SearcherRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static SearcherRegistry &instance();

    /** Register a strategy (fatal on duplicate key). */
    void add(const std::string &key, const std::string &summary,
             SearcherFactory factory);

    /** @return true when @p key names a registered strategy. */
    bool contains(const std::string &key) const;

    /** Instantiate @p key for an environment (fatal: unknown key). */
    std::unique_ptr<Searcher> make(const std::string &key,
                                   CostModel &model, const DseSpace &space,
                                   const SearchSpec &spec) const;

    /** Registered keys, in registration order. */
    std::vector<std::string> keys() const;

    /** The one-line summary registered for @p key (fatal: unknown). */
    const std::string &summary(const std::string &key) const;

  private:
    SearcherRegistry();

    struct Entry
    {
        std::string key;
        std::string summary;
        SearcherFactory factory;
    };
    const Entry *find(const std::string &key) const;

    std::vector<Entry> entries_;
};

/**
 * Populate a SearchSpec from a parsed JSON run spec (the CLI's
 * --spec document; schema in the README). Unknown keys and type
 * mismatches are reported as errors so typos cannot silently fall
 * back to defaults. The workload is addressed by either a top-level
 * "model" string (shorthand) or a "workload" section (model/file +
 * params); the platform by a "platform" preset string, {"file": ...}
 * object, or inline configuration object (optionally based on a
 * preset via "base"). Resolution to Graph/AcceleratorConfig is the
 * caller's job (resolveWorkload/resolvePlatform in core/serialize.h).
 * @return false with *err set on any problem.
 */
bool searchSpecFromJson(const JsonValue &doc, SearchSpec *spec,
                        std::string *err);

} // namespace cocco

#endif // COCCO_SEARCH_DRIVER_H
