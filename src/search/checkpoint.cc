#include "search/checkpoint.h"

#include "sim/cost_model.h"
#include "util/hash.h"

namespace cocco {

namespace {

/** The fence lanes every driver shares: evaluation context (model,
 *  space, objective knobs) plus the run identity (algo, seed, budget).
 *  Mirrors the evaluation-context salt but adds what the salt
 *  deliberately leaves out — seed and budget — because a checkpoint
 *  is a position inside ONE specific run, not a shareable value. */
uint64_t
baseFence(const CostModel &model, const DseSpace &space,
          const EvalOptions &opts, const std::string &algo)
{
    uint64_t h = model.contextHash(kHashSeed);
    h = hashDseSpace(h, space);
    h = hashString(h, algo);
    h = hashU64(h, opts.seed);
    h = hashI64(h, opts.sampleBudget);
    h = hashDouble(h, opts.alpha);
    h = hashU64(h, static_cast<uint64_t>(opts.metric));
    h = hashU64(h, opts.coExplore ? 1 : 0);
    h = hashU64(h, opts.inSituSplit ? 1 : 0);
    return h;
}

} // namespace

uint64_t
gaCheckpointFence(const CostModel &model, const DseSpace &space,
                  const GaOptions &opts)
{
    uint64_t h = baseFence(model, space, opts, "ga");
    h = hashI64(h, opts.population);
    h = hashDouble(h, opts.crossoverRate);
    h = hashDouble(h, opts.mutPartitionRate);
    h = hashDouble(h, opts.mutDseRate);
    h = hashI64(h, opts.tournament);
    h = hashI64(h, opts.elite);
    h = hashU64(h, opts.recordPoints ? 1 : 0);
    return hashFinalize(h);
}

uint64_t
saCheckpointFence(const CostModel &model, const DseSpace &space,
                  const SaOptions &opts)
{
    uint64_t h = baseFence(model, space, opts, "sa");
    h = hashDouble(h, opts.tempStartFrac);
    h = hashDouble(h, opts.tempEndFrac);
    h = hashDouble(h, opts.dseMutationRate);
    h = hashI64(h, opts.neighborBatch);
    return hashFinalize(h);
}

uint64_t
twoStepCheckpointFence(const CostModel &model, const DseSpace &space,
                       const TwoStepOptions &opts, const std::string &algo)
{
    uint64_t h = baseFence(model, space, opts, algo);
    h = hashI64(h, opts.samplesPerCandidate);
    h = hashI64(h, opts.population);
    return hashFinalize(h);
}

uint64_t
portfolioCheckpointFence(const CostModel &model, const DseSpace &space,
                         const EvalOptions &opts,
                         const PortfolioParams &params)
{
    uint64_t h = baseFence(model, space, opts, "portfolio");
    h = hashI64(h, static_cast<int64_t>(params.racers.size()));
    for (const std::string &racer : params.racers)
        h = hashString(h, racer);
    h = hashU64(h, params.deterministicRace ? 1 : 0);
    h = hashI64(h, params.checkEvals);
    h = hashI64(h, params.warmupEvals);
    return hashFinalize(h);
}

} // namespace cocco
