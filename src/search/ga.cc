#include "search/ga.h"

#include <algorithm>

#include "partition/repair.h"
#include "search/checkpoint.h"
#include "search/operators.h"
#include "search/pareto.h"
#include "util/logging.h"

namespace cocco {

namespace {

/** Validate the GA knobs; the engine consumes the EvalOptions base
 *  of the same struct directly (GaOptions slices to it). */
const GaOptions &
validated(const GaOptions &opts)
{
    if (opts.population < 2)
        fatal("GA population must be >= 2");
    if (opts.tournament < 1)
        fatal("GA tournament size must be >= 1");
    return opts;
}

} // namespace

GeneticSearch::GeneticSearch(CostModel &model, const DseSpace &space,
                             const GaOptions &opts,
                             std::shared_ptr<ThreadPool> pool)
    : model_(model), space_(space), opts_(opts),
      engine_(model, space, validated(opts), std::move(pool))
{
}

double
GeneticSearch::evaluate(Genome &genome)
{
    return engine_.evaluate(genome);
}

SearchResult
GeneticSearch::run(const std::vector<Genome> &seeds)
{
    // Master stream: selection only. Variation and evaluation draw
    // from per-offspring streams inside the engine, so population
    // batches parallelize without perturbing this sequence.
    Rng rng(opts_.seed);
    SearchResult res;
    SearchMonitor &mon = engine_.monitor();
    EvalCacheStats cache_start;
    if (engine_.cache())
        cache_start = engine_.cache()->stats();

    struct Scored
    {
        Genome genome;
        double cost = kInfeasiblePenalty;
    };
    std::vector<Scored> pop;
    pop.reserve(opts_.population);

    auto record = [&](const Scored &s) {
        ++res.samples;
        bool improved = s.cost < res.bestCost;
        if (improved) {
            res.bestCost = s.cost;
            res.best = s.genome;
        }
        res.trace.push_back({res.samples, res.bestCost});
        mon.recordSample(res.trace.back(), improved);
        if (opts_.recordPoints || opts_.pareto) {
            BufferConfig buf = s.genome.buffer(space_);
            GraphCost gc = model_.partitionCost(s.genome.part, buf);
            if (opts_.recordPoints)
                res.points.push_back({res.samples,
                                      gc.metricValue(opts_.metric),
                                      buf.totalBytes()});
            if (opts_.pareto && gc.feasible)
                opts_.pareto->offer({buf.totalBytes(), gc.energyPj,
                                     gc.latencyCycles,
                                     gc.metricValue(opts_.metric),
                                     res.samples});
        }
    };

    auto tournament_pick = [&](const std::vector<Scored> &pool,
                               Rng &r) -> const Scored & {
        const Scored *best = &pool[r.index(pool.size())];
        for (int t = 1; t < opts_.tournament; ++t) {
            const Scored &c = pool[r.index(pool.size())];
            if (c.cost < best->cost)
                best = &c;
        }
        return *best;
    };

    // --- Checkpointing: snapshots are taken only at generation
    //     boundaries (after selection refilled the population), where
    //     (rng, stream counter, population, incumbent, trace) form a
    //     consistent serial state. `boundary` holds the stream counter
    //     captured there — the live counter is already past it while a
    //     batch is in flight, including discarded partial ones. ---
    CheckpointHooks *ck = opts_.checkpoint;
    const uint64_t fence =
        ck ? gaCheckpointFence(model_, space_, opts_) : 0;
    uint64_t boundary = 0;
    auto strip = [](Genome g) {
        g.evalRecord = nullptr; // value-neutral accelerator; drop it
        return g;
    };
    auto snapshot = [&]() {
        SearchCheckpoint c;
        c.algo = "ga";
        c.fence = fence;
        c.seed = opts_.seed;
        c.samples = res.samples;
        c.bestCost = res.bestCost;
        c.best = strip(res.best);
        c.trace = res.trace;
        c.points = res.points;
        c.rng = rng.state();
        c.streamCounter = boundary;
        c.sinceImprove = mon.samplesSinceImprove();
        for (const Scored &s : pop) {
            c.population.push_back(strip(s.genome));
            c.popCosts.push_back(s.cost);
        }
        return c;
    };
    auto serve_request = [&]() {
        if (ck && ck->save &&
            ck->request.exchange(false, std::memory_order_acq_rel))
            ck->save(snapshot());
    };

    // --- Initialization: resume from a checkpoint, or run one batch
    //     through the engine (optionally seeded with external
    //     results). A batch cut short by a hard stop is discarded
    //     whole: which elements ran depends on timing, so recording
    //     any of them would break determinism. ---
    bool complete;
    if (ck && ck->resume) {
        const SearchCheckpoint &c = *ck->resume;
        if (c.algo != "ga" || c.fence != fence)
            fatal("checkpoint does not match this run (saved by \"%s\", "
                  "fence mismatch or different configuration)",
                  c.algo.c_str());
        if (c.population.size() != static_cast<size_t>(opts_.population) ||
            c.popCosts.size() != c.population.size())
            fatal("checkpoint population does not match the configured "
                  "GA population");
        res.samples = c.samples;
        res.bestCost = c.bestCost;
        res.best = c.best;
        res.trace = c.trace;
        res.points = c.points;
        rng.setState(c.rng);
        engine_.setStreamCounter(c.streamCounter);
        boundary = c.streamCounter;
        mon.restoreStall(c.sinceImprove);
        for (size_t i = 0; i < c.population.size(); ++i)
            pop.push_back({c.population[i], c.popCosts[i]});
        complete = true;
    } else {
        size_t n = static_cast<size_t>(opts_.population);
        size_t n_seed = std::min(seeds.size(), n);
        std::vector<Scored> init(n);
        for (size_t i = 0; i < n_seed; ++i)
            init[i].genome = seeds[i];
        complete = engine_.forEachStream(n, [&](size_t i, Rng &r) {
            if (i >= n_seed)
                init[i].genome = randomGenome(model_.graph(), space_, r);
            init[i].cost = engine_.evaluate(init[i].genome);
        });
        if (complete) {
            for (Scored &s : init) {
                record(s);
                pop.push_back(std::move(s));
            }
            mon.batchDone(res.samples, res.bestCost);
            boundary = engine_.streamCounter();
            serve_request();
        }
    }

    // --- Generations. ---
    while (complete && !mon.shouldStop() &&
           res.samples < opts_.sampleBudget) {
        size_t want = static_cast<size_t>(
            std::min<int64_t>(opts_.population,
                              opts_.sampleBudget - res.samples));
        if (want == 0)
            break;

        // Offspring are produced *and* evaluated inside the batch:
        // slot i draws its crossover/mutation decisions from stream i
        // against the read-only parent population, so the batch is
        // embarrassingly parallel yet deterministic.
        std::vector<Scored> offspring(want);
        const std::vector<Scored> &parents = pop;
        complete = engine_.forEachStream(want, [&](size_t i, Rng &r) {
            Genome child;
            GeneDelta delta;
            if (r.bernoulli(opts_.crossoverRate)) {
                const Scored &dad = tournament_pick(parents, r);
                const Scored &mom = tournament_pick(parents, r);
                child = crossover(model_.graph(), space_, dad.genome,
                                  mom.genome, r, &delta);
            } else {
                child = tournament_pick(parents, r).genome;
            }
            if (r.bernoulli(opts_.mutPartitionRate)) {
                switch (r.index(3)) {
                  case 0:
                    mutateModifyNode(model_.graph(), child, r, &delta);
                    break;
                  case 1:
                    mutateSplitSubgraph(model_.graph(), child, r, &delta);
                    break;
                  default:
                    mutateMergeSubgraph(model_.graph(), child, r, &delta);
                }
            }
            if (space_.searchHw && r.bernoulli(opts_.mutDseRate))
                mutateDse(space_, child, r, 2.0, &delta);

            offspring[i].genome = std::move(child);
            offspring[i].cost =
                engine_.evaluate(offspring[i].genome, &delta);
        });
        if (!complete)
            break; // partial batch: discard and end the run
        for (const Scored &sc : offspring)
            record(sc);
        mon.batchDone(res.samples, res.bestCost);

        // --- Tournament selection over the merged pool, keeping the
        //     elite unconditionally. ---
        std::vector<Scored> pool = std::move(pop);
        pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
        std::sort(pool.begin(), pool.end(),
                  [](const Scored &a, const Scored &b) {
                      return a.cost < b.cost;
                  });
        pop.clear();
        int elite = std::min<int>(opts_.elite, static_cast<int>(pool.size()));
        for (int e = 0; e < elite; ++e)
            pop.push_back(pool[e]);
        while (static_cast<int>(pop.size()) < opts_.population)
            pop.push_back(tournament_pick(pool, rng));

        boundary = engine_.streamCounter();
        serve_request();
    }

    res.stop = mon.stopReason();
    // The killed-job path: the run ended early, so persist the last
    // boundary — resuming from it replays the rest bit-identically.
    // (A budget/stall end is final; nothing left to resume.)
    if (ck && ck->save && ck->saveOnStop && !pop.empty() &&
        (res.stop == StopReason::Cancelled ||
         res.stop == StopReason::TimeLimit))
        ck->save(snapshot());
    if (res.samples > 0) {
        res.bestBuffer = res.best.buffer(space_);
        res.bestGraphCost =
            model_.partitionCost(res.best.part, res.bestBuffer);
    }
    if (engine_.cache())
        res.cacheStats = engine_.cache()->stats() - cache_start;
    // Incremental-recost accounting rides the cache report even when
    // no cache is in play (the engine owns these counters).
    res.cacheStats.incReusedBlocks = engine_.recordBlocksReused();
    res.cacheStats.incRecostBlocks = engine_.recordBlocksRecosted();
    res.deltaStats = engine_.deltaStats();
    return res;
}

} // namespace cocco
