#include "search/ga.h"

#include <algorithm>

#include "partition/repair.h"
#include "search/operators.h"
#include "util/logging.h"

namespace cocco {

GeneticSearch::GeneticSearch(CostModel &model, const DseSpace &space,
                             const GaOptions &opts)
    : model_(model), space_(space), opts_(opts)
{
    if (opts_.population < 2)
        fatal("GA population must be >= 2");
    if (opts_.tournament < 1)
        fatal("GA tournament size must be >= 1");
}

double
GeneticSearch::evaluate(Genome &genome)
{
    BufferConfig buf = genome.buffer(space_);
    if (opts_.inSituSplit) {
        genome.part = repairToCapacity(model_.graph(), std::move(genome.part),
                                       model_, buf);
    }
    GraphCost gc = model_.partitionCost(genome.part, buf);
    if (opts_.coExplore)
        return objective(gc, buf, opts_.alpha, opts_.metric);
    if (!gc.feasible)
        return kInfeasiblePenalty;
    return gc.metricValue(opts_.metric);
}

SearchResult
GeneticSearch::run(const std::vector<Genome> &seeds)
{
    Rng rng(opts_.seed);
    SearchResult res;

    struct Scored
    {
        Genome genome;
        double cost;
    };
    std::vector<Scored> pop;
    pop.reserve(opts_.population);

    auto record = [&](const Scored &s) {
        ++res.samples;
        if (s.cost < res.bestCost) {
            res.bestCost = s.cost;
            res.best = s.genome;
        }
        res.trace.push_back({res.samples, res.bestCost});
        if (opts_.recordPoints) {
            BufferConfig buf = s.genome.buffer(space_);
            GraphCost gc = model_.partitionCost(s.genome.part, buf);
            res.points.push_back({res.samples, gc.metricValue(opts_.metric),
                                  buf.totalBytes()});
        }
    };

    // --- Initialization (optionally seeded with external results). ---
    for (const Genome &s : seeds) {
        if (static_cast<int>(pop.size()) >= opts_.population)
            break;
        Scored sc{s, 0.0};
        sc.cost = evaluate(sc.genome);
        record(sc);
        pop.push_back(std::move(sc));
    }
    while (static_cast<int>(pop.size()) < opts_.population) {
        Scored sc{randomGenome(model_.graph(), space_, rng), 0.0};
        sc.cost = evaluate(sc.genome);
        record(sc);
        pop.push_back(std::move(sc));
    }

    auto tournament_pick = [&]() -> const Scored & {
        const Scored *best = &pop[rng.index(pop.size())];
        for (int t = 1; t < opts_.tournament; ++t) {
            const Scored &c = pop[rng.index(pop.size())];
            if (c.cost < best->cost)
                best = &c;
        }
        return *best;
    };

    // --- Generations. ---
    while (res.samples < opts_.sampleBudget) {
        std::vector<Scored> offspring;
        offspring.reserve(opts_.population);
        for (int i = 0; i < opts_.population &&
                        res.samples + static_cast<int64_t>(offspring.size()) <
                            opts_.sampleBudget;
             ++i) {
            Genome child;
            if (rng.bernoulli(opts_.crossoverRate)) {
                const Scored &dad = tournament_pick();
                const Scored &mom = tournament_pick();
                child = crossover(model_.graph(), space_, dad.genome,
                                  mom.genome, rng);
            } else {
                child = tournament_pick().genome;
            }
            if (rng.bernoulli(opts_.mutPartitionRate)) {
                switch (rng.index(3)) {
                  case 0:
                    mutateModifyNode(model_.graph(), child, rng);
                    break;
                  case 1:
                    mutateSplitSubgraph(model_.graph(), child, rng);
                    break;
                  default:
                    mutateMergeSubgraph(model_.graph(), child, rng);
                }
            }
            if (space_.searchHw && rng.bernoulli(opts_.mutDseRate))
                mutateDse(space_, child, rng);

            Scored sc{std::move(child), 0.0};
            sc.cost = evaluate(sc.genome);
            offspring.push_back(std::move(sc));
        }
        if (offspring.empty())
            break;
        for (const Scored &sc : offspring)
            record(sc);

        // --- Tournament selection over the merged pool, keeping the
        //     elite unconditionally. ---
        std::vector<Scored> pool = std::move(pop);
        pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
        std::sort(pool.begin(), pool.end(),
                  [](const Scored &a, const Scored &b) {
                      return a.cost < b.cost;
                  });
        pop.clear();
        int elite = std::min<int>(opts_.elite, static_cast<int>(pool.size()));
        for (int e = 0; e < elite; ++e)
            pop.push_back(pool[e]);
        while (static_cast<int>(pop.size()) < opts_.population) {
            const Scored *best = &pool[rng.index(pool.size())];
            for (int t = 1; t < opts_.tournament; ++t) {
                const Scored &c = pool[rng.index(pool.size())];
                if (c.cost < best->cost)
                    best = &c;
            }
            pop.push_back(*best);
        }
    }

    res.bestBuffer = res.best.buffer(space_);
    res.bestGraphCost = model_.partitionCost(res.best.part, res.bestBuffer);
    return res;
}

} // namespace cocco
