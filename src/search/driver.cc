#include "search/driver.h"

#include <cmath>
#include <limits>
#include <utility>

#include "schedule/greedy_place.h"
#include "util/json.h"
#include "util/logging.h"

namespace cocco {

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::BudgetExhausted:
        return "budget";
      case StopReason::Cancelled:
        return "cancelled";
      case StopReason::TimeLimit:
        return "time-limit";
      case StopReason::Stalled:
        return "stalled";
    }
    return "?";
}

GaOptions
gaOptions(const SearchSpec &spec)
{
    GaOptions o;
    static_cast<EvalOptions &>(o) = spec.eval;
    static_cast<GaParams &>(o) = spec.ga;
    return o;
}

SaOptions
saOptions(const SearchSpec &spec)
{
    SaOptions o;
    static_cast<EvalOptions &>(o) = spec.eval;
    static_cast<SaParams &>(o) = spec.sa;
    return o;
}

TwoStepOptions
twoStepOptions(const SearchSpec &spec)
{
    TwoStepOptions o;
    static_cast<EvalOptions &>(o) = spec.eval;
    static_cast<TwoStepParams &>(o) = spec.twoStep;
    return o;
}

namespace {

/** The genetic co-exploration (paper Section 4.4). */
class GaSearcher : public Searcher
{
  public:
    GaSearcher(CostModel &model, const DseSpace &space,
               const SearchSpec &spec)
        : search_(model, space, gaOptions(spec))
    {
    }

    std::string name() const override { return "ga"; }

    std::string
    describe() const override
    {
        return "genetic co-exploration with customized operators and "
               "in-situ capacity tuning (Cocco, paper Section 4.4)";
    }

    SearchResult
    run(const std::vector<Genome> &seeds) override
    {
        return search_.run(seeds);
    }

  private:
    GeneticSearch search_;
};

/** The simulated-annealing baseline (paper Section 4.2.4). */
class SaSearcher : public Searcher
{
  public:
    SaSearcher(CostModel &model, const DseSpace &space,
               const SearchSpec &spec)
        : model_(model), space_(space), opts_(saOptions(spec))
    {
    }

    std::string name() const override { return "sa"; }

    std::string
    describe() const override
    {
        return "simulated annealing over the same genome space "
               "(geometric cooling, Metropolis acceptance)";
    }

    SearchResult
    run(const std::vector<Genome> &seeds) override
    {
        if (!seeds.empty())
            warn("sa: seed genomes are ignored (single-state chain)");
        return simulatedAnnealing(model_, space_, opts_);
    }

  private:
    CostModel &model_;
    DseSpace space_;
    SaOptions opts_;
};

/** The two-step baselines (paper Section 5.1.3). */
class TwoStepSearcher : public Searcher
{
  public:
    TwoStepSearcher(CostModel &model, const DseSpace &space,
                    const SearchSpec &spec, bool grid)
        : model_(model), space_(space), opts_(twoStepOptions(spec)),
          grid_(grid)
    {
    }

    std::string name() const override { return grid_ ? "ts-grid" : "ts-random"; }

    std::string
    describe() const override
    {
        return grid_ ? "two-step baseline: grid-search capacity sweep "
                       "(large to small) + per-candidate partition GA"
                     : "two-step baseline: random capacity sampling + "
                       "per-candidate partition GA";
    }

    SearchResult
    run(const std::vector<Genome> &seeds) override
    {
        if (!seeds.empty())
            warn("%s: seed genomes are ignored (inner GAs self-seed)",
                 name().c_str());
        return grid_ ? twoStepGrid(model_, space_, opts_)
                     : twoStepRandom(model_, space_, opts_);
    }

  private:
    CostModel &model_;
    DseSpace space_;
    TwoStepOptions opts_;
    bool grid_;
};

std::unique_ptr<Searcher>
makeGa(CostModel &m, const DseSpace &s, const SearchSpec &spec)
{
    return std::make_unique<GaSearcher>(m, s, spec);
}

std::unique_ptr<Searcher>
makeSa(CostModel &m, const DseSpace &s, const SearchSpec &spec)
{
    return std::make_unique<SaSearcher>(m, s, spec);
}

std::unique_ptr<Searcher>
makeTsRandom(CostModel &m, const DseSpace &s, const SearchSpec &spec)
{
    return std::make_unique<TwoStepSearcher>(m, s, spec, false);
}

std::unique_ptr<Searcher>
makeTsGrid(CostModel &m, const DseSpace &s, const SearchSpec &spec)
{
    return std::make_unique<TwoStepSearcher>(m, s, spec, true);
}

} // namespace

SearcherRegistry::SearcherRegistry()
{
    add("ga", "genetic co-exploration (Cocco)", makeGa);
    add("sa", "simulated annealing", makeSa);
    add("ts-random", "two-step: random capacity sampling + GA", makeTsRandom);
    add("ts-grid", "two-step: grid capacity sweep + GA", makeTsGrid);
    // Plain function call, like the model registry's hooks: no
    // static-initialization-order hazards.
    registerGreedyPlaceSearcher(*this);
    registerPortfolioSearcher(*this);
}

SearcherRegistry &
SearcherRegistry::instance()
{
    static SearcherRegistry registry;
    return registry;
}

void
SearcherRegistry::add(const std::string &key, const std::string &summary,
                      SearcherFactory factory)
{
    if (find(key))
        fatal("searcher '%s' is already registered", key.c_str());
    entries_.push_back({key, summary, factory});
}

const SearcherRegistry::Entry *
SearcherRegistry::find(const std::string &key) const
{
    for (const Entry &e : entries_)
        if (e.key == key)
            return &e;
    return nullptr;
}

bool
SearcherRegistry::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

std::unique_ptr<Searcher>
SearcherRegistry::make(const std::string &key, CostModel &model,
                       const DseSpace &space, const SearchSpec &spec) const
{
    const Entry *e = find(key);
    if (!e)
        fatal("unknown search algorithm '%s' (registered: %s)",
              key.c_str(), joinComma(keys()).c_str());
    return e->factory(model, space, spec);
}

std::vector<std::string>
SearcherRegistry::keys() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        out.push_back(e.key);
    return out;
}

const std::string &
SearcherRegistry::summary(const std::string &key) const
{
    const Entry *e = find(key);
    if (!e)
        fatal("unknown search algorithm '%s'", key.c_str());
    return e->summary;
}

// --- searchSpecFromJson ------------------------------------------------------

namespace {

/** Collects type errors while walking the spec document (sticky-err
 *  wrappers over the util/json checked readers). */
struct SpecReader
{
    std::string err;

    bool
    bad(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool
    readString(const JsonValue &v, const char *key, std::string *out)
    {
        return jsonReadString(v, key, out, &err);
    }

    bool
    readNumber(const JsonValue &v, const char *key, double *out)
    {
        return jsonReadNumber(v, key, out, &err);
    }

    bool
    readInt(const JsonValue &v, const char *key, int64_t *out)
    {
        return jsonReadInt(v, key, out, &err);
    }

    template <typename T>
    bool
    readIntAs(const JsonValue &v, const char *key, T *out)
    {
        return jsonReadIntAs(v, key, out, &err);
    }

    bool
    readBool(const JsonValue &v, const char *key, bool *out)
    {
        return jsonReadBool(v, key, out, &err);
    }

    bool
    readWorkload(const JsonValue &v, WorkloadSpec *out)
    {
        if (!v.isObject())
            return bad("\"workload\" must be an object");
        for (const auto &[k, val] : v.members()) {
            bool ok;
            if (k == "model")
                ok = readString(val, "workload.model", &out->model);
            else if (k == "file")
                ok = readString(val, "workload.file", &out->file);
            else if (k == "params")
                ok = modelParamsFromJson(val, &out->params, &err);
            else
                ok = bad(strprintf("unknown \"workload\" key \"%s\"",
                                   k.c_str()));
            if (!ok)
                return false;
        }
        if (!out->model.empty() && !out->file.empty())
            return bad("\"workload\" must give \"model\" or \"file\", "
                       "not both");
        return true;
    }

    bool
    readPlatform(const JsonValue &v, PlatformSpec *out)
    {
        return platformSpecFromJson(v, "platform", out, &err);
    }

    bool
    readMetric(const JsonValue &v, Metric *out)
    {
        std::string s;
        if (!readString(v, "metric", &s))
            return false;
        if (s == "energy")
            *out = Metric::Energy;
        else if (s == "ema")
            *out = Metric::EMA;
        else
            return bad("\"metric\" must be \"energy\" or \"ema\"");
        return true;
    }

    bool
    readStyle(const JsonValue &v, const char *key, BufferStyle *out)
    {
        std::string s;
        if (!readString(v, key, &s))
            return false;
        if (s == "shared")
            *out = BufferStyle::Shared;
        else if (s == "separate")
            *out = BufferStyle::Separate;
        else
            return bad(strprintf(
                "\"%s\" must be \"shared\" or \"separate\"", key));
        return true;
    }

    bool
    readBuffer(const JsonValue &v, BufferConfig *out)
    {
        if (!v.isObject())
            return bad("\"buffer\" must be an object");
        for (const auto &[k, val] : v.members()) {
            if (k == "style") {
                if (!readStyle(val, "buffer.style", &out->style))
                    return false;
            } else if (k == "actBytes") {
                if (!readIntAs(val, "buffer.actBytes", &out->actBytes))
                    return false;
            } else if (k == "weightBytes") {
                if (!readIntAs(val, "buffer.weightBytes",
                               &out->weightBytes))
                    return false;
            } else if (k == "sharedBytes") {
                if (!readIntAs(val, "buffer.sharedBytes",
                               &out->sharedBytes))
                    return false;
            } else {
                return bad(strprintf("unknown \"buffer\" key \"%s\"",
                                     k.c_str()));
            }
        }
        return true;
    }

    bool
    readGa(const JsonValue &v, GaParams *out)
    {
        if (!v.isObject())
            return bad("\"ga\" must be an object");
        for (const auto &[k, val] : v.members()) {
            bool ok;
            if (k == "population")
                ok = readIntAs(val, "ga.population", &out->population);
            else if (k == "crossoverRate")
                ok = readNumber(val, "ga.crossoverRate",
                                &out->crossoverRate);
            else if (k == "mutPartitionRate")
                ok = readNumber(val, "ga.mutPartitionRate",
                                &out->mutPartitionRate);
            else if (k == "mutDseRate")
                ok = readNumber(val, "ga.mutDseRate", &out->mutDseRate);
            else if (k == "tournament")
                ok = readIntAs(val, "ga.tournament", &out->tournament);
            else if (k == "elite")
                ok = readIntAs(val, "ga.elite", &out->elite);
            else if (k == "recordPoints")
                ok = readBool(val, "ga.recordPoints", &out->recordPoints);
            else
                return bad(strprintf("unknown \"ga\" key \"%s\"",
                                     k.c_str()));
            if (!ok)
                return false;
        }
        return true;
    }

    bool
    readSa(const JsonValue &v, SaParams *out)
    {
        if (!v.isObject())
            return bad("\"sa\" must be an object");
        for (const auto &[k, val] : v.members()) {
            bool ok;
            if (k == "tempStartFrac")
                ok = readNumber(val, "sa.tempStartFrac",
                                &out->tempStartFrac);
            else if (k == "tempEndFrac")
                ok = readNumber(val, "sa.tempEndFrac", &out->tempEndFrac);
            else if (k == "dseMutationRate")
                ok = readNumber(val, "sa.dseMutationRate",
                                &out->dseMutationRate);
            else if (k == "neighborBatch")
                ok = readIntAs(val, "sa.neighborBatch",
                               &out->neighborBatch);
            else
                return bad(strprintf("unknown \"sa\" key \"%s\"",
                                     k.c_str()));
            if (!ok)
                return false;
        }
        return true;
    }

    bool
    readPortfolio(const JsonValue &v, PortfolioParams *out)
    {
        if (!v.isObject())
            return bad("\"portfolio\" must be an object");
        for (const auto &[k, val] : v.members()) {
            bool ok = true;
            if (k == "racers") {
                if (!val.isArray())
                    return bad("\"portfolio.racers\" must be an array "
                               "of algorithm names");
                out->racers.clear();
                for (const JsonValue &e : val.array()) {
                    std::string racer;
                    if (!readString(e, "portfolio.racers[]", &racer))
                        return false;
                    out->racers.push_back(std::move(racer));
                }
                if (out->racers.empty())
                    return bad("\"portfolio.racers\" must not be empty");
            } else if (k == "deterministicRace") {
                ok = readBool(val, "portfolio.deterministicRace",
                              &out->deterministicRace);
            } else if (k == "checkEvals") {
                ok = readInt(val, "portfolio.checkEvals",
                             &out->checkEvals);
            } else if (k == "warmupEvals") {
                ok = readInt(val, "portfolio.warmupEvals",
                             &out->warmupEvals);
            } else {
                return bad(strprintf("unknown \"portfolio\" key \"%s\"",
                                     k.c_str()));
            }
            if (!ok)
                return false;
        }
        return true;
    }

    bool
    readTwoStep(const JsonValue &v, TwoStepParams *out)
    {
        if (!v.isObject())
            return bad("\"twoStep\" must be an object");
        for (const auto &[k, val] : v.members()) {
            bool ok;
            if (k == "samplesPerCandidate")
                ok = readInt(val, "twoStep.samplesPerCandidate",
                             &out->samplesPerCandidate);
            else if (k == "population")
                ok = readIntAs(val, "twoStep.population",
                               &out->population);
            else
                return bad(strprintf("unknown \"twoStep\" key \"%s\"",
                                     k.c_str()));
            if (!ok)
                return false;
        }
        return true;
    }
};

} // namespace

bool
searchSpecFromJson(const JsonValue &doc, SearchSpec *spec, std::string *err)
{
    SpecReader r;
    if (!doc.isObject()) {
        if (err)
            *err = "run spec must be a JSON object";
        return false;
    }
    bool model_key = false, workload_key = false, set_key = false;
    for (const auto &[k, v] : doc.members()) {
        bool ok = true;
        if (k == "model") {
            // Shorthand for workload.model.
            ok = r.readString(v, "model", &spec->workload.model);
            model_key = true;
        } else if (k == "workload") {
            ok = r.readWorkload(v, &spec->workload);
            workload_key = true;
        } else if (k == "workload_set") {
            ok = workloadSetFromJson(v, &spec->workloadSet, &r.err);
            set_key = true;
        } else if (k == "platform") {
            ok = r.readPlatform(v, &spec->platform);
        } else if (k == "deployment") {
            ok = deploymentSpecFromJson(v, &spec->deployment, &r.err);
        } else if (k == "algo") {
            ok = r.readString(v, "algo", &spec->algo);
        } else if (k == "mode") {
            std::string mode;
            ok = r.readString(v, "mode", &mode);
            if (ok) {
                if (mode == "coexplore" || mode == "co-explore") {
                    spec->eval.coExplore = true;
                } else if (mode == "partition" ||
                           mode == "partition-only") {
                    spec->eval.coExplore = false;
                } else if (mode == "pareto") {
                    // Frontier mode is co-exploration by definition:
                    // the archive spans the capacity grid.
                    spec->eval.coExplore = true;
                    spec->paretoMode = true;
                } else {
                    ok = r.bad("\"mode\" must be \"coexplore\", "
                               "\"partition\", or \"pareto\"");
                }
            }
        } else if (k == "style") {
            ok = r.readStyle(v, "style", &spec->style);
        } else if (k == "buffer") {
            ok = r.readBuffer(v, &spec->fixedBuffer);
        } else if (k == "samples") {
            ok = r.readInt(v, "samples", &spec->eval.sampleBudget);
        } else if (k == "seed") {
            ok = r.readIntAs(v, "seed", &spec->eval.seed);
        } else if (k == "alpha") {
            ok = r.readNumber(v, "alpha", &spec->eval.alpha);
        } else if (k == "metric") {
            ok = r.readMetric(v, &spec->eval.metric);
        } else if (k == "threads") {
            ok = r.readIntAs(v, "threads", &spec->eval.threads);
        } else if (k == "inSituSplit") {
            ok = r.readBool(v, "inSituSplit", &spec->eval.inSituSplit);
        } else if (k == "pruning") {
            ok = r.readBool(v, "pruning", &spec->eval.pruning);
        } else if (k == "cacheEnabled") {
            ok = r.readBool(v, "cacheEnabled", &spec->eval.cacheEnabled);
        } else if (k == "cacheCapacity") {
            ok = r.readIntAs(v, "cacheCapacity",
                             &spec->eval.cacheCapacity);
        } else if (k == "timeLimitSec") {
            ok = r.readNumber(v, "timeLimitSec", &spec->eval.timeLimitSec);
        } else if (k == "stallLimit") {
            ok = r.readInt(v, "stallLimit", &spec->eval.stallLimit);
        } else if (k == "ga") {
            ok = r.readGa(v, &spec->ga);
        } else if (k == "sa") {
            ok = r.readSa(v, &spec->sa);
        } else if (k == "twoStep") {
            ok = r.readTwoStep(v, &spec->twoStep);
        } else if (k == "portfolio") {
            ok = r.readPortfolio(v, &spec->portfolio);
        } else {
            ok = r.bad(strprintf("unknown run-spec key \"%s\"", k.c_str()));
        }
        if (!ok) {
            if (err)
                *err = r.err;
            return false;
        }
    }
    if (model_key && workload_key) {
        if (err)
            *err = "give \"model\" (shorthand) or a \"workload\" "
                   "section, not both";
        return false;
    }
    if (set_key && (model_key || workload_key)) {
        if (err)
            *err = "\"workload_set\" replaces \"model\"/\"workload\"; "
                   "give one or the other, not both";
        return false;
    }
    // A one-tenant set degenerates to the plain workload spelling, so
    // every frontend treats the two identically (bit-for-bit).
    if (spec->workloadSet.size() == 1) {
        spec->workload = spec->workloadSet.tenants[0].workload;
        spec->workloadSet.tenants.clear();
    }
    return true;
}

} // namespace cocco
