file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_shared.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_tab2_shared.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_tab2_shared.dir/bench/bench_tab2_shared.cc.o"
  "CMakeFiles/bench_tab2_shared.dir/bench/bench_tab2_shared.cc.o.d"
  "bench_tab2_shared"
  "bench_tab2_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
