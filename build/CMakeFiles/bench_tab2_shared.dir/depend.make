# Empty dependencies file for bench_tab2_shared.
# This may be replaced when dependencies are built.
