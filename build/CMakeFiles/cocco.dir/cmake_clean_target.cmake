file(REMOVE_RECURSE
  "libcocco.a"
)
