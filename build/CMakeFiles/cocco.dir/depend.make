# Empty dependencies file for cocco.
# This may be replaced when dependencies are built.
