
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cocco.cc" "CMakeFiles/cocco.dir/src/core/cocco.cc.o" "gcc" "CMakeFiles/cocco.dir/src/core/cocco.cc.o.d"
  "/root/repo/src/core/serialize.cc" "CMakeFiles/cocco.dir/src/core/serialize.cc.o" "gcc" "CMakeFiles/cocco.dir/src/core/serialize.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "CMakeFiles/cocco.dir/src/graph/algorithms.cc.o" "gcc" "CMakeFiles/cocco.dir/src/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/dot.cc" "CMakeFiles/cocco.dir/src/graph/dot.cc.o" "gcc" "CMakeFiles/cocco.dir/src/graph/dot.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/cocco.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/cocco.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/layer.cc" "CMakeFiles/cocco.dir/src/graph/layer.cc.o" "gcc" "CMakeFiles/cocco.dir/src/graph/layer.cc.o.d"
  "/root/repo/src/graph/stats.cc" "CMakeFiles/cocco.dir/src/graph/stats.cc.o" "gcc" "CMakeFiles/cocco.dir/src/graph/stats.cc.o.d"
  "/root/repo/src/mem/buffer_config.cc" "CMakeFiles/cocco.dir/src/mem/buffer_config.cc.o" "gcc" "CMakeFiles/cocco.dir/src/mem/buffer_config.cc.o.d"
  "/root/repo/src/mem/energy_model.cc" "CMakeFiles/cocco.dir/src/mem/energy_model.cc.o" "gcc" "CMakeFiles/cocco.dir/src/mem/energy_model.cc.o.d"
  "/root/repo/src/mem/layout.cc" "CMakeFiles/cocco.dir/src/mem/layout.cc.o" "gcc" "CMakeFiles/cocco.dir/src/mem/layout.cc.o.d"
  "/root/repo/src/mem/region_manager.cc" "CMakeFiles/cocco.dir/src/mem/region_manager.cc.o" "gcc" "CMakeFiles/cocco.dir/src/mem/region_manager.cc.o.d"
  "/root/repo/src/models/googlenet.cc" "CMakeFiles/cocco.dir/src/models/googlenet.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/googlenet.cc.o.d"
  "/root/repo/src/models/mobilenet.cc" "CMakeFiles/cocco.dir/src/models/mobilenet.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/mobilenet.cc.o.d"
  "/root/repo/src/models/nasnet.cc" "CMakeFiles/cocco.dir/src/models/nasnet.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/nasnet.cc.o.d"
  "/root/repo/src/models/random_dag.cc" "CMakeFiles/cocco.dir/src/models/random_dag.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/random_dag.cc.o.d"
  "/root/repo/src/models/randwire.cc" "CMakeFiles/cocco.dir/src/models/randwire.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/randwire.cc.o.d"
  "/root/repo/src/models/registry.cc" "CMakeFiles/cocco.dir/src/models/registry.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/registry.cc.o.d"
  "/root/repo/src/models/resnet.cc" "CMakeFiles/cocco.dir/src/models/resnet.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/resnet.cc.o.d"
  "/root/repo/src/models/transformer.cc" "CMakeFiles/cocco.dir/src/models/transformer.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/transformer.cc.o.d"
  "/root/repo/src/models/vgg.cc" "CMakeFiles/cocco.dir/src/models/vgg.cc.o" "gcc" "CMakeFiles/cocco.dir/src/models/vgg.cc.o.d"
  "/root/repo/src/partition/dp.cc" "CMakeFiles/cocco.dir/src/partition/dp.cc.o" "gcc" "CMakeFiles/cocco.dir/src/partition/dp.cc.o.d"
  "/root/repo/src/partition/enumeration.cc" "CMakeFiles/cocco.dir/src/partition/enumeration.cc.o" "gcc" "CMakeFiles/cocco.dir/src/partition/enumeration.cc.o.d"
  "/root/repo/src/partition/greedy.cc" "CMakeFiles/cocco.dir/src/partition/greedy.cc.o" "gcc" "CMakeFiles/cocco.dir/src/partition/greedy.cc.o.d"
  "/root/repo/src/partition/partition.cc" "CMakeFiles/cocco.dir/src/partition/partition.cc.o" "gcc" "CMakeFiles/cocco.dir/src/partition/partition.cc.o.d"
  "/root/repo/src/partition/repair.cc" "CMakeFiles/cocco.dir/src/partition/repair.cc.o" "gcc" "CMakeFiles/cocco.dir/src/partition/repair.cc.o.d"
  "/root/repo/src/search/eval_engine.cc" "CMakeFiles/cocco.dir/src/search/eval_engine.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/eval_engine.cc.o.d"
  "/root/repo/src/search/ga.cc" "CMakeFiles/cocco.dir/src/search/ga.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/ga.cc.o.d"
  "/root/repo/src/search/genome.cc" "CMakeFiles/cocco.dir/src/search/genome.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/genome.cc.o.d"
  "/root/repo/src/search/operators.cc" "CMakeFiles/cocco.dir/src/search/operators.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/operators.cc.o.d"
  "/root/repo/src/search/pareto.cc" "CMakeFiles/cocco.dir/src/search/pareto.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/pareto.cc.o.d"
  "/root/repo/src/search/sa.cc" "CMakeFiles/cocco.dir/src/search/sa.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/sa.cc.o.d"
  "/root/repo/src/search/two_step.cc" "CMakeFiles/cocco.dir/src/search/two_step.cc.o" "gcc" "CMakeFiles/cocco.dir/src/search/two_step.cc.o.d"
  "/root/repo/src/sim/accelerator.cc" "CMakeFiles/cocco.dir/src/sim/accelerator.cc.o" "gcc" "CMakeFiles/cocco.dir/src/sim/accelerator.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "CMakeFiles/cocco.dir/src/sim/cost_model.cc.o" "gcc" "CMakeFiles/cocco.dir/src/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/mapper.cc" "CMakeFiles/cocco.dir/src/sim/mapper.cc.o" "gcc" "CMakeFiles/cocco.dir/src/sim/mapper.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "CMakeFiles/cocco.dir/src/sim/multicore.cc.o" "gcc" "CMakeFiles/cocco.dir/src/sim/multicore.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "CMakeFiles/cocco.dir/src/sim/timeline.cc.o" "gcc" "CMakeFiles/cocco.dir/src/sim/timeline.cc.o.d"
  "/root/repo/src/tileflow/footprint.cc" "CMakeFiles/cocco.dir/src/tileflow/footprint.cc.o" "gcc" "CMakeFiles/cocco.dir/src/tileflow/footprint.cc.o.d"
  "/root/repo/src/tileflow/production.cc" "CMakeFiles/cocco.dir/src/tileflow/production.cc.o" "gcc" "CMakeFiles/cocco.dir/src/tileflow/production.cc.o.d"
  "/root/repo/src/tileflow/schedule.cc" "CMakeFiles/cocco.dir/src/tileflow/schedule.cc.o" "gcc" "CMakeFiles/cocco.dir/src/tileflow/schedule.cc.o.d"
  "/root/repo/src/tileflow/scheme.cc" "CMakeFiles/cocco.dir/src/tileflow/scheme.cc.o" "gcc" "CMakeFiles/cocco.dir/src/tileflow/scheme.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/cocco.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/json.cc" "CMakeFiles/cocco.dir/src/util/json.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/cocco.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/math_util.cc" "CMakeFiles/cocco.dir/src/util/math_util.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/math_util.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/cocco.dir/src/util/random.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/cocco.dir/src/util/table.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/cocco.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/cocco.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
