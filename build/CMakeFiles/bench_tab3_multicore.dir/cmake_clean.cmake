file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_multicore.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_tab3_multicore.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_tab3_multicore.dir/bench/bench_tab3_multicore.cc.o"
  "CMakeFiles/bench_tab3_multicore.dir/bench/bench_tab3_multicore.cc.o.d"
  "bench_tab3_multicore"
  "bench_tab3_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
