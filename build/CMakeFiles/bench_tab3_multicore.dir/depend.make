# Empty dependencies file for bench_tab3_multicore.
# This may be replaced when dependencies are built.
