file(REMOVE_RECURSE
  "CMakeFiles/multicore_deployment.dir/examples/multicore_deployment.cpp.o"
  "CMakeFiles/multicore_deployment.dir/examples/multicore_deployment.cpp.o.d"
  "multicore_deployment"
  "multicore_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
