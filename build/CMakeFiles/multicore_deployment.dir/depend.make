# Empty dependencies file for multicore_deployment.
# This may be replaced when dependencies are built.
