file(REMOVE_RECURSE
  "CMakeFiles/tileflow_test.dir/tests/tileflow_test.cc.o"
  "CMakeFiles/tileflow_test.dir/tests/tileflow_test.cc.o.d"
  "tileflow_test"
  "tileflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tileflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
