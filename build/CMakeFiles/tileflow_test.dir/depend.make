# Empty dependencies file for tileflow_test.
# This may be replaced when dependencies are built.
