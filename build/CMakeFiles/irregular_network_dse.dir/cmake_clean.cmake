file(REMOVE_RECURSE
  "CMakeFiles/irregular_network_dse.dir/examples/irregular_network_dse.cpp.o"
  "CMakeFiles/irregular_network_dse.dir/examples/irregular_network_dse.cpp.o.d"
  "irregular_network_dse"
  "irregular_network_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_network_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
