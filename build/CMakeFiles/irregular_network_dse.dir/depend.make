# Empty dependencies file for irregular_network_dse.
# This may be replaced when dependencies are built.
