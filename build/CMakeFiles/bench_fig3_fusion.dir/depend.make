# Empty dependencies file for bench_fig3_fusion.
# This may be replaced when dependencies are built.
