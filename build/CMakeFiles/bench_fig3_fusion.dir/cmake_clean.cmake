file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fusion.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig3_fusion.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig3_fusion.dir/bench/bench_fig3_fusion.cc.o"
  "CMakeFiles/bench_fig3_fusion.dir/bench/bench_fig3_fusion.cc.o.d"
  "bench_fig3_fusion"
  "bench_fig3_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
