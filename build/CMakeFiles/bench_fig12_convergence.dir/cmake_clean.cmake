file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_convergence.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig12_convergence.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig12_convergence.dir/bench/bench_fig12_convergence.cc.o"
  "CMakeFiles/bench_fig12_convergence.dir/bench/bench_fig12_convergence.cc.o.d"
  "bench_fig12_convergence"
  "bench_fig12_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
