file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_partition.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig11_partition.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_partition.dir/bench/bench_fig11_partition.cc.o"
  "CMakeFiles/bench_fig11_partition.dir/bench/bench_fig11_partition.cc.o.d"
  "bench_fig11_partition"
  "bench_fig11_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
