# Empty dependencies file for bench_fig11_partition.
# This may be replaced when dependencies are built.
