# Empty dependencies file for bench_tab1_separate.
# This may be replaced when dependencies are built.
