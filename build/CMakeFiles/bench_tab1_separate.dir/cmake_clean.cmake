file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_separate.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_tab1_separate.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_tab1_separate.dir/bench/bench_tab1_separate.cc.o"
  "CMakeFiles/bench_tab1_separate.dir/bench/bench_tab1_separate.cc.o.d"
  "bench_tab1_separate"
  "bench_tab1_separate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_separate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
