file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_alpha.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig14_alpha.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig14_alpha.dir/bench/bench_fig14_alpha.cc.o"
  "CMakeFiles/bench_fig14_alpha.dir/bench/bench_fig14_alpha.cc.o.d"
  "bench_fig14_alpha"
  "bench_fig14_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
