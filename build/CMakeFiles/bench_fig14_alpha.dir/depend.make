# Empty dependencies file for bench_fig14_alpha.
# This may be replaced when dependencies are built.
