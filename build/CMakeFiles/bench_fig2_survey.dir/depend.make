# Empty dependencies file for bench_fig2_survey.
# This may be replaced when dependencies are built.
