file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_survey.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig2_survey.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig2_survey.dir/bench/bench_fig2_survey.cc.o"
  "CMakeFiles/bench_fig2_survey.dir/bench/bench_fig2_survey.cc.o.d"
  "bench_fig2_survey"
  "bench_fig2_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
