# Empty dependencies file for bench_fig1_capacity.
# This may be replaced when dependencies are built.
