file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_capacity.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig1_capacity.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig1_capacity.dir/bench/bench_fig1_capacity.cc.o"
  "CMakeFiles/bench_fig1_capacity.dir/bench/bench_fig1_capacity.cc.o.d"
  "bench_fig1_capacity"
  "bench_fig1_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
