file(REMOVE_RECURSE
  "CMakeFiles/design_space_report.dir/examples/design_space_report.cpp.o"
  "CMakeFiles/design_space_report.dir/examples/design_space_report.cpp.o.d"
  "design_space_report"
  "design_space_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
