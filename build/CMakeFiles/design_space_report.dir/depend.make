# Empty dependencies file for design_space_report.
# This may be replaced when dependencies are built.
