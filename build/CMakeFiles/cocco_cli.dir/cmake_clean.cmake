file(REMOVE_RECURSE
  "CMakeFiles/cocco_cli.dir/tools/cocco_cli.cc.o"
  "CMakeFiles/cocco_cli.dir/tools/cocco_cli.cc.o.d"
  "cocco"
  "cocco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocco_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
