# Empty dependencies file for cocco_cli.
# This may be replaced when dependencies are built.
