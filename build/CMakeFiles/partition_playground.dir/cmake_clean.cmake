file(REMOVE_RECURSE
  "CMakeFiles/partition_playground.dir/examples/partition_playground.cpp.o"
  "CMakeFiles/partition_playground.dir/examples/partition_playground.cpp.o.d"
  "partition_playground"
  "partition_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
