# Empty dependencies file for partition_playground.
# This may be replaced when dependencies are built.
