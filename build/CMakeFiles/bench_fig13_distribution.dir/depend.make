# Empty dependencies file for bench_fig13_distribution.
# This may be replaced when dependencies are built.
