file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_distribution.dir/bench/bench_common.cc.o"
  "CMakeFiles/bench_fig13_distribution.dir/bench/bench_common.cc.o.d"
  "CMakeFiles/bench_fig13_distribution.dir/bench/bench_fig13_distribution.cc.o"
  "CMakeFiles/bench_fig13_distribution.dir/bench/bench_fig13_distribution.cc.o.d"
  "bench_fig13_distribution"
  "bench_fig13_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
