/**
 * @file
 * Regression gate over two bench_perf snapshots.
 *
 *   perf_diff BASELINE.json CURRENT.json [--tolerance PCT]
 *
 * Compares every series of the baseline against the current snapshot,
 * direction-aware (each series declares higher_is_better): a series
 * that moved more than PCT percent (default 10) in its bad direction
 * is a regression, as is a baseline series missing from the current
 * snapshot. Series new in the current snapshot are reported but never
 * fail — adding coverage must not break the gate. Exits 1 on any
 * regression or malformed snapshot, 0 otherwise, so CI can call it
 * directly.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/json.h"

using cocco::JsonValue;

namespace {

struct SeriesPoint
{
    double value = 0.0;
    std::string unit;
    bool higherIsBetter = true;
};

/** Parse one "series" member; false (with message) on schema errors. */
bool
readPoint(const std::string &name, const JsonValue &v, SeriesPoint *out)
{
    if (!v.isObject()) {
        std::fprintf(stderr, "error: series \"%s\" must be an object\n",
                     name.c_str());
        return false;
    }
    const JsonValue *value = v.find("value");
    const JsonValue *unit = v.find("unit");
    const JsonValue *dir = v.find("higher_is_better");
    if (!value || !value->isNumber() || !dir || !dir->isBool()) {
        std::fprintf(stderr,
                     "error: series \"%s\" needs a numeric \"value\" and "
                     "a boolean \"higher_is_better\"\n",
                     name.c_str());
        return false;
    }
    out->value = value->number();
    out->unit = unit && unit->isString() ? unit->str() : "";
    out->higherIsBetter = dir->boolean();
    return true;
}

/** Load a snapshot and return its "series" object (null on error). */
const JsonValue *
loadSeries(const char *path, JsonValue *doc)
{
    std::string err;
    if (!cocco::loadJsonFile(path, doc, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return nullptr;
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "error: %s: root must be an object\n", path);
        return nullptr;
    }
    const JsonValue *series = doc->find("series");
    if (!series || !series->isObject()) {
        std::fprintf(stderr, "error: %s: missing \"series\" object\n",
                     path);
        return nullptr;
    }
    return series;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *base_path = nullptr;
    const char *cur_path = nullptr;
    double tolerance = 10.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerance = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: perf_diff BASELINE.json CURRENT.json "
                        "[--tolerance PCT]\n"
                        "  exits 1 when any series regressed more than "
                        "PCT%% (default 10)\n");
            return 0;
        } else if (!base_path) {
            base_path = argv[i];
        } else if (!cur_path) {
            cur_path = argv[i];
        } else {
            std::fprintf(stderr, "error: unexpected argument %s\n",
                         argv[i]);
            return 1;
        }
    }
    if (!base_path || !cur_path) {
        std::fprintf(stderr,
                     "usage: perf_diff BASELINE.json CURRENT.json "
                     "[--tolerance PCT]\n");
        return 1;
    }
    if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
        std::fprintf(stderr, "error: tolerance must be a finite "
                             "non-negative percentage\n");
        return 1;
    }

    JsonValue base_doc, cur_doc;
    const JsonValue *base = loadSeries(base_path, &base_doc);
    const JsonValue *cur = loadSeries(cur_path, &cur_doc);
    if (!base || !cur)
        return 1;

    std::printf("perf_diff: %s -> %s (tolerance %.1f%%)\n", base_path,
                cur_path, tolerance);
    int checked = 0, regressions = 0;
    for (const auto &[name, bv] : base->members()) {
        SeriesPoint b;
        if (!readPoint(name, bv, &b))
            return 1;
        const JsonValue *cv = cur->find(name);
        if (!cv) {
            std::printf("  %-28s %12.4g -> %12s %-8s\n", name.c_str(),
                        b.value, "MISSING", "FAIL");
            ++regressions;
            ++checked;
            continue;
        }
        SeriesPoint c;
        if (!readPoint(name, *cv, &c))
            return 1;
        // Percent change in the series' bad direction; a zero
        // baseline can only regress by becoming worse than zero.
        double change = b.value != 0.0
                            ? 100.0 * (c.value - b.value) / std::fabs(b.value)
                            : (c.value == 0.0 ? 0.0
                               : b.higherIsBetter
                                   ? (c.value < 0.0 ? -100.0 : 100.0)
                                   : (c.value > 0.0 ? 100.0 : -100.0));
        double bad = b.higherIsBetter ? -change : change;
        bool regressed = bad > tolerance;
        std::printf("  %-28s %12.4g -> %12.4g %+7.1f%% %-8s\n",
                    name.c_str(), b.value, c.value, change,
                    regressed ? "FAIL" : "ok");
        if (regressed)
            ++regressions;
        ++checked;
    }
    for (const auto &[name, cv] : cur->members()) {
        if (base->find(name))
            continue;
        SeriesPoint c;
        if (!readPoint(name, cv, &c))
            return 1;
        std::printf("  %-28s %12s -> %12.4g %-8s (new series)\n",
                    name.c_str(), "-", c.value, "ok");
    }
    std::printf("%d series, %d regression%s\n", checked, regressions,
                regressions == 1 ? "" : "s");
    return regressions > 0 ? 1 : 0;
}
