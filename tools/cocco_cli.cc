/**
 * @file
 * cocco — command-line driver for the library.
 *
 * Subcommands:
 *   models                          list built-in models
 *   describe  <model>               print the graph summary
 *   dot       <model> [--runs L]    DOT export (optionally partitioned)
 *   partition <model> --algo A      run one partitioner and report costs
 *             (A = greedy | dp | enum | ga | sa)
 *   coexplore <model> [--style s]   hardware-mapping co-exploration
 *             (s = shared | separate)
 * Common flags: --samples N, --alpha F, --metric ema|energy, --seed N,
 *               --threads N (parallel evaluation; 0 = all cores),
 *               --json (machine-readable output)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cocco.h"
#include "core/serialize.h"
#include "graph/dot.h"
#include "graph/stats.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "sim/timeline.h"
#include "util/table.h"

using namespace cocco;

namespace {

struct CliArgs
{
    std::string command;
    std::string model;
    std::string algo = "ga";
    std::string style = "shared";
    int64_t samples = 5000;
    double alpha = 0.002;
    Metric metric = Metric::Energy;
    uint64_t seed = 1;
    bool json = false;
    int runs = 0;
    int threads = 1;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: cocco <command> [args]\n"
        "  models\n"
        "  describe  <model>\n"
        "  timeline  <model>\n"
        "  dot       <model> [--runs L]\n"
        "  partition <model> --algo greedy|dp|enum|ga|sa\n"
        "  coexplore <model> [--style shared|separate]\n"
        "flags: --samples N --alpha F --metric ema|energy --seed N "
        "--threads N --json\n");
    std::exit(2);
}

CliArgs
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    CliArgs a;
    a.command = argv[1];
    int i = 2;
    if (a.command != "models") {
        if (i >= argc)
            usage();
        a.model = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string f = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (f == "--algo")
            a.algo = next();
        else if (f == "--style")
            a.style = next();
        else if (f == "--samples")
            a.samples = std::atoll(next());
        else if (f == "--alpha")
            a.alpha = std::atof(next());
        else if (f == "--seed")
            a.seed = std::strtoull(next(), nullptr, 10);
        else if (f == "--runs")
            a.runs = std::atoi(next());
        else if (f == "--threads")
            a.threads = std::atoi(next());
        else if (f == "--metric")
            a.metric = std::string(next()) == "ema" ? Metric::EMA
                                                    : Metric::Energy;
        else if (f == "--json")
            a.json = true;
        else
            usage();
    }
    return a;
}

void
printCost(const Graph &g, const GraphCost &c, const BufferConfig &buf,
          double alpha, Metric metric)
{
    Table t({"metric", "value"});
    t.addRow({"buffer", buf.str()});
    t.addRow({"subgraphs", Table::fmtInt(c.subgraphs)});
    t.addRow({"EMA", Table::fmtMB(static_cast<double>(c.emaBytes))});
    t.addRow({"energy", Table::fmtDouble(c.energyPj / 1e9, 3) + " mJ"});
    t.addRow({"latency", Table::fmtDouble(c.latencyMs(), 3) + " ms"});
    t.addRow({"avg BW", Table::fmtDouble(c.avgBwGBps, 2) + " GB/s"});
    t.addRow({"peak BW", Table::fmtDouble(c.peakBwGBps, 2) + " GB/s"});
    t.addRow({"objective", Table::fmtSci(objective(c, buf, alpha, metric))});
    t.print();
    (void)g;
}

int
runPartition(const CliArgs &a)
{
    Graph g = buildModel(a.model);
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 1152 * 1024;

    Partition p;
    if (a.algo == "greedy") {
        p = greedyPartition(g, model, buf, a.metric);
    } else if (a.algo == "dp") {
        p = dpPartition(g, model, buf, a.metric);
    } else if (a.algo == "enum") {
        EnumerationResult r = enumeratePartition(g, model, buf, a.metric);
        if (!r.complete) {
            std::fprintf(stderr,
                         "enumeration exceeded its budget (%lld states)\n",
                         static_cast<long long>(r.statesVisited));
            return 1;
        }
        p = r.best;
    } else if (a.algo == "ga" || a.algo == "sa") {
        CoccoFramework cocco(g, accel);
        GaOptions o;
        o.sampleBudget = a.samples;
        o.metric = a.metric;
        o.seed = a.seed;
        o.threads = a.threads;
        if (a.algo == "sa") {
            DseSpace space = DseSpace::fixedSpace(buf);
            SaOptions so;
            so.sampleBudget = a.samples;
            so.metric = a.metric;
            so.seed = a.seed;
            so.coExplore = false;
            so.threads = a.threads;
            p = simulatedAnnealing(cocco.model(), space, so).best.part;
        } else {
            p = cocco.partitionOnly(buf, o).partition;
        }
    } else {
        usage();
    }

    GraphCost c = model.partitionCost(p, buf);
    if (a.json) {
        std::printf("%s\n", partitionToJson(g, p).c_str());
    } else {
        std::printf("%s: %s partition -> %zu subgraphs\n",
                    a.model.c_str(), a.algo.c_str(), p.blocks().size());
        printCost(g, c, buf, a.alpha, a.metric);
    }
    return 0;
}

int
runCoExplore(const CliArgs &a)
{
    Graph g = buildModel(a.model);
    AcceleratorConfig accel;
    CoccoFramework cocco(g, accel);
    GaOptions o;
    o.sampleBudget = a.samples;
    o.alpha = a.alpha;
    o.metric = a.metric;
    o.seed = a.seed;
    o.threads = a.threads;
    BufferStyle style = a.style == "separate" ? BufferStyle::Separate
                                              : BufferStyle::Shared;
    CoccoResult r = cocco.coExplore(style, o);
    if (a.json) {
        std::printf("%s\n", resultToJson(g, r).c_str());
    } else {
        std::printf("%s: recommended buffer %s after %lld samples\n",
                    a.model.c_str(), r.buffer.str().c_str(),
                    static_cast<long long>(r.samples));
        printCost(g, r.cost, r.buffer, a.alpha, a.metric);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs a = parse(argc, argv);

    if (a.command == "models") {
        for (const std::string &name : allModelNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (a.command == "describe") {
        Graph g = buildModel(a.model);
        std::printf("%s\n%s", g.str().c_str(),
                    computeStats(g).str().c_str());
        return 0;
    }
    if (a.command == "timeline") {
        Graph g = buildModel(a.model);
        AcceleratorConfig accel;
        CostModel model(g, accel);
        BufferConfig buf;
        buf.style = BufferStyle::Separate;
        buf.actBytes = 1024 * 1024;
        buf.weightBytes = 1152 * 1024;
        Partition p = greedyPartition(g, model, buf, a.metric);
        Timeline tl = buildTimeline(model, p, buf);
        std::printf("%s: greedy partition timeline\n%s", a.model.c_str(),
                    tl.gantt().c_str());
        return 0;
    }
    if (a.command == "dot") {
        Graph g = buildModel(a.model);
        if (a.runs > 0) {
            Partition p = Partition::fixedRuns(g, a.runs);
            p.canonicalize(g);
            std::printf("%s", toDot(g, p).c_str());
        } else {
            std::printf("%s", toDot(g).c_str());
        }
        return 0;
    }
    if (a.command == "partition")
        return runPartition(a);
    if (a.command == "coexplore")
        return runCoExplore(a);
    usage();
}
