/**
 * @file
 * cocco — command-line driver for the library.
 *
 * Subcommands:
 *   models                          list built-in models (with knobs)
 *   describe  <model>               print the graph summary
 *   describe-model <model>          registry metadata + parameters
 *   export-model <model>            Graph JSON to stdout
 *   dot       <model> [--runs L]    DOT export (optionally partitioned)
 *   partition <model> --algo A      run one partitioner and report costs
 *             (A = greedy | dp | enum | any registered search driver)
 *   coexplore <model> [--style s]   hardware-mapping co-exploration
 *             (s = shared | separate; --algo picks the driver)
 *   run       --spec FILE           declarative JSON run spec (schema
 *                                   in the README)
 *   coschedule --spec FILE          multi-tenant co-scheduling: the
 *                                   spec's "workload_set" tenants
 *                                   jointly placed on one deployment
 *                                   (`run` takes the same documents)
 *   validate-metrics FILE           check a --metrics-out document
 * Listing: --list-algos (search drivers), --list-models,
 *          --list-platforms (accelerator presets).
 * Workload/platform flags (everywhere a <model> is accepted):
 *   --model-file F   use an imported Graph JSON workload instead of
 *                    a registry model name
 *   --model-seed N   RandWire wiring seed (deterministic per seed)
 *   --platform NAME / --platform-file F
 *                    accelerator preset or platform JSON (default
 *                    preset: simba)
 * Deployment flags (partition / coexplore; `run` takes the spec's
 * "deployment" section instead):
 *   --cores N        scale out over N crossbar-connected cores of the
 *                    run's platform (N = 1 is exactly the plain run)
 *   --deployment NAME / --deployment-file F
 *                    deployment preset or deployment JSON
 *   --list-deployments / describe-deployment NAME
 *                    registry listing / one preset's description
 * Common flags: --samples N, --alpha F, --metric ema|energy, --seed N,
 *               --threads N (parallel evaluation; 0 = all cores),
 *               --neighbor-batch N (SA speculative neighbors),
 *               --time-limit SEC, --stall-limit N (early stop),
 *               --timeline (render the result's Gantt chart, with
 *               per-core lanes on a deployment),
 *               --json (machine-readable output),
 *               --cache-size N (evaluation-cache entries; 0 disables),
 *               --cache-file F (persist/warm-start the cache),
 *               --metrics-out F (write a JSON run-metrics report)
 *
 * The search subcommands all dispatch through the SearcherRegistry,
 * workloads through the ModelRegistry (or Graph JSON import),
 * platforms through the PlatformRegistry (or platform JSON), and
 * scale-out through the DeploymentRegistry (or deployment JSON), so
 * new strategies, models, and presets registered at startup are
 * first-class citizens of every mode.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "schedule/co_scheduler.h"
#include "serve/batch.h"
#include "serve/events.h"
#include "serve/http_server.h"
#include "serve/job_manager.h"
#include "serve/service.h"
#include "graph/dot.h"
#include "graph/graph_json.h"
#include "graph/stats.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "sim/timeline.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/table.h"

using namespace cocco;

namespace {

struct CliArgs
{
    std::string command;
    std::string model;
    std::string modelFile;    ///< Graph JSON workload ("" = registry)
    uint64_t modelSeed = 1;   ///< RandWire wiring seed
    std::string platform;     ///< accelerator preset ("" = simba)
    std::string platformFile; ///< platform JSON ("" = preset)
    int cores = 0;            ///< scale-out width (0 = no deployment)
    std::string deployment;     ///< deployment preset ("" = none)
    std::string deploymentFile; ///< deployment JSON ("" = none)
    bool timeline = false;      ///< render the result's Gantt chart
    std::string algo = "ga";
    std::string style = "shared";
    int64_t samples = 5000;
    double alpha = 0.002;
    Metric metric = Metric::Energy;
    uint64_t seed = 1;
    bool json = false;
    int runs = 0;
    int threads = 1;
    int neighborBatch = 1;  ///< SA speculative neighbors per round
    double timeLimitSec = 0.0;
    int64_t stallLimit = 0;
    int64_t cacheSize =
        static_cast<int64_t>(EvalCache::kDefaultCapacity); ///< 0 = off
    bool pruning = true;    ///< --no-prune clears (bit-identical runs)
    std::string cacheFile;  ///< warm-start / persist path ("" = none)
    std::string metricsOut; ///< JSON metrics path ("" = none)
    std::string specFile;   ///< declarative run spec ("" = none)
    bool progress = false;  ///< NDJSON progress events on stderr
    std::string checkpointFile; ///< search checkpoint path ("" = none)
    bool deterministicRace = false; ///< pin portfolio culls to eval counts
    std::string frontierOut; ///< pareto frontier CSV path ("" = none)
    bool stdio = false;     ///< serve: NDJSON over stdin/stdout
    int port = -1;          ///< serve: HTTP port (0 = ephemeral)
    int serveWorkers = 2;   ///< serve: concurrently running jobs
    int serveQueue = 64;    ///< serve: max queued jobs
    int jobs = 2;           ///< batch: concurrently running specs
    std::string outDir;     ///< batch: output directory ("" = spec dir)
};

/** SIGINT latch for `run` / `batch` / `serve`: the first interrupt
 *  requests a cooperative stop (drivers cancel at the next batch
 *  boundary, partial metrics and checkpoints still flush); a second
 *  interrupt hard-exits — the escape hatch when a run is stuck. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onSigint(int)
{
    if (g_interrupted.exchange(true))
        std::_Exit(130);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: cocco <command> [args]\n"
        "  models | --list-models\n"
        "  --list-algos | --list-platforms | --list-deployments\n"
        "  describe  <model>\n"
        "  describe-model <model>\n"
        "  describe-deployment <name>\n"
        "  export-model <model>\n"
        "  timeline  <model>\n"
        "  dot       <model> [--runs L]\n"
        "  partition <model> --algo greedy|dp|enum|<search driver>\n"
        "  coexplore <model> [--style shared|separate] [--algo DRIVER]\n"
        "  run       --spec FILE [--progress] [--checkpoint F]\n"
        "            [--deterministic-race] [--frontier-out F]\n"
        "  coschedule --spec FILE [--progress]  (workload_set specs)\n"
        "  batch     <dir> [--jobs N] [--out DIR] [--progress]\n"
        "  serve     --port N | --stdio  [--serve-workers N] "
        "[--serve-queue N]\n"
        "  validate-metrics FILE\n"
        "workload/platform: --model-file F --model-seed N\n"
        "       --platform NAME --platform-file F\n"
        "deployment: --cores N --deployment NAME --deployment-file F\n"
        "flags: --samples N --alpha F --metric ema|energy --seed N "
        "--threads N --json\n"
        "       --neighbor-batch N --time-limit SEC --stall-limit N\n"
        "       --timeline --cache-size N --cache-file F "
        "--metrics-out F\n"
        "       --no-prune (disable bound-based pruning; results are\n"
        "                   bit-identical, only slower)\n");
    std::exit(2);
}

CliArgs
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    CliArgs a;
    a.command = argv[1];
    int i = 2;
    // The positional workload/file argument; optional, since
    // --model-file can address the workload instead.
    if (a.command != "models" && a.command != "run" &&
        a.command[0] != '-' && i < argc && argv[i][0] != '-')
        a.model = argv[i++];
    for (; i < argc; ++i) {
        std::string f = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (f == "--algo")
            a.algo = next();
        else if (f == "--model-file")
            a.modelFile = next();
        else if (f == "--model-seed")
            a.modelSeed = std::strtoull(next(), nullptr, 10);
        else if (f == "--platform")
            a.platform = next();
        else if (f == "--platform-file")
            a.platformFile = next();
        else if (f == "--cores") {
            // Strict: a zero/negative/garbage count silently meaning
            // "no deployment" would fake a scale-out experiment.
            const char *v = next();
            a.cores = std::atoi(v);
            if (a.cores < 1)
                fatal("--cores must be a positive integer (got '%s')",
                      v);
        }
        else if (f == "--deployment")
            a.deployment = next();
        else if (f == "--deployment-file")
            a.deploymentFile = next();
        else if (f == "--timeline")
            a.timeline = true;
        else if (f == "--style")
            a.style = next();
        else if (f == "--samples")
            a.samples = std::atoll(next());
        else if (f == "--alpha")
            a.alpha = std::atof(next());
        else if (f == "--seed")
            a.seed = std::strtoull(next(), nullptr, 10);
        else if (f == "--runs")
            a.runs = std::atoi(next());
        else if (f == "--threads")
            a.threads = std::atoi(next());
        else if (f == "--neighbor-batch")
            a.neighborBatch = std::atoi(next());
        else if (f == "--time-limit")
            a.timeLimitSec = std::atof(next());
        else if (f == "--stall-limit")
            a.stallLimit = std::atoll(next());
        else if (f == "--cache-size")
            a.cacheSize = std::atoll(next());
        else if (f == "--cache-file")
            a.cacheFile = next();
        else if (f == "--metrics-out")
            a.metricsOut = next();
        else if (f == "--spec")
            a.specFile = next();
        else if (f == "--progress")
            a.progress = true;
        else if (f == "--checkpoint")
            a.checkpointFile = next();
        else if (f == "--deterministic-race")
            a.deterministicRace = true;
        else if (f == "--frontier-out")
            a.frontierOut = next();
        else if (f == "--stdio")
            a.stdio = true;
        else if (f == "--port")
            a.port = std::atoi(next());
        else if (f == "--serve-workers")
            a.serveWorkers = std::atoi(next());
        else if (f == "--serve-queue")
            a.serveQueue = std::atoi(next());
        else if (f == "--jobs")
            a.jobs = std::atoi(next());
        else if (f == "--out")
            a.outDir = next();
        else if (f == "--metric")
            a.metric = std::string(next()) == "ema" ? Metric::EMA
                                                    : Metric::Energy;
        else if (f == "--json")
            a.json = true;
        else if (f == "--no-prune")
            a.pruning = false;
        else
            usage();
    }
    return a;
}

/** The workload addressed by the CLI flags: a registry model (with
 *  --model-seed) or an imported Graph JSON (--model-file). Updates
 *  a.model to the graph's name for reports/metrics. */
Graph
cliWorkload(CliArgs &a)
{
    if (!a.modelFile.empty()) {
        if (!a.model.empty())
            fatal("give a model name or --model-file, not both");
        Graph g;
        std::string err;
        if (!loadGraphJson(a.modelFile, &g, &err))
            fatal("%s", err.c_str());
        a.model = g.name();
        return g;
    }
    if (a.model.empty())
        usage();
    ModelParams params;
    params.seed = a.modelSeed;
    return buildModel(a.model, params);
}

/** The platform addressed by the CLI flags (--platform /
 *  --platform-file; default: the "simba" preset). */
AcceleratorConfig
cliPlatform(const CliArgs &a)
{
    PlatformSpec spec;
    spec.preset = a.platform;
    spec.file = a.platformFile;
    AcceleratorConfig accel;
    std::string err;
    if (!resolvePlatform(spec, &accel, &err))
        fatal("%s", err.c_str());
    return accel;
}

/** The deployment addressed by the CLI flags (--cores /
 *  --deployment / --deployment-file); disabled when none given.
 *  resolveDeployment rejects combinations ("not several"). */
DeploymentSpec
cliDeploymentSpec(const CliArgs &a)
{
    DeploymentSpec spec;
    if (a.cores != 0) {
        spec.enabled = true;
        spec.inlineDesc = true;
        spec.desc.cores = a.cores;
    }
    if (!a.deployment.empty()) {
        spec.enabled = true;
        spec.preset = a.deployment;
    }
    if (!a.deploymentFile.empty()) {
        spec.enabled = true;
        spec.file = a.deploymentFile;
    }
    return spec;
}

/** The one resolve-or-die path every CLI mode funnels through:
 *  resolve @p dspec against the run's platform (fatal with @p ctx
 *  prefixed on any problem) and apply an optional workload batch
 *  override to every core (a batch is a property of the run). */
DeploymentConfig
cliResolveDeployment(const DeploymentSpec &dspec,
                     const AcceleratorConfig &accel, const char *ctx,
                     int batch_override = 0)
{
    DeploymentConfig dep;
    std::string err;
    if (!resolveDeployment(dspec, accel, &dep, &err))
        fatal("%s%s", ctx, err.c_str());
    if (batch_override > 0)
        for (AcceleratorConfig &core : dep.coreConfigs)
            core.batch = batch_override;
    return dep;
}

/** The evaluation environment for (workload, platform, deployment):
 *  a plain CostModel, or the composed DeploymentCostModel when a
 *  deployment is in play. */
std::unique_ptr<CostModel>
makeModel(const Graph &g, const AcceleratorConfig &accel,
          const DeploymentSpec &dspec)
{
    if (!dspec.enabled)
        return std::make_unique<CostModel>(g, accel);
    return std::make_unique<DeploymentCostModel>(
        g, cliResolveDeployment(dspec, accel, ""));
}

/** The framework over the same environment. */
std::unique_ptr<CoccoFramework>
makeFramework(const Graph &g, const AcceleratorConfig &accel,
              const DeploymentSpec &dspec, const char *ctx = "",
              int batch_override = 0)
{
    if (!dspec.enabled)
        return std::make_unique<CoccoFramework>(g, accel);
    return std::make_unique<CoccoFramework>(
        g, cliResolveDeployment(dspec, accel, ctx, batch_override));
}

/** Human-mode stdout summary of a multi-core run's scale-out (silent
 *  for a single core, so plain runs print exactly what they always
 *  did). */
void
printDeploymentLine(const DeploymentBreakdown &b)
{
    if (b.cores <= 1)
        return;
    double util = 0.0;
    for (double u : b.coreUtilization)
        util += u;
    if (!b.coreUtilization.empty())
        util /= static_cast<double>(b.coreUtilization.size());
    std::printf("deployment: %d cores, avg utilization %.1f%%, crossbar "
                "%.1f%% of energy / %.1f%% of latency\n",
                b.cores, 100.0 * util, 100.0 * b.crossbarEnergyShare,
                100.0 * b.crossbarLatencyShare);
}

/** --timeline: render the result's Gantt chart (per-core lanes on a
 *  deployment). Human mode only — --json output stays pure JSON. */
void
printTimeline(const CliArgs &a, CostModel &model, const Partition &p,
              const BufferConfig &buf)
{
    if (!a.timeline || a.json)
        return;
    Timeline tl = buildTimeline(model, p, buf);
    std::printf("timeline:\n%s", tl.gantt().c_str());
}

/** Spec assembled from plain CLI flags (partition/coexplore modes). */
SearchSpec
specFromArgs(const CliArgs &a)
{
    SearchSpec spec;
    spec.algo = a.algo;
    spec.eval.sampleBudget = a.samples;
    spec.eval.alpha = a.alpha;
    spec.eval.metric = a.metric;
    spec.eval.seed = a.seed;
    spec.eval.threads = a.threads;
    spec.eval.timeLimitSec = a.timeLimitSec;
    spec.eval.stallLimit = a.stallLimit;
    spec.eval.pruning = a.pruning;
    spec.sa.neighborBatch = a.neighborBatch;
    return spec;
}

/** Build the run's evaluation cache per the CLI knobs; warm-start
 *  from --cache-file when it exists. Null when caching is off. */
std::shared_ptr<EvalCache>
openCache(const CliArgs &a)
{
    if (a.cacheSize <= 0)
        return nullptr;
    auto cache =
        std::make_shared<EvalCache>(static_cast<size_t>(a.cacheSize));
    if (!a.cacheFile.empty()) {
        int n = loadEvalCache(*cache, a.cacheFile);
        if (n >= 0)
            std::fprintf(stderr, "cache: warm-started %d entries from %s\n",
                         n, a.cacheFile.c_str());
        else
            std::fprintf(stderr,
                         "cache: %s missing or unreadable, starting cold\n",
                         a.cacheFile.c_str());
    }
    return cache;
}

/** Persist the cache back to --cache-file (when both are in play). */
void
closeCache(const CliArgs &a, const std::shared_ptr<EvalCache> &cache)
{
    if (!cache || a.cacheFile.empty())
        return;
    if (saveEvalCache(*cache, a.cacheFile))
        std::fprintf(stderr, "cache: saved %zu entries to %s\n",
                     cache->size(), a.cacheFile.c_str());
    else
        std::fprintf(stderr, "cache: could not write %s\n",
                     a.cacheFile.c_str());
}

/** Write the run's JSON metrics record (when --metrics-out given). */
void
emitMetrics(const CliArgs &a, const std::string &name, double wall_seconds,
            int64_t samples, double best_cost, bool cache_enabled,
            const EvalCacheStats &stats,
            const DeploymentBreakdown *dep = nullptr,
            const CoccoResult *result = nullptr, bool pareto_mode = false)
{
    if (a.metricsOut.empty())
        return;
    RunMetrics m;
    m.name = name;
    m.model = a.model;
    m.threads = ThreadPool::resolveThreads(a.threads);
    m.seed = a.seed;
    m.samples = samples;
    m.bestCost = best_cost;
    m.wallSeconds = wall_seconds;
    m.cacheEnabled = cache_enabled;
    m.cache = stats;
    if (dep) {
        m.hasDeployment = true;
        m.deployment = *dep;
    }
    if (result)
        fillResultMetrics(*result, pareto_mode, &m);
    if (!writeMetricsFile(a.metricsOut, "cocco_cli", {m}))
        std::fprintf(stderr, "error: could not write metrics to %s\n",
                     a.metricsOut.c_str());
}

/** Human-mode stderr summary of a run's cache activity. */
void
printCacheLine(const EvalCacheStats &stats)
{
    std::fprintf(stderr, "cache: %llu/%llu evaluations served (%.1f%%)\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.hits + stats.misses),
                 100.0 * stats.hitRate());
}

/** Seconds elapsed since @p t0. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

void
printCost(const Graph &g, const GraphCost &c, const BufferConfig &buf,
          double alpha, Metric metric)
{
    Table t({"metric", "value"});
    t.addRow({"buffer", buf.str()});
    t.addRow({"subgraphs", Table::fmtInt(c.subgraphs)});
    t.addRow({"EMA", Table::fmtMB(static_cast<double>(c.emaBytes))});
    t.addRow({"energy", Table::fmtDouble(c.energyPj / 1e9, 3) + " mJ"});
    t.addRow({"latency", Table::fmtDouble(c.latencyMs(), 3) + " ms"});
    t.addRow({"avg BW", Table::fmtDouble(c.avgBwGBps, 2) + " GB/s"});
    t.addRow({"peak BW", Table::fmtDouble(c.peakBwGBps, 2) + " GB/s"});
    t.addRow({"objective", Table::fmtSci(objective(c, buf, alpha, metric))});
    t.print();
    (void)g;
}

/** Human-mode per-racer summary of a portfolio run. */
void
printRacerLines(const std::vector<RacerStats> &racers)
{
    for (const RacerStats &r : racers)
        std::fprintf(stderr,
                     "racer: %-10s %8lld evals  %5lld improvements  "
                     "best %.6g  %s%s%s\n",
                     r.algo.c_str(), static_cast<long long>(r.samples),
                     static_cast<long long>(r.improvements), r.bestCost,
                     stopReasonName(r.stop), r.culled ? " (culled)" : "",
                     r.winner ? " <- winner" : "");
}

/** Human-mode one-liner for a pareto-mode frontier. */
void
printFrontierLine(const CoccoResult &r)
{
    std::fprintf(stderr,
                 "frontier: %zu non-dominated points, hypervolume %.4f\n",
                 r.frontier.size(), r.hypervolume);
}

/** Write a pareto-mode frontier to --frontier-out as CSV. */
void
emitFrontierCsv(const std::string &path, const CoccoResult &r)
{
    CsvWriter csv({"buffer_bytes", "energy_pj", "latency_cycles",
                   "metric", "sample"});
    for (const ParetoEntry &e : r.frontier)
        csv.addRow({std::to_string(e.bufferBytes),
                    strprintf("%.17g", e.energyPj),
                    strprintf("%.17g", e.latencyCycles),
                    strprintf("%.17g", e.metric),
                    std::to_string(e.sample)});
    if (csv.writeFile(path))
        std::fprintf(stderr, "frontier: wrote %zu points to %s\n",
                     r.frontier.size(), path.c_str());
    else
        std::fprintf(stderr, "error: could not write frontier to %s\n",
                     path.c_str());
}

/** Early-stop note for human-mode output. */
void
printStopLine(StopReason stop)
{
    if (stop != StopReason::BudgetExhausted)
        std::fprintf(stderr, "stopped early: %s\n", stopReasonName(stop));
}

int
runPartition(CliArgs &a)
{
    Graph g = cliWorkload(a);
    AcceleratorConfig accel = cliPlatform(a);
    DeploymentSpec dspec = cliDeploymentSpec(a);
    std::unique_ptr<CostModel> model_ptr = makeModel(g, accel, dspec);
    CostModel &model = *model_ptr;
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 1152 * 1024;

    // Only the sampling searches evaluate genomes; greedy/dp/enum
    // never touch the cache, so don't open (or rewrite) it for them.
    bool sampling = SearcherRegistry::instance().contains(a.algo);
    std::shared_ptr<EvalCache> cache = sampling ? openCache(a) : nullptr;
    EvalCacheStats run_stats;
    int64_t samples = 0;
    auto t0 = std::chrono::steady_clock::now();

    Partition p;
    if (a.algo == "greedy") {
        p = greedyPartition(g, model, buf, a.metric);
    } else if (a.algo == "dp") {
        p = dpPartition(g, model, buf, a.metric);
    } else if (a.algo == "enum") {
        EnumerationResult r = enumeratePartition(g, model, buf, a.metric);
        if (!r.complete) {
            std::fprintf(stderr,
                         "enumeration exceeded its budget (%lld states)\n",
                         static_cast<long long>(r.statesVisited));
            return 1;
        }
        p = r.best;
    } else if (sampling) {
        // Any registered driver, partition-only under the fixed buffer.
        std::unique_ptr<CoccoFramework> cocco =
            makeFramework(g, accel, dspec);
        SearchSpec spec = specFromArgs(a);
        spec.eval.coExplore = false;
        spec.fixedBuffer = buf;
        spec.eval.cacheEnabled = cache != nullptr;
        spec.eval.cache = cache;
        CoccoResult r = cocco->explore(spec);
        p = r.partition;
        run_stats = r.cacheStats;
        samples = r.samples;
        printStopLine(r.stop);
    } else {
        usage();
    }

    double wall = secondsSince(t0);
    closeCache(a, cache);
    GraphCost c = model.partitionCost(p, buf);
    DeploymentBreakdown dep = model.breakdown(p, buf);
    if (a.json) {
        std::printf("%s\n", partitionToJson(g, p).c_str());
    } else {
        std::printf("%s: %s partition -> %zu subgraphs\n",
                    a.model.c_str(), a.algo.c_str(), p.blocks().size());
        printCost(g, c, buf, a.alpha, a.metric);
        printDeploymentLine(dep);
        if (cache && samples > 0)
            printCacheLine(run_stats);
    }
    printTimeline(a, model, p, buf);
    emitMetrics(a, "partition-" + a.algo, wall, samples,
                c.metricValue(a.metric), cache != nullptr, run_stats,
                &dep);
    return 0;
}

int
runCoExplore(CliArgs &a)
{
    Graph g = cliWorkload(a);
    AcceleratorConfig accel = cliPlatform(a);
    std::unique_ptr<CoccoFramework> cocco =
        makeFramework(g, accel, cliDeploymentSpec(a));
    SearchSpec spec = specFromArgs(a);
    spec.eval.coExplore = true;
    spec.style = a.style == "separate" ? BufferStyle::Separate
                                       : BufferStyle::Shared;
    std::shared_ptr<EvalCache> cache = openCache(a);
    spec.eval.cacheEnabled = cache != nullptr;
    spec.eval.cache = cache;
    auto t0 = std::chrono::steady_clock::now();
    CoccoResult r = cocco->explore(spec);
    double wall = secondsSince(t0);
    closeCache(a, cache);
    if (a.json) {
        std::printf("%s\n", resultToJson(g, r).c_str());
    } else {
        std::printf("%s: %s recommends buffer %s after %lld samples\n",
                    a.model.c_str(), spec.algo.c_str(),
                    r.buffer.str().c_str(),
                    static_cast<long long>(r.samples));
        printCost(g, r.cost, r.buffer, a.alpha, a.metric);
        printDeploymentLine(r.deployment);
        printStopLine(r.stop);
        if (cache)
            printCacheLine(r.cacheStats);
    }
    printTimeline(a, cocco->model(), r.partition, r.buffer);
    emitMetrics(a, "coexplore-" + spec.algo, wall, r.samples, r.objective,
                cache != nullptr, r.cacheStats, &r.deployment);
    return 0;
}

/** The co-schedule execution path, shared by `cocco coschedule` and a
 *  `run --spec` document with a "workload_set" section: resolve every
 *  tenant's graph, scale out over the spec's deployment (a plain
 *  platform is a 1-core deployment), and hand the joint placement
 *  search to CoScheduler. @p namePrefix labels the metrics record
 *  ("spec-" / "coschedule-") so either frontend is identifiable. */
int
runCoScheduleSpec(CliArgs a, SearchSpec spec,
                  const std::string &namePrefix)
{
    std::string err;
    std::vector<Graph> graphs(spec.workloadSet.size());
    std::string names;
    for (int t = 0; t < spec.workloadSet.size(); ++t) {
        if (!resolveWorkload(spec.workloadSet.tenants[t].workload,
                             &graphs[t], &err))
            fatal("%s: %s", a.specFile.c_str(), err.c_str());
        names += (t ? "+" : "") + graphs[t].name();
    }
    a.model = names;

    AcceleratorConfig accel;
    if (!resolvePlatform(spec.platform, &accel, &err))
        fatal("%s: %s", a.specFile.c_str(), err.c_str());
    DeploymentConfig dep;
    if (spec.deployment.enabled) {
        if (!resolveDeployment(spec.deployment, accel, &dep, &err))
            fatal("%s: %s", a.specFile.c_str(), err.c_str());
    } else {
        dep = homogeneousDeployment(accel, 1);
    }

    // Co-schedule runs have no checkpoint format (the inner searches
    // are short per-tenant probes, not one long trajectory).
    if (!a.checkpointFile.empty())
        std::fprintf(stderr, "checkpoint: co-schedule runs do not "
                             "checkpoint; --checkpoint ignored\n");

    NdjsonProgress progress(a.progress ? stderr : nullptr, 0,
                            &g_interrupted);
    spec.eval.observer = &progress;

    std::shared_ptr<EvalCache> cache;
    if (spec.eval.cacheEnabled) {
        a.cacheSize = static_cast<int64_t>(spec.eval.cacheCapacity);
        cache = openCache(a);
        spec.eval.cache = cache;
        spec.eval.cacheEnabled = cache != nullptr;
    }

    CoScheduler sched(graphs, spec.workloadSet, dep);
    auto t0 = std::chrono::steady_clock::now();
    ScheduleResult r = sched.explore(spec);
    double wall = secondsSince(t0);
    closeCache(a, cache);

    if (a.json) {
        std::printf("%s\n",
                    scheduleResultToJson(sched.model(), r).c_str());
    } else {
        std::printf("%s: %s placed %d tenant(s) on %d core(s) -> "
                    "%d SLA violation(s), mean latency %.3f ms\n",
                    a.model.c_str(), spec.algo.c_str(),
                    sched.model().tenants(), sched.model().cores(),
                    r.cost.slaViolations, r.cost.meanLatencyMs);
        if (static_cast<int>(r.cost.tenants.size()) ==
            sched.model().tenants()) {
            for (int t = 0; t < sched.model().tenants(); ++t) {
                const TenantSpec &ts = spec.workloadSet.tenants[t];
                const TenantCost &tc = r.cost.tenants[t];
                std::printf("  %-12s core %d  latency %10.3f ms "
                            "(SLA %.3f ms) %s\n",
                            ts.name.c_str(), r.schedule.coreOf[t],
                            tc.latencyMs, ts.slaLatencyMs,
                            tc.slaViolation ? "VIOLATED" : "ok");
            }
        }
        printStopLine(r.stop);
        if (cache)
            printCacheLine(r.cacheStats);
    }
    if (a.timeline)
        std::printf("%s", scheduleGantt(sched.model(), r).c_str());

    if (!a.metricsOut.empty()) {
        RunMetrics m;
        m.name = namePrefix + spec.algo;
        m.model = a.model;
        m.threads = ThreadPool::resolveThreads(a.threads);
        m.seed = a.seed;
        m.samples = r.samples;
        m.bestCost = r.objective;
        m.wallSeconds = wall;
        m.cacheEnabled = cache != nullptr;
        m.cache = r.cacheStats;
        fillTenantMetrics(sched.model(), r, &m);
        if (!writeMetricsFile(a.metricsOut, "cocco_cli", {m}))
            std::fprintf(stderr,
                         "error: could not write metrics to %s\n",
                         a.metricsOut.c_str());
    }
    return g_interrupted.load(std::memory_order_relaxed) ? 130 : 0;
}

/** `cocco run --spec FILE`: the declarative path. The document is
 *  authoritative for the search configuration; the command line only
 *  contributes output/persistence knobs (--json, --metrics-out,
 *  --cache-file). */
int
runSpec(CliArgs a)
{
    if (a.specFile.empty())
        fatal("run needs --spec FILE");
    JsonValue doc;
    std::string err;
    if (!loadJsonFile(a.specFile, &doc, &err))
        fatal("%s", err.c_str());

    SearchSpec spec;
    // Partition-only specs may omit "buffer": default to the standard
    // fixed buffer of the partition studies (1MB GLB + 1.125MB WBUF).
    spec.fixedBuffer.style = BufferStyle::Separate;
    spec.fixedBuffer.actBytes = 1024 * 1024;
    spec.fixedBuffer.weightBytes = 1152 * 1024;
    if (!searchSpecFromJson(doc, &spec, &err))
        fatal("%s: %s", a.specFile.c_str(), err.c_str());
    a.seed = spec.eval.seed;
    a.threads = spec.eval.threads;
    if (a.deterministicRace)
        spec.portfolio.deterministicRace = true;
    if (!a.frontierOut.empty() && !spec.paretoMode)
        std::fprintf(stderr, "frontier: spec is not \"mode\": "
                             "\"pareto\"; --frontier-out ignored\n");
    if (!a.checkpointFile.empty() && spec.paretoMode)
        std::fprintf(stderr,
                     "checkpoint: the pareto archive is not part of "
                     "the checkpoint format; a resumed run's frontier "
                     "only covers samples after the resume point\n");

    // A "workload_set" document runs the co-scheduler; everything
    // else about the invocation (--json, --timeline, --metrics-out,
    // cache flags) behaves identically.
    if (spec.workloadSet.enabled())
        return runCoScheduleSpec(std::move(a), std::move(spec), "spec-");

    // The document is self-contained: it addresses the workload (a
    // registry model + params, or a graph file) and the platform (a
    // preset, file, or inline config).
    Graph g;
    if (!resolveWorkload(spec.workload, &g, &err))
        fatal("%s: %s", a.specFile.c_str(), err.c_str());
    a.model = g.name();

    AcceleratorConfig accel;
    if (!resolvePlatform(spec.platform, &accel, &err))
        fatal("%s: %s", a.specFile.c_str(), err.c_str());
    // An explicit workload batch (including 1) overrides the
    // platform's: batching is a property of the run, accounted on
    // the platform side. 0 (the default) inherits the platform's.
    if (spec.workload.params.batch > 0)
        accel.batch = spec.workload.params.batch;

    // The spec's "deployment" section scales the run out over
    // crossbar-connected cores; the workload batch override applies
    // to every core.
    std::string ctx = a.specFile + ": ";
    std::unique_ptr<CoccoFramework> cocco =
        makeFramework(g, accel, spec.deployment, ctx.c_str(),
                      spec.workload.params.batch);

    // The progress/interrupt observer: --progress streams NDJSON
    // events (serve/events.h vocabulary, job id 0) to stderr; either
    // way a trapped SIGINT cancels the search at the next batch
    // boundary, so partial metrics and checkpoints still flush.
    NdjsonProgress progress(a.progress ? stderr : nullptr, 0,
                            &g_interrupted);
    spec.eval.observer = &progress;

    // --checkpoint FILE: resume from the file when it exists, persist
    // the search state there when the run is cancelled or times out.
    CheckpointHooks hooks;
    SearchCheckpoint resume;
    if (!a.checkpointFile.empty()) {
        std::string ckerr;
        if (std::FILE *probe =
                std::fopen(a.checkpointFile.c_str(), "r")) {
            std::fclose(probe);
            // An existing-but-corrupt checkpoint is fatal, not a
            // silent cold start: the user asked to resume.
            if (!loadCheckpoint(a.checkpointFile, &resume, &ckerr))
                fatal("%s", ckerr.c_str());
            hooks.resume = &resume;
            std::fprintf(stderr,
                         "checkpoint: resuming \"%s\" from %s at %lld "
                         "samples\n",
                         resume.algo.c_str(), a.checkpointFile.c_str(),
                         static_cast<long long>(resume.samples));
        }
        hooks.save = [&a, &progress](const SearchCheckpoint &c) {
            if (!saveCheckpoint(c, a.checkpointFile)) {
                std::fprintf(stderr, "checkpoint: could not write %s\n",
                             a.checkpointFile.c_str());
                return;
            }
            std::fprintf(stderr,
                         "checkpoint: saved %s at %lld samples\n",
                         a.checkpointFile.c_str(),
                         static_cast<long long>(c.samples));
            JobEvent e;
            e.kind = JobEvent::Kind::Checkpoint;
            e.sample = c.samples;
            progress.emit(e);
        };
        spec.eval.checkpoint = &hooks;
    }

    std::shared_ptr<EvalCache> cache;
    if (spec.eval.cacheEnabled) {
        a.cacheSize = static_cast<int64_t>(spec.eval.cacheCapacity);
        cache = openCache(a);
        spec.eval.cache = cache;
    }

    auto t0 = std::chrono::steady_clock::now();
    CoccoResult r = cocco->explore(spec);
    double wall = secondsSince(t0);
    closeCache(a, cache);

    if (a.json) {
        std::printf("%s\n", resultToJson(g, r).c_str());
    } else {
        std::printf("%s: %s (%s) -> buffer %s after %lld samples\n",
                    a.model.c_str(), spec.algo.c_str(),
                    spec.eval.coExplore ? "co-explore" : "partition-only",
                    r.buffer.str().c_str(),
                    static_cast<long long>(r.samples));
        printCost(g, r.cost, r.buffer, spec.eval.alpha, spec.eval.metric);
        printDeploymentLine(r.deployment);
        printRacerLines(r.racers);
        if (spec.paretoMode)
            printFrontierLine(r);
        printStopLine(r.stop);
        if (cache)
            printCacheLine(r.cacheStats);
    }
    printTimeline(a, cocco->model(), r.partition, r.buffer);
    if (!a.frontierOut.empty() && spec.paretoMode)
        emitFrontierCsv(a.frontierOut, r);
    emitMetrics(a, "spec-" + spec.algo, wall, r.samples, r.objective,
                cache != nullptr, r.cacheStats, &r.deployment, &r,
                spec.paretoMode);

    // A run that ended for good (budget/stall) leaves no checkpoint
    // behind — resuming a finished run would be a silent no-op.
    if (!a.checkpointFile.empty() &&
        (r.stop == StopReason::BudgetExhausted ||
         r.stop == StopReason::Stalled))
        std::remove(a.checkpointFile.c_str());
    return g_interrupted.load(std::memory_order_relaxed) ? 130 : 0;
}

/** `cocco coschedule --spec FILE`: the explicit multi-tenant
 *  frontend. Takes the same documents as `run` but insists on a
 *  "workload_set" (a single tenant normalizes to a plain run). */
int
runCoSchedule(CliArgs a)
{
    if (a.specFile.empty())
        fatal("coschedule needs --spec FILE");
    JsonValue doc;
    std::string err;
    if (!loadJsonFile(a.specFile, &doc, &err))
        fatal("%s", err.c_str());
    SearchSpec spec;
    spec.fixedBuffer.style = BufferStyle::Separate;
    spec.fixedBuffer.actBytes = 1024 * 1024;
    spec.fixedBuffer.weightBytes = 1152 * 1024;
    if (!searchSpecFromJson(doc, &spec, &err))
        fatal("%s: %s", a.specFile.c_str(), err.c_str());
    if (!spec.workloadSet.enabled())
        fatal("%s: coschedule needs a \"workload_set\" with >= 2 "
              "tenants (one tenant is a plain run; use `cocco run`)",
              a.specFile.c_str());
    a.seed = spec.eval.seed;
    a.threads = spec.eval.threads;
    return runCoScheduleSpec(std::move(a), std::move(spec),
                             "coschedule-");
}

/** `cocco batch <dir>`: drain a directory of run specs through one
 *  JobManager (serve/batch.h); per-spec metrics/result documents plus
 *  a batch summary land in --out (default: the spec directory). */
int
runBatch(const CliArgs &a)
{
    if (a.model.empty())
        fatal("batch needs a directory of run specs");
    BatchOptions opts;
    opts.outDir = a.outDir;
    opts.jobs = a.jobs;
    opts.threadBudget = a.threads;
    opts.cacheEnabled = a.cacheSize > 0;
    opts.cacheCapacity =
        a.cacheSize > 0 ? static_cast<size_t>(a.cacheSize) : 0;
    opts.cacheFile = a.cacheFile;
    opts.progress = a.progress;
    opts.interrupt = &g_interrupted;

    BatchSummary summary;
    std::string err;
    bool ok = runBatchDir(a.model, opts, &summary, &err);
    if (!ok && summary.entries.empty())
        fatal("%s", err.c_str());
    if (!ok)
        std::fprintf(stderr, "batch: %s\n", err.c_str());
    std::printf("batch: %d done, %d cancelled, %d failed of %zu spec(s) "
                "in %.1fs (cache hit-rate %.1f%%)\n",
                summary.done, summary.cancelled, summary.failed,
                summary.entries.size(), summary.wallSeconds,
                100.0 * summary.cache.hitRate());
    if (summary.interrupted)
        return 130;
    return ok && summary.failed == 0 ? 0 : 1;
}

/** `cocco serve`: the long-lived exploration service — the stdio
 *  NDJSON protocol with --stdio, the local HTTP job API with --port
 *  (0 = ephemeral; the bound port is printed). --threads is the
 *  total evaluation-thread budget shared by running jobs. */
int
runServe(const CliArgs &a)
{
    if (!a.stdio && a.port < 0)
        fatal("serve needs --port N (0 = ephemeral) or --stdio");

    JobManagerOptions opts;
    opts.workers = a.serveWorkers;
    opts.threadBudget = a.threads;
    opts.queueCapacity = a.serveQueue;
    opts.cacheEnabled = a.cacheSize > 0;
    if (a.cacheSize > 0)
        opts.cacheCapacity = static_cast<size_t>(a.cacheSize);
    opts.cache = openCache(a);
    JobManager manager(opts);

    int rc = 0;
    if (a.stdio) {
        rc = runStdioServe(manager, stdin, stdout);
    } else {
        std::atomic<bool> shutdown{false};
        HttpServer server([&manager, &shutdown](const HttpRequest &req) {
            return serveHttpRequest(manager, req, &shutdown);
        });
        std::string err;
        if (!server.start(a.port, &err))
            fatal("%s", err.c_str());
        std::printf("cocco serve: listening on 127.0.0.1:%d\n",
                    server.port());
        std::fflush(stdout);
        while (!shutdown.load(std::memory_order_relaxed) &&
               !g_interrupted.load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::fprintf(stderr, "serve: shutting down\n");
        server.stop();
        manager.cancelAll();
        manager.drain();
    }
    closeCache(a, manager.cache());
    return rc;
}

/** `cocco validate-metrics FILE`: structural check of a metrics
 *  document (core/metrics schema v1) using the JSON parser — what CI
 *  runs against every uploaded artifact. */
int
validateMetrics(const std::string &path)
{
    JsonValue doc;
    std::string err;
    if (!loadJsonFile(path, &doc, &err))
        fatal("%s", err.c_str());
    if (!doc.isObject())
        fatal("%s: document must be an object", path.c_str());

    const JsonValue *version = doc.find("schema_version");
    if (!version || !version->isNumber() || version->number() != 1.0)
        fatal("%s: schema_version must be 1", path.c_str());
    const JsonValue *generator = doc.find("generator");
    if (!generator || !generator->isString())
        fatal("%s: missing \"generator\"", path.c_str());
    const JsonValue *runs = doc.find("runs");
    if (!runs || !runs->isArray())
        fatal("%s: missing \"runs\" array", path.c_str());

    static const char *string_fields[] = {"name", "model"};
    static const char *number_fields[] = {"threads", "seed", "samples",
                                          "best_cost", "wall_seconds"};
    int i = 0;
    for (const JsonValue &run : runs->array()) {
        if (!run.isObject())
            fatal("%s: runs[%d] is not an object", path.c_str(), i);
        for (const char *f : string_fields)
            if (!run.find(f) || !run.find(f)->isString())
                fatal("%s: runs[%d] missing string \"%s\"", path.c_str(),
                      i, f);
        for (const char *f : number_fields)
            if (!run.find(f) || !run.find(f)->isNumber())
                fatal("%s: runs[%d] missing number \"%s\"", path.c_str(),
                      i, f);
        const JsonValue *cache = run.find("cache");
        if (!cache || !cache->isObject())
            fatal("%s: runs[%d] missing \"cache\" object", path.c_str(), i);
        // The deployment block is optional; when present it must be
        // well-formed (cores + shares + the per-core utilization list).
        if (const JsonValue *dep = run.find("deployment")) {
            if (!dep->isObject())
                fatal("%s: runs[%d] \"deployment\" is not an object",
                      path.c_str(), i);
            static const char *dep_numbers[] = {"cores",
                                                "crossbar_energy_share",
                                                "crossbar_latency_share"};
            for (const char *f : dep_numbers)
                if (!dep->find(f) || !dep->find(f)->isNumber())
                    fatal("%s: runs[%d] deployment missing number "
                          "\"%s\"",
                          path.c_str(), i, f);
            const JsonValue *util = dep->find("core_utilization");
            if (!util || !util->isArray())
                fatal("%s: runs[%d] deployment missing "
                      "\"core_utilization\" array",
                      path.c_str(), i);
            if (static_cast<int>(util->array().size()) !=
                static_cast<int>(dep->find("cores")->number()))
                fatal("%s: runs[%d] deployment core_utilization has "
                      "%zu entries for %d cores",
                      path.c_str(), i, util->array().size(),
                      static_cast<int>(dep->find("cores")->number()));
        }
        // The job block is optional too (serve/batch documents); when
        // present it must carry the full serving context.
        if (const JsonValue *job = run.find("job")) {
            if (!job->isObject())
                fatal("%s: runs[%d] \"job\" is not an object",
                      path.c_str(), i);
            static const char *job_numbers[] = {"id", "queued_seconds"};
            for (const char *f : job_numbers)
                if (!job->find(f) || !job->find(f)->isNumber())
                    fatal("%s: runs[%d] job missing number \"%s\"",
                          path.c_str(), i, f);
            static const char *job_strings[] = {"tenant", "state"};
            for (const char *f : job_strings)
                if (!job->find(f) || !job->find(f)->isString())
                    fatal("%s: runs[%d] job missing string \"%s\"",
                          path.c_str(), i, f);
            if (!job->find("resumed") || !job->find("resumed")->isBool())
                fatal("%s: runs[%d] job missing bool \"resumed\"",
                      path.c_str(), i);
        }
        // The tenants block is optional (co-schedule documents); when
        // present its list must be per-tenant complete and match the
        // declared count.
        if (const JsonValue *ten = run.find("tenants")) {
            if (!ten->isObject())
                fatal("%s: runs[%d] \"tenants\" is not an object",
                      path.c_str(), i);
            static const char *ten_numbers[] = {"count", "sla_violations",
                                                "mean_latency_ms"};
            for (const char *f : ten_numbers)
                if (!ten->find(f) || !ten->find(f)->isNumber())
                    fatal("%s: runs[%d] tenants missing number \"%s\"",
                          path.c_str(), i, f);
            const JsonValue *list = ten->find("list");
            if (!list || !list->isArray())
                fatal("%s: runs[%d] tenants missing \"list\" array",
                      path.c_str(), i);
            if (static_cast<int>(list->array().size()) !=
                static_cast<int>(ten->find("count")->number()))
                fatal("%s: runs[%d] tenants list has %zu entries for "
                      "count %d",
                      path.c_str(), i, list->array().size(),
                      static_cast<int>(ten->find("count")->number()));
            int j = 0;
            for (const JsonValue &t : list->array()) {
                if (!t.isObject())
                    fatal("%s: runs[%d] tenants list[%d] is not an "
                          "object",
                          path.c_str(), i, j);
                if (!t.find("name") || !t.find("name")->isString())
                    fatal("%s: runs[%d] tenants list[%d] missing string "
                          "\"name\"",
                          path.c_str(), i, j);
                static const char *entry_numbers[] = {
                    "core", "arrival_rate_hz", "sla_latency_ms",
                    "latency_ms", "energy_pj"};
                for (const char *f : entry_numbers)
                    if (!t.find(f) || !t.find(f)->isNumber())
                        fatal("%s: runs[%d] tenants list[%d] missing "
                              "number \"%s\"",
                              path.c_str(), i, j, f);
                if (!t.find("sla_violation") ||
                    !t.find("sla_violation")->isBool())
                    fatal("%s: runs[%d] tenants list[%d] missing bool "
                          "\"sla_violation\"",
                          path.c_str(), i, j);
                ++j;
            }
        }
        // The portfolio block is optional (portfolio runs); when
        // present it must name the winner and carry a complete
        // per-racer record list.
        if (const JsonValue *pf = run.find("portfolio")) {
            if (!pf->isObject())
                fatal("%s: runs[%d] \"portfolio\" is not an object",
                      path.c_str(), i);
            if (!pf->find("winner") || !pf->find("winner")->isString())
                fatal("%s: runs[%d] portfolio missing string "
                      "\"winner\"",
                      path.c_str(), i);
            const JsonValue *racers = pf->find("racers");
            if (!racers || !racers->isArray() ||
                racers->array().empty())
                fatal("%s: runs[%d] portfolio missing non-empty "
                      "\"racers\" array",
                      path.c_str(), i);
            int j = 0;
            bool winner_seen = false;
            for (const JsonValue &rc : racers->array()) {
                if (!rc.isObject())
                    fatal("%s: runs[%d] portfolio racers[%d] is not an "
                          "object",
                          path.c_str(), i, j);
                static const char *racer_strings[] = {"algo", "stop"};
                for (const char *f : racer_strings)
                    if (!rc.find(f) || !rc.find(f)->isString())
                        fatal("%s: runs[%d] portfolio racers[%d] "
                              "missing string \"%s\"",
                              path.c_str(), i, j, f);
                static const char *racer_numbers[] = {
                    "samples", "best_cost", "improvements",
                    "wall_seconds", "threads", "regrants"};
                for (const char *f : racer_numbers)
                    if (!rc.find(f) || !rc.find(f)->isNumber())
                        fatal("%s: runs[%d] portfolio racers[%d] "
                              "missing number \"%s\"",
                              path.c_str(), i, j, f);
                static const char *racer_bools[] = {"culled", "winner"};
                for (const char *f : racer_bools)
                    if (!rc.find(f) || !rc.find(f)->isBool())
                        fatal("%s: runs[%d] portfolio racers[%d] "
                              "missing bool \"%s\"",
                              path.c_str(), i, j, f);
                if (rc.find("winner")->boolean() &&
                    rc.find("algo")->str() == pf->find("winner")->str())
                    winner_seen = true;
                ++j;
            }
            if (!winner_seen)
                fatal("%s: runs[%d] portfolio \"winner\" names no "
                      "winning racer",
                      path.c_str(), i);
        }
        // The pareto block is optional (pareto-mode runs); when
        // present its frontier must match the declared size and every
        // point must be complete.
        if (const JsonValue *pa = run.find("pareto")) {
            if (!pa->isObject())
                fatal("%s: runs[%d] \"pareto\" is not an object",
                      path.c_str(), i);
            static const char *pareto_numbers[] = {"frontier_size",
                                                   "hypervolume"};
            for (const char *f : pareto_numbers)
                if (!pa->find(f) || !pa->find(f)->isNumber())
                    fatal("%s: runs[%d] pareto missing number \"%s\"",
                          path.c_str(), i, f);
            const JsonValue *front = pa->find("frontier");
            if (!front || !front->isArray())
                fatal("%s: runs[%d] pareto missing \"frontier\" array",
                      path.c_str(), i);
            if (static_cast<int>(front->array().size()) !=
                static_cast<int>(pa->find("frontier_size")->number()))
                fatal("%s: runs[%d] pareto frontier has %zu entries "
                      "for frontier_size %d",
                      path.c_str(), i, front->array().size(),
                      static_cast<int>(
                          pa->find("frontier_size")->number()));
            int j = 0;
            for (const JsonValue &pt : front->array()) {
                if (!pt.isObject())
                    fatal("%s: runs[%d] pareto frontier[%d] is not an "
                          "object",
                          path.c_str(), i, j);
                static const char *point_numbers[] = {
                    "buffer_bytes", "energy_pj", "latency_cycles",
                    "metric", "sample"};
                for (const char *f : point_numbers)
                    if (!pt.find(f) || !pt.find(f)->isNumber())
                        fatal("%s: runs[%d] pareto frontier[%d] "
                              "missing number \"%s\"",
                              path.c_str(), i, j, f);
                ++j;
            }
        }
        ++i;
    }
    std::printf("%s: ok (%s, %d run%s)\n", path.c_str(),
                generator->str().c_str(), i, i == 1 ? "" : "s");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs a = parse(argc, argv);

    // Graceful-interrupt modes only: elsewhere the default SIGINT
    // disposition (kill) is the right behavior.
    if (a.command == "run" || a.command == "coschedule" ||
        a.command == "batch" || a.command == "serve")
        std::signal(SIGINT, onSigint);

    if (a.command == "models" || a.command == "--list-models") {
        const ModelRegistry &reg = ModelRegistry::instance();
        for (const std::string &name : reg.keys()) {
            const ModelInfo &info = reg.info(name);
            std::printf("%-12s %-44s %s\n", name.c_str(),
                        modelKnobsStr(info).c_str(),
                        info.summary.c_str());
        }
        return 0;
    }
    if (a.command == "--list-algos") {
        const SearcherRegistry &reg = SearcherRegistry::instance();
        for (const std::string &key : reg.keys())
            std::printf("%-10s %s\n", key.c_str(),
                        reg.summary(key).c_str());
        return 0;
    }
    if (a.command == "--list-platforms") {
        const PlatformRegistry &reg = PlatformRegistry::instance();
        for (const std::string &name : reg.keys())
            std::printf("%-10s %s\n", name.c_str(),
                        reg.summary(name).c_str());
        return 0;
    }
    if (a.command == "--list-deployments") {
        const DeploymentRegistry &reg = DeploymentRegistry::instance();
        for (const std::string &name : reg.keys())
            std::printf("%-10s %s\n", name.c_str(),
                        reg.summary(name).c_str());
        return 0;
    }
    if (a.command == "describe-deployment") {
        if (a.model.empty())
            usage();
        // deploymentPreset is fatal on unknown names, with the list.
        DeploymentDesc desc = deploymentPreset(a.model);
        std::printf("%s: %s\n", a.model.c_str(),
                    DeploymentRegistry::instance().summary(a.model)
                        .c_str());
        std::printf("%s\n", deploymentToJson(desc).c_str());
        return 0;
    }
    if (a.command == "run")
        return runSpec(a);
    if (a.command == "coschedule")
        return runCoSchedule(a);
    if (a.command == "batch")
        return runBatch(a);
    if (a.command == "serve")
        return runServe(a);
    if (a.command == "validate-metrics") {
        if (a.model.empty())
            usage();
        return validateMetrics(a.model);
    }
    if (a.command == "describe") {
        Graph g = cliWorkload(a);
        std::printf("%s\n%s", g.str().c_str(),
                    computeStats(g).str().c_str());
        return 0;
    }
    if (a.command == "describe-model") {
        if (a.model.empty())
            usage();
        // info() is fatal on unknown names, with the known list.
        const ModelInfo &info =
            ModelRegistry::instance().info(a.model);
        ModelParams params = info.defaults;
        params.seed = a.modelSeed;
        Graph g = buildModel(a.model, params);
        std::printf("%s: %s\n", info.name.c_str(), info.summary.c_str());
        std::string knobs = modelKnobsStr(info);
        std::printf("params: %s\n",
                    knobs.empty() ? "(none)" : knobs.c_str());
        std::printf("%s", computeStats(g).str().c_str());
        return 0;
    }
    if (a.command == "export-model") {
        Graph g = cliWorkload(a);
        std::printf("%s\n", graphToJson(g).c_str());
        return 0;
    }
    if (a.command == "timeline") {
        Graph g = cliWorkload(a);
        AcceleratorConfig accel = cliPlatform(a);
        CostModel model(g, accel);
        BufferConfig buf;
        buf.style = BufferStyle::Separate;
        buf.actBytes = 1024 * 1024;
        buf.weightBytes = 1152 * 1024;
        Partition p = greedyPartition(g, model, buf, a.metric);
        Timeline tl = buildTimeline(model, p, buf);
        std::printf("%s: greedy partition timeline\n%s", a.model.c_str(),
                    tl.gantt().c_str());
        return 0;
    }
    if (a.command == "dot") {
        Graph g = cliWorkload(a);
        if (a.runs > 0) {
            Partition p = Partition::fixedRuns(g, a.runs);
            p.canonicalize(g);
            std::printf("%s", toDot(g, p).c_str());
        } else {
            std::printf("%s", toDot(g).c_str());
        }
        return 0;
    }
    if (a.command == "partition")
        return runPartition(a);
    if (a.command == "coexplore")
        return runCoExplore(a);
    usage();
}
