/**
 * @file
 * cocco — command-line driver for the library.
 *
 * Subcommands:
 *   models                          list built-in models
 *   describe  <model>               print the graph summary
 *   dot       <model> [--runs L]    DOT export (optionally partitioned)
 *   partition <model> --algo A      run one partitioner and report costs
 *             (A = greedy | dp | enum | ga | sa)
 *   coexplore <model> [--style s]   hardware-mapping co-exploration
 *             (s = shared | separate)
 * Common flags: --samples N, --alpha F, --metric ema|energy, --seed N,
 *               --threads N (parallel evaluation; 0 = all cores),
 *               --json (machine-readable output),
 *               --cache-size N (evaluation-cache entries; 0 disables),
 *               --cache-file F (persist/warm-start the cache),
 *               --metrics-out F (write a JSON run-metrics report)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "graph/dot.h"
#include "graph/stats.h"
#include "partition/dp.h"
#include "partition/enumeration.h"
#include "partition/greedy.h"
#include "sim/timeline.h"
#include "util/table.h"

using namespace cocco;

namespace {

struct CliArgs
{
    std::string command;
    std::string model;
    std::string algo = "ga";
    std::string style = "shared";
    int64_t samples = 5000;
    double alpha = 0.002;
    Metric metric = Metric::Energy;
    uint64_t seed = 1;
    bool json = false;
    int runs = 0;
    int threads = 1;
    int64_t cacheSize =
        static_cast<int64_t>(EvalCache::kDefaultCapacity); ///< 0 = off
    std::string cacheFile;  ///< warm-start / persist path ("" = none)
    std::string metricsOut; ///< JSON metrics path ("" = none)
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: cocco <command> [args]\n"
        "  models\n"
        "  describe  <model>\n"
        "  timeline  <model>\n"
        "  dot       <model> [--runs L]\n"
        "  partition <model> --algo greedy|dp|enum|ga|sa\n"
        "  coexplore <model> [--style shared|separate]\n"
        "flags: --samples N --alpha F --metric ema|energy --seed N "
        "--threads N --json\n"
        "       --cache-size N --cache-file F --metrics-out F\n");
    std::exit(2);
}

CliArgs
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    CliArgs a;
    a.command = argv[1];
    int i = 2;
    if (a.command != "models") {
        if (i >= argc)
            usage();
        a.model = argv[i++];
    }
    for (; i < argc; ++i) {
        std::string f = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (f == "--algo")
            a.algo = next();
        else if (f == "--style")
            a.style = next();
        else if (f == "--samples")
            a.samples = std::atoll(next());
        else if (f == "--alpha")
            a.alpha = std::atof(next());
        else if (f == "--seed")
            a.seed = std::strtoull(next(), nullptr, 10);
        else if (f == "--runs")
            a.runs = std::atoi(next());
        else if (f == "--threads")
            a.threads = std::atoi(next());
        else if (f == "--cache-size")
            a.cacheSize = std::atoll(next());
        else if (f == "--cache-file")
            a.cacheFile = next();
        else if (f == "--metrics-out")
            a.metricsOut = next();
        else if (f == "--metric")
            a.metric = std::string(next()) == "ema" ? Metric::EMA
                                                    : Metric::Energy;
        else if (f == "--json")
            a.json = true;
        else
            usage();
    }
    return a;
}

/** Build the run's evaluation cache per the CLI knobs; warm-start
 *  from --cache-file when it exists. Null when caching is off. */
std::shared_ptr<EvalCache>
openCache(const CliArgs &a)
{
    if (a.cacheSize <= 0)
        return nullptr;
    auto cache =
        std::make_shared<EvalCache>(static_cast<size_t>(a.cacheSize));
    if (!a.cacheFile.empty()) {
        int n = loadEvalCache(*cache, a.cacheFile);
        if (n >= 0)
            std::fprintf(stderr, "cache: warm-started %d entries from %s\n",
                         n, a.cacheFile.c_str());
        else
            std::fprintf(stderr,
                         "cache: %s missing or unreadable, starting cold\n",
                         a.cacheFile.c_str());
    }
    return cache;
}

/** Persist the cache back to --cache-file (when both are in play). */
void
closeCache(const CliArgs &a, const std::shared_ptr<EvalCache> &cache)
{
    if (!cache || a.cacheFile.empty())
        return;
    if (saveEvalCache(*cache, a.cacheFile))
        std::fprintf(stderr, "cache: saved %zu entries to %s\n",
                     cache->size(), a.cacheFile.c_str());
    else
        std::fprintf(stderr, "cache: could not write %s\n",
                     a.cacheFile.c_str());
}

/** Write the run's JSON metrics record (when --metrics-out given). */
void
emitMetrics(const CliArgs &a, const std::string &name, double wall_seconds,
            int64_t samples, double best_cost, bool cache_enabled,
            const EvalCacheStats &stats)
{
    if (a.metricsOut.empty())
        return;
    RunMetrics m;
    m.name = name;
    m.model = a.model;
    m.threads = ThreadPool::resolveThreads(a.threads);
    m.seed = a.seed;
    m.samples = samples;
    m.bestCost = best_cost;
    m.wallSeconds = wall_seconds;
    m.cacheEnabled = cache_enabled;
    m.cache = stats;
    if (!writeMetricsFile(a.metricsOut, "cocco_cli", {m}))
        std::fprintf(stderr, "error: could not write metrics to %s\n",
                     a.metricsOut.c_str());
}

/** Human-mode stderr summary of a run's cache activity. */
void
printCacheLine(const EvalCacheStats &stats)
{
    std::fprintf(stderr, "cache: %llu/%llu evaluations served (%.1f%%)\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.hits + stats.misses),
                 100.0 * stats.hitRate());
}

/** Seconds elapsed since @p t0. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

void
printCost(const Graph &g, const GraphCost &c, const BufferConfig &buf,
          double alpha, Metric metric)
{
    Table t({"metric", "value"});
    t.addRow({"buffer", buf.str()});
    t.addRow({"subgraphs", Table::fmtInt(c.subgraphs)});
    t.addRow({"EMA", Table::fmtMB(static_cast<double>(c.emaBytes))});
    t.addRow({"energy", Table::fmtDouble(c.energyPj / 1e9, 3) + " mJ"});
    t.addRow({"latency", Table::fmtDouble(c.latencyMs(), 3) + " ms"});
    t.addRow({"avg BW", Table::fmtDouble(c.avgBwGBps, 2) + " GB/s"});
    t.addRow({"peak BW", Table::fmtDouble(c.peakBwGBps, 2) + " GB/s"});
    t.addRow({"objective", Table::fmtSci(objective(c, buf, alpha, metric))});
    t.print();
    (void)g;
}

int
runPartition(const CliArgs &a)
{
    Graph g = buildModel(a.model);
    AcceleratorConfig accel;
    CostModel model(g, accel);
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 1152 * 1024;

    // Only the sampling searches evaluate genomes; greedy/dp/enum
    // never touch the cache, so don't open (or rewrite) it for them.
    bool sampling = a.algo == "ga" || a.algo == "sa";
    std::shared_ptr<EvalCache> cache = sampling ? openCache(a) : nullptr;
    EvalCacheStats run_stats;
    int64_t samples = 0;
    auto t0 = std::chrono::steady_clock::now();

    Partition p;
    if (a.algo == "greedy") {
        p = greedyPartition(g, model, buf, a.metric);
    } else if (a.algo == "dp") {
        p = dpPartition(g, model, buf, a.metric);
    } else if (a.algo == "enum") {
        EnumerationResult r = enumeratePartition(g, model, buf, a.metric);
        if (!r.complete) {
            std::fprintf(stderr,
                         "enumeration exceeded its budget (%lld states)\n",
                         static_cast<long long>(r.statesVisited));
            return 1;
        }
        p = r.best;
    } else if (a.algo == "ga" || a.algo == "sa") {
        CoccoFramework cocco(g, accel);
        GaOptions o;
        o.sampleBudget = a.samples;
        o.metric = a.metric;
        o.seed = a.seed;
        o.threads = a.threads;
        o.cacheEnabled = cache != nullptr;
        o.cache = cache;
        if (a.algo == "sa") {
            DseSpace space = DseSpace::fixedSpace(buf);
            SaOptions so;
            so.sampleBudget = a.samples;
            so.metric = a.metric;
            so.seed = a.seed;
            so.coExplore = false;
            so.threads = a.threads;
            so.cacheEnabled = cache != nullptr;
            so.cache = cache;
            SearchResult r = simulatedAnnealing(cocco.model(), space, so);
            p = r.best.part;
            run_stats = r.cacheStats;
            samples = r.samples;
        } else {
            CoccoResult r = cocco.partitionOnly(buf, o);
            p = r.partition;
            run_stats = r.cacheStats;
            samples = r.samples;
        }
    } else {
        usage();
    }

    double wall = secondsSince(t0);
    closeCache(a, cache);
    GraphCost c = model.partitionCost(p, buf);
    if (a.json) {
        std::printf("%s\n", partitionToJson(g, p).c_str());
    } else {
        std::printf("%s: %s partition -> %zu subgraphs\n",
                    a.model.c_str(), a.algo.c_str(), p.blocks().size());
        printCost(g, c, buf, a.alpha, a.metric);
        if (cache && samples > 0)
            printCacheLine(run_stats);
    }
    emitMetrics(a, "partition-" + a.algo, wall, samples,
                c.metricValue(a.metric), cache != nullptr, run_stats);
    return 0;
}

int
runCoExplore(const CliArgs &a)
{
    Graph g = buildModel(a.model);
    AcceleratorConfig accel;
    CoccoFramework cocco(g, accel);
    GaOptions o;
    o.sampleBudget = a.samples;
    o.alpha = a.alpha;
    o.metric = a.metric;
    o.seed = a.seed;
    o.threads = a.threads;
    std::shared_ptr<EvalCache> cache = openCache(a);
    o.cacheEnabled = cache != nullptr;
    o.cache = cache;
    BufferStyle style = a.style == "separate" ? BufferStyle::Separate
                                              : BufferStyle::Shared;
    auto t0 = std::chrono::steady_clock::now();
    CoccoResult r = cocco.coExplore(style, o);
    double wall = secondsSince(t0);
    closeCache(a, cache);
    if (a.json) {
        std::printf("%s\n", resultToJson(g, r).c_str());
    } else {
        std::printf("%s: recommended buffer %s after %lld samples\n",
                    a.model.c_str(), r.buffer.str().c_str(),
                    static_cast<long long>(r.samples));
        printCost(g, r.cost, r.buffer, a.alpha, a.metric);
        if (cache)
            printCacheLine(r.cacheStats);
    }
    emitMetrics(a, "coexplore", wall, r.samples, r.objective,
                cache != nullptr, r.cacheStats);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs a = parse(argc, argv);

    if (a.command == "models") {
        for (const std::string &name : allModelNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (a.command == "describe") {
        Graph g = buildModel(a.model);
        std::printf("%s\n%s", g.str().c_str(),
                    computeStats(g).str().c_str());
        return 0;
    }
    if (a.command == "timeline") {
        Graph g = buildModel(a.model);
        AcceleratorConfig accel;
        CostModel model(g, accel);
        BufferConfig buf;
        buf.style = BufferStyle::Separate;
        buf.actBytes = 1024 * 1024;
        buf.weightBytes = 1152 * 1024;
        Partition p = greedyPartition(g, model, buf, a.metric);
        Timeline tl = buildTimeline(model, p, buf);
        std::printf("%s: greedy partition timeline\n%s", a.model.c_str(),
                    tl.gantt().c_str());
        return 0;
    }
    if (a.command == "dot") {
        Graph g = buildModel(a.model);
        if (a.runs > 0) {
            Partition p = Partition::fixedRuns(g, a.runs);
            p.canonicalize(g);
            std::printf("%s", toDot(g, p).c_str());
        } else {
            std::printf("%s", toDot(g).c_str());
        }
        return 0;
    }
    if (a.command == "partition")
        return runPartition(a);
    if (a.command == "coexplore")
        return runCoExplore(a);
    usage();
}
