/**
 * @file
 * Tests for the graph module: layer byte/MAC accounting, graph
 * construction invariants, and the DAG algorithms the partitioners
 * rely on (depths, connectivity, quotient checks, boundary sets).
 */

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/graph.h"

using namespace cocco;

namespace {

Layer
makeLayer(const char *name, LayerKind kind, int h, int w, int c, int k = 1,
          int s = 1)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** input -> a -> {b, c} -> d (diamond). */
Graph
diamond()
{
    Graph g("diamond");
    NodeId in =
        g.addNode(makeLayer("in", LayerKind::Input, 16, 16, 8));
    NodeId a =
        g.addNode(makeLayer("a", LayerKind::Conv, 16, 16, 8, 3, 1), {in});
    NodeId b =
        g.addNode(makeLayer("b", LayerKind::Conv, 16, 16, 8, 3, 1), {a});
    NodeId c =
        g.addNode(makeLayer("c", LayerKind::Conv, 16, 16, 8, 1, 1), {a});
    g.addNode(makeLayer("d", LayerKind::Eltwise, 16, 16, 8), {b, c});
    return g;
}

} // namespace

// --- Layer ---------------------------------------------------------------

TEST(Layer, ConvWeightBytes)
{
    Layer l = makeLayer("c", LayerKind::Conv, 8, 8, 16, 3, 1);
    EXPECT_EQ(l.weightBytes(4), 3 * 3 * 4 * 16);
}

TEST(Layer, DWConvWeightBytes)
{
    Layer l = makeLayer("dw", LayerKind::DWConv, 8, 8, 16, 3, 1);
    EXPECT_EQ(l.weightBytes(16), 3 * 3 * 16);
}

TEST(Layer, NoWeightKinds)
{
    for (LayerKind k : {LayerKind::Input, LayerKind::Pool,
                        LayerKind::Eltwise, LayerKind::Concat,
                        LayerKind::Matmul}) {
        Layer l = makeLayer("x", k, 8, 8, 16, 3, 1);
        EXPECT_EQ(l.weightBytes(16), 0) << layerKindName(k);
        EXPECT_FALSE(l.hasWeights()) << layerKindName(k);
    }
}

TEST(Layer, ConvMacs)
{
    Layer l = makeLayer("c", LayerKind::Conv, 8, 8, 16, 3, 1);
    EXPECT_EQ(l.macs(4), 8LL * 8 * 16 * 3 * 3 * 4);
}

TEST(Layer, DepthwiseMacs)
{
    Layer l = makeLayer("p", LayerKind::Pool, 8, 8, 16, 2, 2);
    EXPECT_EQ(l.macs(16), 8LL * 8 * 16 * 2 * 2);
}

TEST(Layer, MatmulMacsUsesHalfInputChannels)
{
    // Q (C=64) x K (C=64) -> seq x seq scores: contraction dim 64.
    Layer l = makeLayer("qk", LayerKind::Matmul, 128, 1, 128);
    EXPECT_EQ(l.macs(128), 128LL * 1 * 128 * 64);
}

TEST(Layer, InputAndConcatNoMacs)
{
    EXPECT_EQ(makeLayer("i", LayerKind::Input, 8, 8, 3).macs(0), 0);
    EXPECT_EQ(makeLayer("c", LayerKind::Concat, 8, 8, 32).macs(32), 0);
}

TEST(Layer, OutBytes)
{
    EXPECT_EQ(makeLayer("x", LayerKind::Conv, 4, 5, 6).outBytes(), 120);
}

TEST(Layer, KindNames)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv), "conv");
    EXPECT_STREQ(layerKindName(LayerKind::Input), "input");
    EXPECT_STREQ(layerKindName(LayerKind::Matmul), "matmul");
}

// --- Graph construction --------------------------------------------------

TEST(Graph, BasicTopology)
{
    Graph g = diamond();
    EXPECT_EQ(g.size(), 5);
    EXPECT_EQ(g.numEdges(), 5);
    EXPECT_EQ(g.inputs().size(), 1u);
    ASSERT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.outputs()[0], 4);
}

TEST(Graph, PredsAndSuccs)
{
    Graph g = diamond();
    EXPECT_EQ(g.preds(1), std::vector<NodeId>{0});
    EXPECT_EQ(g.succs(1), (std::vector<NodeId>{2, 3}));
    EXPECT_EQ(g.preds(4), (std::vector<NodeId>{2, 3}));
}

TEST(Graph, InChannelsSumsProducers)
{
    Graph g = diamond();
    EXPECT_EQ(g.inChannels(4), 16); // b (8) + c (8)
    EXPECT_EQ(g.inChannels(1), 8);
}

TEST(Graph, TotalsAccumulate)
{
    Graph g = diamond();
    int64_t w = 0, m = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
        w += g.weightBytes(v);
        m += g.macs(v);
    }
    EXPECT_EQ(g.totalWeightBytes(), w);
    EXPECT_EQ(g.totalMacs(), m);
    EXPECT_GT(w, 0);
    EXPECT_GT(m, 0);
}

TEST(Graph, IsInput)
{
    Graph g = diamond();
    EXPECT_TRUE(g.isInput(0));
    EXPECT_FALSE(g.isInput(1));
}

TEST(Graph, StrMentionsNodes)
{
    Graph g = diamond();
    std::string s = g.str();
    EXPECT_NE(s.find("diamond"), std::string::npos);
    EXPECT_NE(s.find("[  4]"), std::string::npos);
    EXPECT_NE(s.find("eltwise"), std::string::npos);
}

TEST(GraphDeath, ForwardReferenceRejected)
{
    Graph g("bad");
    EXPECT_EXIT(
        g.addNode(makeLayer("x", LayerKind::Conv, 4, 4, 4, 1, 1), {0}),
        ::testing::ExitedWithCode(1), "out of range");
}

TEST(GraphDeath, NonInputWithoutProducers)
{
    Graph g("bad");
    EXPECT_EXIT(g.addNode(makeLayer("x", LayerKind::Conv, 4, 4, 4, 1, 1)),
                ::testing::ExitedWithCode(1), "needs at least one producer");
}

TEST(GraphDeath, InputWithProducersRejected)
{
    Graph g("bad");
    g.addNode(makeLayer("in", LayerKind::Input, 4, 4, 4));
    EXPECT_EXIT(g.addNode(makeLayer("i2", LayerKind::Input, 4, 4, 4), {0}),
                ::testing::ExitedWithCode(1), "cannot have producers");
}

TEST(GraphDeath, NonPositiveShapeRejected)
{
    Graph g("bad");
    EXPECT_EXIT(g.addNode(makeLayer("in", LayerKind::Input, 0, 4, 4)),
                ::testing::ExitedWithCode(1), "non-positive");
}

// --- Algorithms ----------------------------------------------------------

TEST(Algorithms, TopoOrderIsIdentity)
{
    Graph g = diamond();
    std::vector<NodeId> order = topoOrder(g);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], static_cast<NodeId>(i));
}

TEST(Algorithms, NodeDepths)
{
    Graph g = diamond();
    std::vector<int> d = nodeDepths(g);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 1);
    EXPECT_EQ(d[2], 2);
    EXPECT_EQ(d[3], 2);
    EXPECT_EQ(d[4], 3);
}

TEST(Algorithms, DepthOrderIsMonotone)
{
    Graph g = diamond();
    std::vector<int> d = nodeDepths(g);
    std::vector<NodeId> order = depthOrder(g);
    for (size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(d[order[i - 1]], d[order[i]]);
}

TEST(Algorithms, WeakConnectivity)
{
    Graph g = diamond();
    EXPECT_TRUE(isWeaklyConnected(g, {1, 2, 3}));
    EXPECT_TRUE(isWeaklyConnected(g, {2, 3, 4}));
    EXPECT_FALSE(isWeaklyConnected(g, {2, 3})); // siblings, no edge
    EXPECT_TRUE(isWeaklyConnected(g, {2}));
    EXPECT_TRUE(isWeaklyConnected(g, {}));
}

TEST(Algorithms, WeakComponents)
{
    Graph g = diamond();
    auto comps = weakComponents(g, {2, 3});
    ASSERT_EQ(comps.size(), 2u);
    EXPECT_EQ(comps[0], std::vector<NodeId>{2});
    EXPECT_EQ(comps[1], std::vector<NodeId>{3});

    comps = weakComponents(g, {0, 1, 2, 3, 4});
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].size(), 5u);
}

TEST(Algorithms, QuotientPrecedence)
{
    Graph g = diamond();
    EXPECT_TRUE(quotientRespectsPrecedence(g, {0, 0, 1, 1, 2}));
    EXPECT_FALSE(quotientRespectsPrecedence(g, {1, 0, 0, 0, 0}));
    EXPECT_TRUE(quotientRespectsPrecedence(g, {0, 0, 0, 0, 0}));
}

TEST(Algorithms, QuotientAcyclicity)
{
    Graph g = diamond();
    // Blocks {0,1}, {2}, {3}, {4}: acyclic regardless of numbering.
    EXPECT_TRUE(quotientIsAcyclic(g, {0, 0, 7, 3, 9}));
    // a+d in one block, b in another: a->b->d makes a 2-cycle between
    // blocks.
    EXPECT_FALSE(quotientIsAcyclic(g, {0, 1, 2, 1, 1}));
}

TEST(Algorithms, BoundaryInputs)
{
    Graph g = diamond();
    EXPECT_EQ(boundaryInputs(g, {2, 3, 4}), std::vector<NodeId>{1});
    EXPECT_EQ(boundaryInputs(g, {1}), std::vector<NodeId>{0});
    EXPECT_TRUE(boundaryInputs(g, {0}).empty());
    EXPECT_EQ(boundaryInputs(g, {4}), (std::vector<NodeId>{2, 3}));
}

TEST(Algorithms, EscapingOutputs)
{
    Graph g = diamond();
    // a escapes {0,1} (consumed by b and c outside), and d is a model
    // output.
    EXPECT_EQ(escapingOutputs(g, {0, 1}), std::vector<NodeId>{1});
    EXPECT_EQ(escapingOutputs(g, {2, 3, 4}), std::vector<NodeId>{4});
    EXPECT_EQ(escapingOutputs(g, {1, 2}), (std::vector<NodeId>{1, 2}));
}
