/**
 * @file
 * Tests for the unified explorer API: the SearcherRegistry, the
 * declarative SearchSpec / CoccoFramework::explore path (bit-identical
 * parity with every legacy entry point at a fixed seed and thread
 * count, in both co-explore and partition-only modes), the
 * SearchObserver callback surface, cooperative cancellation, the
 * time/stall early-stop limits, and the JSON run-spec parser.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "core/cocco.h"
#include "core/serialize.h"
#include "graph/graph_json.h"
#include "util/json.h"

using namespace cocco;

namespace {

/** Small but non-trivial multi-branch workload. */
Graph
testGraph()
{
    return buildGoogleNet();
}

/** The standard fixed buffer of the partition studies. */
BufferConfig
fixedBuffer()
{
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 1024 * 1024;
    buf.weightBytes = 1152 * 1024;
    return buf;
}

/** A CI-sized spec for @p algo. */
SearchSpec
fastSpec(const std::string &algo, int64_t budget = 600)
{
    SearchSpec spec;
    spec.algo = algo;
    spec.eval.sampleBudget = budget;
    spec.eval.seed = 7;
    spec.ga.population = 30;
    spec.twoStep.population = 20;
    spec.twoStep.samplesPerCandidate = 150;
    spec.style = BufferStyle::Shared;
    return spec;
}

/** Strict result equality: the parity contract is bit-identical. */
void
expectIdentical(const SearchResult &a, const CoccoResult &b)
{
    EXPECT_EQ(a.bestCost, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.bestBuffer.totalBytes(), b.buffer.totalBytes());
    EXPECT_EQ(a.best.part.block, b.partition.block);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost);
    }
}

/** Counts callbacks and optionally cancels after N trace points. */
class CountingObserver : public SearchObserver
{
  public:
    void
    onTrace(const TracePoint &tp) override
    {
        ++traces;
        lastSample = tp.sample;
        if (cancelAfter > 0 && traces >= cancelAfter)
            cancel.store(true);
    }

    void
    onImprove(const TracePoint &tp) override
    {
        ++improves;
        EXPECT_LE(tp.bestCost, lastBest);
        lastBest = tp.bestCost;
    }

    void
    onBatchDone(int64_t samples, double bestCost) override
    {
        ++batches;
        EXPECT_EQ(samples, lastSample);
        (void)bestCost;
    }

    bool cancelled() override { return cancel.load(); }

    int64_t traces = 0;
    int64_t improves = 0;
    int64_t batches = 0;
    int64_t lastSample = 0;
    double lastBest = kInfeasiblePenalty;
    int64_t cancelAfter = 0;
    std::atomic<bool> cancel{false};
};

} // namespace

// --- Registry ---------------------------------------------------------------

TEST(Registry, BuiltinsRegistered)
{
    const SearcherRegistry &reg = SearcherRegistry::instance();
    std::vector<std::string> keys = reg.keys();
    ASSERT_EQ(keys.size(), 6u);
    EXPECT_EQ(keys[0], "ga");
    EXPECT_EQ(keys[1], "sa");
    EXPECT_EQ(keys[2], "ts-random");
    EXPECT_EQ(keys[3], "ts-grid");
    EXPECT_EQ(keys[4], "greedy-place");
    EXPECT_EQ(keys[5], "portfolio");
    for (const std::string &k : keys) {
        EXPECT_TRUE(reg.contains(k));
        EXPECT_FALSE(reg.summary(k).empty());
    }
    EXPECT_FALSE(reg.contains("annealing"));
}

TEST(Registry, SearcherSelfDescribes)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    for (const std::string &k : SearcherRegistry::instance().keys()) {
        auto s = SearcherRegistry::instance().make(k, model, space,
                                                   fastSpec(k));
        EXPECT_EQ(s->name(), k);
        EXPECT_FALSE(s->describe().empty());
    }
}

TEST(RegistryDeath, UnknownKeyIsFatal)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    EXPECT_EXIT(SearcherRegistry::instance().make("nope", model, space,
                                                  fastSpec("nope")),
                ::testing::ExitedWithCode(1), "unknown search algorithm");
}

TEST(RegistryDeath, ExploreRejectsUnknownAlgo)
{
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    SearchSpec spec = fastSpec("gradient-descent");
    EXPECT_EXIT(cocco.explore(spec), ::testing::ExitedWithCode(1),
                "unknown search algorithm");
}

// --- explore() parity with the legacy entry points --------------------------

TEST(ExploreParity, GaCoExplore)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("ga");

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult legacy =
        GeneticSearch(legacy_model, space, gaOptions(spec)).run();

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, GaPartitionOnly)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("ga");
    spec.eval.coExplore = false;
    spec.fixedBuffer = fixedBuffer();

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::fixedSpace(spec.fixedBuffer);
    SearchResult legacy =
        GeneticSearch(legacy_model, space, gaOptions(spec)).run();

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, GaSeedPartitionsMatchLegacyWrapper)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("ga");
    spec.eval.coExplore = false;
    spec.fixedBuffer = fixedBuffer();

    CoccoFramework a(g, accel);
    CoccoFramework b(g, accel);
    Partition runs = Partition::fixedRuns(g, 4);
    runs.canonicalize(g);

    CoccoResult via_spec = a.explore(spec, {runs});
    CoccoResult via_wrapper =
        b.partitionOnly(spec.fixedBuffer, gaOptions(spec), {runs});
    EXPECT_EQ(via_spec.objective, via_wrapper.objective);
    EXPECT_EQ(via_spec.samples, via_wrapper.samples);
    EXPECT_EQ(via_spec.partition.block, via_wrapper.partition.block);
}

TEST(ExploreParity, SaCoExplore)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("sa");
    spec.sa.neighborBatch = 4;

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult legacy =
        simulatedAnnealing(legacy_model, space, saOptions(spec));

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, SaPartitionOnly)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("sa");
    spec.eval.coExplore = false;
    spec.fixedBuffer = fixedBuffer();

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::fixedSpace(spec.fixedBuffer);
    SearchResult legacy =
        simulatedAnnealing(legacy_model, space, saOptions(spec));

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, TwoStepRandomCoExplore)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("ts-random");

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult legacy =
        twoStepRandom(legacy_model, space, twoStepOptions(spec));

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, TwoStepGridCoExplore)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec spec = fastSpec("ts-grid");

    CostModel legacy_model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchResult legacy =
        twoStepGrid(legacy_model, space, twoStepOptions(spec));

    CoccoFramework cocco(g, accel);
    expectIdentical(legacy, cocco.explore(spec));
}

TEST(ExploreParity, TwoStepPartitionOnlyCollapsesToFixedBuffer)
{
    // Partition-only two-step: the capacity sweep degenerates to the
    // frozen buffer with the full budget, scored by the raw metric.
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    for (const char *algo : {"ts-random", "ts-grid"}) {
        SearchSpec spec = fastSpec(algo);
        spec.eval.coExplore = false;
        spec.fixedBuffer = fixedBuffer();
        CoccoResult r = cocco.explore(spec);
        EXPECT_GT(r.samples, 0);
        EXPECT_EQ(r.buffer.totalBytes(), spec.fixedBuffer.totalBytes());
        EXPECT_LT(r.objective, kInfeasiblePenalty);
        // Formula 1: the objective is the raw metric, not offset by
        // the buffer capacity.
        EXPECT_EQ(r.objective, r.cost.metricValue(spec.eval.metric));
    }
}

TEST(ExploreParity, ThreadCountInvariant)
{
    Graph g = testGraph();
    AcceleratorConfig accel;
    SearchSpec serial = fastSpec("ga", 300);
    SearchSpec parallel = serial;
    parallel.eval.threads = 4;

    CoccoFramework a(g, accel);
    CoccoFramework b(g, accel);
    CoccoResult r1 = a.explore(serial);
    CoccoResult r4 = b.explore(parallel);
    EXPECT_EQ(r1.objective, r4.objective);
    EXPECT_EQ(r1.partition.block, r4.partition.block);
}

// --- Observer callbacks ------------------------------------------------------

TEST(Observer, CallbacksMirrorTheTrace)
{
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    CountingObserver obs;
    SearchSpec spec = fastSpec("ga", 300);
    spec.eval.observer = &obs;

    CoccoResult r = cocco.explore(spec);
    EXPECT_EQ(obs.traces, r.samples);
    EXPECT_EQ(obs.traces, static_cast<int64_t>(r.trace.size()));
    EXPECT_GE(obs.improves, 1);      // the first sample always improves
    EXPECT_LE(obs.improves, obs.traces);
    EXPECT_GE(obs.batches, 2);       // init + at least one generation
    EXPECT_EQ(obs.lastBest, r.objective);
    EXPECT_EQ(r.stop, StopReason::BudgetExhausted);
}

TEST(Observer, SameResultWithAndWithoutObserver)
{
    Graph g = testGraph();
    CoccoFramework a(g, AcceleratorConfig{});
    CoccoFramework b(g, AcceleratorConfig{});
    SearchSpec plain = fastSpec("sa", 300);
    CountingObserver obs;
    SearchSpec observed = plain;
    observed.eval.observer = &obs;

    CoccoResult r1 = a.explore(plain);
    CoccoResult r2 = b.explore(observed);
    EXPECT_EQ(r1.objective, r2.objective);
    EXPECT_EQ(r1.samples, r2.samples);
    EXPECT_EQ(obs.traces, r2.samples);
}

TEST(Observer, TwoStepReportsGlobalSamples)
{
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    CountingObserver obs;
    SearchSpec spec = fastSpec("ts-grid");
    spec.eval.observer = &obs;

    CoccoResult r = cocco.explore(spec);
    EXPECT_EQ(obs.traces, r.samples);
    EXPECT_EQ(obs.lastSample, r.samples);
    EXPECT_GE(obs.batches, 1); // one per candidate capacity
}

// --- Cancellation and early stop ---------------------------------------------

TEST(EarlyStop, ObserverCancellationStopsTheRun)
{
    Graph g = testGraph();
    for (const char *algo : {"ga", "sa", "ts-grid"}) {
        CoccoFramework cocco(g, AcceleratorConfig{});
        CountingObserver obs;
        obs.cancelAfter = 60;
        SearchSpec spec = fastSpec(algo, 2000);
        spec.eval.observer = &obs;

        CoccoResult r = cocco.explore(spec);
        EXPECT_LT(r.samples, 2000) << algo;
        EXPECT_EQ(r.stop, StopReason::Cancelled) << algo;
    }
}

TEST(EarlyStop, CancelledRunKeepsCompletedBatches)
{
    Graph g = testGraph();
    CoccoFramework a(g, AcceleratorConfig{});
    CoccoFramework b(g, AcceleratorConfig{});

    CoccoResult full = a.explore(fastSpec("ga", 600));

    CountingObserver obs;
    obs.cancelAfter = 45; // mid second batch (population 30)
    SearchSpec spec = fastSpec("ga", 600);
    spec.eval.observer = &obs;
    CoccoResult cut = b.explore(spec);

    // The cancelled run's trace is a prefix of the full run's.
    ASSERT_GT(cut.samples, 0);
    ASSERT_LE(cut.samples, full.samples);
    for (size_t i = 0; i < cut.trace.size(); ++i)
        EXPECT_EQ(cut.trace[i].bestCost, full.trace[i].bestCost);
}

TEST(EarlyStop, StallLimitTrips)
{
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    SearchSpec spec = fastSpec("ga", 50000);
    spec.eval.stallLimit = 40;

    CoccoResult r = cocco.explore(spec);
    EXPECT_LT(r.samples, 50000);
    EXPECT_EQ(r.stop, StopReason::Stalled);
}

TEST(EarlyStop, TimeLimitTrips)
{
    Graph g = testGraph();
    CoccoFramework cocco(g, AcceleratorConfig{});
    SearchSpec spec = fastSpec("ga", 50000);
    spec.eval.timeLimitSec = 1e-6; // already elapsed by the first check

    CoccoResult r = cocco.explore(spec);
    EXPECT_LT(r.samples, 50000);
    EXPECT_EQ(r.stop, StopReason::TimeLimit);
}

TEST(EarlyStop, StopReasonNames)
{
    EXPECT_STREQ(stopReasonName(StopReason::BudgetExhausted), "budget");
    EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
    EXPECT_STREQ(stopReasonName(StopReason::TimeLimit), "time-limit");
    EXPECT_STREQ(stopReasonName(StopReason::Stalled), "stalled");
}

// --- Option assembly ---------------------------------------------------------

TEST(SpecOptions, AssemblyIsLossless)
{
    SearchSpec spec;
    spec.eval.sampleBudget = 1234;
    spec.eval.seed = 42;
    spec.eval.alpha = 0.01;
    spec.eval.metric = Metric::EMA;
    spec.eval.threads = 3;
    spec.eval.cacheEnabled = false;
    spec.ga.population = 77;
    spec.ga.elite = 5;
    spec.sa.neighborBatch = 9;
    spec.twoStep.samplesPerCandidate = 321;

    GaOptions ga = gaOptions(spec);
    EXPECT_EQ(ga.sampleBudget, 1234);
    EXPECT_EQ(ga.seed, 42u);
    EXPECT_EQ(ga.population, 77);
    EXPECT_EQ(ga.elite, 5);
    EXPECT_FALSE(ga.cacheEnabled);

    SaOptions sa = saOptions(spec);
    EXPECT_EQ(sa.sampleBudget, 1234);
    EXPECT_EQ(sa.neighborBatch, 9);
    EXPECT_EQ(sa.metric, Metric::EMA);

    TwoStepOptions ts = twoStepOptions(spec);
    EXPECT_EQ(ts.samplesPerCandidate, 321);
    EXPECT_EQ(ts.threads, 3);
    EXPECT_EQ(ts.alpha, 0.01);
}

// --- JSON run-spec parsing ---------------------------------------------------

TEST(SpecJson, FullDocumentRoundTrip)
{
    const char *doc = R"({
        "model": "GoogleNet",
        "algo": "sa",
        "mode": "partition",
        "style": "separate",
        "buffer": {"style": "separate", "actBytes": 524288,
                   "weightBytes": 262144},
        "samples": 900,
        "seed": 11,
        "alpha": 0.004,
        "metric": "ema",
        "threads": 2,
        "cacheEnabled": false,
        "cacheCapacity": 4096,
        "timeLimitSec": 30.5,
        "stallLimit": 200,
        "ga": {"population": 64, "crossoverRate": 0.7, "elite": 3},
        "sa": {"neighborBatch": 8, "tempStartFrac": 0.2},
        "twoStep": {"samplesPerCandidate": 100, "population": 16}
    })";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, &v, &err)) << err;

    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(v, &spec, &err)) << err;
    EXPECT_EQ(spec.workload.model, "GoogleNet"); // "model" shorthand
    EXPECT_EQ(spec.algo, "sa");
    EXPECT_FALSE(spec.eval.coExplore);
    EXPECT_EQ(spec.style, BufferStyle::Separate);
    EXPECT_EQ(spec.fixedBuffer.actBytes, 524288);
    EXPECT_EQ(spec.fixedBuffer.weightBytes, 262144);
    EXPECT_EQ(spec.eval.sampleBudget, 900);
    EXPECT_EQ(spec.eval.seed, 11u);
    EXPECT_DOUBLE_EQ(spec.eval.alpha, 0.004);
    EXPECT_EQ(spec.eval.metric, Metric::EMA);
    EXPECT_EQ(spec.eval.threads, 2);
    EXPECT_FALSE(spec.eval.cacheEnabled);
    EXPECT_EQ(spec.eval.cacheCapacity, 4096u);
    EXPECT_DOUBLE_EQ(spec.eval.timeLimitSec, 30.5);
    EXPECT_EQ(spec.eval.stallLimit, 200);
    EXPECT_EQ(spec.ga.population, 64);
    EXPECT_DOUBLE_EQ(spec.ga.crossoverRate, 0.7);
    EXPECT_EQ(spec.ga.elite, 3);
    EXPECT_EQ(spec.sa.neighborBatch, 8);
    EXPECT_DOUBLE_EQ(spec.sa.tempStartFrac, 0.2);
    EXPECT_EQ(spec.twoStep.samplesPerCandidate, 100);
    EXPECT_EQ(spec.twoStep.population, 16);
}

TEST(SpecJson, DefaultsSurviveAnEmptySpec)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson("{}", &v, &err));
    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(v, &spec, &err));
    EXPECT_EQ(spec.algo, "ga");
    EXPECT_TRUE(spec.eval.coExplore);
    EXPECT_EQ(spec.eval.sampleBudget, 50000);
}

TEST(SpecJson, UnknownKeysAreErrors)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(R"({"samplez": 10})", &v, &err));
    SearchSpec spec;
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("samplez"), std::string::npos);

    ASSERT_TRUE(parseJson(R"({"ga": {"pop": 10}})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("pop"), std::string::npos);
}

TEST(SpecJson, OutOfRangeIntegersAreErrorsNotCrashes)
{
    JsonValue v;
    std::string err;
    SearchSpec spec;
    // Would truncate into a bogus thread count without the range check.
    ASSERT_TRUE(parseJson(R"({"threads": 5000000000})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    ASSERT_TRUE(parseJson(R"({"cacheCapacity": -1})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    // Beyond the exact-double range: rejected, not UB-cast.
    ASSERT_TRUE(parseJson(R"({"samples": 1e300})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("integer"), std::string::npos) << err;
}

TEST(SpecJson, TypeMismatchesAreErrors)
{
    JsonValue v;
    std::string err;
    SearchSpec spec;
    ASSERT_TRUE(parseJson(R"({"samples": "many"})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("samples"), std::string::npos);

    ASSERT_TRUE(parseJson(R"({"mode": "sideways"})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("mode"), std::string::npos);

    ASSERT_TRUE(parseJson(R"({"metric": "joules"})", &v, &err));
    EXPECT_FALSE(searchSpecFromJson(v, &spec, &err));
    EXPECT_NE(err.find("metric"), std::string::npos);
}

TEST(SpecJson, WorkloadAndPlatformSections)
{
    const char *doc = R"({
        "workload": {"model": "RandWire-A",
                     "params": {"seed": 5, "batch": 2}},
        "platform": "edge",
        "algo": "ga", "samples": 100
    })";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, &v, &err)) << err;
    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(v, &spec, &err)) << err;
    EXPECT_EQ(spec.workload.model, "RandWire-A");
    EXPECT_EQ(spec.workload.params.seed, 5u);
    EXPECT_EQ(spec.workload.params.batch, 2);
    EXPECT_EQ(spec.platform.preset, "edge");

    // File workload + inline platform with a preset base.
    const char *doc2 = R"({
        "workload": {"file": "net.json"},
        "platform": {"base": "simba", "cores": 4},
        "samples": 100
    })";
    ASSERT_TRUE(parseJson(doc2, &v, &err)) << err;
    SearchSpec spec2;
    ASSERT_TRUE(searchSpecFromJson(v, &spec2, &err)) << err;
    EXPECT_EQ(spec2.workload.file, "net.json");
    EXPECT_TRUE(spec2.platform.inlineConfig);
    EXPECT_EQ(spec2.platform.config.cores, 4);
    EXPECT_EQ(spec2.platform.config.peRows, 4);

    // Platform file reference.
    const char *doc3 = R"({"platform": {"file": "p.json"}})";
    ASSERT_TRUE(parseJson(doc3, &v, &err)) << err;
    SearchSpec spec3;
    ASSERT_TRUE(searchSpecFromJson(v, &spec3, &err)) << err;
    EXPECT_EQ(spec3.platform.file, "p.json");
    EXPECT_FALSE(spec3.platform.inlineConfig);
}

TEST(SpecJson, WorkloadAndPlatformRejections)
{
    auto reject = [](const char *text, const char *needle) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(text, &v, &err)) << err;
        SearchSpec spec;
        EXPECT_FALSE(searchSpecFromJson(v, &spec, &err)) << text;
        EXPECT_NE(err.find(needle), std::string::npos) << err;
    };
    // Two workload addresses at once.
    reject(R"({"model": "VGG16", "workload": {"model": "GPT"}})",
           "not both");
    reject(R"({"workload": {"model": "VGG16", "file": "g.json"}})",
           "not both");
    // Malformed sections.
    reject(R"({"workload": {"modle": "VGG16"}})", "modle");
    reject(R"({"workload": {"params": {"widthMult": -1}}})",
           "widthMult");
    reject(R"({"platform": 7})", "platform");
    reject(R"({"platform": {"file": "p.json", "cores": 2}})",
           "other keys");
    reject(R"({"platform": {"coores": 2}})", "coores");
}

// --- The self-contained run contract ----------------------------------------

TEST(SelfContainedSpec, JsonSpecMatchesCompiledInConfiguration)
{
    // Acceptance criterion: one JSON document naming a registered
    // model with non-default ModelParams and a named platform preset
    // reproduces the equivalent compiled-in run bit-identically.
    const char *doc = R"({
        "workload": {"model": "Transformer",
                     "params": {"seqLen": 128, "depth": 2}},
        "platform": "edge",
        "algo": "ga", "samples": 300, "seed": 7,
        "ga": {"population": 30}
    })";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, &v, &err)) << err;
    SearchSpec spec;
    ASSERT_TRUE(searchSpecFromJson(v, &spec, &err)) << err;

    Graph spec_graph;
    ASSERT_TRUE(resolveWorkload(spec.workload, &spec_graph, &err)) << err;
    AcceleratorConfig spec_accel;
    ASSERT_TRUE(resolvePlatform(spec.platform, &spec_accel, &err)) << err;

    // The compiled-in equivalent, assembled by hand.
    ModelParams params;
    params.seqLen = 128;
    params.depth = 2;
    Graph cpp_graph = buildModel("Transformer", params);
    AcceleratorConfig cpp_accel = platformPreset("edge");
    SearchSpec cpp_spec = fastSpec("ga", 300);

    CoccoFramework via_spec(spec_graph, spec_accel);
    CoccoFramework via_cpp(cpp_graph, cpp_accel);
    CoccoResult a = via_spec.explore(spec);
    CoccoResult b = via_cpp.explore(cpp_spec);

    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.partition.block, b.partition.block);
    EXPECT_EQ(a.buffer.totalBytes(), b.buffer.totalBytes());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost);

    // A JSON-imported copy of the workload gives the same result.
    JsonValue graph_doc;
    ASSERT_TRUE(parseJson(graphToJson(spec_graph), &graph_doc, &err))
        << err;
    Graph imported;
    ASSERT_TRUE(graphFromJson(graph_doc, &imported, &err)) << err;
    CoccoFramework via_import(imported, spec_accel);
    CoccoResult c = via_import.explore(spec);
    EXPECT_EQ(c.objective, a.objective);
    EXPECT_EQ(c.samples, a.samples);
    EXPECT_EQ(c.partition.block, a.partition.block);
}

TEST(SelfContainedSpec, WorkloadResolutionErrors)
{
    WorkloadSpec w;
    Graph g;
    std::string err;
    EXPECT_FALSE(resolveWorkload(w, &g, &err));
    EXPECT_NE(err.find("required"), std::string::npos);

    w.model = "NotANet";
    err.clear();
    EXPECT_FALSE(resolveWorkload(w, &g, &err));
    EXPECT_NE(err.find("unknown model"), std::string::npos);
    EXPECT_NE(err.find("VGG16"), std::string::npos); // names the options

    w.model.clear();
    w.file = "/nonexistent/net.json";
    err.clear();
    EXPECT_FALSE(resolveWorkload(w, &g, &err));
    EXPECT_NE(err.find("cannot read"), std::string::npos);

    // Shape params cannot silently be dropped on a file workload
    // (batch is the one param that still applies).
    w.params.widthMult = 2.0;
    err.clear();
    EXPECT_FALSE(resolveWorkload(w, &g, &err));
    EXPECT_NE(err.find("do not apply"), std::string::npos);
}

TEST(SpecJson, ParsedSpecRunsIdenticallyToTheSameSpecInCpp)
{
    const char *doc = R"({
        "algo": "ga", "samples": 300, "seed": 7,
        "ga": {"population": 30}
    })";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, &v, &err));
    SearchSpec from_json;
    ASSERT_TRUE(searchSpecFromJson(v, &from_json, &err));

    Graph g = testGraph();
    CoccoFramework a(g, AcceleratorConfig{});
    CoccoFramework b(g, AcceleratorConfig{});
    CoccoResult r1 = a.explore(from_json);
    CoccoResult r2 = b.explore(fastSpec("ga", 300));
    EXPECT_EQ(r1.objective, r2.objective);
    EXPECT_EQ(r1.samples, r2.samples);
    EXPECT_EQ(r1.partition.block, r2.partition.block);
}
