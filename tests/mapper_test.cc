/**
 * @file
 * Tests for the single-layer spatial mapper: utilization bounds,
 * cycle lower bounds, the dense/depth-wise distinction, and the
 * "aligned channels reach full utilization" property the platform's
 * NWHC8c layout is designed for.
 */

#include <gtest/gtest.h>

#include "models/models.h"
#include "sim/mapper.h"

using namespace cocco;

namespace {

Graph
singleLayer(LayerKind kind, int h, int w, int cin, int cout, int k, int s)
{
    Graph g("single");
    Layer in;
    in.name = "in";
    in.kind = LayerKind::Input;
    in.outH = h * s;
    in.outW = w * s;
    in.outC = cin;
    g.addNode(in);

    Layer l;
    l.name = "l";
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = cout;
    l.kernel = k;
    l.stride = s;
    g.addNode(l, {0});
    return g;
}

} // namespace

TEST(Mapper, AlignedDenseConvReachesFullUtilization)
{
    // 64 in, 64 out channels, large spatial: perfectly tileable.
    Graph g = singleLayer(LayerKind::Conv, 32, 32, 64, 64, 3, 1);
    LayerMapping m = mapLayer(g, 1, {});
    EXPECT_DOUBLE_EQ(m.utilization, 1.0);
    // cycles x 1024 MACs == real MACs.
    EXPECT_EQ(m.cycles * 1024, g.macs(1));
}

TEST(Mapper, ThreeChannelInputUnderutilizes)
{
    // The classic first conv: Cin = 3 pads to 8.
    Graph g = singleLayer(LayerKind::Conv, 112, 112, 3, 64, 7, 2);
    LayerMapping m = mapLayer(g, 1, {});
    EXPECT_LT(m.utilization, 0.5);
    EXPECT_NEAR(m.utilization, 3.0 / 8.0, 0.05);
}

TEST(Mapper, CyclesLowerBoundedByPeak)
{
    for (const std::string &name : {std::string("ResNet50"),
                                    std::string("GoogleNet")}) {
        Graph g = buildModel(name);
        AcceleratorConfig accel;
        for (NodeId v = 0; v < g.size(); ++v) {
            LayerMapping m = mapLayer(g, v, accel);
            EXPECT_GE(m.cycles * accel.macsPerCycle(), g.macs(v))
                << name << " node " << v;
            EXPECT_GE(m.utilization, 0.0);
            EXPECT_LE(m.utilization, 1.0);
        }
    }
}

TEST(Mapper, NoComputeKindsAreFree)
{
    Graph g("free");
    Layer in;
    in.name = "in";
    in.kind = LayerKind::Input;
    in.outH = 8;
    in.outW = 8;
    in.outC = 16;
    g.addNode(in);
    LayerMapping m = mapLayer(g, 0, {});
    EXPECT_EQ(m.cycles, 0);
    EXPECT_DOUBLE_EQ(m.utilization, 1.0);
}

TEST(Mapper, DepthwiseCannotUseChannelContraction)
{
    // Same shape, dense vs depth-wise: DW does C x F^2 x HW MACs but
    // cannot contract, so its cycles/MAC ratio is worse.
    Graph dense = singleLayer(LayerKind::Conv, 32, 32, 64, 64, 3, 1);
    Graph dw = singleLayer(LayerKind::DWConv, 32, 32, 64, 64, 3, 1);
    LayerMapping md = mapLayer(dense, 1, {});
    LayerMapping mw = mapLayer(dw, 1, {});
    double dense_cpm = static_cast<double>(md.cycles) / dense.macs(1);
    double dw_cpm = static_cast<double>(mw.cycles) / dw.macs(1);
    EXPECT_GT(dw_cpm, dense_cpm);
}

TEST(Mapper, FcLayerMapsOntoChannels)
{
    // 1x1 spatial: all parallelism must come from channels.
    Graph g = singleLayer(LayerKind::Conv, 1, 1, 2048, 1000, 1, 1);
    LayerMapping m = mapLayer(g, 1, {});
    // rows/cols should both land on channel dims, not spatial.
    EXPECT_NE(m.rows, MapDim::Spatial);
    EXPECT_NE(m.cols, MapDim::Spatial);
    EXPECT_GT(m.utilization, 0.5);
}

TEST(Mapper, MatmulUsesHalvedContraction)
{
    Graph g("mm");
    Layer a;
    a.name = "a";
    a.kind = LayerKind::Input;
    a.outH = 128;
    a.outW = 1;
    a.outC = 64;
    g.addNode(a);
    Layer b = a;
    b.name = "b";
    g.addNode(b);
    Layer mm;
    mm.name = "mm";
    mm.kind = LayerKind::Matmul;
    mm.outH = 128;
    mm.outW = 1;
    mm.outC = 128;
    g.addNode(mm, {0, 1});

    AcceleratorConfig accel;
    LayerMapping m = mapLayer(g, 2, accel);
    EXPECT_GE(m.cycles * accel.macsPerCycle(), g.macs(2));
    EXPECT_GT(m.utilization, 0.25);
}

TEST(Mapper, MappedCyclesSumsNodes)
{
    Graph g = buildGoogleNet();
    AcceleratorConfig accel;
    std::vector<NodeId> all;
    int64_t sum = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
        all.push_back(v);
        sum += mapLayer(g, v, accel).cycles;
    }
    EXPECT_EQ(mappedCycles(g, all, accel), sum);
}

TEST(Mapper, StrRendering)
{
    Graph g = singleLayer(LayerKind::Conv, 32, 32, 64, 64, 3, 1);
    LayerMapping m = mapLayer(g, 1, {});
    std::string s = m.str();
    EXPECT_NE(s.find("rows="), std::string::npos);
    EXPECT_NE(s.find("util="), std::string::npos);
    EXPECT_STREQ(mapDimName(MapDim::InputChannels), "IC");
    EXPECT_STREQ(mapDimName(MapDim::OutputChannels), "OC");
    EXPECT_STREQ(mapDimName(MapDim::Spatial), "SP");
}

/** Utilization over a channel sweep: multiples of 8 are efficient. */
class ChannelSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ChannelSweep, UtilizationTracksAlignment)
{
    int c = GetParam();
    Graph g = singleLayer(LayerKind::Conv, 64, 64, c, 64, 3, 1);
    LayerMapping m = mapLayer(g, 1, {});
    // Input channels pad to the next multiple of 8.
    double expected = static_cast<double>(c) / ((c + 7) / 8 * 8);
    EXPECT_NEAR(m.utilization, expected, 0.15);
    if (c % 8 == 0) {
        EXPECT_GT(m.utilization, 0.9);
    }
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(3, 8, 16, 24, 30, 64, 100, 128));
