/**
 * @file
 * Tests for the elementary-operation schedule generator against the
 * paper's Figure 6 snapshot, plus the data-dependency invariant: a
 * consumer's input requirement is always resident in its producers'
 * windows when it updates.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tileflow/schedule.h"
#include "tileflow/scheme.h"

using namespace cocco;

namespace {

Layer
layer1d(const char *name, LayerKind kind, int h, int c, int k, int s)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = 1;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** The Figure 5/6 example graph (see tileflow_test.cc). */
Graph
paperExample()
{
    Graph g("fig6");
    g.addNode(layer1d("in_m2", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("in_m1", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("n0", LayerKind::Conv, 32, 1, 3, 2), {0});
    g.addNode(layer1d("n1", LayerKind::Conv, 64, 1, 3, 1), {0, 1});
    g.addNode(layer1d("n2", LayerKind::Conv, 64, 1, 1, 1), {1});
    return g;
}

/** Last resident window of @p node in a schedule. */
std::pair<int, int>
windowOf(const ElementarySchedule &sched, NodeId node)
{
    std::pair<int, int> out{-1, -1};
    for (const UpdateStep &s : sched.steps)
        if (s.node == node)
            out = {s.lo, s.hi};
    return out;
}

} // namespace

class ScheduleFigure6 : public ::testing::Test
{
  protected:
    Graph g_ = paperExample();
    ExecutionScheme s_ = deriveConsumptionScheme(g_, {2, 3, 4}, 2);
};

TEST_F(ScheduleFigure6, StepCountMatchesUpdNums)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // upd_num = {1, 2, 1, 2, 2} -> 8 updates per elementary op.
    EXPECT_EQ(op.steps.size(), 8u);
}

TEST_F(ScheduleFigure6, FirstOperationFillsInitialWindows)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // Figure 6, first elementary operation: in(-2) holds [0:6);
    // in(-1) ends at [2:6) after its second update (Delta 2, x 4);
    // the outputs end at [2:4) after their second updates.
    EXPECT_EQ(windowOf(op, 0), (std::pair<int, int>{0, 6}));
    EXPECT_EQ(windowOf(op, 1), (std::pair<int, int>{2, 6}));
    EXPECT_EQ(windowOf(op, 2), (std::pair<int, int>{0, 2}));
    EXPECT_EQ(windowOf(op, 3), (std::pair<int, int>{2, 4}));
    EXPECT_EQ(windowOf(op, 4), (std::pair<int, int>{2, 4}));
}

TEST_F(ScheduleFigure6, WarmupWindowsStartAtZero)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // First update of every node starts at index 0.
    std::map<NodeId, int> first_lo;
    for (const UpdateStep &s : op.steps)
        if (!first_lo.count(s.node) && s.index == 0)
            first_lo[s.node] = s.lo;
    for (auto [node, lo] : first_lo)
        EXPECT_EQ(lo, 0) << "node " << node;
}

TEST_F(ScheduleFigure6, SecondOperationSlidesByUpdTimesDelta)
{
    ElementarySchedule op1 = buildElementarySchedule(g_, s_, 1);
    // in(-2): upd 1 x Delta 4 -> second op window [4:10).
    EXPECT_EQ(windowOf(op1, 0), (std::pair<int, int>{4, 10}));
    // in(-1): upd 2 x Delta 2 -> after op 1's two updates: [6:10).
    EXPECT_EQ(windowOf(op1, 1), (std::pair<int, int>{6, 10}));
    // n0 (output, upd 1 x Delta 2): [2:4).
    EXPECT_EQ(windowOf(op1, 2), (std::pair<int, int>{2, 4}));
    // n1, n2 (upd 2 x Delta 2): last update at [6:8).
    EXPECT_EQ(windowOf(op1, 3), (std::pair<int, int>{6, 8}));
    EXPECT_EQ(windowOf(op1, 4), (std::pair<int, int>{6, 8}));
}

TEST_F(ScheduleFigure6, OperationCountCoversOutputs)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // Largest output sweep: n1/n2 have H=64, x=2, advance 4/op ->
    // 1 + ceil(62/4) = 17 ops; n0 has H=32, advance 2 -> 16 ops.
    EXPECT_EQ(op.operationCount, 17);
}

TEST_F(ScheduleFigure6, ProducersUpdateBeforeConsumersPerSlot)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 3);
    std::map<NodeId, size_t> last_pos;
    for (size_t i = 0; i < op.steps.size(); ++i)
        last_pos[op.steps[i].node] = i;
    // First update of a consumer comes after the first update of each
    // producer (slot-0 ordering is topological).
    std::map<NodeId, size_t> first_pos;
    for (size_t i = 0; i < op.steps.size(); ++i)
        if (!first_pos.count(op.steps[i].node))
            first_pos[op.steps[i].node] = i;
    EXPECT_LT(first_pos[0], first_pos[2]);
    EXPECT_LT(first_pos[0], first_pos[3]);
    EXPECT_LT(first_pos[1], first_pos[3]);
    EXPECT_LT(first_pos[1], first_pos[4]);
}

TEST_F(ScheduleFigure6, ConsumerInputsResidentInProducerWindows)
{
    // The core correctness property: whenever a consumer performs its
    // j-th update in op k, the input rows it reads lie inside the
    // producer's resident window at that moment.
    for (int64_t k = 0; k < 17; ++k) {
        ElementarySchedule op = buildElementarySchedule(g_, s_, k);
        std::map<NodeId, std::pair<int, int>> window;
        // Seed with the windows left by the previous operation.
        if (k > 0) {
            ElementarySchedule prev = buildElementarySchedule(g_, s_, k - 1);
            for (const UpdateStep &s : prev.steps)
                window[s.node] = {s.lo, s.hi};
        }
        for (const UpdateStep &s : op.steps) {
            window[s.node] = {s.lo, s.hi};
            if (s.external)
                continue;
            const Layer &l = g_.layer(s.node);
            // Newest produced rows: the consumer's update advances by
            // deltaH; their input requirement:
            const NodeScheme *ns = s_.find(s.node);
            int new_lo = std::max(s.lo, s.hi - ns->deltaH);
            int need_lo = new_lo * l.stride;
            int need_hi = (s.hi - 1) * l.stride + l.kernel;
            for (NodeId u : g_.preds(s.node)) {
                auto it = window.find(u);
                ASSERT_NE(it, window.end());
                int have_hi = it->second.second;
                // Padding rows past the producer tensor are never
                // stored ("free from padding data"), so the
                // requirement clamps to the tensor extent.
                int clamped = std::min(need_hi, g_.layer(u).outH);
                EXPECT_LE(clamped, have_hi)
                    << "op " << k << " node " << s.node << " producer "
                    << u;
                (void)need_lo; // older rows may be consumed already
            }
        }
    }
}

TEST(Schedule, SingleLayerDegenerates)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    ElementarySchedule op = buildElementarySchedule(g, s, 0);
    EXPECT_EQ(op.steps.size(), 2u); // one update each
    EXPECT_EQ(op.operationCount, 4); // 16 rows / 4 per op
}

TEST(Schedule, StrRendersSteps)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    ElementarySchedule op = buildElementarySchedule(g, s, 0);
    std::string text = op.str(g);
    EXPECT_NE(text.find("in (ext)"), std::string::npos);
    EXPECT_NE(text.find("c upd#0"), std::string::npos);
}

TEST(ScheduleDeath, NegativeOpIndex)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    EXPECT_DEATH(buildElementarySchedule(g, s, -1), "negative");
}

/** Windows never exceed tensor extents across a whole sweep. */
class ScheduleSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ScheduleSweep, WindowsStayInBounds)
{
    Graph g = paperExample();
    ExecutionScheme s = deriveConsumptionScheme(g, {2, 3, 4}, 2);
    ElementarySchedule op = buildElementarySchedule(g, s, GetParam());
    for (const UpdateStep &st : op.steps) {
        EXPECT_GE(st.lo, 0);
        EXPECT_LT(st.lo, st.hi);
        EXPECT_LE(st.hi, g.layer(st.node).outH);
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, ScheduleSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 15, 16));
