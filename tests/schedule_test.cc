/**
 * @file
 * Tests for the elementary-operation schedule generator against the
 * paper's Figure 6 snapshot, plus the data-dependency invariant: a
 * consumer's input requirement is always resident in its producers'
 * windows when it updates.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tileflow/schedule.h"
#include "tileflow/scheme.h"

using namespace cocco;

namespace {

Layer
layer1d(const char *name, LayerKind kind, int h, int c, int k, int s)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = 1;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/** The Figure 5/6 example graph (see tileflow_test.cc). */
Graph
paperExample()
{
    Graph g("fig6");
    g.addNode(layer1d("in_m2", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("in_m1", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("n0", LayerKind::Conv, 32, 1, 3, 2), {0});
    g.addNode(layer1d("n1", LayerKind::Conv, 64, 1, 3, 1), {0, 1});
    g.addNode(layer1d("n2", LayerKind::Conv, 64, 1, 1, 1), {1});
    return g;
}

/** Last resident window of @p node in a schedule. */
std::pair<int, int>
windowOf(const ElementarySchedule &sched, NodeId node)
{
    std::pair<int, int> out{-1, -1};
    for (const UpdateStep &s : sched.steps)
        if (s.node == node)
            out = {s.lo, s.hi};
    return out;
}

} // namespace

class ScheduleFigure6 : public ::testing::Test
{
  protected:
    Graph g_ = paperExample();
    ExecutionScheme s_ = deriveConsumptionScheme(g_, {2, 3, 4}, 2);
};

TEST_F(ScheduleFigure6, StepCountMatchesUpdNums)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // upd_num = {1, 2, 1, 2, 2} -> 8 updates per elementary op.
    EXPECT_EQ(op.steps.size(), 8u);
}

TEST_F(ScheduleFigure6, FirstOperationFillsInitialWindows)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // Figure 6, first elementary operation: in(-2) holds [0:6);
    // in(-1) ends at [2:6) after its second update (Delta 2, x 4);
    // the outputs end at [2:4) after their second updates.
    EXPECT_EQ(windowOf(op, 0), (std::pair<int, int>{0, 6}));
    EXPECT_EQ(windowOf(op, 1), (std::pair<int, int>{2, 6}));
    EXPECT_EQ(windowOf(op, 2), (std::pair<int, int>{0, 2}));
    EXPECT_EQ(windowOf(op, 3), (std::pair<int, int>{2, 4}));
    EXPECT_EQ(windowOf(op, 4), (std::pair<int, int>{2, 4}));
}

TEST_F(ScheduleFigure6, WarmupWindowsStartAtZero)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // First update of every node starts at index 0.
    std::map<NodeId, int> first_lo;
    for (const UpdateStep &s : op.steps)
        if (!first_lo.count(s.node) && s.index == 0)
            first_lo[s.node] = s.lo;
    for (auto [node, lo] : first_lo)
        EXPECT_EQ(lo, 0) << "node " << node;
}

TEST_F(ScheduleFigure6, SecondOperationSlidesByUpdTimesDelta)
{
    ElementarySchedule op1 = buildElementarySchedule(g_, s_, 1);
    // in(-2): upd 1 x Delta 4 -> second op window [4:10).
    EXPECT_EQ(windowOf(op1, 0), (std::pair<int, int>{4, 10}));
    // in(-1): upd 2 x Delta 2 -> after op 1's two updates: [6:10).
    EXPECT_EQ(windowOf(op1, 1), (std::pair<int, int>{6, 10}));
    // n0 (output, upd 1 x Delta 2): [2:4).
    EXPECT_EQ(windowOf(op1, 2), (std::pair<int, int>{2, 4}));
    // n1, n2 (upd 2 x Delta 2): last update at [6:8).
    EXPECT_EQ(windowOf(op1, 3), (std::pair<int, int>{6, 8}));
    EXPECT_EQ(windowOf(op1, 4), (std::pair<int, int>{6, 8}));
}

TEST_F(ScheduleFigure6, OperationCountCoversOutputs)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 0);
    // Largest output sweep: n1/n2 have H=64, x=2, advance 4/op ->
    // 1 + ceil(62/4) = 17 ops; n0 has H=32, advance 2 -> 16 ops.
    EXPECT_EQ(op.operationCount, 17);
}

TEST_F(ScheduleFigure6, ProducersUpdateBeforeConsumersPerSlot)
{
    ElementarySchedule op = buildElementarySchedule(g_, s_, 3);
    std::map<NodeId, size_t> last_pos;
    for (size_t i = 0; i < op.steps.size(); ++i)
        last_pos[op.steps[i].node] = i;
    // First update of a consumer comes after the first update of each
    // producer (slot-0 ordering is topological).
    std::map<NodeId, size_t> first_pos;
    for (size_t i = 0; i < op.steps.size(); ++i)
        if (!first_pos.count(op.steps[i].node))
            first_pos[op.steps[i].node] = i;
    EXPECT_LT(first_pos[0], first_pos[2]);
    EXPECT_LT(first_pos[0], first_pos[3]);
    EXPECT_LT(first_pos[1], first_pos[3]);
    EXPECT_LT(first_pos[1], first_pos[4]);
}

TEST_F(ScheduleFigure6, ConsumerInputsResidentInProducerWindows)
{
    // The core correctness property: whenever a consumer performs its
    // j-th update in op k, the input rows it reads lie inside the
    // producer's resident window at that moment.
    for (int64_t k = 0; k < 17; ++k) {
        ElementarySchedule op = buildElementarySchedule(g_, s_, k);
        std::map<NodeId, std::pair<int, int>> window;
        // Seed with the windows left by the previous operation.
        if (k > 0) {
            ElementarySchedule prev = buildElementarySchedule(g_, s_, k - 1);
            for (const UpdateStep &s : prev.steps)
                window[s.node] = {s.lo, s.hi};
        }
        for (const UpdateStep &s : op.steps) {
            window[s.node] = {s.lo, s.hi};
            if (s.external)
                continue;
            const Layer &l = g_.layer(s.node);
            // Newest produced rows: the consumer's update advances by
            // deltaH; their input requirement:
            const NodeScheme *ns = s_.find(s.node);
            int new_lo = std::max(s.lo, s.hi - ns->deltaH);
            int need_lo = new_lo * l.stride;
            int need_hi = (s.hi - 1) * l.stride + l.kernel;
            for (NodeId u : g_.preds(s.node)) {
                auto it = window.find(u);
                ASSERT_NE(it, window.end());
                int have_hi = it->second.second;
                // Padding rows past the producer tensor are never
                // stored ("free from padding data"), so the
                // requirement clamps to the tensor extent.
                int clamped = std::min(need_hi, g_.layer(u).outH);
                EXPECT_LE(clamped, have_hi)
                    << "op " << k << " node " << s.node << " producer "
                    << u;
                (void)need_lo; // older rows may be consumed already
            }
        }
    }
}

TEST(Schedule, SingleLayerDegenerates)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    ElementarySchedule op = buildElementarySchedule(g, s, 0);
    EXPECT_EQ(op.steps.size(), 2u); // one update each
    EXPECT_EQ(op.operationCount, 4); // 16 rows / 4 per op
}

TEST(Schedule, StrRendersSteps)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    ElementarySchedule op = buildElementarySchedule(g, s, 0);
    std::string text = op.str(g);
    EXPECT_NE(text.find("in (ext)"), std::string::npos);
    EXPECT_NE(text.find("c upd#0"), std::string::npos);
}

TEST(ScheduleDeath, NegativeOpIndex)
{
    Graph g("single");
    g.addNode(layer1d("in", LayerKind::Input, 16, 1, 1, 1));
    g.addNode(layer1d("c", LayerKind::Conv, 16, 1, 3, 1), {0});
    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    EXPECT_DEATH(buildElementarySchedule(g, s, -1), "negative");
}

/** Windows never exceed tensor extents across a whole sweep. */
class ScheduleSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ScheduleSweep, WindowsStayInBounds)
{
    Graph g = paperExample();
    ExecutionScheme s = deriveConsumptionScheme(g, {2, 3, 4}, 2);
    ElementarySchedule op = buildElementarySchedule(g, s, GetParam());
    for (const UpdateStep &st : op.steps) {
        EXPECT_GE(st.lo, 0);
        EXPECT_LT(st.lo, st.hi);
        EXPECT_LE(st.hi, g.layer(st.node).outH);
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, ScheduleSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 15, 16));

// ---------------------------------------------------------------------------
// Multi-tenant co-scheduling (schedule/workload_set.h, co_scheduler.h)
// ---------------------------------------------------------------------------

#include "core/cocco.h"
#include "core/serialize.h"
#include "schedule/co_scheduler.h"
#include "schedule/workload_set.h"
#include "search/driver.h"
#include "serve/service.h"
#include "util/json.h"

namespace {

WorkloadSet
parseSet(const std::string &text, std::string *err)
{
    JsonValue v;
    std::string perr;
    EXPECT_TRUE(parseJson(text, &v, &perr)) << perr;
    WorkloadSet set;
    if (!workloadSetFromJson(v, &set, err))
        return WorkloadSet{};
    return set;
}

void
expectRejected(const std::string &text, const std::string &needle)
{
    std::string err;
    JsonValue v;
    std::string perr;
    ASSERT_TRUE(parseJson(text, &v, &perr)) << perr;
    WorkloadSet set;
    EXPECT_FALSE(workloadSetFromJson(v, &set, &err)) << text;
    EXPECT_NE(err.find(needle), std::string::npos)
        << "error \"" << err << "\" lacks \"" << needle << "\"";
}

} // namespace

TEST(WorkloadSetParse, ValidTwoTenantSet)
{
    std::string err;
    WorkloadSet set = parseSet(
        R"([{"name": "vision", "model": "GoogleNet",
             "arrival_rate_hz": 40, "sla_latency_ms": 18},
            {"name": "mobile", "model": "MobileNetV2",
             "params": {"batch": 2},
             "arrival_rate_hz": 25, "sla_latency_ms": 30}])",
        &err);
    ASSERT_EQ(set.size(), 2) << err;
    EXPECT_TRUE(set.enabled());
    EXPECT_EQ(set.tenants[0].name, "vision");
    EXPECT_EQ(set.tenants[0].workload.model, "GoogleNet");
    EXPECT_DOUBLE_EQ(set.tenants[0].arrivalRateHz, 40.0);
    EXPECT_DOUBLE_EQ(set.tenants[0].slaLatencyMs, 18.0);
    EXPECT_EQ(set.tenants[1].workload.params.batch, 2);
}

TEST(WorkloadSetParse, RejectsDuplicateTenantNames)
{
    expectRejected(
        R"([{"name": "t", "model": "VGG16",
             "arrival_rate_hz": 1, "sla_latency_ms": 10},
            {"name": "t", "model": "GoogleNet",
             "arrival_rate_hz": 1, "sla_latency_ms": 10}])",
        "duplicate tenant name");
}

TEST(WorkloadSetParse, RejectsZeroAndNegativeArrivalRates)
{
    expectRejected(R"([{"name": "t", "model": "VGG16",
                        "arrival_rate_hz": 0, "sla_latency_ms": 10}])",
                   "arrival_rate_hz");
    expectRejected(R"([{"name": "t", "model": "VGG16",
                        "arrival_rate_hz": -3, "sla_latency_ms": 10}])",
                   "arrival_rate_hz");
}

TEST(WorkloadSetParse, RejectsMissingSla)
{
    expectRejected(R"([{"name": "t", "model": "VGG16",
                        "arrival_rate_hz": 5}])",
                   "sla_latency_ms");
}

TEST(WorkloadSetParse, RejectsUnknownModel)
{
    expectRejected(R"([{"name": "t", "model": "NoSuchNet",
                        "arrival_rate_hz": 5, "sla_latency_ms": 10}])",
                   "unknown model");
}

TEST(WorkloadSetParse, RejectsUnknownKeysAndEmptySets)
{
    expectRejected(R"([{"name": "t", "model": "VGG16", "rate": 5,
                        "arrival_rate_hz": 5, "sla_latency_ms": 10}])",
                   "unknown workload_set key");
    expectRejected(R"([])", "at least one tenant");
    expectRejected(R"([{"name": "t", "model": "VGG16", "file": "g.json",
                        "arrival_rate_hz": 5, "sla_latency_ms": 10}])",
                   "model");
}

TEST(WorkloadSetParse, RoundTripsThroughJson)
{
    std::string err;
    WorkloadSet set = parseSet(
        R"([{"name": "a", "model": "GoogleNet",
             "params": {"batch": 2, "widthMult": 0.5},
             "arrival_rate_hz": 12.5, "sla_latency_ms": 7.25},
            {"name": "b", "model": "RandWire-A",
             "params": {"seed": 9},
             "arrival_rate_hz": 3, "sla_latency_ms": 40}])",
        &err);
    ASSERT_EQ(set.size(), 2) << err;

    JsonValue v;
    ASSERT_TRUE(parseJson(workloadSetJson(set), &v, &err)) << err;
    WorkloadSet back;
    ASSERT_TRUE(workloadSetFromJson(v, &back, &err)) << err;
    ASSERT_EQ(back.size(), set.size());
    for (int t = 0; t < set.size(); ++t) {
        EXPECT_EQ(back.tenants[t].name, set.tenants[t].name);
        EXPECT_EQ(back.tenants[t].workload.model,
                  set.tenants[t].workload.model);
        EXPECT_EQ(back.tenants[t].workload.params.batch,
                  set.tenants[t].workload.params.batch);
        EXPECT_EQ(back.tenants[t].workload.params.widthMult,
                  set.tenants[t].workload.params.widthMult);
        EXPECT_EQ(back.tenants[t].workload.params.seed,
                  set.tenants[t].workload.params.seed);
        EXPECT_DOUBLE_EQ(back.tenants[t].arrivalRateHz,
                         set.tenants[t].arrivalRateHz);
        EXPECT_DOUBLE_EQ(back.tenants[t].slaLatencyMs,
                         set.tenants[t].slaLatencyMs);
    }
}

TEST(WorkloadSetSpec, ConflictsWithWorkloadSection)
{
    SearchSpec spec;
    std::string err;
    EXPECT_FALSE(parseRunSpecText(
        R"({"workload": {"model": "VGG16"},
            "workload_set": [{"name": "t", "model": "VGG16",
                              "arrival_rate_hz": 1,
                              "sla_latency_ms": 10}]})",
        &spec, &err));
    EXPECT_NE(err.find("workload_set"), std::string::npos) << err;
}

TEST(WorkloadSetSpec, SingleTenantNormalizesToPlainWorkload)
{
    SearchSpec spec;
    std::string err;
    ASSERT_TRUE(parseRunSpecText(
        R"({"workload_set": [{"name": "only", "model": "GoogleNet",
                              "params": {"batch": 2},
                              "arrival_rate_hz": 5,
                              "sla_latency_ms": 20}]})",
        &spec, &err))
        << err;
    EXPECT_FALSE(spec.workloadSet.enabled());
    EXPECT_EQ(spec.workload.model, "GoogleNet");
    EXPECT_EQ(spec.workload.params.batch, 2);
}

namespace {

/** A 2-tenant set on the big-little preset, small enough for tests. */
struct CoScheduleFixtureData
{
    std::vector<Graph> graphs;
    WorkloadSet set;
    DeploymentConfig dep;
};

CoScheduleFixtureData
bigLittleTwoTenants()
{
    CoScheduleFixtureData d;
    std::string err;
    WorkloadSet set = parseSet(
        R"([{"name": "vision", "model": "GoogleNet",
             "arrival_rate_hz": 40, "sla_latency_ms": 18},
            {"name": "mobile", "model": "MobileNetV2",
             "arrival_rate_hz": 25, "sla_latency_ms": 30}])",
        &err);
    EXPECT_EQ(set.size(), 2) << err;
    d.set = set;
    for (const TenantSpec &t : set.tenants) {
        Graph g;
        EXPECT_TRUE(resolveWorkload(t.workload, &g, &err)) << err;
        d.graphs.push_back(std::move(g));
    }
    AcceleratorConfig accel;
    EXPECT_TRUE(resolvePlatform(PlatformSpec{}, &accel, &err)) << err;
    DeploymentSpec dspec;
    dspec.enabled = true;
    dspec.preset = "big-little";
    EXPECT_TRUE(resolveDeployment(dspec, accel, &d.dep, &err)) << err;
    return d;
}

SearchSpec
smallSpec(const std::string &algo)
{
    SearchSpec spec;
    spec.algo = algo;
    spec.eval.sampleBudget = 400;
    spec.eval.seed = 7;
    spec.ga.population = 12;
    return spec;
}

} // namespace

TEST(CoSchedule, SearchedBeatsGreedyOnBigLittle)
{
    CoScheduleFixtureData d = bigLittleTwoTenants();
    ASSERT_EQ(d.graphs.size(), 2u);

    CoScheduler greedy(d.graphs, d.set, d.dep);
    ScheduleResult gr = greedy.explore(smallSpec("greedy-place"));
    CoScheduler searched(d.graphs, d.set, d.dep);
    ScheduleResult sr = searched.explore(smallSpec("ga"));

    ASSERT_EQ(static_cast<int>(gr.cost.tenants.size()), d.set.size());
    ASSERT_EQ(static_cast<int>(sr.cost.tenants.size()), d.set.size());

    // The ISSUE's acceptance criterion: a registered searcher finds a
    // schedule with strictly fewer SLA violations than greedy-place,
    // or a strictly lower mean latency when both are violation-free.
    if (sr.cost.slaViolations == gr.cost.slaViolations) {
        EXPECT_EQ(sr.cost.slaViolations, 0);
        EXPECT_LT(sr.cost.meanLatencyMs, gr.cost.meanLatencyMs);
    } else {
        EXPECT_LT(sr.cost.slaViolations, gr.cost.slaViolations);
    }
    EXPECT_LE(sr.objective, gr.objective);
}

TEST(CoSchedule, GreedyIsDeterministic)
{
    CoScheduleFixtureData d = bigLittleTwoTenants();
    CoScheduler a(d.graphs, d.set, d.dep);
    CoScheduler b(d.graphs, d.set, d.dep);
    ScheduleResult ra = a.explore(smallSpec("greedy-place"));
    ScheduleResult rb = b.explore(smallSpec("greedy-place"));
    EXPECT_EQ(ra.schedule.coreOf, rb.schedule.coreOf);
    EXPECT_DOUBLE_EQ(ra.objective, rb.objective);
    EXPECT_EQ(ra.samples, rb.samples);
}

TEST(CoSchedule, SaturatedCoreViolatesEverySla)
{
    std::string err;
    WorkloadSet set = parseSet(
        R"([{"name": "hot", "model": "VGG16",
             "arrival_rate_hz": 100000, "sla_latency_ms": 1}])",
        &err);
    ASSERT_EQ(set.size(), 1) << err;
    Graph g;
    ASSERT_TRUE(resolveWorkload(set.tenants[0].workload, &g, &err));
    AcceleratorConfig accel;
    ASSERT_TRUE(resolvePlatform(PlatformSpec{}, &accel, &err));
    std::vector<Graph> graphs;
    graphs.push_back(std::move(g));
    ScheduleCostModel model(graphs, set,
                            homogeneousDeployment(accel, 1));

    Schedule s;
    s.buffer.style = BufferStyle::Separate;
    s.buffer.actBytes = 1024 * 1024;
    s.buffer.weightBytes = 1152 * 1024;
    s.coreOf = {0};
    s.parts = {Partition::singletons(graphs[0])};
    ScheduleCost c = model.evaluate(s);
    ASSERT_EQ(c.tenants.size(), 1u);
    EXPECT_EQ(c.slaViolations, 1);
    EXPECT_TRUE(c.tenants[0].slaViolation);
    EXPECT_DOUBLE_EQ(c.tenants[0].latencyMs, kSaturatedLatencyMs);
    EXPECT_GE(c.coreUtilization[0], 1.0);
}

TEST(CoSchedule, ViolationsDominateTheObjective)
{
    ScheduleCost clean;
    clean.feasible = true;
    clean.slaViolations = 0;
    clean.meanLatencyMs = 900.0;
    ScheduleCost violated;
    violated.feasible = true;
    violated.slaViolations = 1;
    violated.meanLatencyMs = 1.0;
    EXPECT_LT(scheduleObjective(clean), scheduleObjective(violated));

    ScheduleCost infeasible;
    infeasible.feasible = false;
    infeasible.slaViolations = 0;
    EXPECT_LT(scheduleObjective(violated),
              scheduleObjective(infeasible));
}

TEST(CoSchedule, ContextHashSeesRatesAndSlas)
{
    CoScheduleFixtureData d = bigLittleTwoTenants();
    ScheduleCostModel base(d.graphs, d.set, d.dep);

    WorkloadSet bumpedRate = d.set;
    bumpedRate.tenants[0].arrivalRateHz += 1.0;
    ScheduleCostModel rate(d.graphs, bumpedRate, d.dep);

    WorkloadSet bumpedSla = d.set;
    bumpedSla.tenants[1].slaLatencyMs += 1.0;
    ScheduleCostModel sla(d.graphs, bumpedSla, d.dep);

    const uint64_t seed = 0x9e3779b97f4a7c15ull;
    EXPECT_NE(base.contextHash(seed), rate.contextHash(seed));
    EXPECT_NE(base.contextHash(seed), sla.contextHash(seed));
    EXPECT_EQ(base.contextHash(seed),
              ScheduleCostModel(d.graphs, d.set, d.dep)
                  .contextHash(seed));
}

TEST(CoSchedule, SingleTenantSetMatchesPlainRunBitForBit)
{
    const char *plain = R"({
        "workload": {"model": "GoogleNet"},
        "platform": "simba",
        "algo": "ga", "samples": 300, "seed": 3,
        "ga": {"population": 10}
    })";
    const char *asSet = R"({
        "workload_set": [{"name": "only", "model": "GoogleNet",
                          "arrival_rate_hz": 10,
                          "sla_latency_ms": 50}],
        "platform": "simba",
        "algo": "ga", "samples": 300, "seed": 3,
        "ga": {"population": 10}
    })";

    auto runOne = [](const char *text) {
        SearchSpec spec;
        std::string err;
        EXPECT_TRUE(parseRunSpecText(text, &spec, &err)) << err;
        EXPECT_FALSE(spec.workloadSet.enabled());
        Graph g;
        EXPECT_TRUE(resolveWorkload(spec.workload, &g, &err)) << err;
        AcceleratorConfig accel;
        EXPECT_TRUE(resolvePlatform(spec.platform, &accel, &err)) << err;
        CoccoFramework cocco(g, accel);
        CoccoResult r = cocco.explore(spec);
        return resultToJson(g, r);
    };
    EXPECT_EQ(runOne(plain), runOne(asSet));
}
