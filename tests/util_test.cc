/**
 * @file
 * Unit and property tests for the util module: integer math, exact
 * rationals, the PRNG, table rendering, and logging helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/table.h"

using namespace cocco;

// --- gcd / lcm -----------------------------------------------------------

TEST(MathUtil, GcdBasics)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(18, 12), 6);
    EXPECT_EQ(gcd64(7, 13), 1);
    EXPECT_EQ(gcd64(0, 5), 5);
    EXPECT_EQ(gcd64(5, 0), 5);
    EXPECT_EQ(gcd64(0, 0), 0);
    EXPECT_EQ(gcd64(42, 42), 42);
}

TEST(MathUtil, LcmBasics)
{
    EXPECT_EQ(lcm64(4, 6), 12);
    EXPECT_EQ(lcm64(2, 2), 2);
    EXPECT_EQ(lcm64(1, 9), 9);
    EXPECT_EQ(lcm64(0, 9), 0);
    EXPECT_EQ(lcm64(3, 7), 21);
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_EQ(roundUp(0, 8), 0);
}

/** gcd/lcm algebraic identities over a parameter sweep. */
class GcdLcmProperty : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GcdLcmProperty, ProductIdentity)
{
    auto [a, b] = GetParam();
    int64_t g = gcd64(a, b);
    int64_t l = lcm64(a, b);
    if (a > 0 && b > 0) {
        EXPECT_EQ(g * l, static_cast<int64_t>(a) * b);
        EXPECT_EQ(a % g, 0);
        EXPECT_EQ(b % g, 0);
        EXPECT_EQ(l % a, 0);
        EXPECT_EQ(l % b, 0);
    }
    EXPECT_EQ(gcd64(a, b), gcd64(b, a));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcdLcmProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 3}, std::pair{4, 6},
                      std::pair{12, 30}, std::pair{7, 7}, std::pair{100, 75},
                      std::pair{1024, 768}, std::pair{17, 289},
                      std::pair{36, 48}, std::pair{5, 125}));

// --- Rational ------------------------------------------------------------

TEST(Rational, ReducesOnConstruction)
{
    Rational r(6, 8);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSign)
{
    Rational r(3, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroHasUnitDenominator)
{
    Rational r(0, 17);
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Multiply)
{
    EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
    EXPECT_EQ(Rational(5) * Rational(1, 5), Rational(1));
}

TEST(Rational, Divide)
{
    EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
    EXPECT_EQ(Rational(3, 7) / Rational(3, 7), Rational(1));
}

TEST(Rational, AddSubtract)
{
    EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
    EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
    EXPECT_EQ(Rational(1, 2) - Rational(1, 2), Rational(0));
}

TEST(Rational, IntegerDetection)
{
    EXPECT_TRUE(Rational(8, 4).isInteger());
    EXPECT_EQ(Rational(8, 4).toInteger(), 2);
    EXPECT_FALSE(Rational(8, 3).isInteger());
}

TEST(Rational, StringRendering)
{
    EXPECT_EQ(Rational(3, 4).str(), "3/4");
    EXPECT_EQ(Rational(4, 2).str(), "2");
}

/** Field axioms sampled over small fractions. */
class RationalProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(RationalProperty, FieldIdentities)
{
    auto [an, ad, bn, bd] = GetParam();
    Rational a(an, ad), b(bn, bd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) - b, a);
    if (b.num() != 0) {
        EXPECT_EQ((a / b) * b, a);
    }
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a + Rational(0), a);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RationalProperty,
    ::testing::Values(std::tuple{1, 2, 1, 3}, std::tuple{-1, 2, 1, 3},
                      std::tuple{7, 5, 5, 7}, std::tuple{0, 1, 3, 4},
                      std::tuple{6, 4, -2, 8}, std::tuple{100, 3, 3, 100}));

// --- Rng -----------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntHitsAllValues)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 2000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.06);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 4000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 4000.0, 0.25, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(19);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    std::vector<int> orig = v;
    rng.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
}

TEST(Rng, ChoicePicksMembers)
{
    Rng rng(23);
    std::vector<int> v{3, 5, 7};
    for (int i = 0; i < 100; ++i) {
        int c = rng.choice(v);
        EXPECT_TRUE(c == 3 || c == 5 || c == 7);
    }
}

// --- Table ---------------------------------------------------------------

TEST(Table, RendersHeaderAndRows)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    std::string s = t.str();
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("| bb "), std::string::npos);
    EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell)
{
    Table t({"x"});
    t.addRow({"wide-cell-content"});
    t.addRow({"y"});
    std::string s = t.str();
    // Every line has equal length.
    size_t first_nl = s.find('\n');
    std::string line;
    size_t width = first_nl;
    for (size_t pos = 0; pos < s.size();) {
        size_t nl = s.find('\n', pos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmtInt(42), "42");
    EXPECT_EQ(Table::fmtDouble(1.234, 1), "1.2");
    EXPECT_EQ(Table::fmtKB(2048), "2KB");
    EXPECT_EQ(Table::fmtMB(2.0 * 1024 * 1024), "2.00MB");
    EXPECT_EQ(Table::fmtPercent(0.5), "50.0%");
    EXPECT_EQ(Table::fmtSci(12345.0, 2), "1.23E+04");
}

// --- Logging -------------------------------------------------------------

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "abc"), "x=3 y=abc");
    EXPECT_EQ(strprintf("no args"), "no args");
    EXPECT_EQ(strprintf("%05.1f", 2.25), "002.2");
}

TEST(Logging, QuietFlagRoundTrip)
{
    bool was = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(was);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "panic: boom 3");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(MathUtilDeath, RationalZeroDenominator)
{
    EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(MathUtilDeath, NonIntegerToInteger)
{
    EXPECT_DEATH(Rational(1, 2).toInteger(), "not an integer");
}

// --- CsvWriter -------------------------------------------------------------

TEST(Csv, HeaderAndRows)
{
    CsvWriter w({"a", "b"});
    w.addRow({"1", "2"});
    w.addRow({"3", "4"});
    EXPECT_EQ(w.str(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, QuotesSpecialFields)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quote("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, QuotedFieldsRoundIntoDocument)
{
    CsvWriter w({"x"});
    w.addRow({"v,1"});
    EXPECT_EQ(w.str(), "x\n\"v,1\"\n");
}

TEST(Csv, WriteFileRoundTrip)
{
    CsvWriter w({"k", "v"});
    w.addRow({"alpha", "0.002"});
    std::string path = ::testing::TempDir() + "/cocco_csv_test.csv";
    ASSERT_TRUE(w.writeFile(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[128] = {0};
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    EXPECT_EQ(std::string(buf, n), "k,v\nalpha,0.002\n");
}

TEST(Csv, WriteFileFailsGracefully)
{
    bool was = isQuiet();
    setQuiet(true);
    CsvWriter w({"x"});
    EXPECT_FALSE(w.writeFile("/nonexistent-dir/file.csv"));
    setQuiet(was);
}

TEST(CsvDeath, RowArityMismatch)
{
    CsvWriter w({"a", "b"});
    EXPECT_DEATH(w.addRow({"only-one"}), "expected 2");
}

// --- JSON parser ---------------------------------------------------------

TEST(JsonParse, Scalars)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson("42", &v, &err));
    EXPECT_EQ(v.integer(), 42);
    ASSERT_TRUE(parseJson("-3.5e2", &v, &err));
    EXPECT_DOUBLE_EQ(v.number(), -350.0);
    ASSERT_TRUE(parseJson("true", &v, &err));
    EXPECT_TRUE(v.boolean());
    ASSERT_TRUE(parseJson("null", &v, &err));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(parseJson("\"hi\\n\\\"there\\\"\"", &v, &err));
    EXPECT_EQ(v.str(), "hi\n\"there\"");
    ASSERT_TRUE(parseJson("\"\\u0041\\u00e9\"", &v, &err));
    EXPECT_EQ(v.str(), "A\xc3\xa9");
}

TEST(JsonParse, NestedStructure)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a": [1, 2, {"b": false}], "c": {"d": "e"}, "f": []})", &v,
        &err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members().size(), 3u);
    const JsonValue *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    EXPECT_EQ(a->array().size(), 3u);
    EXPECT_EQ(a->array()[1].integer(), 2);
    EXPECT_FALSE(a->array()[2].find("b")->boolean());
    EXPECT_EQ(v.find("c")->find("d")->str(), "e");
    EXPECT_TRUE(v.find("f")->array().empty());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "run \"1\"")
        .field("count", static_cast<int64_t>(7))
        .field("ratio", 0.25)
        .field("on", true)
        .key("items")
        .beginArray()
        .value(static_cast<int64_t>(1))
        .value("two")
        .endArray()
        .endObject();
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), &v, &err)) << err;
    EXPECT_EQ(v.find("name")->str(), "run \"1\"");
    EXPECT_EQ(v.find("count")->integer(), 7);
    EXPECT_DOUBLE_EQ(v.find("ratio")->number(), 0.25);
    EXPECT_TRUE(v.find("on")->boolean());
    EXPECT_EQ(v.find("items")->array()[1].str(), "two");
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string err;
    for (const char *bad :
         {"", "{", "[1, 2", "{\"a\" 1}", "{\"a\": 1,}", "[1, 2,]",
          "tru", "\"unterminated", "{\"a\": 1} extra", "01x",
          "{\"a\": \"\\q\"}", "nan",
          // strict RFC 8259 numbers: no leading zeros, no bare dots,
          // no empty exponents
          "01", "-01", "1.", ".5", "1e", "1e+", "+1", "--1"}) {
        EXPECT_FALSE(parseJson(bad, &v, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(JsonParse, ErrorsCarryLineNumbers)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\n  \"a\": 1,\n  oops\n}", &v, &err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(JsonParseDeath, TypeMismatchPanics)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson("[1]", &v, &err));
    EXPECT_DEATH(v.str(), "str\\(\\) on a");
    EXPECT_DEATH(v.find("k"), "members\\(\\) on a");
}
