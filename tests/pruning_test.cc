/**
 * @file
 * Tests for bound-based pruning and incremental re-evaluation: the
 * roofline bounds must be admissible (never above the exact cost) on
 * randomized subgraphs across every platform preset and under a
 * heterogeneous deployment; pruned and unpruned searches must return
 * bit-identical results for all four registered algorithms; the
 * genome evaluation record must reproduce a from-scratch evaluation
 * exactly while reusing unchanged blocks; incumbent screening
 * (EvalEngine::evaluateBounded) must track the same incumbent as
 * exhaustive evaluation; and the pruning counters must flow through
 * the cache-stats delta and the JSON metrics document.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "models/random_dag.h"
#include "partition/repair.h"
#include "search/operators.h"
#include "sim/deployment.h"
#include "sim/platform.h"

using namespace cocco;

namespace {

Graph
smallGraph()
{
    RandomDagOptions o;
    o.convNodes = 12;
    return buildRandomDag(17, o);
}

BufferConfig
sharedBuf(int64_t bytes)
{
    BufferConfig b;
    b.style = BufferStyle::Shared;
    b.sharedBytes = bytes;
    return b;
}

BufferConfig
separateBuf(int64_t act, int64_t weight)
{
    BufferConfig b;
    b.style = BufferStyle::Separate;
    b.actBytes = act;
    b.weightBytes = weight;
    return b;
}

/** Randomized structurally-valid partitions of @p g. */
std::vector<Partition>
randomPartitions(const Graph &g, int n, uint64_t seed)
{
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Rng rng(seed);
    std::vector<Partition> out;
    for (int i = 0; i < n; ++i)
        out.push_back(
            repairStructure(g, randomGenome(g, space, rng).part));
    return out;
}

/** b must never exceed c on any field the objective reads. The tiny
 *  relative slack only absorbs floating-point reassociation — the
 *  bound itself must hold mathematically. */
void
expectAdmissible(const SubgraphBound &b, const SubgraphCost &c,
                 const std::string &what)
{
    if (!c.feasible)
        return; // infeasible blocks cost the penalty, far above bounds
    EXPECT_LE(b.emaBytes, c.emaBytes) << what;
    EXPECT_LE(b.energyPj, c.energyPj * (1.0 + 1e-9)) << what;
    EXPECT_LE(b.latencyCycles, c.latencyCycles * (1.0 + 1e-9)) << what;
}

bool
sameSearchResult(const SearchResult &a, const SearchResult &b)
{
    if (a.bestCost != b.bestCost || a.samples != b.samples ||
        a.trace.size() != b.trace.size())
        return false;
    for (size_t i = 0; i < a.trace.size(); ++i)
        if (a.trace[i].sample != b.trace[i].sample ||
            a.trace[i].bestCost != b.trace[i].bestCost)
            return false;
    return a.best.part.block == b.best.part.block;
}

SearchResult
runAlgo(const std::string &algo, const Graph &g,
        const AcceleratorConfig &accel, bool pruning, uint64_t seed,
        bool cache_enabled = true)
{
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    SearchSpec spec;
    spec.algo = algo;
    spec.eval.sampleBudget = 800;
    spec.eval.seed = seed;
    spec.eval.threads = 1;
    spec.eval.pruning = pruning;
    spec.eval.cacheEnabled = cache_enabled;
    spec.ga.population = 20;
    spec.twoStep.population = 10;
    spec.twoStep.samplesPerCandidate = 100;
    return SearcherRegistry::instance().make(algo, model, space, spec)
        ->run();
}

} // namespace

// --- Bound admissibility -------------------------------------------------

TEST(PruningBound, AdmissibleOnEveryPlatformPreset)
{
    Graph g = smallGraph();
    std::vector<Partition> parts = randomPartitions(g, 6, 5);
    std::vector<BufferConfig> bufs = {
        sharedBuf(512 * 1024), sharedBuf(4 * 1024 * 1024),
        separateBuf(1024 * 1024, 1152 * 1024),
        separateBuf(128 * 1024, 128 * 1024)};
    for (const std::string &name : PlatformRegistry::instance().keys()) {
        AcceleratorConfig accel;
        ASSERT_TRUE(PlatformRegistry::instance().find(name, &accel));
        CostModel model(g, accel);
        for (const BufferConfig &buf : bufs)
            for (const Partition &p : parts)
                for (const auto &blk : p.blocks())
                    expectAdmissible(model.subgraphBound(blk, buf),
                                     model.subgraphCost(blk, buf),
                                     "platform " + name);
    }
}

TEST(PruningBound, AdmissibleUnderHeterogeneousDeployment)
{
    Graph g = smallGraph();
    DeploymentSpec spec;
    spec.enabled = true;
    spec.preset = "big-little";
    DeploymentConfig dep;
    std::string err;
    ASSERT_TRUE(
        resolveDeployment(spec, platformPreset("simba"), &dep, &err))
        << err;
    DeploymentCostModel model(g, dep);
    std::vector<Partition> parts = randomPartitions(g, 6, 6);
    for (const BufferConfig &buf :
         {sharedBuf(1024 * 1024), sharedBuf(8 * 1024 * 1024)})
        for (const Partition &p : parts)
            for (const auto &blk : p.blocks())
                expectAdmissible(model.subgraphBound(blk, buf),
                                 model.subgraphCost(blk, buf),
                                 "big-little deployment");
}

TEST(PruningBound, PartitionLowerBoundSurvivesCapacityRepair)
{
    // The screening argument: the bound of a pre-repair partition must
    // hold for the cost of its repaired form, because repair only
    // splits blocks and a block's bound also bounds every split.
    Graph g = buildModel("GoogleNet");
    AcceleratorConfig accel = platformPreset("simba");
    CostModel model(g, accel);
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        Genome x = randomGenome(g, space, rng);
        BufferConfig buf = x.buffer(space);
        SubgraphBound lb = model.partitionLowerBound(x.part, buf);
        Partition repaired =
            repairToCapacity(g, std::move(x.part), model, buf);
        GraphCost gc = model.partitionCost(repaired, buf);
        if (!gc.feasible)
            continue; // cost is the penalty, far above any bound
        EXPECT_LE(lb.metricValue(Metric::Energy),
                  gc.energyPj * (1.0 + 1e-9));
        EXPECT_LE(lb.metricValue(Metric::EMA),
                  static_cast<double>(gc.emaBytes));
    }
}

// --- Search-level bit-identity ------------------------------------------

TEST(PruningSearch, BitIdenticalAcrossAllAlgorithms)
{
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    for (const std::string &algo : {"ga", "sa", "ts-random", "ts-grid"}) {
        SearchResult off = runAlgo(algo, g, accel, false, 9);
        SearchResult on = runAlgo(algo, g, accel, true, 9);
        EXPECT_TRUE(sameSearchResult(off, on)) << "algo " << algo;
    }
}

TEST(PruningSearch, BitIdenticalWithoutCache)
{
    // The no-cache path is where the evaluation records run; identity
    // must hold there too.
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    for (const std::string &algo : {"ga", "ts-random"}) {
        SearchResult off = runAlgo(algo, g, accel, false, 13, false);
        SearchResult on = runAlgo(algo, g, accel, true, 13, false);
        EXPECT_TRUE(sameSearchResult(off, on)) << "algo " << algo;
    }
}

TEST(PruningSearch, TwoStepBoundRejectionsFire)
{
    // The two-step driver must actually skip hopeless capacity
    // candidates (not just stay correct with the skip compiled in),
    // and the skips must be visible in the counters.
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    SearchResult on = runAlgo("ts-random", g, accel, true, 9);
    SearchResult off = runAlgo("ts-random", g, accel, false, 9);
    EXPECT_GT(on.cacheStats.boundRejections, 0u);
    EXPECT_GT(on.cacheStats.boundSkippedSamples, 0u);
    EXPECT_EQ(off.cacheStats.boundRejections, 0u);
    EXPECT_EQ(off.cacheStats.boundSkippedSamples, 0u);
}

// --- Incremental re-evaluation ------------------------------------------

TEST(PruningIncremental, RecordMatchesFromScratchEvaluation)
{
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    CostModel model_rec(g, accel);
    EvalOptions rec_opts;
    rec_opts.cacheEnabled = false;
    rec_opts.threads = 1;
    rec_opts.pruning = true;
    EvalEngine rec_engine(model_rec, space, rec_opts);

    CostModel model_ref(g, accel);
    EvalOptions ref_opts = rec_opts;
    ref_opts.pruning = false;
    EvalEngine ref_engine(model_ref, space, ref_opts);

    Rng rng(23);
    int mutations = 0;
    for (int i = 0; i < 10; ++i) {
        Genome parent = randomGenome(g, space, rng);
        rec_engine.evaluate(parent);
        ASSERT_NE(parent.evalRecord, nullptr);

        // A child inherits the parent's record by copy; a mutation
        // that keeps the buffer touches only some blocks.
        Genome child = parent;
        GeneDelta delta;
        mutateModifyNode(g, child, rng, &delta);
        Genome stripped = child;
        stripped.evalRecord.reset();

        double with_record = rec_engine.evaluate(child, &delta);
        double from_scratch = ref_engine.evaluate(stripped);
        EXPECT_EQ(with_record, from_scratch);
        EXPECT_EQ(child.part.block, stripped.part.block);
        ++mutations;
    }
    EXPECT_EQ(mutations, 10);
    EXPECT_GT(rec_engine.recordBlocksReused(), 0u);
    EXPECT_EQ(ref_engine.recordBlocksReused(), 0u);
}

// --- Incumbent screening -------------------------------------------------

TEST(PruningScreening, BoundedEvaluationTracksTheSameIncumbent)
{
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    Rng rng(31);
    std::vector<Genome> stream;
    for (int i = 0; i < 300; ++i)
        stream.push_back(randomGenome(g, space, rng));

    EvalOptions opts;
    opts.cacheEnabled = false;
    opts.threads = 1;

    // Exhaustive best tracking.
    CostModel model_off(g, accel);
    EvalOptions off_opts = opts;
    off_opts.pruning = false;
    EvalEngine off_engine(model_off, space, off_opts);
    double best_off = kInfeasiblePenalty;
    for (const Genome &x : stream) {
        Genome t = x;
        best_off = std::min(best_off, off_engine.evaluate(t));
    }

    // Screened best tracking; keep each skipped genome with the
    // incumbent it was rejected against.
    CostModel model_on(g, accel);
    EvalOptions on_opts = opts;
    on_opts.pruning = true;
    EvalEngine on_engine(model_on, space, on_opts);
    double best_on = kInfeasiblePenalty;
    std::vector<std::pair<Genome, double>> skipped_genomes;
    for (const Genome &x : stream) {
        Genome t = x;
        bool skipped = false;
        double c = on_engine.evaluateBounded(t, best_on, &skipped);
        if (skipped)
            skipped_genomes.push_back({x, best_on});
        else
            best_on = std::min(best_on, c);
    }

    EXPECT_EQ(best_off, best_on);
    EXPECT_GT(on_engine.boundRejections(), 0u);
    EXPECT_EQ(on_engine.boundRejections(), skipped_genomes.size());

    // Every screened-out genome must truly cost more than the
    // incumbent it was rejected against (admissibility, end to end).
    size_t checked = 0;
    for (size_t i = 0; i < skipped_genomes.size() && checked < 10;
         i += std::max<size_t>(1, skipped_genomes.size() / 10), ++checked) {
        Genome t = skipped_genomes[i].first;
        double bound = on_engine.objectiveBound(t);
        double cost = off_engine.evaluate(t);
        EXPECT_LE(bound, cost);
        EXPECT_GT(cost, skipped_genomes[i].second);
    }
    EXPECT_GT(checked, 0u);
}

// --- Counter plumbing ----------------------------------------------------

TEST(PruningCounters, StatsDeltaCoversPruningFields)
{
    EvalCacheStats end, start;
    end.boundRejections = 10;
    end.boundSkippedSamples = 900;
    end.incReusedBlocks = 70;
    end.incRecostBlocks = 7;
    start.boundRejections = 4;
    start.boundSkippedSamples = 400;
    start.incReusedBlocks = 30;
    start.incRecostBlocks = 2;
    EvalCacheStats d = end - start;
    EXPECT_EQ(d.boundRejections, 6u);
    EXPECT_EQ(d.boundSkippedSamples, 500u);
    EXPECT_EQ(d.incReusedBlocks, 40u);
    EXPECT_EQ(d.incRecostBlocks, 5u);
}

TEST(PruningCounters, MetricsJsonCarriesPruningFields)
{
    RunMetrics m;
    m.name = "probe";
    m.cacheEnabled = true;
    m.cache.boundRejections = 3;
    m.cache.boundSkippedSamples = 120;
    m.cache.incReusedBlocks = 44;
    m.cache.incRecostBlocks = 5;
    std::string doc = metricsToJson("pruning_test", {m});
    EXPECT_NE(doc.find("\"bound_rejections\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"bound_skipped_samples\":120"), std::string::npos);
    EXPECT_NE(doc.find("\"inc_blocks_reused\":44"), std::string::npos);
    EXPECT_NE(doc.find("\"inc_blocks_recosted\":5"), std::string::npos);
}

TEST(PruningCounters, GaReportsIncrementalReuseWithoutCache)
{
    // In the cache-off configuration the GA's incremental path is the
    // evaluation record; its activity must surface in the run stats.
    Graph g = smallGraph();
    AcceleratorConfig accel = platformPreset("simba");
    SearchResult res = runAlgo("ga", g, accel, true, 41, false);
    EXPECT_GT(res.cacheStats.incReusedBlocks, 0u);
}
