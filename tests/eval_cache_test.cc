/**
 * @file
 * Tests for the evaluation-cache subsystem: the 64-bit content hash
 * combinators, hit/miss/eviction accounting and LRU order, the
 * engine's transparency contract (bit-identical results for cache on
 * vs. off, across thread counts, and on warm repeats), the on-disk
 * round trip, operator gene-delta reporting, and the JSON metrics
 * document.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/cocco.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "models/random_dag.h"
#include "search/eval_cache.h"
#include "search/operators.h"
#include "util/hash.h"

using namespace cocco;

namespace {

Graph
smallGraph()
{
    RandomDagOptions o;
    o.convNodes = 12;
    return buildRandomDag(11, o);
}

/** A bigger reconvergent DAG for the search-level contract tests —
 *  still fast enough for the sanitizer lane (GoogleNet-scale search
 *  coverage lives in the slow-labeled parallel_test). */
Graph
mediumGraph()
{
    RandomDagOptions o;
    o.convNodes = 24;
    return buildRandomDag(21, o);
}

GaOptions
fastGa(int64_t budget = 400)
{
    GaOptions o;
    o.population = 20;
    o.sampleBudget = budget;
    o.seed = 5;
    return o;
}

/** Exact equality of everything a search run reports. */
void
expectSameResult(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(a.bestCost, b.bestCost);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.best.part.block, b.best.part.block);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].sample, b.trace[i].sample);
        EXPECT_EQ(a.trace[i].bestCost, b.trace[i].bestCost) << "i=" << i;
    }
}

/** A canonical genome over @p g (singletons, mid indices). */
Genome
genomeOf(const Graph &g, int shift = 0)
{
    Genome gen;
    gen.part = Partition::singletons(g);
    gen.actIdx = 3 + shift;
    gen.weightIdx = 4;
    gen.sharedIdx = 5;
    return gen;
}

/** Temp-file path helper (removed by the caller). */
std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

} // namespace

// --- Hash combinators -------------------------------------------------------

TEST(Hash, DeterministicAndSpread)
{
    uint64_t a = hashFinalize(hashU64(kHashSeed, 1));
    uint64_t b = hashFinalize(hashU64(kHashSeed, 1));
    uint64_t c = hashFinalize(hashU64(kHashSeed, 2));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hash, VectorLengthPrefixDisambiguates)
{
    // {1} + {} must differ from {} + {1} when chained.
    uint64_t a = hashIntVector(hashIntVector(kHashSeed, std::vector<int>{1}),
                               std::vector<int>{});
    uint64_t b = hashIntVector(hashIntVector(kHashSeed, std::vector<int>{}),
                               std::vector<int>{1});
    EXPECT_NE(hashFinalize(a), hashFinalize(b));
}

TEST(Hash, DoubleNormalizesZeroSign)
{
    EXPECT_EQ(hashDouble(kHashSeed, 0.0), hashDouble(kHashSeed, -0.0));
    EXPECT_NE(hashDouble(kHashSeed, 1.0), hashDouble(kHashSeed, 2.0));
}

TEST(Hash, GenomeSensitivity)
{
    Graph g = smallGraph();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Separate);
    Genome base = genomeOf(g);

    uint64_t h0 = hashFinalize(hashGenome(kHashSeed, base, space));
    EXPECT_EQ(h0, hashFinalize(hashGenome(kHashSeed, base, space)));

    Genome moved = base;
    moved.part.block[1] = 0; // join node 1 into block 0
    EXPECT_NE(h0, hashFinalize(hashGenome(kHashSeed, moved, space)));

    Genome hw = base;
    hw.actIdx += 1;
    EXPECT_NE(h0, hashFinalize(hashGenome(kHashSeed, hw, space)));

    // Dead genes: sharedIdx is not live in a Separate-style space.
    Genome dead = base;
    dead.sharedIdx += 7;
    EXPECT_EQ(h0, hashFinalize(hashGenome(kHashSeed, dead, space)));

    // In a frozen space every hardware gene is dead.
    DseSpace frozen = DseSpace::fixedSpace(BufferConfig{});
    Genome f1 = base, f2 = base;
    f2.actIdx += 3;
    EXPECT_EQ(hashFinalize(hashGenome(kHashSeed, f1, frozen)),
              hashFinalize(hashGenome(kHashSeed, f2, frozen)));
}

TEST(Hash, GraphAndAcceleratorFingerprints)
{
    Graph a = smallGraph();
    RandomDagOptions o;
    o.convNodes = 12;
    Graph b = buildRandomDag(12, o); // different seed -> different DAG
    EXPECT_EQ(hashGraph(kHashSeed, a), hashGraph(kHashSeed, a));
    EXPECT_NE(hashGraph(kHashSeed, a), hashGraph(kHashSeed, b));

    AcceleratorConfig ac1, ac2;
    ac2.cores = 4;
    EXPECT_NE(hashAccelerator(kHashSeed, ac1),
              hashAccelerator(kHashSeed, ac2));
}

// --- EvalCache accounting and LRU order -------------------------------------

namespace {

EvalCache::KeyView
keyOf(uint64_t hash, const std::vector<int> &block)
{
    return EvalCache::KeyView{hash, /*salt=*/42, block, 0, 0, 0};
}

} // namespace

TEST(EvalCache, HitMissAccounting)
{
    EvalCache cache(/*capacity=*/8, /*shards=*/1);
    std::vector<int> k1{0, 1, 2};
    Partition repaired;
    repaired.block = {0, 0, 1};
    repaired.numBlocks = 2;

    Partition out;
    double cost = 0.0;
    EXPECT_FALSE(cache.lookup(keyOf(1, k1), &out, &cost));
    cache.insert(keyOf(1, k1), repaired, 3.5);
    ASSERT_TRUE(cache.lookup(keyOf(1, k1), &out, &cost));
    EXPECT_EQ(cost, 3.5);
    EXPECT_EQ(out.block, repaired.block);
    EXPECT_EQ(out.numBlocks, 2);

    // Same hash, different key material: collision-safe miss.
    std::vector<int> k2{0, 1, 3};
    EXPECT_FALSE(cache.lookup(keyOf(1, k2), &out, &cost));

    EvalCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 1.0 / 3.0);
}

TEST(EvalCache, LruEvictionOrder)
{
    EvalCache cache(/*capacity=*/2, /*shards=*/1);
    Partition p;
    p.block = {0};
    p.numBlocks = 1;
    std::vector<int> ka{1}, kb{2}, kc{3};

    cache.insert(keyOf(10, ka), p, 1.0);
    cache.insert(keyOf(20, kb), p, 2.0);

    // Touch A so B becomes least recently used, then overflow.
    Partition out;
    double cost;
    ASSERT_TRUE(cache.lookup(keyOf(10, ka), &out, &cost));
    cache.insert(keyOf(30, kc), p, 3.0);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup(keyOf(10, ka), &out, &cost));  // kept
    EXPECT_TRUE(cache.lookup(keyOf(30, kc), &out, &cost));  // kept
    EXPECT_FALSE(cache.lookup(keyOf(20, kb), &out, &cost)); // evicted
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EvalCache, StatsDeltaSubtraction)
{
    EvalCacheStats a, b;
    a.hits = 10;
    a.misses = 6;
    b.hits = 4;
    b.misses = 1;
    EvalCacheStats d = a - b;
    EXPECT_EQ(d.hits, 6u);
    EXPECT_EQ(d.misses, 5u);
    EXPECT_DOUBLE_EQ(d.hitRate(), 6.0 / 11.0);
    EXPECT_DOUBLE_EQ(EvalCacheStats{}.hitRate(), 0.0);
}

// --- Block-level cost cache --------------------------------------------------

TEST(EvalCache, BlockCostRoundTripAndPartitionCostEquality)
{
    Graph g = smallGraph();
    CostModel model(g, AcceleratorConfig{});
    BufferConfig buf;
    buf.style = BufferStyle::Separate;
    buf.actBytes = 256 * 1024;
    buf.weightBytes = 288 * 1024;
    Partition p = Partition::fixedRuns(g, 3);
    p.canonicalize(g);

    GraphCost plain = model.partitionCost(p, buf);

    EvalCache cache(64, 1);
    EvalCache::BlockView view = cache.blockView(/*salt=*/123);
    GraphCost first = model.partitionCost(p, buf, &view);
    GraphCost second = model.partitionCost(p, buf, &view);

    for (const GraphCost &gc : {first, second}) {
        EXPECT_EQ(plain.feasible, gc.feasible);
        EXPECT_EQ(plain.emaBytes, gc.emaBytes);
        EXPECT_EQ(plain.energyPj, gc.energyPj);
        EXPECT_EQ(plain.latencyCycles, gc.latencyCycles);
        EXPECT_EQ(plain.peakBwGBps, gc.peakBwGBps);
    }

    EvalCacheStats s = cache.stats();
    EXPECT_EQ(s.blockMisses, static_cast<uint64_t>(plain.subgraphs));
    EXPECT_EQ(s.blockHits, static_cast<uint64_t>(plain.subgraphs));

    // A partition sharing a prefix of blocks reuses their costs.
    Partition q = p;
    int last = q.block.back();
    q.block.back() = last + 1; // split the final node out
    q.canonicalize(g);
    uint64_t hits_before = cache.stats().blockHits;
    model.partitionCost(q, buf, &view);
    EXPECT_GT(cache.stats().blockHits, hits_before);

    // A different model salt is fenced off: everything misses.
    EvalCache::BlockView other = cache.blockView(/*salt=*/456);
    uint64_t misses_before = cache.stats().blockMisses;
    GraphCost fenced = model.partitionCost(p, buf, &other);
    EXPECT_EQ(plain.energyPj, fenced.energyPj);
    EXPECT_GE(cache.stats().blockMisses,
              misses_before + static_cast<uint64_t>(plain.subgraphs));
}

// --- Engine transparency ----------------------------------------------------

TEST(EvalEngine, CachedEvaluationMatchesUncached)
{
    Graph g = smallGraph();
    CostModel model(g, AcceleratorConfig{});
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    EvalOptions on;
    EvalOptions off;
    off.cacheEnabled = false;
    EvalEngine cached(model, space, on);
    EvalEngine uncached(model, space, off);
    ASSERT_NE(cached.cache(), nullptr);
    EXPECT_EQ(uncached.cache(), nullptr);
    EXPECT_EQ(cached.salt(), uncached.salt());

    Genome a = genomeOf(g);
    Genome b = genomeOf(g);
    double ca = cached.evaluate(a);
    double cb = uncached.evaluate(b);
    EXPECT_EQ(ca, cb);
    EXPECT_EQ(a.part.block, b.part.block); // same in-situ repair

    // Second evaluation: a pure hit, restoring the same partition.
    Genome c = genomeOf(g);
    EXPECT_EQ(cached.evaluate(c), ca);
    EXPECT_EQ(c.part.block, a.part.block);
    EXPECT_EQ(cached.cache()->stats().hits, 1u);
}

TEST(EvalEngine, SaltSeparatesContexts)
{
    Graph g = smallGraph();
    CostModel model(g, AcceleratorConfig{});
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    EvalOptions o1;
    EvalOptions o2;
    o2.alpha = o1.alpha * 2;
    EvalEngine e1(model, space, o1);
    EvalEngine e2(model, space, o2);
    EXPECT_NE(e1.salt(), e2.salt());

    // Same genome through a SHARED cache under different salts:
    // the second engine must not be served the first one's value.
    auto cache = std::make_shared<EvalCache>();
    EvalEngine s1(model, space, o1, nullptr, cache);
    EvalEngine s2(model, space, o2, nullptr, cache);
    Genome a = genomeOf(g);
    Genome b = genomeOf(g);
    double v1 = s1.evaluate(a);
    double v2 = s2.evaluate(b);
    EXPECT_NE(v1, v2); // different alpha -> different objective
    EXPECT_EQ(cache->stats().hits, 0u);
}

// --- Search-level determinism ------------------------------------------------

TEST(Search, GaBitIdenticalWithCacheOnOffAndWarm)
{
    Graph g = mediumGraph();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    GaOptions off = fastGa();
    off.cacheEnabled = false;
    CostModel m1(g, AcceleratorConfig{});
    SearchResult r_off = GeneticSearch(m1, space, off).run();

    GaOptions on = fastGa();
    on.cache = std::make_shared<EvalCache>();
    CostModel m2(g, AcceleratorConfig{});
    SearchResult r_cold = GeneticSearch(m2, space, on).run();
    expectSameResult(r_off, r_cold);
    EXPECT_GT(r_cold.cacheStats.misses, 0u);

    // Warm repeat on a fresh CostModel: everything is served.
    CostModel m3(g, AcceleratorConfig{});
    SearchResult r_warm = GeneticSearch(m3, space, on).run();
    expectSameResult(r_off, r_warm);
    EXPECT_EQ(r_warm.cacheStats.misses, 0u);
    EXPECT_EQ(r_warm.cacheStats.hits,
              static_cast<uint64_t>(r_warm.samples));
}

TEST(Search, GaBitIdenticalAcrossThreadCountsWithCache)
{
    Graph g = mediumGraph();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    GaOptions serial = fastGa();
    CostModel m1(g, AcceleratorConfig{});
    SearchResult r1 = GeneticSearch(m1, space, serial).run();

    GaOptions parallel = fastGa();
    parallel.threads = 4;
    CostModel m2(g, AcceleratorConfig{});
    SearchResult r4 = GeneticSearch(m2, space, parallel).run();
    expectSameResult(r1, r4);
}

TEST(Search, SaAndTwoStepReportCacheStats)
{
    Graph g = smallGraph();
    CostModel model(g, AcceleratorConfig{});
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    SaOptions sa;
    sa.sampleBudget = 200;
    sa.seed = 3;
    SearchResult r = simulatedAnnealing(model, space, sa);
    EXPECT_EQ(r.cacheStats.hits + r.cacheStats.misses,
              static_cast<uint64_t>(r.samples));

    TwoStepOptions ts;
    ts.sampleBudget = 300;
    ts.samplesPerCandidate = 100;
    ts.population = 10;
    SearchResult t = twoStepGrid(model, space, ts);
    EXPECT_GT(t.cacheStats.misses, 0u);
}

// --- On-disk round trip -----------------------------------------------------

TEST(Persistence, EntryLevelRoundTripIsExact)
{
    std::string path = tmpPath("roundtrip.evalcache");
    EvalCache cache(64, 1);
    Partition rep;
    rep.block = {0, 0, 1, 2};
    rep.numBlocks = 3;
    std::vector<int> key{0, 1, 2, 3};
    EvalCache::KeyView kv{/*hash=*/0xabcdef01ULL, /*salt=*/77, key, 1, 2, 0};
    cache.insert(kv, rep, 0.1 + 0.2); // value with no short decimal form

    ASSERT_TRUE(saveEvalCache(cache, path));
    EvalCache loaded(64, 1);
    EXPECT_EQ(loadEvalCache(loaded, path), 1);

    Partition out;
    double cost = 0.0;
    ASSERT_TRUE(loaded.lookup(kv, &out, &cost));
    EXPECT_EQ(cost, 0.1 + 0.2); // hexfloat round trip is bit-exact
    EXPECT_EQ(out.block, rep.block);
    EXPECT_EQ(out.numBlocks, 3);
    std::remove(path.c_str());
}

TEST(Persistence, WarmStartFromDiskServesEverything)
{
    std::string path = tmpPath("warmstart.evalcache");
    Graph g = smallGraph();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);

    GaOptions opts = fastGa(200);
    opts.cache = std::make_shared<EvalCache>();
    CostModel m1(g, AcceleratorConfig{});
    SearchResult first = GeneticSearch(m1, space, opts).run();
    ASSERT_TRUE(saveEvalCache(*opts.cache, path));

    GaOptions warm = fastGa(200);
    warm.cache = std::make_shared<EvalCache>();
    ASSERT_GT(loadEvalCache(*warm.cache, path), 0);
    CostModel m2(g, AcceleratorConfig{});
    SearchResult second = GeneticSearch(m2, space, warm).run();

    expectSameResult(first, second);
    EXPECT_EQ(second.cacheStats.misses, 0u);
    std::remove(path.c_str());
}

TEST(Persistence, RejectsMissingAndCorruptFiles)
{
    EvalCache cache;
    EXPECT_EQ(loadEvalCache(cache, tmpPath("does-not-exist.evalcache")), -1);

    std::string path = tmpPath("corrupt.evalcache");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT-A-CACHE 9\n", f);
    std::fclose(f);
    EXPECT_EQ(loadEvalCache(cache, path), -1);
    std::remove(path.c_str());
}

// --- Operator gene-delta reporting ------------------------------------------

TEST(GeneDelta, OperatorsReportTouchedGenes)
{
    Graph g = smallGraph();
    DseSpace space = DseSpace::paperSpace(BufferStyle::Separate);
    Rng rng(9);

    for (int trial = 0; trial < 50; ++trial) {
        Genome base = randomGenome(g, space, rng);

        Genome child = base;
        GeneDelta d;
        std::vector<int> before = child.part.block;
        mutateModifyNode(g, child, rng, &d);
        EXPECT_FALSE(d.hwChanged);
        if (d.partitionChanged) {
            ASSERT_EQ(d.nodes.size(), 1u);
            // The reported node is the one the operator reassigned.
            EXPECT_NE(before[d.nodes[0]], -1);
        } else {
            EXPECT_EQ(child.part.block, before);
        }

        GeneDelta dse;
        mutateDse(space, child, rng, 2.0, &dse);
        EXPECT_TRUE(dse.nodes.empty());
        EXPECT_FALSE(dse.partitionChanged);

        GeneDelta cx;
        Genome other = randomGenome(g, space, rng);
        crossover(g, space, base, other, rng, &cx);
        EXPECT_TRUE(cx.partitionChanged);
        EXPECT_TRUE(cx.hwChanged);
        EXPECT_TRUE(cx.nodes.empty()); // global rewrite marker
    }
}

TEST(GeneDelta, SearchAccumulatesDeltaStats)
{
    Graph g = smallGraph();
    CostModel model(g, AcceleratorConfig{});
    DseSpace space = DseSpace::paperSpace(BufferStyle::Shared);
    GaOptions opts = fastGa(300);
    SearchResult r = GeneticSearch(model, space, opts).run();
    // Every offspring evaluation carries a delta report (the initial
    // population does not).
    EXPECT_GT(r.deltaStats.reports, 0u);
    EXPECT_GT(r.deltaStats.rewrites, 0u);
}

// --- Metrics JSON ------------------------------------------------------------

TEST(Metrics, DocumentShapeAndEvalAccounting)
{
    RunMetrics m;
    m.name = "unit";
    m.model = "TestNet";
    m.threads = 2;
    m.seed = 9;
    m.samples = 100;
    m.bestCost = 1.5;
    m.wallSeconds = 0.25;
    m.cacheEnabled = true;
    m.cache.hits = 60;
    m.cache.misses = 40;
    m.extra.push_back({"speedup", 2.0});

    EXPECT_EQ(m.evalsTotal(), 100);
    EXPECT_EQ(m.evalsCached(), 60);
    EXPECT_EQ(m.evalsComputed(), 40);

    std::string doc = metricsToJson("unit_test", {m});
    EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"generator\":\"unit_test\""), std::string::npos);
    EXPECT_NE(doc.find("\"evals_cached\":60"), std::string::npos);
    EXPECT_NE(doc.find("\"speedup\":2"), std::string::npos);

    RunMetrics plain;
    plain.samples = 7;
    EXPECT_EQ(plain.evalsTotal(), 7);
    EXPECT_EQ(plain.evalsCached(), 0);

    std::string path = tmpPath("metrics.json");
    ASSERT_TRUE(writeMetricsFile(path, "unit_test", {m}));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}
