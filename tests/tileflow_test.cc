/**
 * @file
 * Tests for the tile-flow module, centred on the paper's own worked
 * example (Figure 5/6): the 1-D subgraph whose derived offsets, tile
 * sizes, and upd_num values the paper states explicitly. Also covers
 * 2-D MAIN/SIDE footprints, the stage-1 mapper, and the
 * production-centric ablation baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "tileflow/footprint.h"
#include "tileflow/production.h"
#include "tileflow/scheme.h"

using namespace cocco;

namespace {

Layer
layer1d(const char *name, LayerKind kind, int h, int c, int k, int s)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = 1;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

/**
 * The Figure 5 example graph. Paper node -> id:
 *   Node(-2) -> 0 (input), Node(-1) -> 1 (input),
 *   Node(0)  -> 2 (F=3, s=2, consumes -2),
 *   Node(1)  -> 3 (F=3, s=1, consumes -2 and -1),
 *   Node(2)  -> 4 (F=1, s=1, consumes -1).
 */
Graph
paperExample()
{
    Graph g("fig5");
    g.addNode(layer1d("in_m2", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("in_m1", LayerKind::Input, 64, 1, 1, 1));
    g.addNode(layer1d("n0", LayerKind::Conv, 32, 1, 3, 2), {0});
    g.addNode(layer1d("n1", LayerKind::Conv, 64, 1, 3, 1), {0, 1});
    g.addNode(layer1d("n2", LayerKind::Conv, 64, 1, 1, 1), {1});
    return g;
}

Layer
layer2d(const char *name, LayerKind kind, int h, int w, int c, int k, int s)
{
    Layer l;
    l.name = name;
    l.kind = kind;
    l.outH = h;
    l.outW = w;
    l.outC = c;
    l.kernel = k;
    l.stride = s;
    return l;
}

} // namespace

// --- The paper's Figure 5 example, exact values --------------------------

class PaperExample : public ::testing::Test
{
  protected:
    Graph g_ = paperExample();
    ExecutionScheme s_ = deriveConsumptionScheme(g_, {2, 3, 4}, 2);
};

TEST_F(PaperExample, OutputNodesGetStage1Tile)
{
    for (NodeId v : {2, 3, 4}) {
        const NodeScheme *ns = s_.find(v);
        ASSERT_NE(ns, nullptr);
        EXPECT_TRUE(ns->is_output);
        EXPECT_EQ(ns->deltaH, 2);
        EXPECT_EQ(ns->xH, 2);
    }
}

TEST_F(PaperExample, DeltaOfInputMinus2IsLcm)
{
    // Delta(-2) = lcm{Delta(0)s(0), Delta(1)s(1)} = lcm{4, 2} = 4.
    const NodeScheme *ns = s_.find(0);
    ASSERT_NE(ns, nullptr);
    EXPECT_TRUE(ns->external);
    EXPECT_EQ(ns->deltaH, 4);
}

TEST_F(PaperExample, TileOfInputMinus2IsSix)
{
    // x(-2) = max{f0(2), f1(4)} = max{5, 6} = 6.
    EXPECT_EQ(s_.find(0)->xH, 6);
}

TEST_F(PaperExample, DeltaAndTileOfInputMinus1)
{
    // Delta(-1) = 2, x(-1) = max{f1(2), f2(2)} = max{4, 2} = 4.
    EXPECT_EQ(s_.find(1)->deltaH, 2);
    EXPECT_EQ(s_.find(1)->xH, 4);
}

TEST_F(PaperExample, UpdNumIsMinimalCoPrimeSolution)
{
    // Paper: {upd(-2), upd(-1), upd(0), upd(1), upd(2)} = {1,2,1,2,2}.
    EXPECT_TRUE(s_.updConsistent);
    EXPECT_EQ(s_.find(0)->updNum, 1);
    EXPECT_EQ(s_.find(1)->updNum, 2);
    EXPECT_EQ(s_.find(2)->updNum, 1);
    EXPECT_EQ(s_.find(3)->updNum, 2);
    EXPECT_EQ(s_.find(4)->updNum, 2);
}

TEST_F(PaperExample, MemoryAllocationSizesMatchFigure6)
{
    // Figure 6: size(-2)=6, size(-1)=4, size(0)=size(1)=size(2)=2.
    EXPECT_EQ(s_.find(0)->mainBytes, 6);
    EXPECT_EQ(s_.find(1)->mainBytes, 4);
    EXPECT_EQ(s_.find(2)->mainBytes, 2);
    EXPECT_EQ(s_.find(3)->mainBytes, 2);
    EXPECT_EQ(s_.find(4)->mainBytes, 2);
}

TEST_F(PaperExample, ExternalInputsListedFirst)
{
    ASSERT_EQ(s_.nodes.size(), 5u);
    EXPECT_TRUE(s_.nodes[0].external);
    EXPECT_TRUE(s_.nodes[1].external);
    EXPECT_FALSE(s_.nodes[2].external);
}

TEST_F(PaperExample, FootprintSumsMainAndSide)
{
    int64_t sum = 0;
    for (const auto &ns : s_.nodes)
        sum += ns.mainBytes + ns.sideBytes;
    EXPECT_EQ(s_.actFootprintBytes, sum);
}

// --- General consumption-scheme properties -------------------------------

TEST(ConsumptionScheme, SingleConvLayer)
{
    Graph g("single");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 32, 32, 16, 3, 1), {0});

    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    const NodeScheme *out = s.find(1);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->deltaH, 4);
    EXPECT_EQ(out->xH, 4);
    // Input tile: f(4) = 3 + 3*1 = 6.
    const NodeScheme *in = s.find(0);
    EXPECT_EQ(in->xH, 6);
    EXPECT_EQ(in->xW, 6);
    EXPECT_EQ(in->deltaH, 4);
}

TEST(ConsumptionScheme, SideRegionForOverlappingKernels)
{
    Graph g("side");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 32, 32, 16, 3, 1), {0});

    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    const NodeScheme *in = s.find(0);
    // Overlap rows = F - s = 2 over the (W - xW) = 26 columns.
    EXPECT_EQ(in->sideBytes, 2LL * 26 * 8);
}

TEST(ConsumptionScheme, NoSideRegionWhenKernelEqualsStride)
{
    Graph g("noside");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("p", LayerKind::Pool, 16, 16, 8, 2, 2), {0});

    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 4);
    EXPECT_EQ(s.find(0)->sideBytes, 0);
}

TEST(ConsumptionScheme, WholeTensorResidentHasNoSide)
{
    Graph g("tiny");
    g.addNode(layer2d("in", LayerKind::Input, 4, 4, 8, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 4, 4, 8, 3, 1), {0});

    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 8);
    const NodeScheme *in = s.find(0);
    EXPECT_EQ(in->xH, 4); // clipped to tensor
    EXPECT_EQ(in->sideBytes, 0);
}

TEST(ConsumptionScheme, TileClippedToTensorExtent)
{
    Graph g("clip");
    g.addNode(layer2d("in", LayerKind::Input, 8, 8, 4, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 8, 8, 4, 3, 1), {0});

    ExecutionScheme s = deriveConsumptionScheme(g, {1}, 64);
    EXPECT_EQ(s.find(1)->xH, 8);
    EXPECT_EQ(s.find(0)->xH, 8);
}

TEST(ConsumptionScheme, ChainDeltasComposeStrides)
{
    Graph g("chain");
    g.addNode(layer2d("in", LayerKind::Input, 64, 64, 4, 1, 1));
    g.addNode(layer2d("a", LayerKind::Conv, 32, 32, 4, 3, 2), {0});
    g.addNode(layer2d("b", LayerKind::Conv, 16, 16, 4, 3, 2), {1});

    ExecutionScheme s = deriveConsumptionScheme(g, {1, 2}, 2);
    // Delta(a) = Delta(b)*s(b) = 4; Delta(in) = Delta(a)*s(a) = 8.
    EXPECT_EQ(s.find(1)->deltaH, 4);
    EXPECT_EQ(s.find(0)->deltaH, 8);
    // x(a) = f_b(4/2) = 3 + 1*2 = 5; x(in) = f_a(8/2) = 3 + 3*2 = 9.
    EXPECT_EQ(s.find(1)->xH, 5);
    EXPECT_EQ(s.find(0)->xH, 9);
}

TEST(ConsumptionScheme, UpdConsistentOnReconvergentBranches)
{
    // Residual block shape: both branches downsample by 2.
    Graph g("res");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("a", LayerKind::Conv, 16, 16, 8, 3, 2), {0});
    g.addNode(layer2d("b", LayerKind::Conv, 16, 16, 8, 1, 2), {0});
    g.addNode(layer2d("add", LayerKind::Eltwise, 16, 16, 8, 1, 1), {1, 2});

    ExecutionScheme s = deriveConsumptionScheme(g, {1, 2, 3}, 2);
    EXPECT_TRUE(s.updConsistent);
    EXPECT_GE(s.find(0)->updNum, 1);
}

TEST(ConsumptionScheme, RegionCountCountsSideRegions)
{
    Graph g("regions");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("c1", LayerKind::Conv, 32, 32, 8, 3, 1), {0});
    g.addNode(layer2d("c2", LayerKind::Conv, 32, 32, 8, 3, 1), {1});

    ExecutionScheme s = deriveConsumptionScheme(g, {1, 2}, 4);
    // in: MAIN+SIDE, c1: MAIN+SIDE, c2: MAIN -> 5 regions.
    EXPECT_EQ(s.numRegions, 5);
}

TEST(ConsumptionSchemeDeath, EmptySubgraph)
{
    Graph g = paperExample();
    EXPECT_DEATH(deriveConsumptionScheme(g, {}, 2), "empty subgraph");
}

TEST(ConsumptionSchemeDeath, BadTile)
{
    Graph g = paperExample();
    EXPECT_DEATH(deriveConsumptionScheme(g, {2}, 0), "out_tile");
}

TEST(ConsumptionSchemeDeath, DuplicateNodes)
{
    Graph g = paperExample();
    EXPECT_DEATH(deriveConsumptionScheme(g, {2, 2}, 2), "duplicate");
}

// --- Stage-1 mapper (bestScheme) ------------------------------------------

TEST(BestScheme, PicksMinimumFootprintCandidate)
{
    Graph g("best");
    g.addNode(layer2d("in", LayerKind::Input, 64, 64, 16, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 64, 64, 16, 3, 1), {0});

    ExecutionScheme best = bestScheme(g, {1});
    for (int t : defaultTileCandidates()) {
        ExecutionScheme s = deriveConsumptionScheme(g, {1}, t);
        EXPECT_LE(best.actFootprintBytes, s.actFootprintBytes);
    }
}

TEST(BestScheme, TieBreaksTowardLargerTile)
{
    // 1x1 spatial FC stack: all tiles clip to 1, footprints equal.
    Graph g("fc");
    g.addNode(layer2d("in", LayerKind::Input, 1, 1, 128, 1, 1));
    g.addNode(layer2d("fc", LayerKind::Conv, 1, 1, 128, 1, 1), {0});

    ExecutionScheme best = bestScheme(g, {1});
    EXPECT_EQ(best.outTile, defaultTileCandidates().back());
}

// --- Production-centric baseline (Figure 4 ablation) ----------------------

TEST(ProductionScheme, MatchesConsumptionOnBalancedChain)
{
    Graph g("bal");
    g.addNode(layer2d("in", LayerKind::Input, 32, 32, 8, 1, 1));
    g.addNode(layer2d("c", LayerKind::Conv, 32, 32, 8, 3, 1), {0});

    ExecutionScheme cons = deriveConsumptionScheme(g, {1}, 4);
    int in_tile = 0;
    for (const auto &ns : cons.nodes)
        if (ns.external)
            in_tile = std::max(in_tile, ns.xH);
    ExecutionScheme prod = deriveProductionScheme(g, {1}, in_tile);
    // On a single layer the two schemes hold the same data.
    EXPECT_EQ(prod.find(0)->xH, cons.find(0)->xH);
}

TEST(ProductionScheme, WastesMemoryOnUnbalancedBranches)
{
    // Figure 4's situation: a 5x5/2 branch beside a 1x1 + 3x3/2
    // branch joining at an add. The production-centric scheme buffers
    // results that cannot be consumed yet.
    Graph g("unbal");
    g.addNode(layer2d("in", LayerKind::Input, 40, 40, 8, 1, 1));
    g.addNode(layer2d("n0", LayerKind::Conv, 20, 20, 8, 5, 2), {0});
    g.addNode(layer2d("n1", LayerKind::Conv, 40, 40, 8, 1, 1), {0});
    g.addNode(layer2d("n2", LayerKind::Conv, 20, 20, 8, 3, 2), {2});
    g.addNode(layer2d("n3", LayerKind::Eltwise, 20, 20, 8, 1, 1), {1, 3});

    std::vector<NodeId> sub{1, 2, 3, 4};
    ExecutionScheme cons = deriveConsumptionScheme(g, sub, 1);
    int in_tile = 0;
    for (const auto &ns : cons.nodes)
        if (ns.external)
            in_tile = std::max(in_tile, ns.xH);
    ExecutionScheme prod = deriveProductionScheme(g, sub, in_tile);
    EXPECT_GT(prod.actFootprintBytes, cons.actFootprintBytes);
}

TEST(ProductionSchemeDeath, BadTile)
{
    Graph g = paperExample();
    EXPECT_DEATH(deriveProductionScheme(g, {2}, 0), "in_tile");
}

// --- Parameterized sweep: scheme invariants over tile sizes ---------------

class TileSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TileSweep, InvariantsHoldOnPaperExample)
{
    Graph g = paperExample();
    ExecutionScheme s = deriveConsumptionScheme(g, {2, 3, 4}, GetParam());
    EXPECT_TRUE(s.updConsistent);
    for (const auto &ns : s.nodes) {
        // Resident tile can never be smaller than the update offset.
        EXPECT_GE(ns.xH, ns.deltaH);
        EXPECT_GE(ns.xW, ns.deltaW);
        EXPECT_GE(ns.updNum, 1);
        EXPECT_GE(ns.mainBytes, 1);
        EXPECT_GE(ns.sideBytes, 0);
        // Tiles are clipped to the tensor.
        EXPECT_LE(ns.xH, g.layer(ns.node).outH);
        EXPECT_LE(ns.xW, g.layer(ns.node).outW);
    }
}

TEST_P(TileSweep, FootprintGrowsWeaklyWithTile)
{
    Graph g = paperExample();
    int t = GetParam();
    if (t < 2)
        return;
    ExecutionScheme small = deriveConsumptionScheme(g, {2, 3, 4}, t - 1);
    ExecutionScheme big = deriveConsumptionScheme(g, {2, 3, 4}, t);
    // MAIN regions grow with the tile; SIDE shrinks, but on this 1-D
    // example (W = 1) there is no SIDE, so growth is monotone.
    EXPECT_GE(big.actFootprintBytes, small.actFootprintBytes);
}

INSTANTIATE_TEST_SUITE_P(Tiles, TileSweep, ::testing::Values(1, 2, 3, 4, 6,
                                                              8, 12, 16));
